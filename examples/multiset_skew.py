"""Duplicate keys break cuckoo filters; chaining repairs them (§4.3, §6.2).

A cuckoo filter stores a key's copies in just two buckets, so at most 2b
duplicates fit.  Real keys are Zipf-distributed — a few keys carry hundreds
of duplicates — and the paper's Figure 4 shows plain filters failing almost
immediately on such data.  This example reproduces that experiment at demo
size: fill identical tables from the same stream and report the load factor
reached at the first failed insertion.

Run:  python examples/multiset_skew.py
"""

from __future__ import annotations

from repro.bench.multiset_experiments import STREAM_SCHEMA, fill_until_failure
from repro.ccf import CCFParams
from repro.data import duplicate_statistics, stream_for_capacity


def main() -> None:
    num_buckets = 512
    params = CCFParams(
        key_bits=12, attr_bits=8, bucket_size=4, max_dupes=3, max_chain=None, seed=11
    )
    capacity = num_buckets * params.bucket_size

    print(f"table: {num_buckets} buckets x {params.bucket_size} slots "
          f"= {capacity} entries; d={params.max_dupes}, Lmax uncapped\n")
    header = f"{'stream':30s} {'type':8s} {'items before failure':>21s} {'load at failure':>16s}"
    print(header)
    print("-" * len(header))

    for shape, mean_dupes in (("constant", 2), ("constant", 8), ("zipf", 8)):
        stream = stream_for_capacity(shape, capacity, mean_dupes, overfill=1.2, seed=3)
        mean, peak = duplicate_statistics(stream)
        label = f"{shape}, ~{mean:.1f} dupes (max {peak})"
        for kind in ("plain", "chained"):
            point = fill_until_failure(kind, shape, mean_dupes, num_buckets, params, seed=3)
            status = f"{point.items_processed:21d} {point.load_factor:16.3f}"
            print(f"{label:30s} {kind:8s} {status}")
        print()

    print("chaining sustains the same high load factor regardless of skew;")
    print("the plain filter dies as soon as a hot key exceeds its 2b slots.")


if __name__ == "__main__":
    main()
