"""Predicate pushdown across a star join with prebuilt CCFs (§3, §10).

Reproduces the paper's motivating scenario on the synthetic IMDB dataset:

    SELECT ci.*, t.title, mc.note
    FROM   cast_info ci, title t, movie_companies mc
    WHERE  t.id = ci.movie_id AND t.id = mc.movie_id
    AND    ci.role_id = 4 AND t.kind_id = 1 AND mc.company_type_id = 2

A prebuilt key-only filter for `title` is useless — it contains the universe
of movie ids.  A *conditional* filter lets the scan on cast_info check
"movie_id present in title WITH kind_id=1" and "present in movie_companies
WITH company_type_id=2", shrinking the hash tables the join must build.

Run:  python examples/join_pushdown.py  [REPRO_SCALE=0.005 for more data]
"""

from __future__ import annotations

import os

from repro.ccf import CCFParams, Eq
from repro.data import generate_imdb
from repro.join import build_cuckoo_baseline, build_filter_bundle


def main() -> None:
    scale = float(os.environ.get("REPRO_SCALE", "0.002"))
    dataset = generate_imdb(scale=scale, seed=1)
    print(f"synthetic IMDB at scale {scale}: "
          + ", ".join(f"{name}={rel.num_rows}" for name, rel in dataset.tables.items()))

    # Prebuild one CCF per table (this is the offline step a system would
    # run alongside statistics collection).
    params = CCFParams(key_bits=12, attr_bits=8, bucket_size=6, max_dupes=3)
    bundle = build_filter_bundle(dataset, "chained", params, name="chained")
    cuckoo = build_cuckoo_baseline(dataset)
    print(f"prebuilt chained CCFs: {bundle.total_size_mb():.2f} MB total\n")

    # The query's predicates.
    ci_pred = Eq("role_id", 4)
    t_pred = Eq("kind_id", 1)
    mc_pred = Eq("company_type_id", 2)

    cast_info = dataset.table("cast_info")
    ci_mask = ci_pred.mask(cast_info.columns)
    candidate_keys = cast_info.column("movie_id")[ci_mask]
    print(f"cast_info rows passing role_id=4: {ci_mask.sum()}")

    # Exact semijoin (the best any filter could do).
    title = dataset.table("title")
    mc = dataset.table("movie_companies")
    title_keys = set(title.column("id")[t_pred.mask(title.columns)].tolist())
    mc_keys = set(mc.column("movie_id")[mc_pred.mask(mc.columns)].tolist())
    exact = sum(1 for k in candidate_keys.tolist() if k in title_keys and k in mc_keys)

    # Key-only cuckoo filters (state of the art for prebuilt filters).
    t_cf, mc_cf = cuckoo["title"], cuckoo["movie_companies"]
    key_only = sum(
        1 for k in candidate_keys.tolist() if t_cf.contains(int(k)) and mc_cf.contains(int(k))
    )

    # Conditional cuckoo filters: predicates pushed down to this scan.
    t_ccf, mc_ccf = bundle.ccfs["title"], bundle.ccfs["movie_companies"]
    t_compiled = t_ccf.compile(bundle.query_predicate("title", t_pred))
    mc_compiled = mc_ccf.compile(mc_pred)
    conditional = sum(
        1
        for k in candidate_keys.tolist()
        if t_ccf.query(int(k), t_compiled) and mc_ccf.query(int(k), mc_compiled)
    )

    total = int(ci_mask.sum())
    print("\nrows the cast_info scan must emit into the join's hash tables:")
    print(f"  no pre-filtering:        {total:8d}  (RF 1.000)")
    print(f"  key-only cuckoo filters: {key_only:8d}  (RF {key_only / total:.3f})")
    print(f"  conditional CCFs:        {conditional:8d}  (RF {conditional / total:.3f})")
    print(f"  exact semijoin optimum:  {exact:8d}  (RF {exact / total:.3f})")

    false_positives = conditional - exact
    print(f"\nCCF false positives beyond the optimum: {false_positives} "
          f"({false_positives / max(1, total - exact):.2%} of the avoidable rows)")
    print("predicates from title and movie_companies were pushed into the "
          "cast_info scan through sketches alone.")


if __name__ == "__main__":
    main()
