"""Predicate-only queries: derive per-predicate filters from one CCF (Alg. 2).

§3's point: a prebuilt filter for the `title` table is useless because it
contains every movie id — but a filter for "titles WITH kind_id=1 produced
after 2000" is a powerful semijoin reducer.  Instead of prebuilding one
filter per predicate combination (exponentially many), a single CCF can be
*specialised on demand*: Algorithm 2 erases (Bloom/Mixed) or marks (chained)
non-matching entries and hands back a key-only membership filter.

Run:  python examples/predicate_filter_extraction.py
"""

from __future__ import annotations

import os

from repro.ccf import Eq, LARGE_PARAMS, Range
from repro.data import generate_imdb
from repro.join import YearBinning, build_filter_bundle


def main() -> None:
    scale = float(os.environ.get("REPRO_SCALE", "0.002"))
    dataset = generate_imdb(scale=scale, seed=1)
    title = dataset.table("title")
    print(f"title table: {title.num_rows} movies")

    # One CCF over (kind_id, production_year bin) — built once, offline.
    bundle = build_filter_bundle(dataset, "chained", LARGE_PARAMS, name="chained-large")
    ccf = bundle.ccfs["title"]
    binning = bundle.binning
    assert binning is not None
    print(f"title CCF: {ccf.size_in_bits() / 8 / 1024:.1f} KiB, "
          f"{ccf.num_entries} entries\n")

    # Specialise it for three different predicates without touching the data.
    predicates = {
        "kind_id = 1": Eq("kind_id", 1),
        "produced after 2000": Range("production_year", low=2000, low_inclusive=False),
        "kind 2 in the 90s": Eq("kind_id", 2) & Range("production_year", low=1990, high=1999),
    }

    movie_ids = title.column("id").tolist()
    for label, predicate in predicates.items():
        truth_mask = predicate.mask(title.columns)
        truth = set(title.column("id")[truth_mask].tolist())
        # Ranges must be binned into the vocabulary the CCF stores.
        view = ccf.predicate_filter(binning.rewrite(predicate))
        selected = [m for m in movie_ids if view.contains(m)]
        false_positives = len(selected) - len(truth)
        missed = sum(1 for m in truth if m not in set(selected))
        print(f"predicate: {label}")
        print(f"  true matches:     {len(truth)}")
        print(f"  filter selects:   {len(selected)} "
              f"({false_positives} false positives, {missed} false negatives)")
        print(f"  extracted filter: {view.size_in_bits() / 8 / 1024:.1f} KiB "
              f"(marking bits keep chains walkable)\n")
        assert missed == 0, "CCF views must never produce false negatives"

    print("one sketch served three predicate-specific filters; a system can")
    print("ship these to remote scans instead of shipping the title table.")


if __name__ == "__main__":
    main()
