"""An exact multimap from the chaining technique (§11).

The paper closes by noting the chaining idea "can also be used to allow
regular cuckoo hash tables, which store the full key, to store duplicates".
`ChainedCuckooHashTable` is that structure: an exact key -> {values}
multimap with cuckoo placement, open addressing (no pointer chains), and
per-pair duplicate caps that spill hot keys across chained bucket pairs.

This example uses it as a movie -> keywords index over the synthetic IMDB
data — a workload whose hottest key has hundreds of values, which a plain
2-bucket cuckoo table cannot represent at all.

Run:  python examples/multimap_store.py
"""

from __future__ import annotations

import os
from collections import defaultdict

from repro.cuckoo import ChainedCuckooHashTable
from repro.data import generate_imdb


def main() -> None:
    scale = float(os.environ.get("REPRO_SCALE", "0.002"))
    dataset = generate_imdb(scale=scale, seed=1)
    mk = dataset.table("movie_keyword")
    movies = mk.column("movie_id").tolist()
    keywords = mk.column("keyword_id").tolist()

    index = ChainedCuckooHashTable(num_buckets=1024, bucket_size=4, max_dupes=3, seed=5)
    reference: dict[int, set[int]] = defaultdict(set)
    for movie, keyword in zip(movies, keywords):
        index.add(movie, keyword)
        reference[movie].add(keyword)

    print(f"indexed {len(index)} (movie, keyword) pairs "
          f"across {len(reference)} movies")
    print(f"table: {index.buckets.num_buckets} buckets, "
          f"load factor {index.load_factor():.2f}, resizes {index.num_resizes}")

    hottest = max(reference, key=lambda m: len(reference[m]))
    print(f"\nhottest movie {hottest}: {len(reference[hottest])} keywords "
          f"(a plain cuckoo table caps at 2b = 8)")
    assert sorted(index.get(hottest)) == sorted(reference[hottest])

    # Exactness check over every key, including after deletions.
    for movie, kws in reference.items():
        assert sorted(index.get(movie)) == sorted(kws)
    victim_keyword = next(iter(reference[hottest]))
    index.remove(hottest, victim_keyword)
    assert victim_keyword not in index.get(hottest)
    assert len(index.get(hottest)) == len(reference[hottest]) - 1
    print("exactness verified for every movie, including after removal")
    index.check_invariants()


if __name__ == "__main__":
    main()
