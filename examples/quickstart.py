"""Quickstart: build a conditional cuckoo filter and query it with predicates.

A CCF answers "is key k present with attributes satisfying P?" over a
pre-computed sketch that is far smaller than the data.  This example builds
one over a small orders table and walks through the three query styles:
key-only, key+predicate, and predicate-only extraction (Algorithm 2).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro.ccf import AttributeSchema, CCFParams, Eq, In, build_ccf


def main() -> None:
    rng = random.Random(7)

    # A toy orders fact table: customer -> (status, priority) rows.
    # Customers recur with different attribute combinations — the duplicate
    # keys a plain cuckoo filter cannot absorb.
    statuses = ("open", "shipped", "returned")
    rows = []
    for customer in range(5000):
        for _ in range(rng.randint(1, 6)):
            rows.append((customer, (rng.choice(statuses), rng.randint(1, 5))))

    schema = AttributeSchema(["status", "priority"])
    params = CCFParams(key_bits=12, attr_bits=8, bucket_size=6, max_dupes=3)
    ccf = build_ccf("chained", schema, rows, params)

    print(f"built a chained CCF over {len(rows)} rows")
    print(f"  entries: {ccf.num_entries}, load factor: {ccf.load_factor():.2f}")
    print(f"  size: {ccf.size_in_bytes() / 1024:.1f} KiB "
          f"(vs ~{len(rows) * 12 / 1024:.0f} KiB for raw 96-bit rows)")

    # 1. Key-only membership (what a regular cuckoo filter supports).
    print("\nkey-only queries:")
    print(f"  customer 42 present?     {ccf.contains_key(42)}")
    print(f"  customer 999999 present? {ccf.contains_key(999_999)}  (false positive odds ~2^-12 per entry)")

    # 2. Conditional membership: the paper's contribution.
    some_key, (some_status, some_priority) = rows[0]
    hit = ccf.query(some_key, Eq("status", some_status) & Eq("priority", some_priority))
    miss = ccf.query(some_key, Eq("status", "no-such-status"))
    print("\nkey + predicate queries:")
    print(f"  ({some_key}, status={some_status} AND priority={some_priority}) -> {hit}  (stored row: always True)")
    print(f"  ({some_key}, status=no-such-status) -> {miss}  (absent attribute: almost always False)")

    # In-list predicates work too (ranges need binning; see the README).
    print(f"  ({some_key}, status IN (open, shipped)) -> "
          f"{ccf.query(some_key, In('status', ['open', 'shipped']))}")

    # 3. Predicate-only extraction (Algorithm 2): derive a key-only filter
    #    for one predicate and ship it to another operator.
    returned = ccf.predicate_filter(Eq("status", "returned"))
    with_returned = sum(1 for customer in range(5000) if returned.contains(customer))
    truly_returned = len({k for k, (s, _p) in rows if s == "returned"})
    print("\npredicate-only extraction:")
    print(f"  extracted filter for status=returned: {with_returned} candidate customers "
          f"({truly_returned} true, rest are false positives)")
    print(f"  extracted size: {returned.size_in_bits() / 8 / 1024:.1f} KiB")

    # Accuracy check: measure the false positive rate on absent keys.
    probes = range(100_000, 110_000)
    fpr = sum(ccf.query(k, Eq("status", "open")) for k in probes) / 10_000
    print(f"\nmeasured FPR for absent keys: {fpr:.4%}")


if __name__ == "__main__":
    main()
