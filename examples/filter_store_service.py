"""FilterStore as a service: unbounded mutable membership with persistence.

The paper's deployment (§2-§3) precomputes a fixed-capacity CCF per table.
This example runs the other regime — a long-lived membership service under
heavy mutable traffic:

* a stream of (user_id, {status, region}) rows arrives in batches and is
  inserted far past any single filter's capacity (shards roll new levels);
* predicate queries (`status = 'active'` in region 3) run interleaved with
  the writes, with no false negatives at any point;
* churned rows are deleted (routed to their owning level);
* `compact()` merges each shard's stack into one right-sized filter;
* `snapshot()`/`open()` round-trips the store through an atomic on-disk
  manifest + per-level SEG1 segments, simulating a service restart — the
  reopened store serves zero-copy from memory-mapped columns and promotes
  levels to heap only when mutations touch them.

Part two promotes that single-process store to the multi-core serving
runtime (DESIGN.md §11): a `ServeRuntime` publishes the store as snapshot
epochs, a pool of worker processes maps each epoch zero-copy from the
shared page cache, writes keep flowing through the single locked writer,
and an asyncio front end coalesces hundreds of concurrent point lookups
into a handful of vectorised batches.

Run:  python examples/filter_store_service.py
"""

from __future__ import annotations

import asyncio
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.ccf import AttributeSchema, CCFParams, Eq
from repro.serve import ServeRuntime
from repro.store import FilterStore, StoreConfig

STATUSES = ("active", "dormant", "churned")


def main() -> None:
    store, keys, rng = single_process_walkthrough()
    serving_runtime_demo(store, keys, rng)


def single_process_walkthrough() -> tuple[FilterStore, np.ndarray, np.random.Generator]:
    rows = int(os.environ.get("REPRO_STORE_ROWS", "60000"))
    rng = np.random.default_rng(11)

    schema = AttributeSchema(["status", "region"])
    params = CCFParams(key_bits=16, attr_bits=8, bucket_size=4, seed=3)
    config = StoreConfig(num_shards=4, level_buckets=512, target_load=0.85, compact_at=8)
    store = FilterStore(schema, params, config)

    level_capacity = config.level_buckets * params.bucket_size
    print(f"one level holds ~{int(level_capacity * config.target_load)} entries; "
          f"streaming {rows} rows through {config.num_shards} shards\n")

    # ---- mutable traffic: batched inserts interleaved with queries --------
    keys = rng.permutation(rows).astype(np.int64)
    status = np.array(STATUSES, dtype=object)[keys % 3]
    region = keys % 7
    active_in_r3 = store.compile(Eq("status", "active") & Eq("region", 3))

    batch = 5_000
    for start in range(0, rows, batch):
        stop = min(rows, start + batch)
        store.insert_many(keys[start:stop], [status[start:stop], region[start:stop]])
        probe = keys[rng.integers(0, stop, size=1_000)]
        answers = store.query_many(probe, active_in_r3)
        truth = (probe % 3 == 0) & (probe % 7 == 3)
        assert bool(answers[truth].all()), "predicate query lost an inserted row"
    print(f"after inserts: {store!r}")

    # ---- churn: delete the 'churned' rows, routed to their owning level ---
    churned = keys[keys % 3 == 2]
    deleted = store.delete_many(churned, [["churned"] * len(churned), churned % 7])
    print(f"deleted {int(deleted.sum())} churned rows "
          f"(store now tracks {len(store)} live rows)")

    # ---- compaction: merge each shard's stack into one right-sized level --
    stats = store.stats()
    print(f"\nbefore compaction: {stats['levels']} levels, "
          f"load {stats['load_factor']:.3f}, {stats['size_in_bytes'] / 1024:.1f} KiB")
    store.compact()
    stats = store.stats()
    print(f"after  compaction: {stats['levels']} levels, "
          f"load {stats['load_factor']:.3f}, {stats['size_in_bytes'] / 1024:.1f} KiB")
    for shard in stats["shards"]:
        print(f"  shard {shard['shard']}: entries={shard['entries']:6d} "
              f"bucket_size={shard['level_bucket_sizes']}, "
              f"compactions={shard['compactions']}")

    live = keys[keys % 3 != 2]
    assert bool(store.query_many(live).all()), "compaction lost a live row"

    # ---- persistence: atomic segment snapshot, 'restart', serve mapped ----
    with tempfile.TemporaryDirectory() as tmp:
        root = store.snapshot(Path(tmp) / "filter-store")  # atomic; SEG1 segments
        payload_kb = sum(f.stat().st_size for f in root.iterdir()) / 1024
        files = sorted(p.name for p in root.iterdir())
        print(f"\nsnapshot: {len(files)} files, {payload_kb:.1f} KiB "
              f"(manifest + one page-aligned segment per level)")
        reopened = FilterStore.open(root)  # O(manifest): levels map on first probe
        pending = sum(s.num_pending_segments for s in reopened.shards)
        print(f"reopened with {pending} levels still on disk (unmapped)")
        probe = rng.integers(0, 2 * rows, size=20_000)
        same = reopened.query_many(probe, active_in_r3) == store.query_many(probe, active_in_r3)
        assert bool(same.all()), "reopened store diverged"
        stats = reopened.stats()
        print(f"reopened store answers match the live store on 20k probes — "
              f"served from {stats['mapped_bytes'] / 1024:.1f} KiB of mapped columns "
              f"({stats['resident_bytes'] / 1024:.1f} KiB resident)")
        # Mutations copy-on-write-promote just the touched levels to heap.
        fresh = np.arange(10 * rows, 10 * rows + 1_000, dtype=np.int64)
        reopened.insert_many(fresh, [np.array(STATUSES, dtype=object)[fresh % 3], fresh % 7])
        stats = reopened.stats()
        print(f"after 1k fresh inserts: {stats['mapped_bytes'] / 1024:.1f} KiB mapped, "
              f"{stats['resident_bytes'] / 1024:.1f} KiB promoted to heap")
        # `python -m repro.store inspect <path>` prints the same snapshot
        # manifest + per-level geometry without loading any slot data.

    fpr_probe = rng.integers(rows, 4 * rows, size=20_000)
    print(f"\nkey-only FPR on never-inserted keys: "
          f"{store.query_many(fpr_probe).mean():.4f}")
    return store, keys, rng


def serving_runtime_demo(
    store: FilterStore, keys: np.ndarray, rng: np.random.Generator
) -> None:
    """Part two: the same store behind the multi-core serving runtime."""
    rows = int(keys.max()) + 1
    live = keys[keys % 3 != 2]
    active_r3 = Eq("status", "active") & Eq("region", 3)

    print("\n=== serving runtime: worker pool + epoch publishing ===")
    with tempfile.TemporaryDirectory() as tmp:
        runtime = ServeRuntime(
            store,
            Path(tmp) / "epochs",
            num_workers=2,
            mode="process",
            predicates={"active_r3": active_r3},
        )
        with runtime:
            # Epoch 1 is published and two worker processes have mapped it
            # from the shared page cache — reads no longer touch the writer.
            probe = live[rng.integers(0, len(live), size=5_000)]
            assert bool(runtime.query_many(probe).all())
            hits = runtime.query_many(probe, "active_r3")
            print(f"epoch {runtime.epoch}: pool of {runtime.num_workers} "
                  f"processes answers 5k probes ({int(hits.sum())} match "
                  f"status='active' & region=3)")

            # Writes flow through the single locked writer; the pool keeps
            # serving the published epoch until the next publish().
            fresh = np.arange(20 * rows, 20 * rows + 2_000, dtype=np.int64)
            runtime.insert_many(
                fresh, [np.array(STATUSES, dtype=object)[fresh % 3], fresh % 7]
            )
            stale = runtime.query_many(fresh)
            ryw = runtime.query_many(fresh, fresh=True)
            print(f"2k new rows: pool still at epoch 1 sees {int(stale.sum())}, "
                  f"fresh=True read-your-writes sees {int(ryw.sum())}")
            runtime.publish()
            assert bool(runtime.query_many(fresh).all())
            print(f"publish() -> epoch {runtime.epoch}: workers re-attached "
                  f"only the changed levels (content-token refresh), new rows "
                  f"visible pool-wide")

            # The asyncio front end turns concurrent point lookups into the
            # big batches the kernels want.
            async def point_lookup_traffic() -> None:
                frontend = runtime.frontend(tick_seconds=0.002)
                clients = [int(k) for k in live[rng.integers(0, len(live), size=300)]]
                answers = await asyncio.gather(
                    *(frontend.query(key) for key in clients)
                )
                assert all(answers)
                stats = frontend.stats()
                frontend.close()
                print(f"front end: {stats['requests']} concurrent point "
                      f"lookups coalesced into {stats['flushes']} batches "
                      f"(mean batch {stats['histogram']['mean_size']:.0f})")

            asyncio.run(point_lookup_traffic())

            stats = runtime.stats()
            pool = stats["pool"]
            ops = stats["writer"]["ops"]
            print(f"stats: pool served {pool['batches']} batches / "
                  f"{pool['keys']} keys across {pool['workers']} workers, "
                  f"writer lifetime ops: {ops['insert_keys']} inserts, "
                  f"{ops['delete_keys']} deletes, {ops['query_keys']} "
                  f"queries")
        print("runtime closed: workers drained, writer store still usable "
              f"({len(store)} live rows)")


if __name__ == "__main__":
    main()
