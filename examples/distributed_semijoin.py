"""Distributed semijoin: ship predicate-specialised filters, not tables (§2).

The paper's deployment story for distributed joins: each site precomputes a
CCF over its table; at query time a coordinator specialises the CCFs with
the query's predicates (Algorithm 2) and ships the *extracted filters* —
kilobytes — to the site scanning the big fact table, which then sends only
surviving tuples over the network.

This example simulates the three parties with explicit byte payloads: what
crosses the "network" here is exactly what would cross a real one.

Run:  python examples/distributed_semijoin.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.ccf import Eq, LARGE_PARAMS, Range, dumps, loads
from repro.data import generate_imdb
from repro.join import build_filter_bundle


def main() -> None:
    scale = float(os.environ.get("REPRO_SCALE", "0.002"))
    dataset = generate_imdb(scale=scale, seed=1)

    # ---- offline, at each dimension site: precompute and store one CCF ----
    bundle = build_filter_bundle(dataset, "chained", LARGE_PARAMS, name="chained")
    title_ccf = bundle.ccfs["title"]
    mk_ccf = bundle.ccfs["movie_keyword"]
    stored = {"title": dumps(title_ccf), "movie_keyword": dumps(mk_ccf)}
    print("precomputed sketches on disk:")
    for table, payload in stored.items():
        raw_kb = dataset.table(table).raw_size_bytes() / 1024
        print(f"  {table:15s} {len(payload) / 1024:8.1f} KiB   (raw table: {raw_kb:.0f} KiB)")

    # ---- query time, at the coordinator: specialise for this query's
    #      predicates and ship the *extracted* filters ----
    #      SELECT ... WHERE t.kind_id = 1 AND t.production_year > 2000
    #                 AND mk.keyword_id = <popular keyword>
    binning = bundle.binning
    assert binning is not None
    title_pred = Eq("kind_id", 1) & Range("production_year", low=2000, low_inclusive=False)
    keyword = int(dataset.table("movie_keyword").column("keyword_id")[0])
    mk_pred = Eq("keyword_id", keyword)

    title_view = loads(stored["title"]).predicate_filter(binning.rewrite(title_pred))
    mk_view = loads(stored["movie_keyword"]).predicate_filter(mk_pred)
    wire = {"title": dumps(title_view), "movie_keyword": dumps(mk_view)}
    print("\nshipped to the cast_info site for this query:")
    for table, payload in wire.items():
        print(f"  {table:15s} {len(payload) / 1024:8.1f} KiB")

    # ---- at the fact-table site: deserialize and filter the scan ----
    # The scan probes every fact-table key, so it uses the views' batch
    # `contains_many` (one vectorised probe of both buckets per key) rather
    # than a per-key Python loop.
    remote_title = loads(wire["title"])
    remote_mk = loads(wire["movie_keyword"])
    cast_info = dataset.table("cast_info")
    keys = cast_info.column("movie_id")
    kept_mask = remote_title.contains_many(keys) & remote_mk.contains_many(keys)
    kept = keys[kept_mask]

    # Ground truth for comparison.
    title = dataset.table("title")
    true_title = title.column("id")[title_pred.mask(title.columns)]
    mk = dataset.table("movie_keyword")
    true_mk = mk.column("movie_id")[mk_pred.mask(mk.columns)]
    exact = keys[np.isin(keys, true_title) & np.isin(keys, true_mk)]

    print(f"\ncast_info rows: {len(keys)}")
    print(f"  sent after filter push-down: {len(kept)} "
          f"({len(kept) / len(keys):.2%} of the table)")
    print(f"  exact semijoin floor:        {len(exact)}")
    missed = set(exact.tolist()) - set(kept.tolist())
    print(f"  false negatives:             {len(missed)} (must be 0)")
    assert not missed

    shipped_kb = sum(len(p) for p in wire.values()) / 1024
    saved_rows = len(keys) - len(kept)
    print(f"\n{shipped_kb:.1f} KiB of filters saved shipping {saved_rows} tuples.")


if __name__ == "__main__":
    main()
