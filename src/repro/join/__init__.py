"""Join-processing evaluation: engine, workload, reduction factors."""

from repro.join.engine import (
    count_matching,
    hash_join,
    join_cardinality,
    scan,
    semijoin_keys,
)
from repro.join.job_light import count_instances, make_job_light_workload
from repro.join.query import JoinQuery, TableRef
from repro.join.reduction import (
    FilterBundle,
    InstanceResult,
    YearBinning,
    aggregate_fpr,
    aggregate_rf,
    build_cuckoo_baseline,
    build_filter_bundle,
    evaluate_workload,
    rf_by_join_count,
)

__all__ = [
    "FilterBundle",
    "InstanceResult",
    "JoinQuery",
    "TableRef",
    "YearBinning",
    "aggregate_fpr",
    "aggregate_rf",
    "build_cuckoo_baseline",
    "build_filter_bundle",
    "count_instances",
    "count_matching",
    "evaluate_workload",
    "hash_join",
    "join_cardinality",
    "make_job_light_workload",
    "rf_by_join_count",
    "scan",
    "semijoin_keys",
]
