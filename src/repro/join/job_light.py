"""A JOB-light-style workload over the synthetic IMDB dataset (§10.3).

The real JOB-light has 70 fixed queries joining ``title`` with one to four
fact tables on the movie identifier.  Its text is tied to the IMDB snapshot,
so this module generates a seeded workload with the same published shape:

* 70 queries, joining 2-5 tables each — sized (14, 24, 23, 9) so the
  workload yields exactly 237 (query, base-table) evaluation instances, the
  paper's count;
* 55 queries carry an inequality predicate on ``title.production_year``
  (the paper's count), the rest at most a ``kind_id`` equality;
* fact-table predicates are equalities on the Table 2 predicate columns,
  with values drawn from actual rows (popularity-weighted, so selectivities
  vary realistically and are never trivially empty).
"""

from __future__ import annotations

import random

import numpy as np

from repro.ccf.predicates import And, Eq, Predicate, Range, TRUE
from repro.data.imdb import IMDBDataset, YEAR_HIGH
from repro.join.query import JoinQuery, TableRef

#: Tables-per-query histogram: {query size: count}; 70 queries, 237 instances.
QUERY_SIZE_COUNTS: dict[int, int] = {2: 14, 3: 24, 4: 23, 5: 9}

#: Number of queries with a production_year inequality (paper: 55 of 70).
NUM_YEAR_RANGE_QUERIES = 55

#: Fact-table selection weights, echoing JOB-light's emphasis.
FACT_WEIGHTS: dict[str, float] = {
    "cast_info": 0.26,
    "movie_companies": 0.22,
    "movie_info": 0.20,
    "movie_keyword": 0.17,
    "movie_info_idx": 0.15,
}

#: Probability that a fact table in a query carries a predicate at all.
FACT_PREDICATE_PROBABILITY = 0.85


def _sample_column_value(dataset: IMDBDataset, table: str, column: str, rng: random.Random):
    """Draw a predicate value by sampling a random row (popularity-weighted)."""
    values = dataset.table(table).column(column)
    return int(values[rng.randrange(len(values))])


def _year_range_predicate(dataset: IMDBDataset, rng: random.Random) -> Range:
    """An inequality on production_year in JOB-light's three shapes."""
    years = dataset.table("title").column("production_year")
    pivot = int(years[rng.randrange(len(years))])
    shape = rng.random()
    if shape < 0.45:
        return Range("production_year", low=pivot, low_inclusive=rng.random() < 0.5)
    if shape < 0.65:
        return Range("production_year", high=pivot, high_inclusive=rng.random() < 0.5)
    width = rng.choice((3, 5, 8, 10, 15))
    return Range("production_year", low=pivot, high=min(pivot + width, YEAR_HIGH))


def _title_predicate(dataset: IMDBDataset, rng: random.Random, with_year: bool) -> Predicate:
    parts: list[Predicate] = []
    if with_year:
        parts.append(_year_range_predicate(dataset, rng))
        if rng.random() < 0.4:
            parts.append(Eq("kind_id", _sample_column_value(dataset, "title", "kind_id", rng)))
    elif rng.random() < 0.7:
        parts.append(Eq("kind_id", _sample_column_value(dataset, "title", "kind_id", rng)))
    if not parts:
        return TRUE
    if len(parts) == 1:
        return parts[0]
    return And(parts)


def _fact_predicate(dataset: IMDBDataset, table: str, rng: random.Random) -> Predicate:
    if rng.random() > FACT_PREDICATE_PROBABILITY:
        return TRUE
    if table == "movie_companies":
        # Mix of type-only, company-only and conjunctive predicates, giving
        # the multi-attribute CCF single- and multi-column queries.
        roll = rng.random()
        parts: list[Predicate] = []
        if roll < 0.55:
            parts.append(
                Eq("company_type_id", _sample_column_value(dataset, table, "company_type_id", rng))
            )
        elif roll < 0.8:
            parts.append(Eq("company_id", _sample_column_value(dataset, table, "company_id", rng)))
        else:
            parts.append(
                Eq("company_type_id", _sample_column_value(dataset, table, "company_type_id", rng))
            )
            parts.append(Eq("company_id", _sample_column_value(dataset, table, "company_id", rng)))
        return parts[0] if len(parts) == 1 else And(parts)
    column = dataset.predicate_columns(table)[0]
    return Eq(column, _sample_column_value(dataset, table, column, rng))


def _weighted_fact_sample(num_facts: int, rng: random.Random) -> list[str]:
    tables = list(FACT_WEIGHTS)
    weights = np.array([FACT_WEIGHTS[t] for t in tables])
    chosen: list[str] = []
    for _ in range(num_facts):
        probabilities = weights / weights.sum()
        pick = rng.random()
        cumulative = 0.0
        for table, probability in zip(tables, probabilities):
            cumulative += probability
            if pick <= cumulative:
                chosen.append(table)
                break
        else:  # floating-point slack
            chosen.append(tables[-1])
        index = tables.index(chosen[-1])
        tables.pop(index)
        weights = np.delete(weights, index)
    return chosen


def make_job_light_workload(dataset: IMDBDataset, seed: int = 0) -> list[JoinQuery]:
    """Generate the 70-query workload against ``dataset``."""
    rng = random.Random(seed)
    sizes = [size for size, count in QUERY_SIZE_COUNTS.items() for _ in range(count)]
    rng.shuffle(sizes)
    year_flags = [True] * NUM_YEAR_RANGE_QUERIES + [False] * (len(sizes) - NUM_YEAR_RANGE_QUERIES)
    rng.shuffle(year_flags)

    queries: list[JoinQuery] = []
    for query_id, (size, with_year) in enumerate(zip(sizes, year_flags)):
        facts = _weighted_fact_sample(size - 1, rng)
        refs = [TableRef("title", _title_predicate(dataset, rng, with_year))]
        refs.extend(TableRef(fact, _fact_predicate(dataset, fact, rng)) for fact in facts)
        queries.append(JoinQuery(query_id=query_id, tables=tuple(refs)))
    return queries


def count_instances(queries: list[JoinQuery]) -> int:
    """Number of (query, base-table) evaluation instances (paper: 237)."""
    return sum(query.num_tables for query in queries)
