"""Join-query descriptions for the JOB-light-style evaluation (§10.3).

A :class:`JoinQuery` is a star join: every listed table joins on the movie
identifier (``title.id = fact.movie_id``), each carrying its own (possibly
empty) predicate.  This captures exactly the structure the paper evaluates —
"each query involves 2 to 5 of the 6 tables ... and all joins are on the
movie identifier".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ccf.predicates import Predicate, TRUE


@dataclass(frozen=True)
class TableRef:
    """One table's role in a query: its name and local predicate."""

    table: str
    predicate: Predicate = TRUE

    def has_predicate(self) -> bool:
        """True if this reference constrains any column."""
        return bool(self.predicate.columns())


@dataclass(frozen=True)
class JoinQuery:
    """A star join over ``tables``, all on the movie identifier."""

    query_id: int
    tables: tuple[TableRef, ...]

    def __post_init__(self) -> None:
        names = [ref.table for ref in self.tables]
        if len(names) < 2:
            raise ValueError("a join query needs at least two tables")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tables in query {self.query_id}: {names}")

    @property
    def num_tables(self) -> int:
        """Number of joined tables."""
        return len(self.tables)

    def table_names(self) -> tuple[str, ...]:
        """Names of all joined tables."""
        return tuple(ref.table for ref in self.tables)

    def ref(self, table: str) -> TableRef:
        """Return the reference for ``table``."""
        for candidate in self.tables:
            if candidate.table == table:
                return candidate
        raise KeyError(f"table {table!r} not in query {self.query_id}")

    def others(self, base: str) -> tuple[TableRef, ...]:
        """All references except ``base`` (the semijoin sources for it)."""
        if base not in self.table_names():
            raise KeyError(f"table {base!r} not in query {self.query_id}")
        return tuple(ref for ref in self.tables if ref.table != base)
