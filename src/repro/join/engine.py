"""Vectorised scan/join primitives over :class:`~repro.data.relation.Relation`.

Only what the evaluation needs: predicate scans, distinct-key semijoin
reducers, a hash join (used by the examples to show build-side sizes), and
key-intersection counting.  Everything operates on numpy columns; exactness
of these primitives is what the CCF results are judged against.
"""

from __future__ import annotations

import numpy as np

from repro.ccf.predicates import Predicate
from repro.data.relation import Relation


def scan(relation: Relation, predicate: Predicate) -> np.ndarray:
    """Return the boolean row mask of ``predicate`` over ``relation``."""
    return predicate.mask(relation.columns)


def semijoin_keys(relation: Relation, predicate: Predicate, key_column: str) -> np.ndarray:
    """Distinct join keys of rows satisfying ``predicate`` (a semijoin reducer)."""
    mask = scan(relation, predicate)
    return np.unique(relation.column(key_column)[mask])


def count_matching(
    base_keys: np.ndarray, key_sets: list[np.ndarray]
) -> int:
    """Count base rows whose key appears in every key set (exact semijoin)."""
    if not key_sets:
        return int(len(base_keys))
    passing = np.ones(len(base_keys), dtype=bool)
    for keys in key_sets:
        passing &= np.isin(base_keys, keys)
    return int(passing.sum())


def hash_join(
    left: Relation,
    right: Relation,
    left_key: str,
    right_key: str,
) -> Relation:
    """Inner hash join; result columns are prefixed with the source names.

    Builds on the smaller input (by rows), probes with the larger — the
    textbook plan whose build-side size the CCF pre-filtering shrinks (§3).
    """
    build, probe = (left, right) if left.num_rows <= right.num_rows else (right, left)
    build_key, probe_key = (
        (left_key, right_key) if build is left else (right_key, left_key)
    )
    table: dict[object, list[int]] = {}
    for row_index, key in enumerate(build.column(build_key).tolist()):
        table.setdefault(key, []).append(row_index)

    build_rows: list[int] = []
    probe_rows: list[int] = []
    for row_index, key in enumerate(probe.column(probe_key).tolist()):
        for match in table.get(key, ()):
            build_rows.append(match)
            probe_rows.append(row_index)

    build_idx = np.asarray(build_rows, dtype=np.int64)
    probe_idx = np.asarray(probe_rows, dtype=np.int64)
    columns: dict[str, np.ndarray] = {}
    for name, column in build.columns.items():
        columns[f"{build.name}.{name}"] = column[build_idx]
    for name, column in probe.columns.items():
        columns[f"{probe.name}.{name}"] = column[probe_idx]
    return Relation(f"{left.name}_join_{right.name}", columns)


def join_cardinality(
    left: Relation, right: Relation, left_key: str, right_key: str
) -> int:
    """Exact inner-join output cardinality, without materialising rows."""
    left_values, left_counts = np.unique(left.column(left_key), return_counts=True)
    right_values, right_counts = np.unique(right.column(right_key), return_counts=True)
    common, left_pos, right_pos = np.intersect1d(
        left_values, right_values, return_indices=True
    )
    del common
    return int((left_counts[left_pos] * right_counts[right_pos]).sum())
