"""Reduction-factor evaluation: the paper's §10.3-§10.7 harness.

For every (query, base table) instance, compare how strongly each method
shrinks the base scan's output:

* ``exact`` — the best possible semijoin: base rows whose key matches rows
  satisfying the predicates in *every* other table (no false positives);
* ``exact_binned`` — the same after binning ``production_year`` (Figure 7's
  baseline, isolating binning error from sketch error);
* one entry per CCF :class:`FilterBundle` — the base scan keeps a row iff
  every other table's CCF answers True for (key, that table's predicate);
* ``cuckoo`` — the state-of-the-art pre-built baseline: key-only cuckoo
  filters that ignore predicates.

``Reduction Factor = M_method / M_predicate`` (Eq. 9), where ``M_predicate``
counts base rows passing only the base table's own predicates (ranges on the
base table itself are evaluated exactly, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.ccf.attributes import AttributeSchema
from repro.ccf.base import ConditionalCuckooFilterBase
from repro.ccf.binning import EquiSizeBinner
from repro.ccf.factory import make_ccf
from repro.ccf.params import CCFParams
from repro.ccf.predicates import And, Eq, In, Predicate, Range, TruePredicate
from repro.ccf.sizing import distinct_vector_counts, predicted_entries, recommended_num_buckets
from repro.cuckoo.filter import CuckooFilter
from repro.data.imdb import IMDBDataset
from repro.data.relation import Relation
from repro.join.query import JoinQuery
from repro.store import FilterStore, StoreConfig

#: Number of year bins (paper: "mapped the 132 values to 16 ... intervals").
DEFAULT_YEAR_BINS = 16

BINNED_COLUMNS: dict[str, str] = {"production_year": "production_year_bin"}


class YearBinning:
    """Binning of ``title.production_year`` shared by filters and baselines."""

    def __init__(self, dataset: IMDBDataset, num_bins: int = DEFAULT_YEAR_BINS) -> None:
        years = dataset.table("title").column("production_year")
        self.binner = EquiSizeBinner.fit(years.tolist(), num_bins)
        self.raw_column = "production_year"
        self.bin_column = BINNED_COLUMNS[self.raw_column]

    def bins_of(self, values: np.ndarray) -> np.ndarray:
        """Vectorised bin ids for an array of years."""
        boundaries = np.asarray(self.binner._boundaries)
        return np.minimum(
            np.searchsorted(boundaries, values, side="left"), self.binner.num_bins - 1
        )

    def augment(self, relation: Relation) -> Relation:
        """Return a copy of ``relation`` with the bin column added."""
        columns = dict(relation.columns)
        columns[self.bin_column] = self.bins_of(relation.column(self.raw_column))
        return Relation(relation.name, columns)

    def rewrite(self, predicate: Predicate) -> Predicate:
        """Rewrite year predicates onto the bin column (widening ranges)."""
        if isinstance(predicate, TruePredicate):
            return predicate
        if isinstance(predicate, And):
            return And([self.rewrite(p) for p in predicate.predicates])
        if isinstance(predicate, Range) and predicate.column == self.raw_column:
            return self.binner.bin_predicate(predicate, self.bin_column)
        if isinstance(predicate, Eq) and predicate.column == self.raw_column:
            return Eq(self.bin_column, self.binner.bin_of(predicate.value))
        if isinstance(predicate, In) and predicate.column == self.raw_column:
            return In(self.bin_column, {self.binner.bin_of(v) for v in predicate.values})
        return predicate


@dataclass
class FilterBundle:
    """One filter per table, all of one variant/parameterisation (§10.4).

    Values are CCFs in the precompute-once deployment, or
    :class:`~repro.store.FilterStore` instances when the bundle targets the
    mutable serving layer — both expose the same ``compile``/``query_many``/
    ``size_in_bits`` surface the evaluation harness uses.
    """

    name: str
    kind: str
    params: CCFParams
    ccfs: dict[str, ConditionalCuckooFilterBase | FilterStore] = field(default_factory=dict)
    binning: YearBinning | None = None

    def total_size_bits(self) -> int:
        """Summed sketch size across tables (Figure 8's x-axis)."""
        return sum(ccf.size_in_bits() for ccf in self.ccfs.values())

    def total_size_mb(self) -> float:
        """Summed sketch size in megabytes."""
        return self.total_size_bits() / 8 / 1_000_000

    def query_predicate(self, table: str, predicate: Predicate) -> Predicate:
        """Rewrite a query predicate into the form the table's CCF stores."""
        if self.binning is not None and table == "title":
            return self.binning.rewrite(predicate)
        return predicate


def ccf_attribute_columns(dataset: IMDBDataset, table: str) -> tuple[str, ...]:
    """The columns a table's CCF sketches (year replaced by its bin)."""
    return tuple(
        BINNED_COLUMNS.get(column, column) for column in dataset.predicate_columns(table)
    )


def build_filter_bundle(
    dataset: IMDBDataset,
    kind: str,
    params: CCFParams,
    name: str | None = None,
    num_year_bins: int = DEFAULT_YEAR_BINS,
    target_load: float | None = None,
    store_config: StoreConfig | None = None,
) -> FilterBundle:
    """Build one filter per table over its join key and predicate columns.

    With ``store_config`` the bundle targets the mutable serving layer:
    each table becomes a sharded :class:`~repro.store.FilterStore` (plain
    levels — the store's deletable/compactable variant) that is filled,
    compacted once to right-size, and can keep absorbing inserts and
    deletes after the build — no occupancy prediction or resize-retry loop
    is needed because stores grow levels on demand.
    """
    binning = YearBinning(dataset, num_year_bins)
    bundle = FilterBundle(name=name or f"{kind}", kind=kind, params=params, binning=binning)
    for table in dataset.tables:
        relation = dataset.table(table)
        if table == "title":
            relation = binning.augment(relation)
        key_column = dataset.join_key(table)
        attr_columns = ccf_attribute_columns(dataset, table)
        schema = AttributeSchema(attr_columns)
        keys = relation.column(key_column)
        attr_arrays = [relation.column(c) for c in attr_columns]
        if store_config is not None:
            store = FilterStore(schema, params, store_config, kind=kind)
            store.insert_many(keys, attr_arrays)
            store.compact()
            bundle.ccfs[table] = store
            continue
        fingerprinter = ConditionalCuckooFilterBase.make_fingerprinter(schema, params)
        counts = distinct_vector_counts(
            zip(keys.tolist(), fingerprinter.vectors_many(attr_arrays))
        )
        predicted = predicted_entries(
            kind, counts, params.max_dupes, params.max_chain, params.bucket_size
        )
        num_buckets = recommended_num_buckets(predicted, params.bucket_size, target_load)
        ccf = None
        for _attempt in range(3):
            ccf = make_ccf(kind, schema, num_buckets, params)
            ccf.insert_many(keys, attr_arrays)
            if not ccf.failed:
                break
            num_buckets *= 2
        if ccf is None or ccf.failed:
            raise RuntimeError(
                f"{kind} CCF for {table} overflowed (buckets={num_buckets}); "
                "the variant cannot hold this table at a reasonable size"
            )
        bundle.ccfs[table] = ccf
    return bundle


def build_cuckoo_baseline(
    dataset: IMDBDataset, fingerprint_bits: int = 12, bucket_size: int = 4, seed: int = 0
) -> dict[str, CuckooFilter]:
    """Key-only cuckoo filters per table: the pre-built state of the art."""
    filters: dict[str, CuckooFilter] = {}
    for table in dataset.tables:
        keys = dataset.table(table).distinct(dataset.join_key(table))
        cuckoo = CuckooFilter.from_capacity(
            len(keys),
            bucket_size=bucket_size,
            fingerprint_bits=fingerprint_bits,
            target_load=0.9,
            seed=seed,
        )
        cuckoo.insert_many(keys)
        filters[table] = cuckoo
    return filters


@dataclass
class InstanceResult:
    """One (query, base table) evaluation row (a point in Figure 6)."""

    query_id: int
    base_table: str
    num_filters_applied: int
    m_predicate: int
    m_exact: int
    m_exact_binned: int
    m_methods: dict[str, int]

    def rf(self, method: str) -> float:
        """Reduction factor of a method ('exact', 'exact_binned', or a bundle)."""
        if self.m_predicate == 0:
            return 0.0
        if method == "exact":
            return self.m_exact / self.m_predicate
        if method == "exact_binned":
            return self.m_exact_binned / self.m_predicate
        return self.m_methods[method] / self.m_predicate

    def fpr(self, method: str, baseline: str = "exact_binned") -> float:
        """False positive rate of a method relative to a semijoin baseline.

        §10.6: fraction of base rows outside the baseline result that the
        method nonetheless passes.
        """
        reference = self.m_exact if baseline == "exact" else self.m_exact_binned
        negatives = self.m_predicate - reference
        if negatives <= 0:
            return 0.0
        return (self.m_methods[method] - reference) / negatives


def evaluate_workload(
    dataset: IMDBDataset,
    queries: Iterable[JoinQuery],
    bundles: list[FilterBundle],
    cuckoo_filters: dict[str, CuckooFilter] | None = None,
    num_year_bins: int = DEFAULT_YEAR_BINS,
) -> list[InstanceResult]:
    """Evaluate every (query, base table) instance under every method."""
    binning = YearBinning(dataset, num_year_bins)
    augmented: dict[str, Relation] = {}
    for table in dataset.tables:
        relation = dataset.table(table)
        augmented[table] = binning.augment(relation) if table == "title" else relation

    results: list[InstanceResult] = []
    for query in queries:
        for base_ref in query.tables:
            base = base_ref.table
            relation = augmented[base]
            key_column = dataset.join_key(base)
            # Base-table predicates evaluate exactly (no binning on the scan
            # itself, §10.3).
            own_mask = base_ref.predicate.mask(relation.columns)
            m_predicate = int(own_mask.sum())
            others = query.others(base)
            if m_predicate == 0:
                results.append(
                    InstanceResult(
                        query.query_id,
                        base,
                        len(others),
                        0,
                        0,
                        0,
                        {bundle.name: 0 for bundle in bundles} | {"cuckoo": 0},
                    )
                )
                continue
            base_keys = relation.column(key_column)[own_mask]
            unique_keys, inverse = np.unique(base_keys, return_inverse=True)

            exact_pass = np.ones(len(unique_keys), dtype=bool)
            binned_pass = np.ones(len(unique_keys), dtype=bool)
            method_pass = {
                bundle.name: np.ones(len(unique_keys), dtype=bool) for bundle in bundles
            }
            if cuckoo_filters is not None:
                method_pass["cuckoo"] = np.ones(len(unique_keys), dtype=bool)

            for other in others:
                other_relation = augmented[other.table]
                other_key = dataset.join_key(other.table)
                exact_mask = other.predicate.mask(other_relation.columns)
                exact_keys = np.unique(other_relation.column(other_key)[exact_mask])
                exact_pass &= np.isin(unique_keys, exact_keys)

                binned_predicate = (
                    binning.rewrite(other.predicate) if other.table == "title" else other.predicate
                )
                binned_mask = binned_predicate.mask(other_relation.columns)
                binned_keys = np.unique(other_relation.column(other_key)[binned_mask])
                binned_pass &= np.isin(unique_keys, binned_keys)

                for bundle in bundles:
                    ccf = bundle.ccfs[other.table]
                    compiled = ccf.compile(bundle.query_predicate(other.table, other.predicate))
                    method_pass[bundle.name] &= ccf.query_many(unique_keys, compiled)
                if cuckoo_filters is not None:
                    method_pass["cuckoo"] &= cuckoo_filters[other.table].contains_many(
                        unique_keys
                    )

            results.append(
                InstanceResult(
                    query_id=query.query_id,
                    base_table=base,
                    num_filters_applied=len(others),
                    m_predicate=m_predicate,
                    m_exact=int(exact_pass[inverse].sum()),
                    m_exact_binned=int(binned_pass[inverse].sum()),
                    m_methods={
                        name: int(passing[inverse].sum())
                        for name, passing in method_pass.items()
                    },
                )
            )
    return results


def aggregate_rf(results: list[InstanceResult], method: str) -> float:
    """Workload-level reduction factor: total rows kept over total scanned."""
    total_predicate = sum(r.m_predicate for r in results)
    if total_predicate == 0:
        return 0.0
    if method == "exact":
        kept = sum(r.m_exact for r in results)
    elif method == "exact_binned":
        kept = sum(r.m_exact_binned for r in results)
    else:
        kept = sum(r.m_methods[method] for r in results)
    return kept / total_predicate


def aggregate_fpr(
    results: list[InstanceResult], method: str, baseline: str = "exact_binned"
) -> float:
    """Workload-level FPR relative to a semijoin baseline (§10.6)."""
    reference = sum(
        (r.m_exact if baseline == "exact" else r.m_exact_binned) for r in results
    )
    negatives = sum(r.m_predicate for r in results) - reference
    if negatives <= 0:
        return 0.0
    kept = sum(r.m_methods[method] for r in results)
    return (kept - reference) / negatives


def rf_by_join_count(
    results: list[InstanceResult], method: str
) -> dict[int, float]:
    """Figure 9: aggregate RF grouped by the number of filters applied."""
    grouped: dict[int, list[InstanceResult]] = {}
    for result in results:
        grouped.setdefault(result.num_filters_applied, []).append(result)
    return {count: aggregate_rf(rows, method) for count, rows in sorted(grouped.items())}
