"""CLI for the observability layer: schema validation and a selftest.

``python -m repro.obs validate <snapshot.json>`` — schema-check a registry
snapshot (or a bench artifact carrying one under ``"metrics_snapshot"``).
Exit 0 if clean, 1 with one problem per line otherwise.  CI runs this over
the overhead-bench artifact and the store CLI output.

``python -m repro.obs selftest`` — exercise the registry, exporters and
round-trip invariants in-process; used as the CI metrics-schema smoke step.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import (
    MetricsRegistry,
    from_json,
    merge_snapshots,
    parse_prometheus,
    to_json,
    to_prometheus,
    validate_snapshot,
)


def _find_snapshots(data, label: str = "") -> list[tuple[str, dict]]:
    """Every registry snapshot in a JSON document, with a locator label.

    Accepts a bare snapshot, a bench artifact embedding one under
    ``"metrics_snapshot"``, or an artifact keyed by run parameter (the
    overhead bench keys entries by key count) — any nesting of the above.
    """
    if not isinstance(data, dict):
        return []
    if "metrics_snapshot" in data:
        return [(label or "<root>", data["metrics_snapshot"])]
    if data and all(
        isinstance(v, dict) and "type" in v and "samples" in v
        for v in data.values()
    ):
        return [(label or "<root>", data)]
    found: list[tuple[str, dict]] = []
    for key, value in data.items():
        found.extend(_find_snapshots(value, f"{label}[{key}]" if label else str(key)))
    return found


def cmd_validate(args: argparse.Namespace) -> int:
    problems: list[str] = []
    checked = 0
    for path in args.paths:
        with open(path, "r", encoding="utf-8") as fh:
            snapshots = _find_snapshots(json.load(fh))
        if not snapshots:
            problems.append(f"{path}: no registry snapshot found")
            continue
        for label, snapshot in snapshots:
            checked += 1
            for problem in validate_snapshot(snapshot):
                problems.append(f"{path} {label}: {problem}")
            if args.round_trip:
                text = to_prometheus(snapshot)
                if parse_prometheus(text) != snapshot:
                    problems.append(f"{path} {label}: prometheus round-trip mismatch")
                if from_json(to_json(snapshot)) != snapshot:
                    problems.append(f"{path} {label}: json round-trip mismatch")
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"ok: {checked} snapshot(s) valid")
    return 1 if problems else 0


def cmd_selftest(args: argparse.Namespace) -> int:
    registry = MetricsRegistry()
    calls = registry.counter("selftest_calls_total", "Calls.", ("kind",))
    calls.labels(kind="a").inc(3)
    calls.labels(kind="b").inc(2)
    registry.gauge("selftest_level", "Level.").set(7)
    lat = registry.histogram("selftest_latency_us", "Latency.", ("stage",))
    for value in (1, 3, 3, 17, 250):
        lat.labels(stage="probe").observe(value)

    snapshot = registry.snapshot()
    problems = validate_snapshot(snapshot)
    if parse_prometheus(to_prometheus(snapshot)) != snapshot:
        problems.append("prometheus round-trip mismatch")
    if from_json(to_json(snapshot)) != snapshot:
        problems.append("json round-trip mismatch")
    merged = merge_snapshots(snapshot, snapshot)
    doubled = merged["selftest_calls_total"]["samples"][0]["value"]
    single = snapshot["selftest_calls_total"]["samples"][0]["value"]
    if doubled != 2 * single:
        problems.append("self-merge did not double counter values")
    if merged["selftest_level"]["samples"][0]["value"] != 7:
        problems.append("self-merge changed the gauge (should take max)")
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print("ok: obs selftest passed")
    return 1 if problems else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs")
    sub = parser.add_subparsers(dest="command", required=True)

    p_validate = sub.add_parser("validate", help="schema-check snapshot JSON files")
    p_validate.add_argument("paths", nargs="+", help="snapshot or bench-artifact JSON")
    p_validate.add_argument(
        "--round-trip",
        action="store_true",
        help="additionally require exact prometheus/json round-trips",
    )
    p_validate.set_defaults(func=cmd_validate)

    p_selftest = sub.add_parser("selftest", help="in-process registry/export check")
    p_selftest.set_defaults(func=cmd_selftest)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
