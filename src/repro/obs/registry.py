"""Process-wide metrics registry: counters, gauges, power-of-two histograms.

The one self-knowledge surface of the stack (DESIGN.md §13).  Three metric
kinds cover everything the layers record:

* :class:`Counter` — monotone flows (kernel calls, probe hits, level rolls).
  By convention counter names end in ``_total`` (Prometheus style, enforced
  by the exporter's schema validator).
* :class:`Gauge` — point-in-time levels (mapped bytes, load factor).  Gauges
  are normally *sampled at collection time* rather than maintained on the
  hot path; see ``repro.store.metrics``.
* :class:`Histogram` — distributions over power-of-two buckets
  (:class:`Pow2Histogram`, the primitive generalised out of
  ``serve/stats.py``'s batch-size histogram): batch sizes, stage latencies
  in microseconds, wave relocation depths.

Cost model (the tentpole constraint): every record is **batch-granularity**
— one counter bump or histogram observation per kernel call, never per key —
and every record checks the global kill switch first.  ``REPRO_METRICS=off``
(or ``0``/``false``/``no``) disables recording at import time;
:func:`set_enabled` flips it at runtime (the overhead benchmark uses this to
time on-vs-off in one process).  Instrumentation is strictly passive: no
recorded value ever feeds back into placement, probing or sizing, so the
kill switch is property-tested to leave answers bit-identical.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-safe dicts —
picklable, so serve workers ship them across fork/spawn boundaries — and
:func:`merge_snapshots` folds any number of them: counters and histograms
sum, gauges take the max (they are levels, not flows; summing N workers'
views of the same mapped bytes would over-count).
"""

from __future__ import annotations

import os
import threading
from math import ceil as _ceil
from typing import Any, Iterable, Mapping, Sequence

#: Environment variable of the global kill switch.
ENV_VAR = "REPRO_METRICS"

#: Values of :data:`ENV_VAR` that disable metrics at import.
_OFF_VALUES = ("off", "0", "false", "no")


def _env_enabled() -> bool:
    return os.environ.get(ENV_VAR, "").strip().lower() not in _OFF_VALUES


class _State:
    """The kill switch, shared by every instrument via one attribute read."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = _env_enabled()


#: The process-wide kill-switch state.  Hot paths read ``state.enabled``
#: directly (one attribute load) before doing any metric work.
state = _State()


def enabled() -> bool:
    """Whether metric recording is currently on."""
    return state.enabled


def set_enabled(flag: bool) -> None:
    """Flip the kill switch at runtime (overrides the env default)."""
    state.enabled = bool(flag)


class Pow2Histogram:
    """Power-of-two histogram: the bucketing primitive of the stack.

    Bucket ``2**k`` counts observations in ``(2**(k-1), 2**k]`` (bucket 1
    holds values <= 1), so a distribution's shape reads as one bar per
    doubling.  Works for any non-negative value — integer batch sizes,
    float microsecond latencies, relocation counts.  Tracks ``count``,
    ``total`` (the sum) and ``max`` alongside the buckets; merging is
    associative and commutative (bucket-wise sums, max of maxes), which the
    cross-process worker merge relies on.

    This is a plain data structure, **not** gated by the kill switch —
    gating happens in the registry's :class:`Histogram` metric (and in the
    call sites).  `serve.stats.BatchSizeHistogram` subclasses it to keep its
    legacy dict schema.
    """

    __slots__ = ("_lock", "_buckets", "count", "total", "max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.max = 0

    @staticmethod
    def bucket_of(value: float) -> int:
        """The power-of-two upper bound covering ``value``.

        ``bit_length`` instead of a shift loop: microsecond-scale
        observations would walk the loop 10+ times, and observes sit on
        per-request paths.
        """
        if value <= 1:
            return 1
        return 1 << (_ceil(value) - 1).bit_length()

    def observe(self, value: float) -> None:
        """Record one observation (non-negative int or float)."""
        if value < 0:
            raise ValueError("observations must be non-negative")
        bucket = self.bucket_of(value)
        with self._lock:
            self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
            self.count += 1
            self.total += value
            if value > self.max:
                self.max = value

    def observe_many(self, values: Sequence[float]) -> None:
        """Record many observations under a single lock acquisition.

        The bulk form a batch front end uses when it records one value per
        coalesced request: per-call locking would multiply by the batch
        size on the serving path.
        """
        for value in values:
            if value < 0:
                raise ValueError("observations must be non-negative")
        bucket_of = self.bucket_of
        with self._lock:
            buckets = self._buckets
            for value in values:
                bucket = bucket_of(value)
                buckets[bucket] = buckets.get(bucket, 0) + 1
                self.total += value
                if value > self.max:
                    self.max = value
            self.count += len(values)

    def merge_data(
        self, buckets: Mapping, count: int, total: float, max_value: float
    ) -> None:
        """Fold another histogram's raw data into this one."""
        with self._lock:
            for label, bucket_count in buckets.items():
                bucket = int(label)
                self._buckets[bucket] = self._buckets.get(bucket, 0) + int(bucket_count)
            self.count += int(count)
            self.total += total
            if max_value > self.max:
                self.max = max_value

    def merge(self, other: "Pow2Histogram") -> None:
        """Fold another histogram into this one (associative)."""
        self.merge_data(other._buckets, other.count, other.total, other.max)

    def buckets_dict(self) -> dict[str, int]:
        """Bucket upper bounds (as strings, sorted ascending) to counts."""
        with self._lock:
            return {str(b): c for b, c in sorted(self._buckets.items())}

    def mean(self) -> float:
        """Average observed value (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0

    def data(self) -> dict:
        """JSON-safe sample form used by registry snapshots."""
        with self._lock:
            return {
                "count": self.count,
                "sum": self.total,
                "max": self.max,
                "buckets": {str(b): c for b, c in sorted(self._buckets.items())},
            }

    def clear(self) -> None:
        with self._lock:
            self._buckets.clear()
            self.count = 0
            self.total = 0
            self.max = 0


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name) or name[0].isdigit():
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _label_key(labelnames: Sequence[str], labels: Mapping[str, Any]) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared labelnames "
            f"{list(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _CounterChild:
    """One labelled counter series."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (no-op while the kill switch is off)."""
        if not state.enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount


class _GaugeChild:
    """One labelled gauge series."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value: float = 0

    def set(self, value: float) -> None:
        """Set the level (no-op while the kill switch is off)."""
        if not state.enabled:
            return
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        if not state.enabled:
            return
        with self._lock:
            self.value += amount


class _HistogramChild:
    """One labelled histogram series (a gated :class:`Pow2Histogram`)."""

    __slots__ = ("hist",)

    def __init__(self) -> None:
        self.hist = Pow2Histogram()

    def observe(self, value: float) -> None:
        """Record one observation (no-op while the kill switch is off)."""
        if not state.enabled:
            return
        self.hist.observe(value)

    def observe_many(self, values: Sequence[float]) -> None:
        """Record many observations under one lock (same gating)."""
        if not state.enabled or not values:
            return
        self.hist.observe_many(values)


_CHILD_TYPES = {
    "counter": _CounterChild,
    "gauge": _GaugeChild,
    "histogram": _HistogramChild,
}


class MetricFamily:
    """One named metric with a fixed label schema and per-label children.

    ``labels(...)`` returns (and caches) the child for one label
    combination — hot call sites pre-bind children once so the per-record
    cost is a single method call on the child.  A family declared without
    labelnames proxies the record methods of its single default child.
    """

    __slots__ = ("name", "kind", "help", "labelnames", "_children", "_lock")

    def __init__(
        self, name: str, kind: str, help: str, labelnames: Sequence[str] = ()
    ) -> None:
        self.name = _check_name(name)
        if kind not in _CHILD_TYPES:
            raise ValueError(f"unknown metric kind {kind!r}")
        if kind == "counter" and not name.endswith("_total"):
            raise ValueError(f"counter names must end in _total, got {name!r}")
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            _check_name(label)
        self._children: dict[tuple[str, ...], Any] = {}
        self._lock = threading.Lock()
        if not self.labelnames:
            self._children[()] = _CHILD_TYPES[kind]()

    def labels(self, **labels: Any):
        """The child series for one label combination (created on demand)."""
        key = _label_key(self.labelnames, labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = _CHILD_TYPES[self.kind]()
                    self._children[key] = child
        return child

    # Label-less convenience proxies (families declared without labelnames).
    def inc(self, amount: float = 1) -> None:
        self._children[()].inc(amount)

    def set(self, value: float) -> None:
        self._children[()].set(value)

    def observe(self, value: float) -> None:
        self._children[()].observe(value)

    def observe_many(self, values: Sequence[float]) -> None:
        self._children[()].observe_many(values)

    def samples(self) -> list[dict]:
        """JSON-safe per-label samples, sorted by label values."""
        with self._lock:
            items = sorted(self._children.items())
        out = []
        for key, child in items:
            labels = dict(zip(self.labelnames, key))
            if self.kind == "histogram":
                sample = {"labels": labels, **child.hist.data()}
            else:
                sample = {"labels": labels, "value": child.value}
            out.append(sample)
        return out

    def clear(self) -> None:
        """Zero every child in place (children and bindings survive)."""
        with self._lock:
            for child in self._children.values():
                if self.kind == "histogram":
                    child.hist.clear()
                else:
                    child.value = 0


class MetricsRegistry:
    """A named collection of metric families with one snapshot form."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    def _family(
        self, name: str, kind: str, help: str, labelnames: Sequence[str]
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {family.kind}"
                    )
                if family.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with labelnames "
                        f"{family.labelnames}"
                    )
                return family
            family = MetricFamily(name, kind, help, labelnames)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        """Get or create a counter family (names must end in ``_total``)."""
        return self._family(name, "counter", help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        """Get or create a gauge family."""
        return self._family(name, "gauge", help, labelnames)

    def histogram(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        """Get or create a power-of-two histogram family."""
        return self._family(name, "histogram", help, labelnames)

    def families(self) -> tuple[MetricFamily, ...]:
        with self._lock:
            return tuple(self._families.values())

    def snapshot(self) -> dict:
        """The whole registry as one JSON-safe, picklable dict.

        ``{name: {"type", "help", "labelnames", "samples": [...]}}`` —
        the wire form every exporter, merge and cross-process ship uses.
        """
        out: dict[str, dict] = {}
        for family in self.families():
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "samples": family.samples(),
            }
        return out

    def merge_snapshot(self, snapshot: Mapping[str, Mapping]) -> None:
        """Fold a snapshot's values into this registry's live families."""
        for name, family_data in snapshot.items():
            kind = family_data["type"]
            family = self._family(
                name, kind, family_data.get("help", ""),
                family_data.get("labelnames", ()),
            )
            for sample in family_data["samples"]:
                child = family.labels(**sample["labels"]) if family.labelnames else (
                    family._children[()]
                )
                if kind == "histogram":
                    child.hist.merge_data(
                        sample["buckets"], sample["count"], sample["sum"], sample["max"]
                    )
                elif kind == "counter":
                    with child._lock:
                        child.value += sample["value"]
                else:  # gauge: levels merge by max, see module docstring
                    with child._lock:
                        child.value = max(child.value, sample["value"])

    def clear(self) -> None:
        """Zero every family in place; module-level bindings stay valid."""
        for family in self.families():
            family.clear()


def _merge_sample(kind: str, into: dict, sample: Mapping) -> None:
    if kind == "histogram":
        into["count"] += sample["count"]
        into["sum"] += sample["sum"]
        into["max"] = max(into["max"], sample["max"])
        buckets = into["buckets"]
        for bound, count in sample["buckets"].items():
            buckets[bound] = buckets.get(bound, 0) + count
    elif kind == "counter":
        into["value"] += sample["value"]
    else:
        into["value"] = max(into["value"], sample["value"])


def merge_snapshots(*snapshots: Mapping[str, Mapping]) -> dict:
    """Merge registry snapshots: counters/histograms sum, gauges max.

    Pure function over the dict form — the cross-process path: every serve
    worker ships its snapshot, and the merged result equals what a single
    process running all the work would have recorded (property-tested for
    associativity).
    """
    out: dict[str, dict] = {}
    for snapshot in snapshots:
        for name, family_data in snapshot.items():
            merged = out.get(name)
            if merged is None:
                out[name] = {
                    "type": family_data["type"],
                    "help": family_data.get("help", ""),
                    "labelnames": list(family_data.get("labelnames", ())),
                    "samples": [
                        {
                            **{"labels": dict(s["labels"])},
                            **{
                                k: (dict(v) if isinstance(v, Mapping) else v)
                                for k, v in s.items()
                                if k != "labels"
                            },
                        }
                        for s in family_data["samples"]
                    ],
                }
                continue
            if merged["type"] != family_data["type"]:
                raise ValueError(
                    f"cannot merge {name!r}: {merged['type']} vs "
                    f"{family_data['type']}"
                )
            by_labels = {
                tuple(sorted(s["labels"].items())): s for s in merged["samples"]
            }
            for sample in family_data["samples"]:
                key = tuple(sorted(sample["labels"].items()))
                into = by_labels.get(key)
                if into is None:
                    copied = {
                        **{"labels": dict(sample["labels"])},
                        **{
                            k: (dict(v) if isinstance(v, Mapping) else v)
                            for k, v in sample.items()
                            if k != "labels"
                        },
                    }
                    merged["samples"].append(copied)
                    by_labels[key] = copied
                else:
                    _merge_sample(merged["type"], into, sample)
    for family_data in out.values():
        family_data["samples"].sort(
            key=lambda s: tuple(str(v) for v in s["labels"].values())
        )
    return out


def counters_total(snapshot: Mapping[str, Mapping], name: str) -> float:
    """Sum of one counter family's samples in a snapshot (0 if absent)."""
    family = snapshot.get(name)
    if family is None:
        return 0
    return sum(sample["value"] for sample in family["samples"])


#: The process-wide default registry every layer instruments into.
REGISTRY = MetricsRegistry()
