"""Bounded-ring trace-span recorder with Chrome-trace export.

Spans are coarse, named durations around the stack's structural events —
`store.snapshot`, `shard.compact`, `frontend.dispatch` — not per-key
probes.  The recorder is a fixed-size ring (`collections.deque(maxlen=...)`):
old spans fall off the back, so a long-running server's trace memory is
bounded no matter how many compactions it performs.  `dropped` counts what
fell off, and both lifetime counts are mirrored into the metrics registry
(``repro_spans_recorded_total`` / ``repro_spans_dropped_total``) so ring
overflow is visible on the scrape surface, not just in the export.

Spans are **trace-aware**: when a request's :class:`~repro.obs.context.
TraceContext` is active, :meth:`SpanRecorder.span` allocates a span id,
parents itself under the context's span, and re-activates a child context
for the block — so nested spans across layers (frontend → worker → store)
form one tree under one trace id.  With no context active, behaviour is
the pre-trace one: a structural span with no ids and no contextvar cost.

Cross-process merge: a worker's ring is shipped with :meth:`drain` plus its
``_ORIGIN_EPOCH``, and the parent re-bases the timestamps in
:meth:`adopt` — one export is then time-coherent across every process that
contributed, and adopted spans do not double-count the registry counters
the worker already ships in its own snapshot.

The export form is Chrome's trace-event JSON (``chrome://tracing`` /
Perfetto): complete events (``ph: "X"``) with microsecond timestamps
relative to a process-start origin, one row per (pid, thread); traced
events carry ``trace``/``span``/``parent`` ids in their args.  Recording
honours the same kill switch as the metrics registry — with
``REPRO_METRICS=off`` the :func:`span` context manager is a
zero-allocation passthrough.
"""

from __future__ import annotations

import os
import threading
import time as _time
from collections import deque
from time import perf_counter
from typing import Any, Iterable

from . import context as _context
from .registry import REGISTRY, state

#: perf_counter value all span timestamps are measured from, fixed at
#: import so timestamps are comparable across threads within one process.
_ORIGIN = perf_counter()
#: Wall-clock instant of `_ORIGIN` (captured back-to-back): the rebase
#: anchor when adopting spans shipped from a process with its own origin.
_ORIGIN_EPOCH = _time.time()

DEFAULT_CAPACITY = 4096

_RECORDED = REGISTRY.counter(
    "repro_spans_recorded_total",
    "Spans recorded into this process's span ring (adopted spans excluded).",
)
_DROPPED = REGISTRY.counter(
    "repro_spans_dropped_total",
    "Spans pushed off the back of the span ring by newer spans.",
)


class _NoopSpan:
    """Shared do-nothing block returned while the kill switch is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class _SpanBlock:
    """One open span as a plain context-manager object.

    Traced requests open several spans per batch on the dispatch critical
    path (dispatch → worker probe → store probe), so this
    is a slotted class rather than ``@contextmanager``: skipping the
    generator protocol, ``dataclasses.replace`` and the nested ``activate``
    context manager cuts the per-span cost roughly 3x.
    """

    __slots__ = ("_recorder", "_name", "_args", "_ctx", "_span_id", "_token", "_start")

    def __init__(self, recorder: "SpanRecorder", name: str, args: dict) -> None:
        self._recorder = recorder
        self._name = name
        self._args = args

    def __enter__(self) -> "_SpanBlock":
        ctx = _context.current()
        self._ctx = ctx
        if ctx is None:
            self._span_id = None
            self._token = None
        else:
            span_id = _context.new_span_id()
            self._span_id = span_id
            self._token = _context._CURRENT.set(ctx.child(span_id))
        self._start = perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        duration = perf_counter() - self._start
        token = self._token
        if token is not None:
            _context._CURRENT.reset(token)
        ctx = self._ctx
        self._recorder._append(
            {
                "name": self._name,
                "start": self._start - _ORIGIN,
                "duration": duration,
                "thread": threading.get_ident(),
                "pid": os.getpid(),
                "trace": None if ctx is None else ctx.trace_id,
                "span": self._span_id,
                "parent": None if ctx is None else ctx.span_id,
                "args": self._args,
            },
            adopted=False,
        )
        return False


class SpanRecorder:
    """Fixed-capacity ring of completed spans.

    ``count_in_registry`` mirrors the lifetime recorded/dropped counts into
    the process registry; only the module-level default recorder sets it,
    so private recorders (tests, tools) don't pollute the scrape surface.
    """

    def __init__(
        self, capacity: int = DEFAULT_CAPACITY, count_in_registry: bool = False
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.count_in_registry = count_in_registry
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=capacity)
        self.recorded = 0  # lifetime appends (local + adopted)
        self._overflowed = 0  # lifetime spans pushed off the back

    def span(self, name: str, **args: Any):
        """Record one named duration; ``args`` become trace-event args.

        Under an active :func:`repro.obs.context.current` trace the span
        joins the tree: it parents under the context's span and activates
        a child context for the block, so spans opened inside it (same
        task, or an explicitly re-activated worker) nest beneath it.
        """
        if not state.enabled:
            return _NOOP_SPAN
        return _SpanBlock(self, name, args)

    def record(
        self,
        name: str,
        *,
        start: float,
        duration: float,
        trace: str | None = None,
        span: str | None = None,
        parent: str | None = None,
        thread: int | None = None,
        args: dict | None = None,
    ) -> None:
        """Append one externally-timed span (``start`` is a raw
        ``perf_counter()`` value).  Callers on hot paths gate on
        ``obs.state.enabled`` themselves — this method always records."""
        self._append(
            {
                "name": name,
                "start": start - _ORIGIN,
                "duration": duration,
                "thread": threading.get_ident() if thread is None else thread,
                "pid": os.getpid(),
                "trace": trace,
                "span": span,
                "parent": parent,
                "args": args or {},
            },
            adopted=False,
        )

    def record_many(self, records: list[dict]) -> None:
        """Append many externally-timed spans under one lock acquisition.

        The bulk form of :meth:`record` for callers that emit one span per
        coalesced request: ``records`` carry raw ``perf_counter()`` values
        in ``"start"`` (rebased onto the origin here, mutating the dicts)
        and must already hold the full record schema — ``name``,
        ``duration``, ``thread``, ``pid``, ``trace``, ``span``, ``parent``
        and ``args``.
        """
        dropped = 0
        with self._lock:
            ring = self._ring
            for record in records:
                record["start"] -= _ORIGIN
                if len(ring) == self.capacity:
                    dropped += 1
                ring.append(record)
            self.recorded += len(records)
            self._overflowed += dropped
            if self.count_in_registry:
                _RECORDED.inc(len(records))
                if dropped:
                    _DROPPED.inc(dropped)

    def _append(self, record: dict, adopted: bool) -> None:
        with self._lock:
            if len(self._ring) == self.capacity:
                self._overflowed += 1
                if self.count_in_registry:
                    _DROPPED.inc()
            self._ring.append(record)
            self.recorded += 1
            if self.count_in_registry and not adopted:
                _RECORDED.inc()

    def spans(self) -> list[dict]:
        """Current ring contents, oldest first."""
        with self._lock:
            return list(self._ring)

    def drain(self) -> list[dict]:
        """Return and remove the ring's contents (lifetime counts stay).

        The cross-process ship: a worker drains so each span is shipped
        at most once, and the parent :meth:`adopt`\\ s the result.
        """
        with self._lock:
            records = list(self._ring)
            self._ring.clear()
            return records

    def adopt(
        self, records: Iterable[dict], origin_epoch: float | None = None
    ) -> int:
        """Append spans drained from another process's recorder.

        ``origin_epoch`` is the shipper's ``_ORIGIN_EPOCH``; timestamps are
        re-based onto this process's origin so one export is time-coherent.
        Adopted spans do not bump the registry recorded counter — process
        workers already ship their own counts in their registry snapshot.
        """
        shift = 0.0 if origin_epoch is None else origin_epoch - _ORIGIN_EPOCH
        count = 0
        for record in records:
            record = dict(record)
            record["start"] = record["start"] + shift
            self._append(record, adopted=True)
            count += 1
        return count

    @property
    def dropped(self) -> int:
        """Spans that have fallen off the back of the ring."""
        with self._lock:
            return self._overflowed

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self.recorded = 0
            self._overflowed = 0

    def to_chrome_trace(self, trace_ids: Iterable[str] | None = None) -> dict:
        """The ring as a Chrome trace-event JSON object.

        Load the result in ``chrome://tracing`` or Perfetto: complete
        (``ph: "X"``) events, microsecond units, one row per (pid,
        thread).  ``trace_ids`` restricts the export to those traces (the
        slow-op endpoint's filter); traced events carry their
        ``trace``/``span``/``parent`` ids in args.
        """
        wanted = None if trace_ids is None else set(trace_ids)
        default_pid = os.getpid()
        events = []
        for record in self.spans():
            if wanted is not None and record.get("trace") not in wanted:
                continue
            args = dict(record["args"])
            if record.get("trace") is not None:
                args["trace"] = record["trace"]
                args["span"] = record["span"]
                args["parent"] = record["parent"]
            events.append(
                {
                    "name": record["name"],
                    "ph": "X",
                    "ts": record["start"] * 1e6,
                    "dur": record["duration"] * 1e6,
                    "pid": record.get("pid", default_pid),
                    "tid": record["thread"],
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}


#: The process-wide default recorder all layers record into.
RECORDER = SpanRecorder(count_in_registry=True)


def span(name: str, **args: Any):
    """Record a span on the process-wide default recorder."""
    return RECORDER.span(name, **args)
