"""Bounded-ring trace-span recorder with Chrome-trace export.

Spans are coarse, named durations around the stack's structural events —
`store.snapshot`, `shard.compact`, `frontend.flush` — not per-key probes.
The recorder is a fixed-size ring (`collections.deque(maxlen=...)`): old
spans fall off the back, so a long-running server's trace memory is bounded
no matter how many compactions it performs.  `dropped` counts what fell off.

The export form is Chrome's trace-event JSON (``chrome://tracing`` /
Perfetto): complete events (``ph: "X"``) with microsecond timestamps
relative to a process-start origin, one row per thread.  Recording honours
the same kill switch as the metrics registry — with ``REPRO_METRICS=off``
the :func:`span` context manager is a zero-allocation passthrough.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Iterator

from .registry import state

#: perf_counter value all span timestamps are measured from, fixed at
#: import so timestamps are comparable across threads within one process.
_ORIGIN = perf_counter()

DEFAULT_CAPACITY = 4096


class SpanRecorder:
    """Fixed-capacity ring of completed spans."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=capacity)
        self.recorded = 0  # lifetime total, including spans since dropped

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[None]:
        """Record one named duration; ``args`` become trace-event args."""
        if not state.enabled:
            yield
            return
        start = perf_counter()
        try:
            yield
        finally:
            end = perf_counter()
            record = {
                "name": name,
                "start": start - _ORIGIN,
                "duration": end - start,
                "thread": threading.get_ident(),
                "args": args,
            }
            with self._lock:
                self._ring.append(record)
                self.recorded += 1

    def spans(self) -> list[dict]:
        """Current ring contents, oldest first."""
        with self._lock:
            return list(self._ring)

    @property
    def dropped(self) -> int:
        """Spans that have fallen off the back of the ring."""
        with self._lock:
            return self.recorded - len(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self.recorded = 0

    def to_chrome_trace(self) -> dict:
        """The ring as a Chrome trace-event JSON object.

        Load the result in ``chrome://tracing`` or Perfetto: complete
        (``ph: "X"``) events, microsecond units, one row per thread.
        """
        pid = os.getpid()
        events = []
        for record in self.spans():
            events.append(
                {
                    "name": record["name"],
                    "ph": "X",
                    "ts": record["start"] * 1e6,
                    "dur": record["duration"] * 1e6,
                    "pid": pid,
                    "tid": record["thread"],
                    "args": record["args"],
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}


#: The process-wide default recorder all layers record into.
RECORDER = SpanRecorder()


def span(name: str, **args: Any):
    """Record a span on the process-wide default recorder."""
    return RECORDER.span(name, **args)
