"""Bounded worst-N slow-request ring (DESIGN.md §15).

Every traced request that completes in the front end is *offered* here with
its total latency and per-stage decomposition; the ring keeps only the
worst ``capacity`` by total microseconds (a min-heap, O(log N) per offer).
The payoff is the ``/trace`` endpoint: the ring's trace ids select which
span trees the Chrome-trace export includes, so an operator asking "what do
the slow requests look like?" gets exactly those trees — bounded memory, no
sampling config, and the worst offenders are never the ones that fell out.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Mapping

DEFAULT_CAPACITY = 32


class SlowOpRing:
    """Keep the worst-N completed requests by total latency."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        #: (total_us, tiebreak, entry) min-heap: heap[0] is the *least*
        #: slow tracked request — the one the next slower offer evicts.
        self._heap: list[tuple[float, int, dict]] = []
        self._seq = itertools.count()
        self.offered = 0  # lifetime offers, tracked or not

    def offer(
        self,
        trace_id: str | None,
        tenant: str,
        total_us: float,
        stages: Mapping[str, float] | None = None,
    ) -> None:
        """Consider one completed request for the worst-N set."""
        total_us = float(total_us)
        with self._lock:
            self.offered += 1
            full = len(self._heap) >= self.capacity
            if full and total_us <= self._heap[0][0]:
                # Not slow enough to track: skip the entry dicts entirely —
                # under steady load nearly every offer lands here, once per
                # request.
                return
            entry = {
                "trace": trace_id,
                "tenant": tenant,
                "total_us": total_us,
                "stages": dict(stages or {}),
            }
            item = (total_us, next(self._seq), entry)
            if full:
                heapq.heapreplace(self._heap, item)
            else:
                heapq.heappush(self._heap, item)

    def admit_floor(self) -> float | None:
        """The ``total_us`` a new offer must exceed to be tracked, or None
        while the ring still has room.

        A batch recorder reads this once and pre-filters its requests,
        skipping the per-offer argument building for the fast majority.
        The floor only rises as offers land, so the filter never drops a
        request the ring would have kept (a concurrent :meth:`clear` can
        lower it mid-batch; worst case a few fast requests go untracked,
        which is the ring's business anyway).  Skipped offers must be
        accounted via :meth:`count_skipped`.
        """
        with self._lock:
            if len(self._heap) < self.capacity:
                return None
            return self._heap[0][0]

    def count_skipped(self, n: int) -> None:
        """Fold ``n`` pre-filtered (not-slow-enough) offers into the
        lifetime ``offered`` count."""
        with self._lock:
            self.offered += n

    def entries(self) -> list[dict]:
        """Tracked requests, slowest first."""
        with self._lock:
            items = sorted(self._heap, reverse=True)
        return [entry for _, _, entry in items]

    def trace_ids(self) -> set[str]:
        """Trace ids of the tracked requests (the ``/trace`` filter)."""
        with self._lock:
            return {
                entry["trace"]
                for _, _, entry in self._heap
                if entry["trace"] is not None
            }

    def summary(self) -> dict:
        """The one-line operator view: count, worst request, worst stage."""
        with self._lock:
            offered = self.offered
            worst = max(self._heap)[2] if self._heap else None
            tracked = len(self._heap)
        if worst is None:
            return {
                "count": offered,
                "tracked": 0,
                "worst_us": 0.0,
                "worst_stage": None,
                "worst_tenant": None,
                "worst_trace": None,
            }
        stages = worst["stages"]
        return {
            "count": offered,
            "tracked": tracked,
            "worst_us": worst["total_us"],
            "worst_stage": max(stages, key=stages.get) if stages else None,
            "worst_tenant": worst["tenant"],
            "worst_trace": worst["trace"],
        }

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()
            self.offered = 0


#: The process-wide ring the front end offers into.
SLOW_OPS = SlowOpRing()
