"""Exposition formats for registry snapshots: Prometheus text and JSON.

Everything here is a pure function over the snapshot dict form
(``MetricsRegistry.snapshot()``), so exporters work identically on a live
registry, a merged worker pool, or a snapshot read back from disk.

* :func:`to_prometheus` — the Prometheus text exposition format (0.0.4):
  ``# HELP`` / ``# TYPE`` headers, cumulative ``_bucket{le=...}`` series
  ending in ``+Inf``, ``_sum`` and ``_count``, plus a ``<name>_max`` gauge
  per histogram (our histograms track max; Prometheus's don't, so it rides
  as a companion gauge).
* :func:`parse_prometheus` — the exact inverse: de-cumulates buckets and
  folds ``_max`` companions back, so text → snapshot → text round-trips.
* :func:`to_json` / :func:`from_json` — the JSON dump of the same snapshot.
* :func:`validate_snapshot` — the schema check CI runs against bench
  artifacts and CLI output.
"""

from __future__ import annotations

import json
import math
import re
from typing import Mapping

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_MAX_SUFFIX = "_max"
_MAX_HELP_PREFIX = "Largest single observation of "


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label_value(value: str) -> str:
    out = []
    it = iter(value)
    for ch in it:
        if ch == "\\":
            nxt = next(it, "")
            out.append({"\\": "\\", '"': '"', "n": "\n"}.get(nxt, "\\" + nxt))
        else:
            out.append(ch)
    return "".join(out)


def _format_value(value) -> str:
    if isinstance(value, bool):
        raise TypeError("boolean metric values are not supported")
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _parse_value(text: str):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return int(text)
    except ValueError:
        return float(text)


def _labels_text(labels: Mapping[str, str], extra: tuple = ()) -> str:
    pairs = [(k, str(v)) for k, v in labels.items()] + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def to_prometheus(snapshot: Mapping[str, Mapping]) -> str:
    """Render a registry snapshot in Prometheus text exposition format.

    Families declaring labelnames additionally get a ``# LABELS`` comment:
    plain comments are ignored by Prometheus scrapers, and they let
    :func:`parse_prometheus` reconstruct the label schema of families that
    currently have no samples (exact round-trip).
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        kind = family["type"]
        help_text = family.get("help", "").replace("\\", "\\\\").replace("\n", "\\n")
        labelnames = list(family.get("labelnames", ()))
        if kind in ("counter", "gauge"):
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            if labelnames:
                lines.append(f"# LABELS {name} {','.join(labelnames)}")
            for sample in family["samples"]:
                labels = _labels_text(sample["labels"])
                lines.append(f"{name}{labels} {_format_value(sample['value'])}")
        elif kind == "histogram":
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} histogram")
            if labelnames:
                lines.append(f"# LABELS {name} {','.join(labelnames)}")
            max_lines: list[str] = []
            for sample in family["samples"]:
                cumulative = 0
                for bound, count in sorted(
                    sample["buckets"].items(), key=lambda kv: int(kv[0])
                ):
                    cumulative += count
                    le = _labels_text(sample["labels"], (("le", bound),))
                    lines.append(f"{name}_bucket{le} {cumulative}")
                le_inf = _labels_text(sample["labels"], (("le", "+Inf"),))
                lines.append(f"{name}_bucket{le_inf} {sample['count']}")
                labels = _labels_text(sample["labels"])
                lines.append(f"{name}_sum{labels} {_format_value(sample['sum'])}")
                lines.append(f"{name}_count{labels} {sample['count']}")
                max_lines.append(
                    f"{name}{_MAX_SUFFIX}{labels} {_format_value(sample['max'])}"
                )
            lines.append(
                f"# HELP {name}{_MAX_SUFFIX} {_MAX_HELP_PREFIX}{name}"
            )
            lines.append(f"# TYPE {name}{_MAX_SUFFIX} gauge")
            lines.extend(max_lines)
        else:
            raise ValueError(f"unknown metric type {kind!r} for {name!r}")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_labels(text: str | None) -> dict[str, str]:
    if not text:
        return {}
    return {
        key: _unescape_label_value(raw)
        for key, raw in _LABEL_PAIR_RE.findall(text)
    }


def parse_prometheus(text: str) -> dict:
    """Parse :func:`to_prometheus` output back into snapshot form.

    De-cumulates histogram buckets and folds the ``<name>_max`` companion
    gauges back into their histogram samples, so the result compares equal
    to the snapshot that produced the text.
    """
    types: dict[str, str] = {}
    helps: dict[str, str] = {}
    declared_labels: dict[str, list[str]] = {}
    raw_samples: dict[str, list[tuple[dict, object]]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            types[name] = kind
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            helps[name] = help_text.replace("\\n", "\n").replace("\\\\", "\\")
            continue
        if line.startswith("# LABELS "):
            _, _, rest = line.partition("# LABELS ")
            name, _, joined = rest.partition(" ")
            declared_labels[name] = [l for l in joined.split(",") if l]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"unparseable exposition line: {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels"))
        value = _parse_value(match.group("value"))
        raw_samples.setdefault(name, []).append((labels, value))

    out: dict[str, dict] = {}
    histograms = {name for name, kind in types.items() if kind == "histogram"}
    max_companions = {name + _MAX_SUFFIX for name in histograms}

    for name, kind in types.items():
        if name in max_companions:
            continue
        if kind in ("counter", "gauge"):
            samples = [
                {"labels": labels, "value": value}
                for labels, value in raw_samples.get(name, [])
            ]
            labelnames = declared_labels.get(
                name, list(samples[0]["labels"]) if samples else []
            )
            out[name] = {
                "type": kind,
                "help": helps.get(name, ""),
                "labelnames": labelnames,
                "samples": samples,
            }
        elif kind == "histogram":
            by_labels: dict[tuple, dict] = {}
            order: list[tuple] = []

            def entry(labels: dict) -> dict:
                key = tuple(sorted(labels.items()))
                if key not in by_labels:
                    by_labels[key] = {
                        "labels": labels,
                        "count": 0,
                        "sum": 0,
                        "max": 0,
                        "buckets": {},
                    }
                    order.append(key)
                return by_labels[key]

            for labels, value in raw_samples.get(name + "_bucket", []):
                bound = labels.pop("le")
                if bound == "+Inf":
                    continue
                sample = entry(labels)
                sample["buckets"][bound] = value
            for labels, value in raw_samples.get(name + "_sum", []):
                entry(labels)["sum"] = value
            for labels, value in raw_samples.get(name + "_count", []):
                entry(labels)["count"] = value
            for labels, value in raw_samples.get(name + _MAX_SUFFIX, []):
                entry(labels)["max"] = value
            samples = []
            for key in order:
                sample = by_labels[key]
                cumulative = 0
                buckets: dict[str, int] = {}
                for bound, cum in sorted(
                    sample["buckets"].items(), key=lambda kv: int(kv[0])
                ):
                    buckets[bound] = cum - cumulative
                    cumulative = cum
                sample["buckets"] = buckets
                samples.append(sample)
            labelnames = declared_labels.get(
                name, list(samples[0]["labels"]) if samples else []
            )
            out[name] = {
                "type": "histogram",
                "help": helps.get(name, ""),
                "labelnames": labelnames,
                "samples": samples,
            }
        else:
            raise ValueError(f"unknown metric type {kind!r} for {name!r}")
    return out


def to_json(snapshot: Mapping[str, Mapping], indent: int | None = 2) -> str:
    """The snapshot as a JSON document (sorted keys, stable across runs)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def from_json(text: str) -> dict:
    """Parse :func:`to_json` output back into snapshot form."""
    return json.loads(text)


def validate_snapshot(snapshot) -> list[str]:
    """Schema-check a snapshot dict; returns a list of problems (empty = ok).

    The CI metrics-schema step runs this over the bench artifact and the
    CLI JSON output.  Checks: metric/label name syntax, known types,
    counter ``_total`` naming, non-negative counter values, histogram
    invariants (power-of-two bounds, bucket counts summing to ``count``,
    ``max`` consistent with the top bucket).
    """
    problems: list[str] = []
    if not isinstance(snapshot, Mapping):
        return ["snapshot is not a mapping"]
    for name, family in snapshot.items():
        where = f"metric {name!r}"
        if not _NAME_RE.match(str(name)):
            problems.append(f"{where}: invalid metric name")
        if not isinstance(family, Mapping):
            problems.append(f"{where}: family is not a mapping")
            continue
        kind = family.get("type")
        if kind not in ("counter", "gauge", "histogram"):
            problems.append(f"{where}: unknown type {kind!r}")
            continue
        if kind == "counter" and not str(name).endswith("_total"):
            problems.append(f"{where}: counter name must end in _total")
        labelnames = family.get("labelnames", [])
        for label in labelnames:
            if not _LABEL_RE.match(str(label)):
                problems.append(f"{where}: invalid label name {label!r}")
        for i, sample in enumerate(family.get("samples", [])):
            swhere = f"{where} sample {i}"
            labels = sample.get("labels", {})
            if sorted(labels) != sorted(labelnames):
                problems.append(
                    f"{swhere}: labels {sorted(labels)} do not match "
                    f"labelnames {sorted(labelnames)}"
                )
            if kind in ("counter", "gauge"):
                value = sample.get("value")
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    problems.append(f"{swhere}: non-numeric value {value!r}")
                elif kind == "counter" and value < 0:
                    problems.append(f"{swhere}: negative counter value {value!r}")
            else:
                count = sample.get("count")
                total = sample.get("sum")
                max_value = sample.get("max")
                buckets = sample.get("buckets")
                if not isinstance(count, int) or count < 0:
                    problems.append(f"{swhere}: bad count {count!r}")
                    continue
                if not isinstance(total, (int, float)) or total < 0:
                    problems.append(f"{swhere}: bad sum {total!r}")
                if not isinstance(max_value, (int, float)) or max_value < 0:
                    problems.append(f"{swhere}: bad max {max_value!r}")
                if not isinstance(buckets, Mapping):
                    problems.append(f"{swhere}: buckets is not a mapping")
                    continue
                bucket_total = 0
                top_bound = 0
                for bound, bucket_count in buckets.items():
                    try:
                        bound_int = int(bound)
                    except (TypeError, ValueError):
                        problems.append(f"{swhere}: non-integer bound {bound!r}")
                        continue
                    if bound_int < 1 or bound_int & (bound_int - 1):
                        problems.append(
                            f"{swhere}: bound {bound!r} is not a power of two"
                        )
                    if not isinstance(bucket_count, int) or bucket_count < 0:
                        problems.append(
                            f"{swhere}: bad bucket count {bucket_count!r}"
                        )
                        continue
                    bucket_total += bucket_count
                    if bucket_count and bound_int > top_bound:
                        top_bound = bound_int
                if bucket_total != count:
                    problems.append(
                        f"{swhere}: bucket counts sum to {bucket_total}, "
                        f"count is {count}"
                    )
                if count and isinstance(max_value, (int, float)):
                    if max_value > top_bound:
                        problems.append(
                            f"{swhere}: max {max_value!r} exceeds top bucket "
                            f"bound {top_bound}"
                        )
    return problems


def histogram_quantile(sample: Mapping, q: float) -> float:
    """Approximate quantile ``q`` from one Pow2 histogram sample.

    ``sample`` is the snapshot form (``{"buckets", "count", "sum",
    "max"}``).  The matched bucket with bound ``b`` covers ``(b/2, b]``
    (``(0, 1]`` for the first); the estimate interpolates linearly inside
    it and clamps to the recorded ``max`` — so ``q=1.0`` returns the exact
    maximum, and no estimate ever exceeds an observed value's bucket.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    count = sample.get("count", 0)
    if not count:
        return 0.0
    max_value = float(sample.get("max", 0))
    buckets = sorted((int(b), int(n)) for b, n in sample["buckets"].items())
    rank = q * count
    seen = 0
    for bound, n in buckets:
        if not n:
            continue
        if seen + n >= rank:
            low = bound / 2 if bound > 1 else 0.0
            estimate = low + (bound - low) * (rank - seen) / n
            return min(estimate, max_value) if max_value else estimate
        seen += n
    return max_value


def slo_summary(
    snapshot: Mapping[str, Mapping], name: str = "repro_request_us"
) -> dict:
    """Per-labelled-series p50/p99/max/mean for one histogram family.

    The derivation half of the SLO surface: the registry stores raw
    power-of-two buckets (cheap, mergeable); quantiles are computed at
    export time, here, so cross-process merges stay exact.  Returns
    ``{label_text: {"count", "p50", "p99", "max", "mean"}}`` — empty if
    the family is absent or empty.
    """
    family = snapshot.get(name)
    if family is None or family.get("type") != "histogram":
        return {}
    out = {}
    for sample in family.get("samples", []):
        labels = sample.get("labels", {})
        key = ",".join(f"{k}={labels[k]}" for k in sorted(labels)) or "all"
        count = sample.get("count", 0)
        out[key] = {
            "count": count,
            "p50": histogram_quantile(sample, 0.50),
            "p99": histogram_quantile(sample, 0.99),
            "max": float(sample.get("max", 0)),
            "mean": (sample.get("sum", 0) / count) if count else 0.0,
        }
    return out
