"""Unified observability layer: metrics, traces, SLO derivation, exporters.

Every layer of the stack instruments into one process-wide registry
(``REGISTRY``) and one span ring (``RECORDER``); this package is the only
telemetry surface.  See DESIGN.md §13 for the metric inventory and the
cost-point contract (batch-granularity recording, ``REPRO_METRICS=off``
kill switch leaves answers bit-identical), and §15 for the request-scoped
half: :class:`TraceContext` propagation, the ``repro_request_us`` SLO
histograms, and the slow-op ring behind the ``/trace`` endpoint.

Typical instrumentation site::

    from repro import obs

    _CALLS = obs.counter("repro_widget_calls_total", "Widget calls.")

    def hot_path(batch):
        _CALLS.inc()          # one bump per batch, no-op when disabled
        ...

Typical scrape::

    print(obs.to_prometheus(obs.snapshot()))
"""

from __future__ import annotations

from .context import TraceContext, activate, current, new_trace
from .export import (
    from_json,
    histogram_quantile,
    parse_prometheus,
    slo_summary,
    to_json,
    to_prometheus,
    validate_snapshot,
)
from .registry import (
    ENV_VAR,
    REGISTRY,
    MetricsRegistry,
    Pow2Histogram,
    counters_total,
    enabled,
    merge_snapshots,
    set_enabled,
    state,
)
from .slowops import SLOW_OPS, SlowOpRing
from .spans import RECORDER, SpanRecorder, span

__all__ = [
    "ENV_VAR",
    "REGISTRY",
    "RECORDER",
    "SLOW_OPS",
    "MetricsRegistry",
    "Pow2Histogram",
    "SlowOpRing",
    "SpanRecorder",
    "TraceContext",
    "activate",
    "counter",
    "counters_total",
    "current",
    "enabled",
    "from_json",
    "gauge",
    "histogram",
    "histogram_quantile",
    "merge_snapshots",
    "new_trace",
    "parse_prometheus",
    "set_enabled",
    "slo_summary",
    "snapshot",
    "span",
    "state",
    "to_chrome_trace",
    "to_json",
    "to_prometheus",
    "validate_snapshot",
]


def counter(name: str, help: str = "", labelnames=()):
    """Get or create a counter family on the default registry."""
    return REGISTRY.counter(name, help, labelnames)


def gauge(name: str, help: str = "", labelnames=()):
    """Get or create a gauge family on the default registry."""
    return REGISTRY.gauge(name, help, labelnames)


def histogram(name: str, help: str = "", labelnames=()):
    """Get or create a histogram family on the default registry."""
    return REGISTRY.histogram(name, help, labelnames)


def snapshot() -> dict:
    """Picklable snapshot of the default registry."""
    return REGISTRY.snapshot()


def to_chrome_trace(trace_ids=None) -> dict:
    """The default span ring as Chrome trace-event JSON."""
    return RECORDER.to_chrome_trace(trace_ids)


def _reset_for_tests() -> None:
    """Zero the default registry, span ring and slow-op ring in place
    (test/worker hook).

    In-place: instrumented modules hold references to family objects, so
    the registry dict itself must survive resets.
    """
    REGISTRY.clear()
    RECORDER.clear()
    SLOW_OPS.clear()
