"""Unified observability layer: metrics registry, trace spans, exporters.

Every layer of the stack instruments into one process-wide registry
(``REGISTRY``) and one span ring (``RECORDER``); this package is the only
telemetry surface.  See DESIGN.md §13 for the full metric inventory and the
cost-point contract (batch-granularity recording, ``REPRO_METRICS=off``
kill switch leaves answers bit-identical).

Typical instrumentation site::

    from repro import obs

    _CALLS = obs.counter("repro_widget_calls_total", "Widget calls.")

    def hot_path(batch):
        _CALLS.inc()          # one bump per batch, no-op when disabled
        ...

Typical scrape::

    print(obs.to_prometheus(obs.snapshot()))
"""

from __future__ import annotations

from .export import (
    from_json,
    parse_prometheus,
    to_json,
    to_prometheus,
    validate_snapshot,
)
from .registry import (
    ENV_VAR,
    REGISTRY,
    MetricsRegistry,
    Pow2Histogram,
    counters_total,
    enabled,
    merge_snapshots,
    set_enabled,
    state,
)
from .spans import RECORDER, SpanRecorder, span

__all__ = [
    "ENV_VAR",
    "REGISTRY",
    "RECORDER",
    "MetricsRegistry",
    "Pow2Histogram",
    "SpanRecorder",
    "counter",
    "counters_total",
    "enabled",
    "from_json",
    "gauge",
    "histogram",
    "merge_snapshots",
    "parse_prometheus",
    "set_enabled",
    "snapshot",
    "span",
    "state",
    "to_chrome_trace",
    "to_json",
    "to_prometheus",
    "validate_snapshot",
]


def counter(name: str, help: str = "", labelnames=()):
    """Get or create a counter family on the default registry."""
    return REGISTRY.counter(name, help, labelnames)


def gauge(name: str, help: str = "", labelnames=()):
    """Get or create a gauge family on the default registry."""
    return REGISTRY.gauge(name, help, labelnames)


def histogram(name: str, help: str = "", labelnames=()):
    """Get or create a histogram family on the default registry."""
    return REGISTRY.histogram(name, help, labelnames)


def snapshot() -> dict:
    """Picklable snapshot of the default registry."""
    return REGISTRY.snapshot()


def to_chrome_trace() -> dict:
    """The default span ring as Chrome trace-event JSON."""
    return RECORDER.to_chrome_trace()


def _reset_for_tests() -> None:
    """Zero the default registry and span ring in place (test/worker hook).

    In-place: instrumented modules hold references to family objects, so
    the registry dict itself must survive resets.
    """
    REGISTRY.clear()
    RECORDER.clear()
