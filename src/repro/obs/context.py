"""Request-scoped trace context (DESIGN.md §15).

A :class:`TraceContext` names one request's place in a distributed trace:
its ``trace_id`` groups every span the request touches, its ``span_id`` is
the span new child work should parent under, and ``tenant``/``predicate``
carry the request labels the SLO histograms key on.  The context rides a
:mod:`contextvars` variable, so it follows the request through asyncio
tasks automatically and is *explicitly* re-activated where Python drops it:
executor threads (``run_in_executor`` does not copy context) and worker
processes (the pool ships the context in its inbox messages as a plain
tuple — see :meth:`TraceContext.to_wire`).

Ids are strings unique across the serving topology: a per-process random
prefix plus the pid (fork duplicates the prefix *and* the counter, the pid
tells the twins apart) plus a monotonic counter.  Allocation is two dict
lookups and a format — cheap enough to mint per request, and only ever
minted when recording is enabled.
"""

from __future__ import annotations

import itertools
import os
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator

#: Random per-process prefix; spawn re-imports (fresh prefix), fork
#: inherits it but the pid component below disambiguates the twins.
_PREFIX = uuid.uuid4().hex[:8]
_IDS = itertools.count(1)

#: Cached pid component: ids are minted per request, and ``os.getpid()``
#: per mint is measurable there.  Refreshed after fork so the twins (which
#: share prefix *and* counter position) still mint distinct ids.
_PID_HEX = f"{os.getpid():x}"


def _refresh_pid() -> None:
    global _PID_HEX
    _PID_HEX = f"{os.getpid():x}"


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX in CI
    os.register_at_fork(after_in_child=_refresh_pid)


def _next_id(kind: str) -> str:
    return f"{kind}{_PREFIX}.{_PID_HEX}.{next(_IDS):x}"


def new_trace_id() -> str:
    """A fresh trace id, unique across processes of one serving topology."""
    return _next_id("t")


def new_span_id() -> str:
    """A fresh span id (same uniqueness domain as trace ids)."""
    return _next_id("s")


@dataclass(frozen=True)
class TraceContext:
    """One request's position in a trace: ids plus SLO label values."""

    trace_id: str
    span_id: str
    tenant: str = "default"
    predicate: str | None = None

    def child(self, span_id: str) -> "TraceContext":
        """The same trace, re-rooted under ``span_id`` for nested work."""
        # Direct construction, not dataclasses.replace: child() runs once
        # per span on the dispatch critical path and replace() re-does
        # field introspection every call.
        return TraceContext(self.trace_id, span_id, self.tenant, self.predicate)

    def to_wire(self) -> tuple:
        """Plain-tuple form for queue messages (picklable, no class dep)."""
        return (self.trace_id, self.span_id, self.tenant, self.predicate)

    @classmethod
    def from_wire(cls, wire: tuple) -> "TraceContext":
        trace_id, span_id, tenant, predicate = wire
        return cls(trace_id, span_id, tenant, predicate)


#: The active request context, if any.  ``None`` means untraced work —
#: structural spans still record, they just carry no trace ids.
_CURRENT: ContextVar[TraceContext | None] = ContextVar(
    "repro_trace_context", default=None
)


def current() -> TraceContext | None:
    """The trace context active on this task/thread, or None."""
    return _CURRENT.get()


@contextmanager
def activate(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Make ``ctx`` the active context for the duration of the block."""
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


def new_trace(tenant: str = "default", predicate: str | None = None) -> TraceContext:
    """Mint a root context for one new request."""
    return TraceContext(new_trace_id(), new_span_id(), tenant, predicate)
