"""Bloom-attribute conditional cuckoo filter (§5.2; Algorithms 1 and 2).

Each stored entry is a key fingerprint plus a small per-entry Bloom filter
holding the key's (attribute name, value) pairs — raw values, hashed once by
the Bloom filter itself.  Duplicate rows for a key merge into the key's
single entry, so the occupied slots are exactly those of a regular cuckoo
filter over the distinct keys (the property behind Table 1's ``n_k`` sizing
and the theoretically guaranteed load factor).

The price (§5.2): a Bloom sketch does not preserve attribute co-occurrence.
If one row has attributes (a1, a2) and another (a1', a2'), the conjunctive
predicate ``A1 = a1 AND A2 = a2'`` is a guaranteed false positive.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.ccf.base import CompiledQuery, ConditionalCuckooFilterBase
from repro.ccf.entries import BloomEntry
from repro.ccf.predicates import Predicate
from repro.sketches.bloom import BloomFilter


class BloomCCF(ConditionalCuckooFilterBase):
    """CCF whose attribute sketch is a per-entry Bloom filter."""

    kind = "bloom"

    #: Bloom entries sketch raw (index, value) pairs, not fingerprint vectors.
    _needs_avec = False

    def _insert_hashed(
        self,
        fingerprint: int,
        home: int,
        values: tuple[Any, ...] | None,
        avec: tuple[int, ...] | None,
    ) -> bool:
        """Insert one (key, attribute row); Algorithm 1's build counterpart.

        A row whose key fingerprint already owns an entry in the bucket pair
        merges its attributes into that entry's Bloom sketch — the entry is
        the live payload object, so batch probes see the merge immediately.
        Otherwise a new entry is created and placed with cuckoo kicks.
        Returns False only on a MaxKicks failure (victim stashed, ``failed``
        latched).
        """
        self.num_rows_inserted += 1
        left = home
        right = self.geometry.alt_index(left, fingerprint)
        slots = self._fp_entries_in_pair(left, right, fingerprint)
        if slots:
            slots[0].add_attributes(values)
            return True
        for stashed in self.stash:
            if stashed.fp == fingerprint:
                stashed.add_attributes(values)
                return True
        entry = BloomEntry(
            fingerprint,
            BloomFilter(self.params.bloom_bits, self.params.bloom_hashes, seed=self._bloom_salt),
        )
        entry.add_attributes(values)
        return self._place_in_pair(left, right, entry)

    def _query_hashed(
        self, fingerprint: int, home: int, compiled: CompiledQuery | None
    ) -> bool:
        """Membership test under an optional predicate; Algorithm 1."""
        if self.stash and self._stash_matches(fingerprint, compiled):
            return True
        left = home
        right = self.geometry.alt_index(left, fingerprint)
        return any(
            self._entry_matches(entry, compiled)
            for entry in self._fp_entries_in_pair(left, right, fingerprint)
        )

    def _query_hashed_many(
        self,
        fps: np.ndarray,
        homes: np.ndarray,
        compiled: CompiledQuery | None,
        alts: np.ndarray | None = None,
    ) -> np.ndarray:
        return self._single_pair_query_many(fps, homes, compiled, alts)

    def _build_payload_matcher(self, compiled: CompiledQuery) -> Callable[[Any], bool]:
        """Batch specialisation: hash the predicate once, not once per entry.

        Every per-entry Bloom sketch shares (bloom_bits, bloom_hashes, salt),
        so each admissible (attribute, value) pair probes the same bit
        positions in every entry; precomputing them reduces the per-slot work
        to bit tests.  Answers equal `_entry_matches` per entry.
        """
        probe = BloomFilter(
            self.params.bloom_bits, self.params.bloom_hashes, seed=self._bloom_salt
        )
        constraints = [
            [probe.positions((attr_index, value)) for value in values]
            for attr_index, values, _fps in compiled.constraints
        ]

        def matches(entry: Any) -> bool:
            if not entry.matching:
                return False
            bloom = entry.bloom
            return all(
                any(bloom.contains_positions(positions) for positions in value_positions)
                for value_positions in constraints
            )

        return matches

    def slot_bits(self) -> int:
        """|κ| + per-entry Bloom payload."""
        return self.params.key_bits + self.params.bloom_bits

    def _max_copies_per_pair(self) -> int:
        """Rows merge by fingerprint, so a pair holds one entry per κ."""
        return 1

    def predicate_filter(self, predicate: Predicate) -> "ExtractedKeyFilter":
        """Predicate-only query (Algorithm 2): return a key-only cuckoo filter.

        Entries whose Bloom sketch cannot match the predicate are erased; the
        result answers ``contains(key)`` for the (approximate) set of keys
        with a matching attribute row.
        """
        from repro.ccf.views import ExtractedKeyFilter

        return ExtractedKeyFilter.from_ccf(self, predicate)
