"""Predicate language for conditional set-membership queries.

The paper restricts CCF queries to equality predicates (§1); in-lists arrive
naturally as "any of these equalities" and are what binned range predicates
compile into (§9.1).  Each predicate supports three evaluation modes:

* :meth:`Predicate.matches_row` — exact row-at-a-time evaluation (used by the
  exact semijoin baseline and for ground truth in tests);
* :meth:`Predicate.mask` — vectorised evaluation over numpy columns (used by
  the join engine's scans);
* :meth:`Predicate.constraints` — compilation into per-attribute admissible
  value sets, the form a CCF can check against its attribute sketches.  Range
  predicates cannot be expressed this way and must be binned first
  (:mod:`repro.ccf.binning`); asking raises :class:`UnsupportedPredicateError`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable, Mapping

import numpy as np


class UnsupportedPredicateError(TypeError):
    """Raised when a predicate cannot be compiled to equality constraints."""


class Predicate(ABC):
    """Base class for all predicates."""

    @abstractmethod
    def columns(self) -> frozenset[str]:
        """Return the set of column names the predicate touches."""

    @abstractmethod
    def matches_row(self, row: Mapping[str, Any]) -> bool:
        """Exact evaluation against a single row mapping."""

    @abstractmethod
    def mask(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        """Vectorised evaluation; returns a boolean array over all rows."""

    @abstractmethod
    def constraints(self) -> dict[str, frozenset]:
        """Compile to {column: admissible values}; conjunctive across columns.

        Raises :class:`UnsupportedPredicateError` for predicates (ranges)
        that cannot be enumerated.
        """

    def __and__(self, other: "Predicate") -> "And":
        return And([self, other])


class TruePredicate(Predicate):
    """The empty predicate: matches every row, constrains nothing."""

    def columns(self) -> frozenset[str]:
        return frozenset()

    def matches_row(self, row: Mapping[str, Any]) -> bool:
        return True

    def mask(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        num_rows = len(next(iter(columns.values()))) if columns else 0
        return np.ones(num_rows, dtype=bool)

    def constraints(self) -> dict[str, frozenset]:
        return {}

    def __repr__(self) -> str:
        return "TRUE"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TruePredicate)

    def __hash__(self) -> int:
        return hash("TruePredicate")


#: Singleton convenience instance.
TRUE = TruePredicate()


class Eq(Predicate):
    """Equality predicate ``column = value``."""

    __slots__ = ("column", "value")

    def __init__(self, column: str, value: Any) -> None:
        self.column = column
        self.value = value

    def columns(self) -> frozenset[str]:
        return frozenset((self.column,))

    def matches_row(self, row: Mapping[str, Any]) -> bool:
        return row[self.column] == self.value

    def mask(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        return np.asarray(columns[self.column] == self.value)

    def constraints(self) -> dict[str, frozenset]:
        return {self.column: frozenset((self.value,))}

    def __repr__(self) -> str:
        return f"Eq({self.column!r}, {self.value!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Eq):
            return NotImplemented
        return (self.column, self.value) == (other.column, other.value)

    def __hash__(self) -> int:
        return hash(("Eq", self.column, self.value))


class In(Predicate):
    """In-list predicate ``column IN (values)``."""

    __slots__ = ("column", "values")

    def __init__(self, column: str, values: Iterable[Any]) -> None:
        self.column = column
        self.values = frozenset(values)
        if not self.values:
            raise ValueError("an In predicate needs at least one value")

    def columns(self) -> frozenset[str]:
        return frozenset((self.column,))

    def matches_row(self, row: Mapping[str, Any]) -> bool:
        return row[self.column] in self.values

    def mask(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        return np.isin(columns[self.column], list(self.values))

    def constraints(self) -> dict[str, frozenset]:
        return {self.column: self.values}

    def __repr__(self) -> str:
        return f"In({self.column!r}, {sorted(self.values)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, In):
            return NotImplemented
        return (self.column, self.values) == (other.column, other.values)

    def __hash__(self) -> int:
        return hash(("In", self.column, self.values))


class Range(Predicate):
    """Range predicate ``lo (<|<=) column (<|<=) hi`` over an ordered column.

    Either bound may be None (open).  Ranges are evaluated exactly on scans
    but must be converted to bin in-lists before a CCF can check them (§9.1).
    """

    __slots__ = ("column", "low", "high", "low_inclusive", "high_inclusive")

    def __init__(
        self,
        column: str,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> None:
        if low is None and high is None:
            raise ValueError("a Range predicate needs at least one bound")
        if low is not None and high is not None and low > high:
            raise ValueError(f"empty range: low={low!r} > high={high!r}")
        self.column = column
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive

    def columns(self) -> frozenset[str]:
        return frozenset((self.column,))

    def matches_row(self, row: Mapping[str, Any]) -> bool:
        value = row[self.column]
        if self.low is not None:
            if self.low_inclusive:
                if value < self.low:
                    return False
            elif value <= self.low:
                return False
        if self.high is not None:
            if self.high_inclusive:
                if value > self.high:
                    return False
            elif value >= self.high:
                return False
        return True

    def mask(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        column = columns[self.column]
        mask = np.ones(len(column), dtype=bool)
        if self.low is not None:
            mask &= (column >= self.low) if self.low_inclusive else (column > self.low)
        if self.high is not None:
            mask &= (column <= self.high) if self.high_inclusive else (column < self.high)
        return mask

    def constraints(self) -> dict[str, frozenset]:
        raise UnsupportedPredicateError(
            f"range predicate on {self.column!r} must be binned before a CCF can "
            "evaluate it (see repro.ccf.binning)"
        )

    def __repr__(self) -> str:
        lo = f"{self.low!r} {'<=' if self.low_inclusive else '<'} " if self.low is not None else ""
        hi = f" {'<=' if self.high_inclusive else '<'} {self.high!r}" if self.high is not None else ""
        return f"Range({lo}{self.column}{hi})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Range):
            return NotImplemented
        return (
            self.column,
            self.low,
            self.high,
            self.low_inclusive,
            self.high_inclusive,
        ) == (other.column, other.low, other.high, other.low_inclusive, other.high_inclusive)

    def __hash__(self) -> int:
        return hash(("Range", self.column, self.low, self.high, self.low_inclusive, self.high_inclusive))


class And(Predicate):
    """Conjunction of predicates."""

    __slots__ = ("predicates",)

    def __init__(self, predicates: Iterable[Predicate]) -> None:
        flattened: list[Predicate] = []
        for predicate in predicates:
            if isinstance(predicate, And):
                flattened.extend(predicate.predicates)
            elif isinstance(predicate, TruePredicate):
                continue
            else:
                flattened.append(predicate)
        self.predicates = tuple(flattened)

    def columns(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for predicate in self.predicates:
            result |= predicate.columns()
        return result

    def matches_row(self, row: Mapping[str, Any]) -> bool:
        return all(p.matches_row(row) for p in self.predicates)

    def mask(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        if not self.predicates:
            return TRUE.mask(columns)
        mask = self.predicates[0].mask(columns)
        for predicate in self.predicates[1:]:
            mask = mask & predicate.mask(columns)
        return mask

    def constraints(self) -> dict[str, frozenset]:
        merged: dict[str, frozenset] = {}
        for predicate in self.predicates:
            for column, values in predicate.constraints().items():
                if column in merged:
                    merged[column] = merged[column] & values
                else:
                    merged[column] = values
        return merged

    def __repr__(self) -> str:
        return " & ".join(repr(p) for p in self.predicates) if self.predicates else "TRUE"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, And):
            return NotImplemented
        return self.predicates == other.predicates

    def __hash__(self) -> int:
        return hash(("And", self.predicates))
