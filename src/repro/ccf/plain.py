"""Plain conditional cuckoo filter: the no-chaining baseline (§4.3, §10.4).

A regular cuckoo filter that stores attribute fingerprint vectors and simply
allows duplicate key fingerprints in a bucket pair.  A key's two buckets can
hold at most ``2b`` copies, and — as §4.3 and Figure 4 show — insertion
starts failing at low load factors once keys are duplicated, catastrophically
so under skewed (Zipf) duplication.  This is the "Plain" method of the
JOB-light experiments, which never produced reasonably sized filters.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ccf.base import CompiledQuery, ConditionalCuckooFilterBase
from repro.ccf.entries import VectorEntry


class PlainCCF(ConditionalCuckooFilterBase):
    """CCF with fingerprint vectors, duplicates allowed, no chaining."""

    kind = "plain"

    def _insert_hashed(
        self,
        fingerprint: int,
        home: int,
        values: tuple[Any, ...] | None,
        avec: tuple[int, ...] | None,
    ) -> bool:
        """Insert one row into the key's single bucket pair.

        Returns False on a MaxKicks placement failure (the structure is then
        flagged failed; the displaced victim is stashed so queries stay
        superset-correct).  Exact duplicate (fingerprint, vector) rows are
        deduplicated, matching the failure criterion of the multiset
        experiments: a failure is a *unique* pair that cannot generate a new
        entry.
        """
        if avec is None:
            avec = self.fingerprinter.vector(values)
        self.num_rows_inserted += 1
        left = home
        right = self.geometry.alt_index(left, fingerprint)
        slots = self._fp_entries_in_pair(left, right, fingerprint)
        if any(entry.same_row(fingerprint, avec) for entry in slots):
            return True
        return self._place_in_pair(left, right, VectorEntry(fingerprint, avec))

    def _query_hashed(
        self, fingerprint: int, home: int, compiled: CompiledQuery | None
    ) -> bool:
        """Membership test under an optional predicate (single pair probe)."""
        if self.stash and self._stash_matches(fingerprint, compiled):
            return True
        left = home
        right = self.geometry.alt_index(left, fingerprint)
        return any(
            self._entry_matches(entry, compiled)
            for entry in self._fp_entries_in_pair(left, right, fingerprint)
        )

    def _query_hashed_many(
        self, fps: np.ndarray, homes: np.ndarray, compiled: CompiledQuery | None
    ) -> np.ndarray:
        return self._single_pair_query_many(fps, homes, compiled)

    def slot_bits(self) -> int:
        """|κ| + |α|; no marking or conversion flag is needed."""
        return self.params.key_bits + self.schema.num_attributes * self.params.attr_bits

    def _max_copies_per_pair(self) -> int:
        """Plain filters have no d-cap; a pair holds at most its 2b slots."""
        return 2 * self.params.bucket_size
