"""Plain conditional cuckoo filter: the no-chaining baseline (§4.3, §10.4).

A regular cuckoo filter that stores attribute fingerprint vectors and simply
allows duplicate key fingerprints in a bucket pair.  A key's two buckets can
hold at most ``2b`` copies, and — as §4.3 and Figure 4 show — insertion
starts failing at low load factors once keys are duplicated, catastrophically
so under skewed (Zipf) duplication.  This is the "Plain" method of the
JOB-light experiments, which never produced reasonably sized filters.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ccf.base import CompiledQuery, ConditionalCuckooFilterBase
from repro.ccf.entries import VectorEntry


class PlainCCF(ConditionalCuckooFilterBase):
    """CCF with fingerprint vectors, duplicates allowed, no chaining."""

    kind = "plain"

    #: Plain placement is the one policy that can unlearn a row: every entry
    #: lives in its key's single bucket pair and removing it affects no chain
    #: walk or shared sketch.  This is what makes the plain variant the level
    #: structure of the mutable FilterStore.
    supports_deletion = True

    def _insert_hashed(
        self,
        fingerprint: int,
        home: int,
        values: tuple[Any, ...] | None,
        avec: tuple[int, ...] | None,
    ) -> bool:
        """Insert one row into the key's single bucket pair.

        Returns False on a MaxKicks placement failure (the structure is then
        flagged failed; the displaced victim is stashed so queries stay
        superset-correct).  Exact duplicate (fingerprint, vector) rows are
        deduplicated, matching the failure criterion of the multiset
        experiments: a failure is a *unique* pair that cannot generate a new
        entry.
        """
        if avec is None:
            avec = self.fingerprinter.vector(values)
        self.num_rows_inserted += 1
        left = home
        right = self.geometry.alt_index(left, fingerprint)
        slots = self._fp_entries_in_pair(left, right, fingerprint)
        if any(entry.same_row(fingerprint, avec) for entry in slots):
            return True
        # A stashed copy counts too: without this, re-inserting a stashed row
        # would create a second entry that `delete` cannot fully remove.
        if self.stash and any(entry.same_row(fingerprint, avec) for entry in self.stash):
            return True
        return self._place_in_pair(left, right, VectorEntry(fingerprint, avec))

    def _query_hashed(
        self, fingerprint: int, home: int, compiled: CompiledQuery | None
    ) -> bool:
        """Membership test under an optional predicate (single pair probe)."""
        if self.stash and self._stash_matches(fingerprint, compiled):
            return True
        left = home
        right = self.geometry.alt_index(left, fingerprint)
        return any(
            self._entry_matches(entry, compiled)
            for entry in self._fp_entries_in_pair(left, right, fingerprint)
        )

    def _query_hashed_many(
        self,
        fps: np.ndarray,
        homes: np.ndarray,
        compiled: CompiledQuery | None,
        alts: np.ndarray | None = None,
    ) -> np.ndarray:
        return self._single_pair_query_many(fps, homes, compiled, alts)

    def _row_present(self, fingerprint: int, home: int, avec: tuple[int, ...]) -> bool:
        """Is this exact (fingerprint, vector) row stored (table or stash)?

        The read-before-write primitive of the FilterStore's cross-level
        dedup: inserts skip rows an older level already represents, so the
        whole stack keeps the monolith's one-entry-per-row semantics and a
        single delete removes the row everywhere.
        """
        left = home
        right = self.geometry.alt_index(left, fingerprint)
        if any(
            entry.same_row(fingerprint, avec)
            for entry in self._fp_entries_in_pair(left, right, fingerprint)
        ):
            return True
        return any(entry.same_row(fingerprint, avec) for entry in self.stash)

    def _delete_hashed(self, fingerprint: int, home: int, avec: tuple[int, ...]) -> bool:
        """Remove the entry storing exactly this (fingerprint, vector) row.

        Probes the key's single bucket pair (then the stash) for a
        `same_row` match and frees that one slot.  Exact-duplicate rows were
        deduplicated at insert time, so one removal forgets the row entirely.
        """
        left = home
        right = self.geometry.alt_index(left, fingerprint)
        for bucket in (left,) if right == left else (left, right):
            row = self.buckets.fps[bucket].tolist()
            for slot, fp in enumerate(row):
                if fp != fingerprint:
                    continue
                if tuple(self._avecs[bucket, slot].tolist()) == avec:
                    self._clear_entry(bucket, slot)
                    self.num_rows_inserted -= 1
                    return True
        for index, entry in enumerate(self.stash):
            if entry.same_row(fingerprint, avec):
                del self.stash[index]
                self.num_rows_inserted -= 1
                return True
        return False

    def slot_bits(self) -> int:
        """|κ| + |α|; no marking or conversion flag is needed."""
        return self.params.key_bits + self.schema.num_attributes * self.params.attr_bits

    def _max_copies_per_pair(self) -> int:
        """Plain filters have no d-cap; a pair holds at most its 2b slots."""
        return 2 * self.params.bucket_size
