"""Parameter bundles for conditional cuckoo filters (§8, §10.4).

The paper's evaluation sweeps key-fingerprint size, attribute-fingerprint
size, per-entry Bloom sketch size and hash count; ``SMALL_PARAMS`` and
``LARGE_PARAMS`` capture the two named configurations of §10.5:

* large: 8-bit attributes, 12-bit key fingerprints, large Bloom sketches with
  4 hash functions;
* small: 4-bit attributes, 7-bit key fingerprints, 2 Bloom hash functions —
  "reducing filter size by more than half".

``max_dupes`` is the paper's ``d`` (always 3 in the JOB-light experiments)
and ``max_chain`` is ``Lmax`` (None = uncapped, the multiset-experiment
setting, with deterministic cycle resolution extending the walk).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CCFParams:
    """Immutable parameter bundle shared by all CCF variants."""

    key_bits: int = 12
    attr_bits: int = 8
    bucket_size: int = 6
    max_dupes: int = 3
    max_chain: int | None = None
    max_kicks: int = 500
    bloom_bits: int = 16
    bloom_hashes: int = 2
    conversion_hashes: int | None = None
    small_value_optimization: bool = True
    seed: int = 0
    #: Width-adaptive slot storage (DESIGN.md §9): fingerprint and attribute
    #: columns live in the minimal unsigned dtype for their declared widths.
    #: False keeps the legacy int64 columns (the packed-parity reference
    #: mode); membership answers are bit-identical either way.
    packed: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.key_bits <= 62:
            raise ValueError("key_bits must be in [1, 62]")
        if not 1 <= self.attr_bits <= 62:
            raise ValueError("attr_bits must be in [1, 62]")
        if self.bucket_size < 1:
            raise ValueError("bucket_size must be at least 1")
        if self.max_dupes < 1:
            raise ValueError("max_dupes (d) must be at least 1")
        if self.max_chain is not None and self.max_chain < 1:
            raise ValueError("max_chain (Lmax) must be at least 1 or None")
        if self.max_kicks < 1:
            raise ValueError("max_kicks must be at least 1")
        if self.bloom_bits < 1:
            raise ValueError("bloom_bits must be at least 1")
        if self.bloom_hashes < 1:
            raise ValueError("bloom_hashes must be at least 1")
        if self.max_dupes > 2 * self.bucket_size:
            raise ValueError("max_dupes cannot exceed the 2b slots of a bucket pair")

    def with_seed(self, seed: int) -> "CCFParams":
        """Return a copy with a different seed (for salted repeat runs)."""
        return replace(self, seed=seed)

    def replace(self, **changes: object) -> "CCFParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


#: §10.5 "small" configuration: 4-bit attributes, 7-bit fingerprints, 2 hashes.
SMALL_PARAMS = CCFParams(key_bits=7, attr_bits=4, bloom_bits=8, bloom_hashes=2)

#: §10.5 "large" configuration: 8-bit attributes, 12-bit fingerprints, 4 hashes.
LARGE_PARAMS = CCFParams(key_bits=12, attr_bits=8, bloom_bits=24, bloom_hashes=4)
