"""False-positive-rate estimators for conditional cuckoo filters (§7).

Unlike a plain cuckoo filter, a CCF's FPR is not a single constant: a query
can go wrong on the key fingerprint, on the attribute sketch, or both, and
the rates depend on the stored data and the query.  This module implements
the paper's bounds:

* Eq. (4) — key-only queries: ``FPR_key ≤ E[D] · 2^-|κ|`` with ``D`` the
  occupied (distinct-fingerprint) entries in the probed bucket pair;
* Eq. (6) — Bloom attribute sketches: ``ρ_k^v`` where ``ρ_k`` is the
  per-entry Bloom FPR and ``v`` the number of never-inserted values probed;
* Eq. (7) — fingerprint vectors with chaining:
  ``p ≤ d·Lmax · E[2^{-|α|·Ṽ}]`` with ``Ṽ`` the count of predicate
  attributes that mismatch the stored row.

:func:`estimate_query_fpr` instruments a live filter to produce the same
decomposition Figure 2 plots (key-caused vs attribute-caused vs overall).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.ccf.base import CompiledQuery, ConditionalCuckooFilterBase
from repro.ccf.entries import BloomEntry, GroupSlot, VectorEntry
from repro.ccf.predicates import Predicate


def key_only_fpr_bound(mean_occupied_pair_entries: float, key_bits: int) -> float:
    """Eq. (4): expected occupied pair entries times ``2^-|κ|``."""
    if mean_occupied_pair_entries < 0:
        raise ValueError("occupied entry count must be non-negative")
    return min(1.0, mean_occupied_pair_entries * 2.0**-key_bits)


def vector_attr_fpr(attr_bits: int, num_mismatched: int) -> float:
    """Spurious-match probability of one vector entry: ``2^{-|α|·Ṽ}``."""
    if num_mismatched < 0:
        raise ValueError("mismatch count must be non-negative")
    return 2.0 ** (-attr_bits * num_mismatched)


def chained_attr_fpr_bound(
    attr_bits: int, mismatch_counts: list[int], max_dupes: int, max_chain: int | None
) -> float:
    """Eq. (7): sum of per-entry spurious-match probabilities, capped at the
    ``d·Lmax`` entries a chained query can inspect."""
    cap = len(mismatch_counts)
    if max_chain is not None:
        cap = min(cap, max_dupes * max_chain)
    total = sum(vector_attr_fpr(attr_bits, v) for v in sorted(mismatch_counts)[:cap])
    return min(1.0, total)


def bloom_attr_fpr(fill_ratio: float, num_hashes: int, num_absent_values: int) -> float:
    """Eq. (6): ``ρ_k^v`` with ``ρ_k = fill^h`` for the realised bit pattern."""
    if not 0.0 <= fill_ratio <= 1.0:
        raise ValueError("fill_ratio must be in [0, 1]")
    if num_absent_values < 0:
        raise ValueError("absent value count must be non-negative")
    if num_absent_values == 0:
        return 1.0
    return (fill_ratio**num_hashes) ** num_absent_values


def bloom_textbook_fpr(num_bits: int, num_hashes: int, num_items: int) -> float:
    """§7.2's standard formula ``(1 - e^{-hn/s})^h`` (an underestimate for
    small filters, per Bose et al.)."""
    if num_bits < 1 or num_hashes < 1 or num_items < 0:
        raise ValueError("invalid Bloom parameters")
    return (1.0 - math.exp(-num_hashes * num_items / num_bits)) ** num_hashes


@dataclass
class FPREstimate:
    """Decomposed FPR estimate for one (key, predicate) query (Figure 2)."""

    key_part: float
    attr_part: float

    @property
    def overall(self) -> float:
        """Union bound over the two causes."""
        return min(1.0, self.key_part + self.attr_part)


def estimate_query_fpr(
    ccf: ConditionalCuckooFilterBase,
    key: object,
    predicate: Predicate | CompiledQuery | None,
    key_in_data: bool,
) -> FPREstimate:
    """Estimate the FPR of one query against a live filter (§7.2).

    ``key_in_data`` selects the decomposition case: if the key is absent the
    bound is the key-fingerprint collision rate over the probed entries
    (times the chance the colliding entry also passes the predicate); if the
    key is present (but no row matches), false positives can only come from
    the attribute sketches of the key's own entries.
    """
    compiled = ccf._resolve_compiled(predicate)
    fingerprint = ccf.geometry.fingerprint_of(key)
    home = ccf.geometry.home_index(key)
    right = ccf.geometry.alt_index(home, fingerprint)

    if not key_in_data:
        occupied = ccf.buckets.count(home)
        if right != home:
            occupied += ccf.buckets.count(right)
        key_part = occupied * 2.0**-ccf.params.key_bits
        return FPREstimate(key_part=min(1.0, key_part), attr_part=0.0)

    # Key present: p(k ∈ H) = 1; accumulate attribute-sketch match odds over
    # the entries a query would probe (the key's fingerprint slots, along the
    # chain for chained filters).
    attr_total = 0.0
    limit = ccf._walk_limit()
    walked = 0
    d = ccf.params.max_dupes
    for left, pair_right in ccf.geometry.pair_walk(home, fingerprint):
        if walked >= limit:
            break
        walked += 1
        slots = ccf._fp_entries_in_pair(left, pair_right, fingerprint)
        for entry in slots:
            attr_total += _entry_match_probability(ccf, entry, compiled)
        if ccf.kind == "chained" and len(slots) == d:
            continue
        break
    return FPREstimate(key_part=0.0, attr_part=min(1.0, attr_total))


def _entry_match_probability(
    ccf: ConditionalCuckooFilterBase, entry: Any, compiled: CompiledQuery | None
) -> float:
    """Probability that one entry's sketch spuriously admits the predicate."""
    if compiled is None:
        return 1.0
    if isinstance(entry, VectorEntry):
        probability = 1.0
        for attr_index, _values, fps in compiled.constraints:
            if entry.avec[attr_index] in fps:
                continue
            # One constrained attribute mismatching contributes a 2^-|α|
            # chance per admissible fingerprint (union bound over in-lists).
            probability *= min(1.0, len(fps) * 2.0**-ccf.params.attr_bits)
        return probability
    if isinstance(entry, (BloomEntry, GroupSlot)):
        bloom = entry.bloom if isinstance(entry, BloomEntry) else entry.group.bloom
        per_probe = bloom.fill_ratio() ** bloom.num_hashes
        probability = 1.0
        for _attr_index, values, fps in compiled.constraints:
            num_candidates = len(values) if isinstance(entry, BloomEntry) else len(fps)
            probability *= min(1.0, num_candidates * per_probe)
        return probability
    raise TypeError(f"unknown entry type {type(entry).__name__}")
