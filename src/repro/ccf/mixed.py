"""Mixed conditional cuckoo filter: Bloom conversion of duplicates (§6.1).

Attribute rows start as fingerprint vectors.  When a bucket pair already
holds ``d`` vector entries for a key fingerprint and another distinct row
arrives, the ``d`` vectors (plus the new one) are converted into a single
Bloom filter occupying the same ``d`` slots — Algorithm 3.  Conversion can
never fail, so the Mixed CCF absorbs unlimited duplicates without chaining,
at the cost of double hashing (value → fingerprint → Bloom bits) and lost
co-occurrence information for converted keys.

Bit accounting follows §6.1 exactly: the converted group stores one key
fingerprint copy and a slot count per bucket, leaving
``d·s − 2(|κ| + ⌈log2 d⌉)`` bits of Bloom payload where ``s`` is the single
entry size; the Bloom hash count follows Eq. (2)/(3),
``numHash ≈ (|α|/#α) · (d/(d+1)) · ln 2``.
"""

from __future__ import annotations

import math
from typing import Any, Callable

import numpy as np

from repro.ccf.base import CompiledQuery, ConditionalCuckooFilterBase
from repro.ccf.entries import ConvertedGroup, GroupSlot, VectorEntry
from repro.ccf.params import CCFParams
from repro.ccf.predicates import Predicate
from repro.sketches.bloom import BloomFilter


def conversion_num_hashes(attr_bits: int, num_attributes: int, max_dupes: int) -> int:
    """Eq. (3): ``(|α|/#α) · (d/(d+1)) · ln 2``, at least one hash.

    ``|α|`` is the whole vector (``num_attributes * attr_bits`` bits), so the
    per-attribute ratio reduces to ``attr_bits``.
    """
    del num_attributes  # the ratio |α|/#α is attr_bits by construction
    optimal = attr_bits * (max_dupes / (max_dupes + 1)) * math.log(2)
    return max(1, round(optimal))


def conversion_total_bits(slot_bits: int, key_bits: int, max_dupes: int) -> int:
    """§6.1: Bloom payload bits across the group's ``d`` slots.

    ``d·s`` raw bits minus two (fingerprint, slot-count) headers — one per
    bucket of the pair: ``d·s − 2(|κ| + ⌈log2 d⌉)``.  Clamped to at least
    one bit so degenerate parameterisations stay functional.
    """
    header = key_bits + max(1, math.ceil(math.log2(max_dupes)) if max_dupes > 1 else 1)
    return max(1, max_dupes * slot_bits - 2 * header)


class MixedCCF(ConditionalCuckooFilterBase):
    """CCF with fingerprint vectors that convert to Bloom filters (§6.1)."""

    kind = "mixed"

    def __init__(self, schema: Any, num_buckets: int, params: CCFParams) -> None:
        super().__init__(schema, num_buckets, params)
        self.num_conversions = 0
        self.num_absorbed = 0

    # -- conversion sizing -------------------------------------------------

    def _conversion_bits(self) -> int:
        return conversion_total_bits(
            self.slot_bits(), self.params.key_bits, self.params.max_dupes
        )

    def _conversion_hashes(self) -> int:
        if self.params.conversion_hashes is not None:
            return self.params.conversion_hashes
        return conversion_num_hashes(
            self.params.attr_bits, self.schema.num_attributes, self.params.max_dupes
        )

    # -- operations ----------------------------------------------------------

    def _insert_hashed(
        self,
        fingerprint: int,
        home: int,
        values: tuple[Any, ...] | None,
        avec: tuple[int, ...] | None,
    ) -> bool:
        """Insert one (key, attribute row), converting on duplicate overflow.

        Returns False only on a MaxKicks placement failure for a *new*
        (pre-conversion) entry; merges into an existing converted group and
        conversions themselves always succeed.
        """
        if avec is None:
            avec = self.fingerprinter.vector(values)
        self.num_rows_inserted += 1
        left = home
        right = self.geometry.alt_index(left, fingerprint)
        slots = self._fp_entries_in_pair(left, right, fingerprint)
        for entry in slots:
            if isinstance(entry, GroupSlot):
                entry.group.add_vector(avec)
                self.num_absorbed += 1
                return True
        if any(entry.same_row(fingerprint, avec) for entry in slots):
            return True
        if len(slots) < self.params.max_dupes:
            return self._place_in_pair(left, right, VectorEntry(fingerprint, avec))
        self._convert(left, right, fingerprint, avec)
        return True

    def _convert(self, left: int, right: int, fingerprint: int, new_avec: tuple[int, ...]) -> None:
        """Algorithm 3: fold the pair's d vectors plus ``new_avec`` into a Bloom group."""
        bloom = BloomFilter(self._conversion_bits(), self._conversion_hashes(), seed=self._bloom_salt)
        group = ConvertedGroup(fingerprint, bloom, self.params.max_dupes)
        converted = 0
        size = self.buckets.bucket_size
        for bucket in (left, right) if left != right else (left,):
            row = self.buckets.fps[bucket].tolist()
            for slot, fp in enumerate(row):
                if fp != fingerprint:
                    continue
                if self.buckets.payloads[bucket * size + slot] is not None:
                    continue
                group.add_vector(tuple(self._avecs[bucket, slot].tolist()))
                self._store_entry(bucket, slot, GroupSlot(group))
                converted += 1
        if converted != self.params.max_dupes:
            raise AssertionError(
                f"conversion expected d={self.params.max_dupes} vector entries, "
                f"found {converted}"
            )
        group.add_vector(new_avec)
        self.num_conversions += 1

    def _query_hashed(
        self, fingerprint: int, home: int, compiled: CompiledQuery | None
    ) -> bool:
        """Membership test under an optional predicate (single pair probe)."""
        if self.stash and self._stash_matches(fingerprint, compiled):
            return True
        left = home
        right = self.geometry.alt_index(left, fingerprint)
        return any(
            self._entry_matches(entry, compiled)
            for entry in self._fp_entries_in_pair(left, right, fingerprint)
        )

    def _query_hashed_many(
        self,
        fps: np.ndarray,
        homes: np.ndarray,
        compiled: CompiledQuery | None,
        alts: np.ndarray | None = None,
    ) -> np.ndarray:
        return self._single_pair_query_many(fps, homes, compiled, alts)

    def _build_payload_matcher(self, compiled: CompiledQuery) -> Callable[[Any], bool]:
        """Batch specialisation: hash converted-group probes once per predicate.

        All conversion Blooms share (bits, hashes, salt), so each admissible
        (attribute, fingerprint) component probes the same positions in every
        group; the matcher reduces a group slot to precomputed bit tests.
        Answers equal `_entry_matches` per entry.
        """
        probe = BloomFilter(
            self._conversion_bits(), self._conversion_hashes(), seed=self._bloom_salt
        )
        constraints = [
            [probe.positions((attr_index, fp)) for fp in fps]
            for attr_index, _values, fps in compiled.constraints
        ]

        def matches(entry: Any) -> bool:
            if not entry.matching:
                return False
            bloom = entry.group.bloom
            return all(
                any(bloom.contains_positions(positions) for positions in fp_positions)
                for fp_positions in constraints
            )

        return matches

    def slot_bits(self) -> int:
        """|κ| + |α| + 1 bit flagging vector vs converted-Bloom content."""
        return (
            self.params.key_bits
            + self.schema.num_attributes * self.params.attr_bits
            + 1
        )

    def check_invariants(self) -> None:
        """Base d-cap plus: vectors and groups never coexist for one (pair, κ)."""
        super().check_invariants()
        shapes: dict[tuple[int, int], set[str]] = {}
        for _bucket, _slot, entry in self.iter_entries():
            alt = self.geometry.alt_index(_bucket, entry.fp)
            pair_id = _bucket if _bucket < alt else alt
            shape = "group" if isinstance(entry, GroupSlot) else "vector"
            shapes.setdefault((pair_id, entry.fp), set()).add(shape)
        for (pair_id, fingerprint), kinds in shapes.items():
            if len(kinds) > 1:
                raise AssertionError(
                    f"pair {pair_id} mixes vector and group entries for "
                    f"fingerprint {fingerprint:#x}"
                )

    def predicate_filter(self, predicate: Predicate) -> "ExtractedKeyFilter":
        """Predicate-only query: erase non-matching entries (safe — no chains)."""
        from repro.ccf.views import ExtractedKeyFilter

        return ExtractedKeyFilter.from_ccf(self, predicate)
