"""Sizing rules for conditional cuckoo filters (§8, Table 1, Figures 3-5).

Given the distribution of distinct attribute vectors per key (the paper's
``A = r_X``), each variant's occupied-entry count is predictable:

* Bloom CCF: one entry per distinct key — ``n_k``;
* Mixed (Bloom conversion): ``Σ min(r_k, d)`` (a converted group occupies
  exactly ``d`` slots);
* Chained: ``Σ min(r_k, d·Lmax)`` (``r_k`` when Lmax is uncapped);
* Plain: ``Σ min(r_k, 2b)`` (the pair's physical limit — reaching it is
  exactly the failure mode of Figure 4).

Note Table 1 in the paper prints ``E max{A, d}``; the derivation in §8's text
uses ``min`` ("Bloom filter conversion will allocate a maximum of
max{d, r_k} entries ... bounded by n_k E min{A, d}") and ``min`` is what the
structure actually does, so we implement ``min`` — Figure 3's bench then
validates the prediction against realised occupancy.

Load-factor targets come from the paper's Figure 4 empirics (b=4 → ~75%,
b=6 → ~87%) and size the table as ``m·b ≈ E[Z'] / β`` with ``b ≈ 2d``.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Mapping

from repro.cuckoo.buckets import next_power_of_two

#: Empirical attainable load factors by bucket size for duplicate-heavy data
#: (paper Figure 4: "b = 4 achieves ~75% regardless of duplicates; b = 6
#: achieves ~87%").  Keys are bucket sizes; values the safe target load.
LOAD_FACTOR_TARGETS: dict[int, float] = {2: 0.55, 3: 0.65, 4: 0.75, 5: 0.82, 6: 0.85, 8: 0.88}


def load_factor_target(bucket_size: int) -> float:
    """Return a safe target load factor for ``bucket_size`` entries/bucket."""
    if bucket_size in LOAD_FACTOR_TARGETS:
        return LOAD_FACTOR_TARGETS[bucket_size]
    if bucket_size > max(LOAD_FACTOR_TARGETS):
        return LOAD_FACTOR_TARGETS[max(LOAD_FACTOR_TARGETS)]
    return min(LOAD_FACTOR_TARGETS.values())


def recommended_bucket_size(max_dupes: int) -> int:
    """§8's rule of thumb: ``b ≈ 2d`` so a pair holds at least 4 keys."""
    return 2 * max_dupes


def distinct_vector_counts(rows: Iterable[tuple[object, tuple]]) -> Counter:
    """Count distinct attribute vectors per key over (key, attrs) rows."""
    per_key: dict[object, set] = {}
    for key, attrs in rows:
        per_key.setdefault(key, set()).add(tuple(attrs))
    return Counter({key: len(vectors) for key, vectors in per_key.items()})


def predicted_entries(
    kind: str,
    dupe_counts: Mapping[object, int] | Iterable[int],
    max_dupes: int,
    max_chain: int | None = None,
    bucket_size: int | None = None,
) -> int:
    """Predict occupied entries Z' for a CCF variant (Table 1, corrected).

    ``dupe_counts`` is the per-key count of distinct attribute vectors
    (``r_k``), as a mapping or a bare iterable of counts.
    """
    counts = dupe_counts.values() if isinstance(dupe_counts, Mapping) else dupe_counts
    counts = list(counts)
    if kind == "bloom":
        return len(counts)
    if kind == "mixed":
        return sum(min(r, max_dupes) for r in counts)
    if kind == "chained":
        if max_chain is None:
            return sum(counts)
        return sum(min(r, max_dupes * max_chain) for r in counts)
    if kind == "plain":
        if bucket_size is None:
            raise ValueError("plain sizing needs bucket_size (pair limit is 2b)")
        return sum(min(r, 2 * bucket_size) for r in counts)
    raise ValueError(f"unknown CCF kind {kind!r}")


def recommended_num_buckets(
    predicted: int, bucket_size: int, target_load: float | None = None
) -> int:
    """Size the table: smallest power-of-two m with m·b·β ≥ predicted entries."""
    if predicted < 0:
        raise ValueError("predicted entry count must be non-negative")
    beta = load_factor_target(bucket_size) if target_load is None else target_load
    if not 0.0 < beta <= 1.0:
        raise ValueError("target load must be in (0, 1]")
    slots_needed = max(1.0, predicted / beta)
    return max(2, next_power_of_two(math.ceil(slots_needed / bucket_size)))


def bit_efficiency(size_in_bits: int, num_keys: int, fpr: float) -> float:
    """Eq. (8): sketch bits over the information-theoretic minimum.

    ``Efficiency = size / (n · log2(1/ρ))``; 1.0 is optimal for sets, a Bloom
    filter sits at ~1.44, and the paper's optimised chained filter at ~1.93
    on all-duplicate multisets.
    """
    if num_keys < 1:
        raise ValueError("num_keys must be positive")
    if not 0.0 < fpr < 1.0:
        raise ValueError("fpr must be in (0, 1)")
    return size_in_bits / (num_keys * math.log2(1.0 / fpr))


def cuckoo_bits_per_item(fpr: float, load_factor: float = 0.95, semisort: bool = False) -> float:
    """§4.2's space model: ``(log2(1/ρ) + 3)/β``, or ``+2`` with semi-sorting."""
    if not 0.0 < fpr < 1.0:
        raise ValueError("fpr must be in (0, 1)")
    if not 0.0 < load_factor <= 1.0:
        raise ValueError("load_factor must be in (0, 1]")
    overhead = 2.0 if semisort else 3.0
    return (math.log2(1.0 / fpr) + overhead) / load_factor


def bloom_bits_per_item(fpr: float) -> float:
    """Bloom reference: ``1.44 · log2(1/ρ)`` bits per item (§4.2)."""
    if not 0.0 < fpr < 1.0:
        raise ValueError("fpr must be in (0, 1)")
    return 1.44 * math.log2(1.0 / fpr)
