"""Dyadic-interval range support for CCFs (§9.1, second construction).

The paper's experiments use simple binning; §9.1 also sketches the standard
dyadic alternative: represent a value as the ~log2(domain) aligned intervals
containing it, insert one row per interval, and convert a range query into
the ≤ 2·log2(domain) canonical intervals covering it.  A value matches a
range iff its interval set intersects the cover — exactly, with no binning
error down to unit granularity.

:class:`DyadicRangeCCF` wraps any CCF variant: the designated range column is
replaced by an interval column, every inserted row fans out into η interval
rows, and range predicates are rewritten into interval in-lists at query
time.  The cost is η× the entries on the range column — the trade-off the
ablation benchmark quantifies against binning.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.ccf.attributes import AttributeSchema
from repro.ccf.base import ConditionalCuckooFilterBase, validate_attr_columns
from repro.ccf.binning import DyadicDecomposer
from repro.ccf.factory import make_ccf
from repro.ccf.params import CCFParams
from repro.ccf.predicates import And, Eq, In, Predicate, Range, TruePredicate
from repro.ccf.sizing import recommended_num_buckets
from repro.hashing.mixers import as_native_list


class DyadicRangeCCF:
    """A CCF supporting exact-granularity range predicates on one column."""

    def __init__(
        self,
        kind: str,
        schema: AttributeSchema,
        range_column: str,
        domain: tuple[int, int],
        num_buckets: int,
        params: CCFParams,
    ) -> None:
        if range_column not in schema:
            raise KeyError(f"range column {range_column!r} not in schema {schema.names}")
        self.schema = schema
        self.range_column = range_column
        self.interval_column = f"{range_column}_ivl"
        self.decomposer = DyadicDecomposer(*domain)
        self._range_index = schema.index_of(range_column)
        inner_names = tuple(
            self.interval_column if name == range_column else name for name in schema.names
        )
        self.inner = make_ccf(kind, AttributeSchema(inner_names), num_buckets, params)
        self.num_rows_inserted = 0

    @classmethod
    def build(
        cls,
        kind: str,
        schema: AttributeSchema,
        range_column: str,
        domain: tuple[int, int],
        rows: Sequence[tuple[object, Sequence[Any]]],
        params: CCFParams,
        target_load: float | None = None,
    ) -> "DyadicRangeCCF":
        """Size for the η-fold fan-out and insert every row."""
        probe = cls(kind, schema, range_column, domain, 2, params)
        fan_out = probe.decomposer.num_levels
        # Each input row becomes η interval rows; conservative upper bound
        # (Bloom merges per key; chained/mixed store them individually).
        predicted = max(1, len(rows) * (fan_out if kind != "bloom" else 1))
        num_buckets = recommended_num_buckets(predicted, params.bucket_size, target_load)
        for _ in range(4):
            ccf = cls(kind, schema, range_column, domain, num_buckets, params)
            for key, attrs in rows:
                ccf.insert(key, attrs)
            if not ccf.inner.failed:
                return ccf
            num_buckets *= 2
        raise RuntimeError("dyadic range CCF overflowed repeatedly during build")

    @property
    def num_levels(self) -> int:
        """η: interval rows inserted per input row."""
        return self.decomposer.num_levels

    def insert(self, key: object, attrs: Mapping[str, Any] | Sequence[Any]) -> bool:
        """Insert one row as η interval rows (one per dyadic level)."""
        values = list(self.schema.row_values(attrs))
        self.num_rows_inserted += 1
        fingerprint = self.inner.geometry.fingerprint_of(key)
        home = self.inner.geometry.home_index(key)
        return self._insert_levels(fingerprint, home, values)

    def _insert_levels(self, fingerprint: int, home: int, values: list[Any]) -> bool:
        """Fan one row out into its η interval rows (key hashed once)."""
        range_value = values[self._range_index]
        success = True
        for interval in self.decomposer.intervals_for_value(range_value):
            values[self._range_index] = interval
            success = (
                self.inner._insert_hashed(fingerprint, home, tuple(values), None)
                and success
            )
        return success

    def insert_many(
        self,
        keys: Sequence[object] | np.ndarray,
        attr_columns: Sequence[Sequence[Any] | np.ndarray],
    ) -> np.ndarray:
        """Batch `insert`: key hashing vectorised, η-fan-out per row.

        Rows are fanned out in the same row-major order as a scalar loop, so
        the inner filter's state is bit-identical to one.  (Interval ids are
        tuples, so attribute fingerprinting stays element-wise.)
        """
        columns = list(attr_columns)
        num_rows = len(keys)
        validate_attr_columns(columns, len(self.schema.names), num_rows)
        native = [as_native_list(column) for column in columns]
        fps = self.inner.geometry.fingerprints_of_many(keys).tolist()
        homes = self.inner.geometry.home_indices_of_many(keys).tolist()
        out = np.empty(num_rows, dtype=bool)
        for i, (fingerprint, home) in enumerate(zip(fps, homes)):
            self.num_rows_inserted += 1
            values = [column[i] for column in native]
            out[i] = self._insert_levels(fingerprint, home, values)
        return out

    def _rewrite(self, predicate: Predicate) -> "Predicate | None":
        """Rewrite onto the interval column; None means provably empty."""
        if isinstance(predicate, TruePredicate):
            return predicate
        if isinstance(predicate, And):
            rewritten = [self._rewrite(p) for p in predicate.predicates]
            if any(part is None for part in rewritten):
                return None
            return And(rewritten)
        if isinstance(predicate, Range) and predicate.column == self.range_column:
            low = self.decomposer.low if predicate.low is None else predicate.low
            high = self.decomposer.high if predicate.high is None else predicate.high
            if not predicate.low_inclusive and predicate.low is not None:
                low = predicate.low + 1
            if not predicate.high_inclusive and predicate.high is not None:
                high = predicate.high - 1
            cover = self.decomposer.cover(low, high)
            if not cover:
                return None
            return In(self.interval_column, cover)
        if isinstance(predicate, Eq) and predicate.column == self.range_column:
            if not self.decomposer.low <= predicate.value <= self.decomposer.high:
                return None
            offset = predicate.value - self.decomposer.low
            return Eq(self.interval_column, (0, offset))
        return predicate

    def query(self, key: object, predicate: Predicate | None = None) -> bool:
        """Membership test; range predicates on the range column are exact.

        A range that misses the domain entirely is provably empty and
        answers False without probing (no false-negative risk: no stored row
        can satisfy it).
        """
        if predicate is None:
            return self.inner.contains_key(key)
        rewritten = self._rewrite(predicate)
        if rewritten is None:
            return False
        return self.inner.query(key, rewritten)

    def query_many(
        self, keys: Sequence[object] | np.ndarray, predicate: Predicate | None = None
    ) -> np.ndarray:
        """Batch `query`: the predicate is rewritten once for the batch."""
        if predicate is None:
            return self.inner.contains_key_many(keys)
        rewritten = self._rewrite(predicate)
        if rewritten is None:
            return np.zeros(len(keys), dtype=bool)
        return self.inner.query_many(keys, rewritten)

    def contains_key(self, key: object) -> bool:
        """Key-only membership."""
        return self.inner.contains_key(key)

    def contains_key_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch key-only membership."""
        return self.inner.contains_key_many(keys)

    def __contains__(self, key: object) -> bool:
        return self.contains_key(key)

    def __len__(self) -> int:
        """Number of input rows inserted (before the η-fold interval fan-out)."""
        return self.num_rows_inserted

    def size_in_bits(self) -> int:
        """Total sketch size (the η-fold fan-out is included by construction)."""
        return self.inner.size_in_bits()

    def load_factor(self) -> float:
        """Fraction of the inner table's slots occupied."""
        return self.inner.load_factor()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DyadicRangeCCF({self.inner.kind}, levels={self.num_levels}, "
            f"entries={self.inner.num_entries}, load={self.load_factor():.3f})"
        )
