"""Range-predicate support: value binning and dyadic decomposition (§9.1).

The paper's experiments use the simple scheme: bin the column's distinct
values into a small number of roughly equal-size intervals (16 bins for
``title.production_year``'s 132 values), store the *bin id* as the CCF
attribute, and rewrite a range predicate into an in-list of overlapping
bins.  Binning can only widen a predicate, so the no-false-negative
guarantee survives; the widening error is what Figure 7 isolates.

The alternative §9.1 sketches — dyadic interval decomposition — is also
implemented (:class:`DyadicDecomposer`): each value inserts η aligned
intervals of exponentially growing size, and a range query decomposes into
O(log range) canonical intervals.  It is exact down to its unit granularity
at the cost of η entries per row; the ablation benchmark compares the two.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence

from repro.ccf.predicates import In, Predicate, Range


class EquiSizeBinner:
    """Maps a column's distinct values onto ``num_bins`` contiguous bins."""

    def __init__(self, boundaries: Sequence, num_values: int) -> None:
        # ``boundaries[i]`` is the largest distinct value in bin i.
        self._boundaries = list(boundaries)
        self.num_values = num_values

    @classmethod
    def fit(cls, values: Iterable, num_bins: int) -> "EquiSizeBinner":
        """Fit bins over the distinct values, roughly equal in value count.

        Mirrors §10.3: "mapped the 132 values to 16 roughly equal-sized
        intervals" — equal in the number of distinct values per interval.
        """
        if num_bins < 1:
            raise ValueError("num_bins must be at least 1")
        distinct = sorted(set(values))
        if not distinct:
            raise ValueError("cannot fit a binner on an empty value set")
        num_bins = min(num_bins, len(distinct))
        boundaries = []
        for bin_id in range(num_bins):
            # Last distinct value of each equal split.
            end = ((bin_id + 1) * len(distinct)) // num_bins - 1
            boundaries.append(distinct[end])
        return cls(boundaries, len(distinct))

    @property
    def num_bins(self) -> int:
        """Number of bins."""
        return len(self._boundaries)

    def bin_of(self, value) -> int:
        """Return the bin id for ``value`` (values past the ends clamp)."""
        index = bisect.bisect_left(self._boundaries, value)
        return min(index, self.num_bins - 1)

    def bins_for_range(self, predicate: Range) -> list[int]:
        """Return the (sorted) bin ids overlapping a range predicate.

        Exclusive bounds are widened to their bin — binning cannot represent
        strict inequalities exactly, and widening is the error direction that
        preserves no-false-negatives.
        """
        low_bin = 0 if predicate.low is None else self.bin_of(predicate.low)
        high_bin = self.num_bins - 1 if predicate.high is None else self.bin_of(predicate.high)
        return list(range(low_bin, high_bin + 1))

    def bin_predicate(self, predicate: Range, bin_column: str) -> In:
        """Rewrite a range predicate as an in-list over the bin column."""
        return In(bin_column, self.bins_for_range(predicate))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EquiSizeBinner(num_bins={self.num_bins}, num_values={self.num_values})"


def bin_predicate_for_ccf(
    predicate: Predicate, binners: dict[str, tuple[EquiSizeBinner, str]]
) -> Predicate:
    """Rewrite every range predicate in a conjunction using fitted binners.

    ``binners`` maps a raw column name to ``(binner, bin column name)``.
    Equality/in-list predicates on binned columns are rewritten to their bin
    ids; other predicates pass through unchanged.
    """
    from repro.ccf.predicates import And, Eq, TruePredicate

    if isinstance(predicate, TruePredicate):
        return predicate
    if isinstance(predicate, And):
        return And([bin_predicate_for_ccf(p, binners) for p in predicate.predicates])
    if isinstance(predicate, Range) and predicate.column in binners:
        binner, bin_column = binners[predicate.column]
        return binner.bin_predicate(predicate, bin_column)
    if isinstance(predicate, Eq) and predicate.column in binners:
        binner, bin_column = binners[predicate.column]
        return Eq(bin_column, binner.bin_of(predicate.value))
    if isinstance(predicate, In) and predicate.column in binners:
        binner, bin_column = binners[predicate.column]
        return In(bin_column, {binner.bin_of(v) for v in predicate.values})
    return predicate


class DyadicDecomposer:
    """Dyadic interval decomposition over an integer domain (§9.1).

    The domain ``[low, high]`` is covered by ``num_levels`` layers of aligned
    intervals; level 0 holds unit intervals and level j intervals of length
    ``2^j``.  A value belongs to exactly one interval per level
    (:meth:`intervals_for_value`, the η insertions per item), and any query
    range decomposes into at most ``2·num_levels`` canonical intervals
    (:meth:`cover`).  A value matches a range iff the two interval sets
    intersect.
    """

    def __init__(self, low: int, high: int) -> None:
        if high < low:
            raise ValueError("empty domain")
        self.low = low
        self.high = high
        span = high - low + 1
        self.num_levels = max(1, (span - 1).bit_length() + 1)

    def intervals_for_value(self, value: int) -> list[tuple[int, int]]:
        """Return the (level, index) interval ids containing ``value``."""
        if not self.low <= value <= self.high:
            raise ValueError(f"value {value} outside domain [{self.low}, {self.high}]")
        offset = value - self.low
        return [(level, offset >> level) for level in range(self.num_levels)]

    def cover(self, low: int, high: int) -> list[tuple[int, int]]:
        """Decompose [low, high] (clamped to the domain) into canonical intervals."""
        low = max(low, self.low)
        high = min(high, self.high)
        if high < low:
            return []
        start = low - self.low
        end = high - self.low
        result: list[tuple[int, int]] = []
        while start <= end:
            # Largest aligned block starting at ``start`` that fits.
            level = (start & -start).bit_length() - 1 if start else self.num_levels - 1
            while level > 0 and start + (1 << level) - 1 > end:
                level -= 1
            result.append((level, start >> level))
            start += 1 << level
        return result

    def range_matches(self, value_intervals: Iterable[tuple[int, int]], low: int, high: int) -> bool:
        """True iff a value with ``value_intervals`` lies in [low, high]."""
        cover = set(self.cover(low, high))
        return any(interval in cover for interval in value_intervals)
