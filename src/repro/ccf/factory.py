"""Construction helpers: variant registry and data-driven sizing (§8, §10.4).

The paper sizes each filter from the predicted number of occupied entries
(estimable from a sample in practice; exact here) and a bucket size whose
empirical load factor makes all insertions likely to succeed.
:func:`build_ccf` packages that procedure: predict entries, pick the
power-of-two bucket count, build, and insert every row.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence, Type

from repro.ccf.attributes import AttributeSchema
from repro.ccf.base import ConditionalCuckooFilterBase
from repro.ccf.bloom_ccf import BloomCCF
from repro.ccf.chained import ChainedCCF
from repro.ccf.mixed import MixedCCF
from repro.ccf.params import CCFParams
from repro.ccf.plain import PlainCCF
from repro.ccf.sizing import distinct_vector_counts, predicted_entries, recommended_num_buckets

#: All CCF variants by their paper name.
CCF_KINDS: dict[str, Type[ConditionalCuckooFilterBase]] = {
    "plain": PlainCCF,
    "chained": ChainedCCF,
    "bloom": BloomCCF,
    "mixed": MixedCCF,
}


def make_ccf(
    kind: str, schema: AttributeSchema, num_buckets: int, params: CCFParams
) -> ConditionalCuckooFilterBase:
    """Instantiate a CCF variant by name ('plain'|'chained'|'bloom'|'mixed')."""
    try:
        cls = CCF_KINDS[kind]
    except KeyError:
        raise ValueError(f"unknown CCF kind {kind!r}; expected one of {sorted(CCF_KINDS)}") from None
    return cls(schema, num_buckets, params)


def build_ccf(
    kind: str,
    schema: AttributeSchema,
    rows: Iterable[tuple[object, Sequence[Any]]],
    params: CCFParams,
    target_load: float | None = None,
    headroom: float = 1.0,
    max_retries: int = 3,
    sample_k: int | None = None,
) -> ConditionalCuckooFilterBase:
    """Size a CCF for ``rows`` (pairs of key, attribute values) and fill it.

    ``headroom`` scales the predicted entry count before sizing — useful when
    rows come from a sample rather than the full data.  ``sample_k`` switches
    the occupancy prediction from exact per-key counting to §10.4's one-pass
    bottom-k estimate (give it a little ``headroom``, e.g. 1.1, to absorb
    sampling error).  If the build overflows (MaxKicks failure), the table is
    doubled and rebuilt up to ``max_retries`` times — the offline analogue of
    §4.1's resize-on-failure — before a RuntimeError reports that the variant
    cannot hold the data at a reasonable size (the paper's verdict on the
    plain variant).
    """
    materialised = [(key, tuple(schema.row_values(attrs))) for key, attrs in rows]
    # Predict occupancy from distinct fingerprint vectors per key — the unit
    # the filter stores — so small attribute fingerprints (which dedupe
    # colliding values) don't cause systematic over-allocation.
    fingerprinter = ConditionalCuckooFilterBase.make_fingerprinter(schema, params)
    if sample_k is not None:
        # §10.4's practical path: a one-pass bottom-k estimate instead of
        # exact per-key state (what a system would run during stats
        # collection over data too large to hold per-key sets for).
        from repro.sketches.bottomk import EntryCountEstimator

        estimator = EntryCountEstimator(k=sample_k, seed=params.seed)
        for key, values in materialised:
            estimator.add(key, fingerprinter.vector(values))
        predicted = max(
            1,
            round(
                estimator.estimate(
                    kind,
                    params.max_dupes,
                    max_chain=params.max_chain,
                    bucket_size=params.bucket_size,
                )
            ),
        )
    else:
        counts = distinct_vector_counts(
            (key, fingerprinter.vector(values)) for key, values in materialised
        )
        predicted = predicted_entries(
            kind,
            counts,
            params.max_dupes,
            max_chain=params.max_chain,
            bucket_size=params.bucket_size,
        )
    num_buckets = recommended_num_buckets(
        max(1, round(predicted * headroom)), params.bucket_size, target_load
    )
    keys = [key for key, _values in materialised]
    columns = (
        [list(column) for column in zip(*(values for _key, values in materialised))]
        if materialised
        else [[] for _ in range(schema.num_attributes)]
    )
    for _attempt in range(max_retries + 1):
        ccf = make_ccf(kind, schema, num_buckets, params)
        ccf.insert_many(keys, columns)
        # With an uncapped chain, discarded rows mean the walk ran out of
        # fresh pairs — a size problem, not a policy choice — so retry those
        # too.  With a finite Lmax, discards are the configured behaviour.
        unexpected_discards = params.max_chain is None and ccf.num_rows_discarded > 0
        if not ccf.failed and not unexpected_discards:
            return ccf
        num_buckets *= 2
    raise RuntimeError(
        f"{kind} CCF overflowed during build even at {num_buckets // 2} buckets "
        f"(b={params.bucket_size}, predicted={predicted} entries); the variant "
        "cannot hold this duplicate skew at a reasonable size"
    )
