"""Binary serialisation for filters and extracted views.

The paper's deployment model (§2-§3) is that filters are *precomputed and
stored*, then shipped to scans — so round-trippable wire formats are part of
the system, not an afterthought.  Everything a structure needs is its
parameters (all hash salts derive from the seed), its schema, and its slot
contents; RNG state for future kicks is deliberately not preserved (it
affects only the randomness of later insertions, never answers).

The wire format is **columnar**, mirroring the in-memory SlotMatrix layout
(DESIGN.md §6): a 2-bit tag column over all slots, then the vector slots'
fingerprint / attribute-vector / matching columns packed array-at-a-time
with ``BitWriter.write_array`` (numpy ``packbits`` under the hood) instead
of slot-at-a-time Python loops.  Only variable-length Bloom payloads remain
sequential.  Loading scatters the columns straight back into the typed
storage arrays.

:func:`dumps` / :func:`loads` handle every CCF variant, the
:class:`~repro.ccf.range_ccf.DyadicRangeCCF` wrapper, the two
predicate-extracted views, and the plain cuckoo filter.  Slot payloads are
bit-packed at their declared widths (12-bit fingerprints cost 12 bits), so
the on-wire size tracks ``size_in_bits()`` up to small headers.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ccf.attributes import AttributeSchema
from repro.ccf.base import ConditionalCuckooFilterBase
from repro.ccf.chain import PairGeometry
from repro.ccf.entries import BloomEntry, ConvertedGroup, GroupSlot, VectorEntry
from repro.ccf.factory import make_ccf
from repro.ccf.params import CCFParams
from repro.ccf.range_ccf import DyadicRangeCCF
from repro.ccf.views import ExtractedKeyFilter, MarkedKeyFilter
from repro.cuckoo.buckets import SlotMatrix, dtype_for_bits, fingerprint_fold
from repro.cuckoo.filter import CuckooFilter
from repro.sketches.bitpack import BitReader, BitWriter
from repro.sketches.bloom import BloomFilter

# Current (dtype-tagged) wire formats: one tag byte records the slot
# storage dtype of the width-adaptive SlotMatrix (DESIGN.md §9).
_MAGIC_CCF = b"CCF3"
_MAGIC_VIEW = b"CCV3"
_MAGIC_CUCKOO = b"CKF3"
_MAGIC_RANGE = b"CRF2"

# Legacy (pre-dtype-tag, int64 EMPTY=-1 era) magics; still loadable.  At
# boundary fingerprint widths (8/16/32 bits) legacy payloads may contain the
# all-ones fingerprint that packed storage reserves as its EMPTY sentinel;
# loading folds those stored values to 0, mirroring the fingerprint
# functions' fold so the loaded filter keeps answering True for every key
# the legacy filter answered True for (no false negatives; the fold can only
# add false positives at the 2^-f collision rate).
_LEGACY_CCF = b"CCF2"
_LEGACY_VIEW = b"CCV2"
_LEGACY_CUCKOO = b"CKF2"
_LEGACY_RANGE = b"CRF1"

_KIND_CODES = {"plain": 0, "chained": 1, "bloom": 2, "mixed": 3}
_KIND_NAMES = {code: kind for kind, code in _KIND_CODES.items()}

_MASK64 = (1 << 64) - 1

# Slot tags.
_EMPTY, _VECTOR, _BLOOM, _GROUP = 0, 1, 2, 3


class SerializeError(ValueError):
    """A payload could not be decoded: truncated, corrupted, or wrong magic.

    Every decode failure — whatever low-level exception the bit reader or a
    constructor raised — surfaces as this one typed error, carrying where it
    happened: ``source`` names the payload (usually a file path) and
    ``offset`` is the position inside it (bits for the bit-packed CCF wire
    formats, bytes for SEG1 segment files; ``offset_unit`` says which).
    """

    def __init__(
        self,
        message: str,
        *,
        source: str | None = None,
        offset: int | None = None,
        offset_unit: str = "bits",
    ) -> None:
        self.source = source
        self.offset = offset
        self.offset_unit = offset_unit
        context = []
        if source is not None:
            context.append(f"in {source}")
        if offset is not None:
            context.append(f"at {offset_unit[:-1]} offset {offset}")
        if context:
            message = f"{message} ({' '.join(context)})"
        super().__init__(message)

# Storage dtype tags: 0 = legacy int64, 1..4 = uint8/16/32/64.
_DTYPE_TAGS = {"int64": 0, "uint8": 1, "uint16": 2, "uint32": 3, "uint64": 4}


def _dtype_tag(buckets: SlotMatrix) -> int:
    return _DTYPE_TAGS[buckets.fps.dtype.name]


def _check_dtype_tag(tag: int, key_bits: int, packed: bool) -> None:
    """Validate a payload's dtype tag against the reconstructed storage."""
    expected = 0 if not packed else _DTYPE_TAGS[dtype_for_bits(key_bits).name]
    if tag != expected:
        raise ValueError(
            f"payload dtype tag {tag} does not match the {key_bits}-bit "
            f"storage this build reconstructs (expected {expected})"
        )


def _fold_loaded(fps: Any, key_bits: int) -> Any:
    """Apply the legacy-payload sentinel fold to loaded fingerprints.

    ``fps`` may be a scalar int or an int64 ndarray; values equal to the
    reserved all-ones fingerprint of a boundary width fold to 0.
    """
    fold = fingerprint_fold(key_bits)
    if fold is None:
        return fps
    if isinstance(fps, int):
        return 0 if fps == fold else fps
    fps[fps == fold] = 0
    return fps


def dumps(obj: Any) -> bytes:
    """Serialise a CCF, range wrapper, extracted view, or cuckoo filter."""
    if isinstance(obj, ConditionalCuckooFilterBase):
        return _dump_ccf(obj)
    if isinstance(obj, DyadicRangeCCF):
        return _dump_range(obj)
    if isinstance(obj, (ExtractedKeyFilter, MarkedKeyFilter)):
        return _dump_view(obj)
    if isinstance(obj, CuckooFilter):
        return _dump_cuckoo(obj)
    raise TypeError(f"cannot serialise objects of type {type(obj).__name__}")


def loads(data: bytes, *, source: str | None = None) -> Any:
    """Inverse of :func:`dumps` (current formats; legacy payloads migrate).

    Decode failures raise :class:`SerializeError` with ``source`` (if given)
    and the bit offset the reader had reached — never a raw ``EOFError`` /
    ``struct.error`` / ``ValueError`` from the packing layer.
    """
    magic = bytes(data[:4])
    if len(data) < 4:
        raise SerializeError(
            f"payload is {len(data)} bytes, too short for a magic header",
            source=source,
            offset=0,
        )
    reader = BitReader(data[4:])
    try:
        if magic == _MAGIC_CCF or magic == _LEGACY_CCF:
            return _load_ccf(reader, tagged=magic == _MAGIC_CCF)
        if magic == _MAGIC_RANGE or magic == _LEGACY_RANGE:
            return _load_range(reader, tagged=magic == _MAGIC_RANGE)
        if magic == _MAGIC_VIEW or magic == _LEGACY_VIEW:
            return _load_view(reader, tagged=magic == _MAGIC_VIEW)
        if magic == _MAGIC_CUCKOO or magic == _LEGACY_CUCKOO:
            return _load_cuckoo(reader, tagged=magic == _MAGIC_CUCKOO)
    except SerializeError:
        raise
    except (EOFError, ValueError, KeyError, IndexError, OverflowError, TypeError) as exc:
        raise SerializeError(
            f"truncated or corrupt {magic!r} payload: {exc}",
            source=source,
            offset=32 + reader.bit_position,
        ) from exc
    raise SerializeError(
        f"unrecognised magic header {magic!r}", source=source, offset=0
    )


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def _write_params(writer: BitWriter, params: CCFParams, num_buckets: int) -> None:
    writer.write(params.key_bits, 8)
    writer.write(params.attr_bits, 8)
    writer.write(params.bucket_size, 8)
    writer.write(params.max_dupes, 8)
    writer.write(0 if params.max_chain is None else params.max_chain + 1, 32)
    writer.write(params.max_kicks, 32)
    writer.write(params.bloom_bits, 16)
    writer.write(params.bloom_hashes, 8)
    writer.write(0 if params.conversion_hashes is None else params.conversion_hashes + 1, 8)
    writer.write_bool(params.small_value_optimization)
    writer.write(params.seed & _MASK64, 64)
    writer.write(num_buckets, 32)


def _read_params(reader: BitReader) -> tuple[CCFParams, int]:
    key_bits = reader.read(8)
    attr_bits = reader.read(8)
    bucket_size = reader.read(8)
    max_dupes = reader.read(8)
    max_chain_raw = reader.read(32)
    max_kicks = reader.read(32)
    bloom_bits = reader.read(16)
    bloom_hashes = reader.read(8)
    conversion_raw = reader.read(8)
    svo = reader.read_bool()
    seed = reader.read(64)
    num_buckets = reader.read(32)
    params = CCFParams(
        key_bits=key_bits,
        attr_bits=attr_bits,
        bucket_size=bucket_size,
        max_dupes=max_dupes,
        max_chain=None if max_chain_raw == 0 else max_chain_raw - 1,
        max_kicks=max_kicks,
        bloom_bits=bloom_bits,
        bloom_hashes=bloom_hashes,
        conversion_hashes=None if conversion_raw == 0 else conversion_raw - 1,
        small_value_optimization=svo,
        seed=seed,
    )
    return params, num_buckets


def _write_schema(writer: BitWriter, schema: AttributeSchema) -> None:
    writer.write(schema.num_attributes, 8)
    for name in schema.names:
        raw = name.encode("utf-8")
        writer.write(len(raw), 16)
        writer.write_bytes(raw)


def _read_schema(reader: BitReader) -> AttributeSchema:
    count = reader.read(8)
    names = []
    for _ in range(count):
        length = reader.read(16)
        names.append(reader.read_bytes(length).decode("utf-8"))
    return AttributeSchema(names)


def _write_varint(writer: BitWriter, value: int) -> None:
    """LEB128-style varint: 7 data bits per group, high bit continues."""
    if value < 0:
        raise ValueError("varints are unsigned")
    while True:
        group = value & 0x7F
        value >>= 7
        if value:
            writer.write(group | 0x80, 8)
        else:
            writer.write(group, 8)
            return


def _read_varint(reader: BitReader) -> int:
    value = 0
    shift = 0
    while True:
        group = reader.read(8)
        value |= (group & 0x7F) << shift
        if not group & 0x80:
            return value
        shift += 7


def _write_bloom_payload(writer: BitWriter, bloom: BloomFilter) -> None:
    _write_varint(writer, bloom.num_inserted)
    writer.write_bytes(bloom.payload_bytes())


def _read_bloom_payload(
    reader: BitReader, num_bits: int, num_hashes: int, seed: int
) -> BloomFilter:
    num_inserted = _read_varint(reader)
    payload = reader.read_bytes((num_bits + 7) // 8)
    return BloomFilter.from_payload(num_bits, num_hashes, seed, payload, num_inserted)


# ---------------------------------------------------------------------------
# CCF variants
# ---------------------------------------------------------------------------


def _slot_tags(ccf: ConditionalCuckooFilterBase) -> np.ndarray:
    """The 2-bit tag column (flat, bucket-major) of a CCF's slot matrix."""
    flat_fps = ccf.buckets.fps.ravel()
    occupied = flat_fps != ccf.buckets.empty
    tags = np.zeros(flat_fps.shape, dtype=np.int64)
    tags[occupied] = _VECTOR
    if ccf._num_payload_slots:
        payloads = ccf.buckets.payloads
        for index in np.nonzero(occupied)[0].tolist():
            payload = payloads[index]
            if payload is None:
                continue
            tags[index] = _BLOOM if isinstance(payload, BloomEntry) else _GROUP
    return tags


def _dump_ccf(ccf: ConditionalCuckooFilterBase) -> bytes:
    if ccf.kind not in _KIND_CODES:
        raise TypeError(f"unknown CCF kind {ccf.kind!r}")
    writer = BitWriter()
    writer.write_bytes(_MAGIC_CCF)
    writer.write(_KIND_CODES[ccf.kind], 8)
    writer.write(_dtype_tag(ccf.buckets), 8)
    _write_params(writer, ccf.params, ccf.buckets.num_buckets)
    _write_schema(writer, ccf.schema)
    writer.write(ccf.num_rows_inserted, 64)
    writer.write(ccf.num_rows_discarded, 64)
    writer.write(ccf.num_kicks, 64)
    writer.write_bool(ccf.failed)
    if ccf.kind == "mixed":
        writer.write(ccf.num_conversions, 32)
        writer.write(ccf.num_absorbed, 64)

    tags = _slot_tags(ccf)
    payloads = ccf.buckets.payloads

    # Converted groups are shared across slots: emit them once, indexed by
    # first occurrence in flat slot order.
    groups: list[ConvertedGroup] = []
    group_index: dict[int, int] = {}
    group_slots = np.nonzero(tags == _GROUP)[0]
    for index in group_slots.tolist():
        group = payloads[index].group
        if id(group) not in group_index:
            group_index[id(group)] = len(groups)
            groups.append(group)
    writer.write(len(groups), 32)
    for group in groups:
        writer.write(group.fp, ccf.params.key_bits)
        writer.write(group.num_slots, 8)
        writer.write_bool(group.matching)
        _write_bloom_payload(writer, group.bloom)

    # Columnar slot section: the tag column, then each slot class's columns
    # packed array-at-a-time in flat slot order.
    num_attrs = ccf.schema.num_attributes
    flat_fps = ccf.buckets.fps.ravel()
    vector_mask = tags == _VECTOR
    writer.write_array(tags, 2)
    writer.write_array(flat_fps[vector_mask], ccf.params.key_bits)
    writer.write_array(
        ccf._avecs.reshape(-1, num_attrs)[vector_mask], ccf.params.attr_bits
    )
    writer.write_bool_array(ccf._flags.ravel()[vector_mask])
    for index in np.nonzero(tags == _BLOOM)[0].tolist():
        entry = payloads[index]
        writer.write(entry.fp, ccf.params.key_bits)
        writer.write_bool(entry.matching)
        _write_bloom_payload(writer, entry.bloom)
    if group_slots.size:
        indices = np.fromiter(
            (group_index[id(payloads[i].group)] for i in group_slots.tolist()),
            dtype=np.int64,
            count=group_slots.size,
        )
        writer.write_array(indices, 32)

    def write_entry(entry: Any) -> None:
        if isinstance(entry, VectorEntry):
            writer.write(_VECTOR, 2)
            writer.write(entry.fp, ccf.params.key_bits)
            for component in entry.avec:
                writer.write(component, ccf.params.attr_bits)
            writer.write_bool(entry.matching)
        elif isinstance(entry, BloomEntry):
            writer.write(_BLOOM, 2)
            writer.write(entry.fp, ccf.params.key_bits)
            writer.write_bool(entry.matching)
            _write_bloom_payload(writer, entry.bloom)
        elif isinstance(entry, GroupSlot):
            writer.write(_GROUP, 2)
            writer.write(group_index[id(entry.group)], 32)
        else:
            raise TypeError(f"unknown entry type {type(entry).__name__}")

    writer.write(len(ccf.stash), 16)
    for entry in ccf.stash:
        write_entry(entry)
    return writer.getvalue()


def _load_ccf(reader: BitReader, tagged: bool = True) -> ConditionalCuckooFilterBase:
    kind = _KIND_NAMES[reader.read(8)]
    tag = reader.read(8) if tagged else None
    params, num_buckets = _read_params(reader)
    if tag == 0:
        params = params.replace(packed=False)
    schema = _read_schema(reader)
    if tag is not None:
        _check_dtype_tag(tag, params.key_bits, params.packed)
    # Legacy payloads at boundary widths may store the now-reserved all-ones
    # fingerprint; fold it on the way in (see the module docstring).
    fold_bits = params.key_bits if not tagged else None
    ccf = make_ccf(kind, schema, num_buckets, params)
    ccf.num_rows_inserted = reader.read(64)
    ccf.num_rows_discarded = reader.read(64)
    ccf.num_kicks = reader.read(64)
    ccf.failed = reader.read_bool()
    if kind == "mixed":
        ccf.num_conversions = reader.read(32)
        ccf.num_absorbed = reader.read(64)

    def fold(fp):
        return _fold_loaded(fp, fold_bits) if fold_bits is not None else fp

    groups: list[ConvertedGroup] = []
    num_groups = reader.read(32)
    for _ in range(num_groups):
        fp = fold(reader.read(params.key_bits))
        num_slots = reader.read(8)
        matching = reader.read_bool()
        bloom = _read_bloom_payload(
            reader, ccf._conversion_bits(), ccf._conversion_hashes(), ccf._bloom_salt
        )
        group = ConvertedGroup(fp, bloom, num_slots)
        group.matching = matching
        groups.append(group)

    num_attrs = schema.num_attributes
    capacity = ccf.buckets.capacity

    # Columnar slot section: scatter each column straight into the typed
    # storage arrays, then rebuild the occupancy column once.
    tags = reader.read_array(capacity, 2)
    vector_mask = tags == _VECTOR
    num_vectors = int(vector_mask.sum())
    flat_fps = ccf.buckets.fps.ravel()
    flat_fps[vector_mask] = fold(reader.read_array(num_vectors, params.key_bits))
    ccf._avecs.reshape(-1, num_attrs)[vector_mask] = reader.read_array(
        num_vectors * num_attrs, params.attr_bits
    ).reshape(num_vectors, num_attrs)
    ccf._flags.ravel()[vector_mask] = reader.read_bool_array(num_vectors)
    payloads = ccf.buckets.payloads
    flags = ccf._flags.ravel()
    bloom_slots = np.nonzero(tags == _BLOOM)[0]
    for index in bloom_slots.tolist():
        fp = fold(reader.read(params.key_bits))
        matching = reader.read_bool()
        bloom = _read_bloom_payload(
            reader, params.bloom_bits, params.bloom_hashes, ccf._bloom_salt
        )
        flat_fps[index] = fp
        payloads[index] = BloomEntry(fp, bloom, matching)
        flags[index] = matching
    group_slots = np.nonzero(tags == _GROUP)[0]
    if group_slots.size:
        indices = reader.read_array(int(group_slots.size), 32)
        for index, group_id in zip(group_slots.tolist(), indices.tolist()):
            group = groups[group_id]
            flat_fps[index] = group.fp
            payloads[index] = GroupSlot(group)
            flags[index] = group.matching
    ccf.buckets.recount()
    ccf._num_payload_slots = int(bloom_slots.size) + int(group_slots.size)

    def read_entry() -> Any:
        tag = reader.read(2)
        if tag == _VECTOR:
            fp = fold(reader.read(params.key_bits))
            avec = tuple(reader.read(params.attr_bits) for _ in range(num_attrs))
            matching = reader.read_bool()
            return VectorEntry(fp, avec, matching)
        if tag == _BLOOM:
            fp = fold(reader.read(params.key_bits))
            matching = reader.read_bool()
            bloom = _read_bloom_payload(
                reader, params.bloom_bits, params.bloom_hashes, ccf._bloom_salt
            )
            return BloomEntry(fp, bloom, matching)
        if tag == _GROUP:
            return GroupSlot(groups[reader.read(32)])
        raise ValueError("unexpected empty tag inside entry")

    stash_count = reader.read(16)
    for _ in range(stash_count):
        ccf.stash.append(read_entry())
    return ccf


# ---------------------------------------------------------------------------
# Dyadic range wrapper
# ---------------------------------------------------------------------------


def _dump_range(wrapper: DyadicRangeCCF) -> bytes:
    writer = BitWriter()
    writer.write_bytes(_MAGIC_RANGE)
    writer.write(_dtype_tag(wrapper.inner.buckets), 8)
    _write_schema(writer, wrapper.schema)
    writer.write(wrapper._range_index, 8)
    writer.write(wrapper.decomposer.low & _MASK64, 64)
    writer.write(wrapper.decomposer.high & _MASK64, 64)
    writer.write(wrapper.num_rows_inserted, 64)
    inner = _dump_ccf(wrapper.inner)
    _write_varint(writer, len(inner))
    writer.write_bytes(inner)
    return writer.getvalue()


def _load_range(reader: BitReader, tagged: bool = True) -> DyadicRangeCCF:
    if tagged:
        reader.read(8)  # wrapper-level dtype tag; the inner payload re-checks
    schema = _read_schema(reader)
    range_index = reader.read(8)
    low = reader.read(64)
    high = reader.read(64)
    # Domain bounds round-trip as two's complement 64-bit values.
    low = low - (1 << 64) if low >= (1 << 63) else low
    high = high - (1 << 64) if high >= (1 << 63) else high
    num_rows = reader.read(64)
    inner_length = _read_varint(reader)
    inner_payload = reader.read_bytes(inner_length)
    inner = loads(inner_payload)
    # Construct at the minimum bucket count — only schema/decomposer state
    # survives from the constructor; the real table is the loaded inner.
    wrapper = DyadicRangeCCF(
        inner.kind,
        schema,
        schema.names[range_index],
        (low, high),
        2,
        inner.params,
    )
    wrapper.inner = inner
    wrapper.num_rows_inserted = num_rows
    return wrapper


# ---------------------------------------------------------------------------
# Views
# ---------------------------------------------------------------------------

_VIEW_EXTRACTED, _VIEW_MARKED = 0, 1


def _dump_view(view: ExtractedKeyFilter | MarkedKeyFilter) -> bytes:
    writer = BitWriter()
    writer.write_bytes(_MAGIC_VIEW)
    is_marked = isinstance(view, MarkedKeyFilter)
    writer.write(_VIEW_MARKED if is_marked else _VIEW_EXTRACTED, 8)
    writer.write(_dtype_tag(view.buckets), 8)
    geometry = view.geometry
    writer.write(geometry.num_buckets, 32)
    writer.write(geometry.key_bits, 8)
    writer.write(geometry.seed & _MASK64, 64)
    writer.write(view.buckets.bucket_size, 8)
    if is_marked:
        writer.write(view.max_dupes, 8)
        writer.write(0 if view.max_chain is None else view.max_chain + 1, 32)
    flat_fps = view.buckets.fps.ravel()
    occupied = flat_fps != view.buckets.empty
    writer.write_bool_array(occupied)
    writer.write_array(flat_fps[occupied], geometry.key_bits)
    if is_marked:
        writer.write_bool_array(view.marks.ravel()[occupied])
        writer.write(len(view.stash_entries), 16)
        for fp, matching in view.stash_entries:
            writer.write(fp, geometry.key_bits)
            writer.write_bool(matching)
    else:
        writer.write(len(view.stash_fingerprints), 16)
        for fp in view.stash_fingerprints:
            writer.write(fp, geometry.key_bits)
    return writer.getvalue()


def _load_view(reader: BitReader, tagged: bool = True) -> ExtractedKeyFilter | MarkedKeyFilter:
    view_type = reader.read(8)
    tag = reader.read(8) if tagged else None
    num_buckets = reader.read(32)
    key_bits = reader.read(8)
    seed = reader.read(64)
    bucket_size = reader.read(8)
    packed = tag != 0
    if tag is not None:
        _check_dtype_tag(tag, key_bits, packed)
    geometry = PairGeometry(num_buckets, key_bits, seed)
    if view_type == _VIEW_MARKED:
        max_dupes = reader.read(8)
        max_chain_raw = reader.read(32)
        view: MarkedKeyFilter | ExtractedKeyFilter = MarkedKeyFilter(
            geometry,
            bucket_size,
            max_dupes,
            None if max_chain_raw == 0 else max_chain_raw - 1,
            packed=packed,
        )
    else:
        view = ExtractedKeyFilter(geometry, bucket_size, packed=packed)
    capacity = num_buckets * bucket_size
    occupied = reader.read_bool_array(capacity)
    count = int(occupied.sum())
    loaded = reader.read_array(count, key_bits)
    if not tagged:
        loaded = _fold_loaded(loaded, key_bits)
    view.buckets.fps.ravel()[occupied] = loaded
    view.buckets.recount()

    def fold(fp):
        return _fold_loaded(fp, key_bits) if not tagged else fp

    if view_type == _VIEW_MARKED:
        view.marks.ravel()[occupied] = reader.read_bool_array(count)
        stash_count = reader.read(16)
        for _ in range(stash_count):
            fp = fold(reader.read(key_bits))
            view.stash_entries.append((fp, reader.read_bool()))
    else:
        stash_count = reader.read(16)
        for _ in range(stash_count):
            view.stash_fingerprints.append(fold(reader.read(key_bits)))
    return view


# ---------------------------------------------------------------------------
# Plain cuckoo filter
# ---------------------------------------------------------------------------


def _dump_cuckoo(cuckoo: CuckooFilter) -> bytes:
    writer = BitWriter()
    writer.write_bytes(_MAGIC_CUCKOO)
    writer.write(_dtype_tag(cuckoo.buckets), 8)
    writer.write(cuckoo.buckets.num_buckets, 32)
    writer.write(cuckoo.buckets.bucket_size, 8)
    writer.write(cuckoo.fingerprint_bits, 8)
    writer.write(cuckoo.max_kicks, 32)
    writer.write(cuckoo.seed & _MASK64, 64)
    writer.write(cuckoo.num_items, 64)
    writer.write_bool(cuckoo.failed)
    flat_fps = cuckoo.buckets.fps.ravel()
    occupied = flat_fps != cuckoo.buckets.empty
    writer.write_bool_array(occupied)
    writer.write_array(flat_fps[occupied], cuckoo.fingerprint_bits)
    writer.write(len(cuckoo.stash), 16)
    for fp in cuckoo.stash:
        writer.write(fp, cuckoo.fingerprint_bits)
    return writer.getvalue()


def _load_cuckoo(reader: BitReader, tagged: bool = True) -> CuckooFilter:
    tag = reader.read(8) if tagged else None
    num_buckets = reader.read(32)
    bucket_size = reader.read(8)
    fingerprint_bits = reader.read(8)
    max_kicks = reader.read(32)
    seed = reader.read(64)
    packed = tag != 0
    if tag is not None:
        _check_dtype_tag(tag, fingerprint_bits, packed)
    cuckoo = CuckooFilter(
        num_buckets, bucket_size, fingerprint_bits, max_kicks, seed, packed=packed
    )
    cuckoo.num_items = reader.read(64)
    cuckoo.failed = reader.read_bool()
    occupied = reader.read_bool_array(num_buckets * bucket_size)
    count = int(occupied.sum())
    loaded = reader.read_array(count, fingerprint_bits)
    if not tagged:
        loaded = _fold_loaded(loaded, fingerprint_bits)
    cuckoo.buckets.fps.ravel()[occupied] = loaded
    cuckoo.buckets.recount()
    stash_count = reader.read(16)
    for _ in range(stash_count):
        fp = reader.read(fingerprint_bits)
        cuckoo.stash.append(_fold_loaded(fp, fingerprint_bits) if not tagged else fp)
    return cuckoo


# ---------------------------------------------------------------------------
# CRC32C (Castagnoli) — the checksum of WAL frames and SEG1 column blocks
# ---------------------------------------------------------------------------
#
# Pure numpy + Python, no C extension: small buffers run a table-driven
# serial loop; large buffers are split into S independent stripes whose CRC
# states advance *in parallel* as numpy vectors (the serial dependency of a
# CRC is per stripe, so one vectorised table-lookup step advances all S
# stripes by 4 bytes), then the per-stripe states are folded together with a
# log2(S)-level GF(2) matrix tree.  CRC is linear over GF(2), which is what
# makes both the striping and the fold exact — see DESIGN.md §14.

_CRC32C_POLY = np.uint32(0x82F63B78)  # reflected Castagnoli polynomial


def _crc32c_tables() -> np.ndarray:
    """Slice-by-4 lookup tables: ``tables[k][b]`` advances byte ``b`` past
    ``k`` further message bytes."""
    table = np.arange(256, dtype=np.uint32)
    for _ in range(8):
        table = np.where(table & 1, (table >> 1) ^ _CRC32C_POLY, table >> 1)
    tables = [table]
    for _ in range(3):
        prev = tables[-1]
        tables.append((prev >> np.uint32(8)) ^ table[prev & 0xFF])
    return np.stack(tables)


_CRC_T = _crc32c_tables()
#: Python-list mirror of table 0 for the scalar loop (list indexing is
#: several times faster than numpy scalar indexing).
_CRC_T0 = [int(x) for x in _CRC_T[0]]


def _crc_zero_byte_matrix() -> np.ndarray:
    """The GF(2) matrix advancing a CRC state past one zero message byte,
    as 32 uint32 columns (column i = image of basis vector ``1 << i``)."""
    basis = np.uint32(1) << np.arange(32, dtype=np.uint32)
    return (basis >> np.uint32(8)) ^ _CRC_T[0][basis & 0xFF]


def _mat_apply(mat: np.ndarray, states: np.ndarray) -> np.ndarray:
    """Apply a 32-column GF(2) matrix to a vector of CRC states."""
    bits = (states[:, None] >> np.arange(32, dtype=np.uint32)) & 1
    return np.bitwise_xor.reduce(
        np.where(bits.astype(bool), mat[None, :], np.uint32(0)), axis=1
    )


#: ``_CRC_POW2[j]`` advances a CRC state past ``2**j`` zero message bytes.
_CRC_POW2 = [_crc_zero_byte_matrix()]
for _ in range(47):
    _m = _CRC_POW2[-1]
    _CRC_POW2.append(_mat_apply(_m, _m))
del _m


def _crc_shift_state(state: int, num_bytes: int) -> int:
    """Advance one CRC state past ``num_bytes`` zero message bytes."""
    vec = np.array([state], dtype=np.uint32)
    j = 0
    while num_bytes:
        if num_bytes & 1:
            vec = _mat_apply(_CRC_POW2[j], vec)
        num_bytes >>= 1
        j += 1
    return int(vec[0])


def _crc32c_serial(buf: np.ndarray, state: int) -> int:
    table = _CRC_T0
    for b in buf.tolist():
        state = (state >> 8) ^ table[(state ^ b) & 0xFF]
    return state


def _crc32c_striped(buf: np.ndarray) -> int:
    """Raw (zero-init) CRC32C of ``buf`` via parallel stripes + fold tree."""
    n = len(buf)
    # Stripe count: enough stripes that the per-column numpy ops amortise,
    # few enough that the serial tail (< 4S bytes) stays negligible.
    log_s = max(4, min(12, n.bit_length() - 9))
    num_stripes = 1 << log_s
    stripe_len = (n // (4 * num_stripes)) * 4
    if stripe_len == 0:
        return _crc32c_serial(buf, 0)
    body = buf[: num_stripes * stripe_len].reshape(num_stripes, stripe_len)
    words = body.view("<u4")  # little-endian 32-bit loads, platform-independent
    t3, t2, t1, t0 = _CRC_T[3], _CRC_T[2], _CRC_T[1], _CRC_T[0]
    states = np.zeros(num_stripes, dtype=np.uint32)
    for j in range(stripe_len // 4):
        x = states ^ words[:, j]
        states = (
            t3[x & 0xFF]
            ^ t2[(x >> np.uint32(8)) & 0xFF]
            ^ t1[(x >> np.uint32(16)) & 0xFF]
            ^ t0[x >> np.uint32(24)]
        )
    # Fold the stripes pairwise: combine(left, right) advances the left
    # state past the right stripe's bytes, then XORs the right state in.
    # The shift distance doubles each level, so the matrix squares.  The
    # level-0 matrix (advance by stripe_len bytes) composes from the
    # precomputed power-of-two ladder.
    level_mat = None
    remaining, j = stripe_len, 0
    while remaining:
        if remaining & 1:
            level_mat = (
                _CRC_POW2[j]
                if level_mat is None
                else _mat_apply(_CRC_POW2[j], level_mat)
            )
        remaining >>= 1
        j += 1
    while len(states) > 1:
        states = _mat_apply(level_mat, states[0::2]) ^ states[1::2]
        level_mat = _mat_apply(level_mat, level_mat)
    state = int(states[0])
    return _crc32c_serial(buf[num_stripes * stripe_len :], state)


def crc32c(data, crc: int = 0) -> int:
    """CRC32C (Castagnoli) of ``data``, chainable via the ``crc`` argument.

    ``data`` is any contiguous bytes-like object (bytes, memoryview, or a
    C-contiguous numpy array).  Matches the standard CRC32C used by RFC
    3720 / the ``crc32c`` PyPI package: ``crc32c(b"123456789") ==
    0xE3069283``.
    """
    if isinstance(data, np.ndarray):
        buf = np.ascontiguousarray(data).reshape(-1).view(np.uint8)
    else:
        buf = np.frombuffer(memoryview(data).cast("B"), dtype=np.uint8)
    n = len(buf)
    init = ~crc & 0xFFFFFFFF
    if n < 1024:
        return ~_crc32c_serial(buf, init) & 0xFFFFFFFF
    raw = _crc32c_striped(buf)
    return ~(raw ^ _crc_shift_state(init, n)) & 0xFFFFFFFF
