"""Entry objects stored in CCF bucket slots.

Three entry shapes exist across the CCF variants:

* :class:`VectorEntry` — key fingerprint + attribute fingerprint vector
  (plain, chained, and pre-conversion mixed CCFs; §5.1);
* :class:`BloomEntry` — key fingerprint + per-entry Bloom filter over raw
  (attribute index, value) pairs (Bloom CCF; §5.2);
* :class:`ConvertedGroup` / :class:`GroupSlot` — the Mixed CCF's Bloom
  conversion (§6.1): when a bucket pair accumulates more than ``d``
  duplicates of one fingerprint, their ``d`` vector entries are replaced by a
  single logical group that owns exactly ``d`` slots of the pair and stores a
  Bloom filter over attribute *fingerprint* components.  Each owned slot
  holds a :class:`GroupSlot` pointing at the shared group, so cuckoo kicks
  can relocate individual slots within the pair without splitting the group's
  payload.

Every entry carries a ``matching`` flag, normally True.  Predicate-only
extraction from a chained CCF (§6.2) cannot erase non-matching entries —
that would break chain-walk termination counts — so it marks them instead.
"""

from __future__ import annotations

from typing import Any

from repro.sketches.bloom import BloomFilter


class VectorEntry:
    """A key fingerprint with an attribute fingerprint vector."""

    __slots__ = ("fp", "avec", "matching")

    def __init__(self, fp: int, avec: tuple[int, ...], matching: bool = True) -> None:
        self.fp = fp
        self.avec = avec
        self.matching = matching

    def same_row(self, fp: int, avec: tuple[int, ...]) -> bool:
        """True if this entry stores exactly this (fingerprint, vector) pair."""
        return self.fp == fp and self.avec == avec

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = "" if self.matching else ", non-matching"
        return f"VectorEntry(fp={self.fp:#x}, avec={self.avec}{flag})"


class BloomEntry:
    """A key fingerprint with a per-entry Bloom attribute sketch."""

    __slots__ = ("fp", "bloom", "matching")

    def __init__(self, fp: int, bloom: BloomFilter, matching: bool = True) -> None:
        self.fp = fp
        self.bloom = bloom
        self.matching = matching

    def add_attributes(self, values: tuple[Any, ...]) -> None:
        """Insert each (attribute index, raw value) pair into the sketch."""
        for index, value in enumerate(values):
            self.bloom.add((index, value))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BloomEntry(fp={self.fp:#x}, fill={self.bloom.fill_ratio():.3f})"


class ConvertedGroup:
    """Shared payload of a Bloom-converted duplicate group (Mixed CCF).

    Owns exactly ``num_slots`` (= the CCF's ``d``) slots in one bucket pair.
    The Bloom filter stores (attribute index, attribute *fingerprint*)
    components, reflecting Algorithm 3's double hashing: value -> fingerprint
    -> Bloom bits.
    """

    __slots__ = ("fp", "bloom", "num_slots", "matching")

    def __init__(self, fp: int, bloom: BloomFilter, num_slots: int) -> None:
        self.fp = fp
        self.bloom = bloom
        self.num_slots = num_slots
        self.matching = True

    def add_vector(self, avec: tuple[int, ...]) -> None:
        """Absorb one attribute fingerprint vector into the group sketch."""
        for index, component in enumerate(avec):
            self.bloom.add((index, component))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConvertedGroup(fp={self.fp:#x}, slots={self.num_slots}, "
            f"fill={self.bloom.fill_ratio():.3f})"
        )


class GroupSlot:
    """One table slot owned by a :class:`ConvertedGroup`."""

    __slots__ = ("group",)

    def __init__(self, group: ConvertedGroup) -> None:
        self.group = group

    @property
    def fp(self) -> int:
        """The group's key fingerprint (used by kick relocation)."""
        return self.group.fp

    @property
    def matching(self) -> bool:
        """Groups share one matching flag."""
        return self.group.matching

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GroupSlot({self.group!r})"
