"""Attribute schemas and attribute fingerprinting (§5.1, §9).

A CCF stores, next to each key fingerprint, a sketch of the row's attribute
values.  The simplest sketch is a *fingerprint vector*: each attribute value
hashed to ``attr_bits`` bits.  §9's "small values" optimisation stores
integer values below ``2^attr_bits`` exactly instead of hashing them, so low
cardinality columns (e.g. ``role_id`` in 1..11 with 4-bit fingerprints)
become collision-free — the configuration the paper's own experiments use.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.hashing.mixers import (
    as_native_list,
    coerce_int_column,
    derive_seed,
    hash64,
    hash64_many_masked,
)


class AttributeSchema:
    """An ordered, named list of attribute columns sketched by a CCF."""

    __slots__ = ("names", "_index")

    def __init__(self, names: Sequence[str]) -> None:
        if not names:
            raise ValueError("an attribute schema needs at least one attribute")
        if len(set(names)) != len(names):
            raise ValueError("attribute names must be unique")
        self.names = tuple(names)
        self._index = {name: i for i, name in enumerate(self.names)}

    @property
    def num_attributes(self) -> int:
        """Number of attribute columns (the paper's ``#α``)."""
        return len(self.names)

    def index_of(self, name: str) -> int:
        """Return the position of ``name`` in the schema."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"attribute {name!r} not in schema {self.names}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def row_values(self, row: Mapping[str, Any] | Sequence[Any]) -> tuple[Any, ...]:
        """Extract this schema's attribute values from a mapping or sequence."""
        if isinstance(row, Mapping):
            return tuple(row[name] for name in self.names)
        values = tuple(row)
        if len(values) != self.num_attributes:
            raise ValueError(
                f"expected {self.num_attributes} attribute values, got {len(values)}"
            )
        return values

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AttributeSchema):
            return NotImplemented
        return self.names == other.names

    def __hash__(self) -> int:
        return hash(self.names)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AttributeSchema({list(self.names)!r})"


class AttributeFingerprinter:
    """Hashes attribute values into ``attr_bits``-bit fingerprints.

    One salt per attribute position keeps equal values in different columns
    uncorrelated.  With ``small_value_optimization`` (on by default, per §9),
    non-negative integers below ``2^attr_bits`` are stored exactly.
    """

    __slots__ = ("schema", "attr_bits", "small_value_optimization", "_salts", "_mask")

    def __init__(
        self,
        schema: AttributeSchema,
        attr_bits: int,
        seed: int = 0,
        small_value_optimization: bool = True,
    ) -> None:
        if not 1 <= attr_bits <= 62:
            raise ValueError("attr_bits must be in [1, 62]")
        self.schema = schema
        self.attr_bits = attr_bits
        self.small_value_optimization = small_value_optimization
        self._mask = (1 << attr_bits) - 1
        self._salts = tuple(
            derive_seed(seed, "attr-fp", i) for i in range(schema.num_attributes)
        )

    def fingerprint(self, attr_index: int, value: Any) -> int:
        """Fingerprint one attribute value at position ``attr_index``."""
        if (
            self.small_value_optimization
            and isinstance(value, int)
            and not isinstance(value, bool)
            and 0 <= value <= self._mask
        ):
            return value
        return hash64(value, self._salts[attr_index]) & self._mask

    def vector(self, values: Sequence[Any]) -> tuple[int, ...]:
        """Fingerprint a full attribute row into a vector (the paper's ``α``)."""
        if len(values) != self.schema.num_attributes:
            raise ValueError(
                f"expected {self.schema.num_attributes} attribute values, got {len(values)}"
            )
        return tuple(self.fingerprint(i, v) for i, v in enumerate(values))

    def fingerprint_column(
        self, attr_index: int, values: Sequence[Any] | np.ndarray
    ) -> np.ndarray:
        """Fingerprint a whole column at position ``attr_index``.

        Integer-dtype arrays (and sequences that coerce to one) vectorise
        both the small-value fast path and the hash path; other columns fall
        back element-wise.  Bit-identical to `fingerprint` per value either
        way.
        """
        column = coerce_int_column(values)
        if column is not None:
            hashed = hash64_many_masked(column, self._salts[attr_index], self._mask)
            if not self.small_value_optimization:
                return hashed
            # astype(int64) wraps uint64 values above 2**63 to negatives,
            # which the `>= 0` test then (correctly) routes to the hash path.
            exact = column.astype(np.int64)
            small = (exact >= 0) & (exact <= self._mask)
            return np.where(small, exact, hashed)
        return np.fromiter(
            (self.fingerprint(attr_index, v) for v in as_native_list(values)),
            dtype=np.int64,
            count=len(values),
        )

    def vectors_many(
        self, columns: Sequence[Sequence[Any] | np.ndarray]
    ) -> list[tuple[int, ...]]:
        """Fingerprint whole attribute columns into per-row vectors.

        ``columns`` is column-major (one sequence per schema attribute, equal
        lengths); the result is the row-major list of `vector` outputs.
        """
        if len(columns) != self.schema.num_attributes:
            raise ValueError(
                f"expected {self.schema.num_attributes} attribute columns, got {len(columns)}"
            )
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise ValueError(f"attribute columns have unequal lengths {sorted(lengths)}")
        stacked = np.stack(
            [self.fingerprint_column(i, column) for i, column in enumerate(columns)],
            axis=1,
        )
        return [tuple(row) for row in stacked.tolist()]

    def candidate_fingerprints(self, attr_index: int, values: Sequence[Any]) -> frozenset[int]:
        """Fingerprint each admissible value of an (in-list) predicate."""
        return frozenset(self.fingerprint(attr_index, v) for v in values)
