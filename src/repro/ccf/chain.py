"""Pair geometry and the chained pair walk (§4.2, §6.2).

:class:`PairGeometry` bundles everything that determines *where* a key's
entries may live, independent of what is stored there: the home-bucket hash,
the key fingerprint, the XOR alternate-bucket map and the one-way chain step
``l̃ = h(min(l, l'), κ)``.  Both the CCF variants and the predicate-extracted
filter views (Algorithm 2) share one ``PairGeometry`` instance, which is what
guarantees a view probes exactly the buckets its source filter filled.

The *pair walk* yields the deterministic sequence of bucket pairs a
fingerprint may occupy.  Chain steps can collide with pairs already on the
walk (a cycle); the paper detects cycles (Floyd) and extends the chain.  We
reproduce that with a deterministic retry counter mixed into the chain hash —
the same resolution is replayed identically at insert and query time, which
is the property Lemma 2's correctness argument needs.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.cuckoo.buckets import fingerprint_fold, is_power_of_two
from repro.hashing.mixers import (
    JumpCache,
    derive_seed,
    hash64,
    hash64_many_masked,
    mix64,
)

#: How many deterministic re-hashes the walk tries when the next pair is
#: already visited, before giving up on extending the chain.
CYCLE_BUMP_LIMIT = 16

# Odd 64-bit multipliers decorrelating the chain-step inputs (SplitMix64 /
# Murmur finalizer constants).
_CHAIN_FP_MULT = 0x9E3779B97F4A7C15
_CHAIN_BUMP_MULT = 0xBF58476D1CE4E5B9
_MASK64 = 0xFFFFFFFFFFFFFFFF


class PairGeometry:
    """Hashing geometry of a cuckoo table: buckets, fingerprints, chains."""

    __slots__ = (
        "num_buckets",
        "key_bits",
        "seed",
        "_fp_mask",
        "_fp_fold",
        "_index_salt",
        "_fp_salt",
        "_jump_salt",
        "_chain_salt",
        "_jump_cache",
    )

    def __init__(self, num_buckets: int, key_bits: int, seed: int = 0) -> None:
        if not is_power_of_two(num_buckets):
            raise ValueError(f"num_buckets must be a power of two, got {num_buckets}")
        if not 1 <= key_bits <= 62:
            raise ValueError("key_bits must be in [1, 62]")
        self.num_buckets = num_buckets
        self.key_bits = key_bits
        self.seed = seed
        self._fp_mask = (1 << key_bits) - 1
        self._fp_fold = fingerprint_fold(key_bits)
        self._index_salt = derive_seed(seed, "geom-index")
        self._fp_salt = derive_seed(seed, "geom-fp")
        self._jump_salt = derive_seed(seed, "geom-jump")
        self._chain_salt = derive_seed(seed, "geom-chain")
        self._jump_cache = JumpCache(self._jump_salt, num_buckets - 1)

    def fingerprint_of(self, key: object) -> int:
        """Return the key fingerprint κ (``key_bits`` wide).

        At boundary widths (8/16/32 bits) the all-ones value is reserved as
        the packed EMPTY sentinel and folds to 0 (DESIGN.md §9).
        """
        fp = hash64(key, self._fp_salt) & self._fp_mask
        return 0 if fp == self._fp_fold else fp

    def home_index(self, key: object) -> int:
        """Return the primary bucket l for ``key``."""
        return hash64(key, self._index_salt) & (self.num_buckets - 1)

    def fp_jump(self, fingerprint: int) -> int:
        """Return ``h(κ) mod m``, the XOR offset between a pair's buckets."""
        return self._jump_cache.jump(fingerprint)

    def alt_index(self, index: int, fingerprint: int) -> int:
        """Return the partner bucket ``index XOR h(κ)`` (an involution)."""
        return index ^ self.fp_jump(fingerprint)

    # -- batch geometry ----------------------------------------------------

    def fingerprints_of_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch `fingerprint_of` (int64 array, bit-identical per element)."""
        return hash64_many_masked(keys, self._fp_salt, self._fp_mask, self._fp_fold)

    def home_indices_of_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch `home_index` (int64 array, bit-identical per element)."""
        return hash64_many_masked(keys, self._index_salt, self.num_buckets - 1)

    def fp_jump_many(self, fingerprints: np.ndarray) -> np.ndarray:
        """Batch `fp_jump`, computed on the fly (bypasses the memo)."""
        return hash64_many_masked(fingerprints, self._jump_salt, self.num_buckets - 1)

    def alt_indices_many(self, indices: np.ndarray, fingerprints: np.ndarray) -> np.ndarray:
        """Batch `alt_index`."""
        return indices ^ self.fp_jump_many(fingerprints)

    def chain_step(self, pair_id: int, fingerprint: int, bump: int = 0) -> int:
        """One-way chain hash ``h(min(l, l'), κ)`` with a cycle-retry bump.

        Pure integer mixing (this is the hottest hash on the chained query
        path): the three inputs are spread by odd multipliers, folded with
        the chain salt and avalanched.
        """
        mixed = (
            pair_id
            ^ (fingerprint * _CHAIN_FP_MULT & _MASK64)
            ^ (bump * _CHAIN_BUMP_MULT & _MASK64)
            ^ self._chain_salt
        )
        return mix64(mixed) & (self.num_buckets - 1)

    def pair_of(self, key: object) -> tuple[int, int]:
        """Return the first bucket pair (home, alternate) for ``key``."""
        fingerprint = self.fingerprint_of(key)
        home = self.home_index(key)
        return home, self.alt_index(home, fingerprint)

    def pair_walk(self, home: int, fingerprint: int) -> Iterator[tuple[int, int]]:
        """Yield the deterministic chain of bucket pairs for a fingerprint.

        The first pair derives from the home bucket; each later pair from the
        chain hash of the previous pair id (min of its two buckets, per
        §6.2).  Already-visited pairs are skipped via the deterministic bump;
        the generator ends when :data:`CYCLE_BUMP_LIMIT` consecutive retries
        fail to find a fresh pair.
        """
        left = home
        right = self.alt_index(left, fingerprint)
        pair_id = left if left < right else right
        visited = {pair_id}
        yield left, right
        while True:
            bump = 0
            nxt = self.chain_step(pair_id, fingerprint, bump)
            nxt_right = self.alt_index(nxt, fingerprint)
            nxt_id = nxt if nxt < nxt_right else nxt_right
            while nxt_id in visited:
                bump += 1
                if bump > CYCLE_BUMP_LIMIT:
                    return
                nxt = self.chain_step(pair_id, fingerprint, bump)
                nxt_right = self.alt_index(nxt, fingerprint)
                nxt_id = nxt if nxt < nxt_right else nxt_right
            visited.add(nxt_id)
            left, right, pair_id = nxt, nxt_right, nxt_id
            yield left, right
