"""Chained conditional cuckoo filter (§6.2; Algorithms 4 and 5).

Attribute rows are stored as fingerprint vectors; duplicate keys beyond the
per-pair cap ``d`` overflow into further bucket pairs reached by the one-way
chain hash.  Queries walk the same pair sequence and stop at the first pair
holding fewer than ``d`` copies of the key fingerprint (Lemma 2 ensures no
entry can live beyond that point).  If ``Lmax`` pairs are exhausted with
every pair ``d``-full, the query answers True unconditionally — the
no-false-negative fallback of Theorem 3, which covers rows that insertion
had to discard for exceeding the chain cap.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ccf.base import CompiledQuery, ConditionalCuckooFilterBase
from repro.ccf.entries import VectorEntry
from repro.ccf.predicates import Predicate


class ChainedCCF(ConditionalCuckooFilterBase):
    """CCF with attribute fingerprint vectors and duplicate-key chaining."""

    kind = "chained"

    def _insert_hashed(
        self,
        fingerprint: int,
        home: int,
        values: tuple[Any, ...] | None,
        avec: tuple[int, ...] | None,
    ) -> bool:
        """Insert one (key, attribute row); Algorithm 4.

        Returns True when the row is represented (stored, deduplicated, or —
        with a finite ``Lmax`` — discarded past the chain cap, in which case
        queries still answer True via the Theorem 3 fallback).  Returns False
        only on a MaxKicks placement failure, which also latches
        :attr:`failed`; the displaced victim is stashed so membership
        answers remain superset-correct even then.
        """
        if avec is None:
            avec = self.fingerprinter.vector(values)
        self.num_rows_inserted += 1
        d = self.params.max_dupes
        limit = self._walk_limit()
        walked = 0
        for left, right in self._pair_walk(home, fingerprint):
            if walked >= limit:
                break
            walked += 1
            slots = self._fp_entries_in_pair(left, right, fingerprint)
            if any(entry.same_row(fingerprint, avec) for entry in slots):
                return True
            if len(slots) >= d:
                continue
            return self._place_in_pair(left, right, VectorEntry(fingerprint, avec))
        # Chain cap reached with every pair d-full: the row is discarded,
        # Theorem 3's query fallback keeps it a (true) positive.
        self.num_rows_discarded += 1
        return True

    def _query_hashed(
        self, fingerprint: int, home: int, compiled: CompiledQuery | None
    ) -> bool:
        """Membership test under an optional predicate; Algorithm 5."""
        if self.stash and self._stash_matches(fingerprint, compiled):
            return True
        # A stashed victim with this fingerprint means some pair on its chain
        # lost a copy (violating Lemma 1's never-decrease property), so the
        # d-count early-stop below is no longer trustworthy for this
        # fingerprint: fall through to the conservative True instead.
        stash_has_fp = any(entry.fp == fingerprint for entry in self.stash)
        d = self.params.max_dupes
        if compiled is None and not stash_has_fp:
            # §7.1: for key-only queries the chain is irrelevant — an
            # inserted key always leaves at least one copy in its first pair.
            left = home
            right = self.geometry.alt_index(left, fingerprint)
            return self._fp_count_in_pair(left, right, fingerprint) > 0
        limit = self._walk_limit()
        walked = 0
        for left, right in self._pair_walk(home, fingerprint):
            if walked >= limit:
                break
            walked += 1
            slots = self._fp_entries_in_pair(left, right, fingerprint)
            for entry in slots:
                if self._entry_matches(entry, compiled):
                    return True
            if len(slots) == d or stash_has_fp:
                continue
            return False
        # Lmax pairs exhausted (or the walk could not be extended) with every
        # pair d-full: answer True to preserve no-false-negatives.
        return True

    def _query_hashed_many(
        self,
        fps: np.ndarray,
        homes: np.ndarray,
        compiled: CompiledQuery | None,
        alts: np.ndarray | None = None,
    ) -> np.ndarray:
        """Hybrid batch kernel: vectorise the first pair, walk the rest.

        §7.1: key-only queries never look past the first pair, so they are
        one vectorised probe.  Predicate queries resolve in the first pair
        whenever it holds a matching entry (True) or fewer than ``d``
        fingerprint copies (False); only the residue — keys whose first pair
        is d-full of non-matching copies, or whose fingerprint sits in the
        stash — re-runs the scalar chain walk.
        """
        if compiled is None:
            # Key-only: one pair probe, any stashed fingerprint copy is True —
            # exactly the shared single-pair kernel with no predicate.
            return self._single_pair_query_many(fps, homes, None, alts)
        hit, eq_home, eq_alt, alts = self._pair_probe(fps, homes, compiled, alts)
        copies = eq_home.sum(axis=1)
        copies += np.where(alts == homes, 0, eq_alt.sum(axis=1))
        resolved_false = ~hit & (copies < self.params.max_dupes)
        if self.stash:
            stash_fps = np.array([entry.fp for entry in self.stash], dtype=np.int64)
            resolved_false &= ~np.isin(fps, stash_fps)
        out = hit.copy()
        for i in np.nonzero(~hit & ~resolved_false)[0]:
            out[i] = self._query_hashed(int(fps[i]), int(homes[i]), compiled)
        return out

    def chain_length(self, key: object) -> int:
        """Number of bucket pairs currently used by ``key``'s fingerprint.

        Introspection helper for experiments: walks until the first pair that
        holds fewer than ``d`` copies.
        """
        fingerprint = self.geometry.fingerprint_of(key)
        home = self.geometry.home_index(key)
        d = self.params.max_dupes
        limit = self._walk_limit()
        length = 0
        for left, right in self._pair_walk(home, fingerprint):
            if length >= limit:
                break
            length += 1
            if self._fp_count_in_pair(left, right, fingerprint) < d:
                break
        return length

    def slot_bits(self) -> int:
        """|κ| + |α| + 1 marking bit (the flag §6.2's predicate views need)."""
        return (
            self.params.key_bits
            + self.schema.num_attributes * self.params.attr_bits
            + 1
        )

    def predicate_filter(self, predicate: Predicate) -> "MarkedKeyFilter":
        """Predicate-only query (§6.2): extract a key filter for ``predicate``.

        Chained CCFs cannot erase non-matching entries — that would open gaps
        in chains and cause false negatives — so the extracted filter keeps
        every fingerprint and marks non-matching entries with one bit.
        """
        from repro.ccf.views import MarkedKeyFilter

        return MarkedKeyFilter.from_ccf(self, predicate)
