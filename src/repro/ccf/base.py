"""Shared machinery for all conditional cuckoo filter variants (§5-§6).

Every CCF is a bucketed table of entries addressed by partial-key cuckoo
hashing: a key ``k`` hashes to a home bucket ``l`` and a ``key_bits``-wide
fingerprint ``κ``; the partner bucket is ``l' = l XOR h(κ)``.  A *bucket
pair* ``(l, l')`` is the unit the paper reasons about: at most ``d``
(= ``max_dupes``) copies of one fingerprint may live in a pair (Lemma 1),
and the chained variant extends a key to further pairs via the one-way step
``l̃ = h(min(l, l'), κ)`` (§6.2).  All geometry lives in
:class:`~repro.ccf.chain.PairGeometry`; this base class adds storage, the
Algorithm 4 placement/kick loop, predicate compilation, and entry matching
for the three entry shapes.

Storage is **structure-of-arrays** over a columnar
:class:`~repro.cuckoo.buckets.SlotMatrix` (DESIGN.md §6): the key
fingerprint, the attribute fingerprint vector and the matching flag of every
slot live in typed numpy columns that both the scalar kernels and the batch
kernels read and write directly, while rich payloads (Bloom entries,
converted-group slots) occupy a parallel object column.  Batch queries probe
the live columns — there is no snapshot to rebuild after a mutation — and
evaluate predicate admissibility only on the slots whose fingerprint
actually matched — vectorised for vector slots, via a small per-predicate
matcher (LRU-cached) for payload slots.

The kick loop only ever relocates an entry between the two buckets of its
own pair — the structural property from which Lemma 1 follows.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from repro import obs
from repro.ccf.attributes import AttributeFingerprinter, AttributeSchema
from repro.ccf.chain import PairGeometry
from repro.ccf.entries import BloomEntry, GroupSlot, VectorEntry
from repro.ccf.params import CCFParams
from repro.ccf.predicates import Predicate
from repro.cuckoo.buckets import EMPTY, SlotMatrix, dtype_for_bits
from repro.hashing.mixers import as_native_list, derive_seed

#: How many compiled predicates keep a precomputed payload matcher alive.
MATCHER_CACHE_SIZE = 8

# Probe-outcome instrumentation (one record per query batch, per variant):
# the measurement substrate for the adaptive-CCF roadmap item — observed
# negative-lookup traffic is the signal an adaptive filter reacts to.
_CCF_HITS = obs.counter(
    "repro_ccf_query_hits_total",
    "Positive batch-query answers, by CCF variant.",
    ("kind",),
)
_CCF_MISSES = obs.counter(
    "repro_ccf_query_misses_total",
    "Negative batch-query answers, by CCF variant.",
    ("kind",),
)
_STASH_HITS = obs.counter(
    "repro_probe_stash_hits_total",
    "Keys answered positively only by a stash entry, by CCF variant.",
    ("kind",),
)


def validate_attr_columns(
    columns: Sequence[Sequence[Any] | np.ndarray], expected: int, num_rows: int
) -> None:
    """Check a column-major attribute batch: ``expected`` columns, each
    ``num_rows`` long.  Shared by every batch-insert entry point."""
    if len(columns) != expected:
        raise ValueError(f"expected {expected} attribute columns, got {len(columns)}")
    for column in columns:
        if len(column) != num_rows:
            raise ValueError("attribute columns must be as long as keys")


class CompiledQuery:
    """A predicate compiled against a CCF's schema and fingerprinter.

    ``constraints`` holds one triple per constrained attribute:
    ``(attribute index, admissible raw values, admissible fingerprints)``.
    ``fp_arrays`` carries the admissible fingerprints as int64 arrays for
    the vectorised column probes.  Compiling once and reusing across many
    keys is the intended hot path.
    """

    __slots__ = ("constraints", "fp_arrays")

    def __init__(self, constraints: Sequence[tuple[int, tuple, frozenset[int]]]) -> None:
        self.constraints = tuple(constraints)
        self.fp_arrays = tuple(
            np.fromiter(sorted(fps), dtype=np.int64, count=len(fps))
            for _index, _values, fps in self.constraints
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledQuery({self.constraints!r})"


def compile_predicate(
    schema: AttributeSchema,
    fingerprinter: AttributeFingerprinter,
    predicate: Predicate | None,
) -> CompiledQuery | None:
    """Compile ``predicate`` against a schema/fingerprinter pair.

    The free-function form exists so structures that *hold* CCFs without
    being one (the sharded :class:`~repro.store.FilterStore`, whose levels
    all share one fingerprinter) can compile once and fan the result out.
    Returns None for key-only queries; raises ``KeyError`` for unknown
    columns and :class:`~repro.ccf.predicates.UnsupportedPredicateError`
    for un-binned ranges, exactly like :meth:`ConditionalCuckooFilterBase.compile`.
    """
    if predicate is None:
        return None
    constraint_map = predicate.constraints()
    if not constraint_map:
        return None
    compiled = []
    for column, values in constraint_map.items():
        attr_index = schema.index_of(column)
        raw_values = tuple(values)
        fps = fingerprinter.candidate_fingerprints(attr_index, raw_values)
        compiled.append((attr_index, raw_values, fps))
    compiled.sort(key=lambda item: item[0])
    return CompiledQuery(compiled)


class ConditionalCuckooFilterBase:
    """Common storage, hashing, walking and matching for CCF variants."""

    #: Human-readable variant name, set by subclasses.
    kind: str = "base"

    #: Whether `_delete_hashed` is implemented (only variants whose entries
    #: can be unlearned row-by-row; see `delete`).
    supports_deletion: bool = False

    @staticmethod
    def make_fingerprinter(schema: AttributeSchema, params: CCFParams) -> AttributeFingerprinter:
        """The attribute fingerprinter a CCF with these params will use.

        Exposed so sizing code can predict occupancy from distinct
        *fingerprint* vectors — the unit the filter actually stores — rather
        than distinct raw attribute vectors (small fingerprints dedupe
        colliding values, and predictions over raw values would overshoot).
        """
        return AttributeFingerprinter(
            schema,
            params.attr_bits,
            seed=derive_seed(params.seed, "ccf-attr"),
            small_value_optimization=params.small_value_optimization,
        )

    def __init__(self, schema: AttributeSchema, num_buckets: int, params: CCFParams) -> None:
        if num_buckets < 2:
            raise ValueError("a CCF needs at least 2 buckets")
        self.schema = schema
        self.params = params
        self.geometry = PairGeometry(num_buckets, params.key_bits, seed=params.seed)
        # Structure-of-arrays slot storage: key fingerprints + payload
        # objects in the SlotMatrix, attribute fingerprint vectors and
        # matching flags in parallel typed columns.  Widths adapt to the
        # declared fingerprint bits (DESIGN.md §9) unless ``params.packed``
        # asks for the legacy int64 reference layout.
        self.buckets = SlotMatrix(
            num_buckets,
            params.bucket_size,
            with_payloads=True,
            fp_bits=params.key_bits if params.packed else None,
        )
        if params.packed:
            avec_dtype = dtype_for_bits(params.attr_bits)
            self._avec_empty = int(np.iinfo(avec_dtype).max)
        else:
            avec_dtype = np.dtype(np.int64)
            self._avec_empty = EMPTY
        # The avec fill is hygiene only (cleared slots): attribute vectors
        # are read solely for occupied slots, so a real attr fingerprint
        # equal to the fill value is harmless and needs no folding.
        self._avecs = np.full(
            (num_buckets, params.bucket_size, schema.num_attributes),
            self._avec_empty,
            dtype=avec_dtype,
        )
        self._flags = np.ones((num_buckets, params.bucket_size), dtype=bool)
        self._num_payload_slots = 0
        #: True while the slot columns are adopted read-only (e.g. memmapped
        #: out of a SEG1 segment); the first mutation flips it via
        #: `_ensure_writable` (DESIGN.md §10).
        self._readonly = False
        self.fingerprinter = self.make_fingerprinter(schema, params)
        self._bloom_salt = derive_seed(params.seed, "ccf-bloom")
        self._rng = random.Random(derive_seed(params.seed, "ccf-rng"))
        self._matcher_cache: OrderedDict[CompiledQuery, Callable[[Any], bool]] = OrderedDict()
        # Statistics and health flags.
        self.num_rows_inserted = 0
        self.num_rows_discarded = 0
        self.num_kicks = 0
        self.failed = False
        self.stash: list[Any] = []

    # ------------------------------------------------------------------
    # Geometry delegation (kept on the filter for API convenience)
    # ------------------------------------------------------------------

    def fingerprint_of(self, key: object) -> int:
        """Return the key fingerprint κ (``key_bits`` wide)."""
        return self.geometry.fingerprint_of(key)

    def home_index(self, key: object) -> int:
        """Return the primary bucket l for ``key``."""
        return self.geometry.home_index(key)

    def alt_index(self, index: int, fingerprint: int) -> int:
        """Return the partner bucket ``index XOR h(κ)`` (§4.2)."""
        return self.geometry.alt_index(index, fingerprint)

    def _pair_walk(self, home: int, fingerprint: int) -> Iterator[tuple[int, int]]:
        return self.geometry.pair_walk(home, fingerprint)

    def _walk_limit(self) -> int:
        """Maximum number of pairs any walk may visit.

        ``max_chain`` (Lmax) if set; otherwise the number of buckets, which
        upper-bounds the number of distinct pairs and acts as a safety cap
        for the "uncapped" configuration of the multiset experiments.
        """
        if self.params.max_chain is not None:
            return self.params.max_chain
        return self.buckets.num_buckets

    # ------------------------------------------------------------------
    # Columnar slot access
    # ------------------------------------------------------------------

    def entry_at(self, bucket: int, slot: int) -> Any:
        """Materialise the entry stored at (bucket, slot), or None.

        Payload slots return their live object (mutations through it are
        visible to all probes); vector slots synthesise a
        :class:`VectorEntry` from the typed columns.
        """
        fp = self.buckets.fps[bucket, slot]
        if fp == self.buckets.empty:
            return None
        payloads = self.buckets.payloads
        # Mapped (segment-backed) filters carry no payload column until a
        # mutation promotes them; every slot is then a vector slot.
        payload = None if payloads is None else payloads[bucket * self.buckets.bucket_size + slot]
        if payload is not None:
            return payload
        return VectorEntry(
            int(fp),
            tuple(self._avecs[bucket, slot].tolist()),
            bool(self._flags[bucket, slot]),
        )

    def iter_entries(self) -> Iterator[tuple[int, int, Any]]:
        """Yield (bucket, slot, entry) for every occupied slot."""
        for bucket, slot, _fp, _payload in self.buckets.iter_entries():
            yield bucket, slot, self.entry_at(bucket, slot)

    def _ensure_writable(self) -> None:
        """Copy-on-write promotion of read-only (mapped) slot columns.

        A filter opened over memmapped SEG1 columns serves queries zero-copy;
        its first mutation lands here and copies every parallel column — the
        fingerprint matrix and occupancy counts (via ``SlotMatrix.promote``),
        the attribute-vector and matching-flag columns, and a fresh payload
        column — to private writable heap arrays.  The segment file is never
        written through.
        """
        if not self._readonly:
            return
        self.buckets.promote()
        if self.buckets.payloads is None:
            self.buckets.payloads = [None] * self.buckets.capacity
        if not self._avecs.flags.writeable:
            self._avecs = np.array(self._avecs)
        if not self._flags.flags.writeable:
            self._flags = np.array(self._flags)
        self._readonly = False

    def storage_nbytes(self) -> tuple[int, int]:
        """(mapped, resident) bytes of the typed slot columns.

        Mapped bytes are file-backed ``np.memmap`` columns (paged in on
        demand, evictable by the OS); resident bytes are private heap
        arrays.  The Python payload column is excluded — it holds live
        objects, not columnar storage.
        """
        mapped = resident = 0
        for column in (self.buckets.fps, self.buckets.counts, self._avecs, self._flags):
            if isinstance(column, np.memmap):
                mapped += int(column.nbytes)
            else:
                resident += int(column.nbytes)
        return mapped, resident

    def _store_entry(self, bucket: int, slot: int, entry: Any) -> None:
        """Overwrite (bucket, slot) with ``entry``, decomposed into columns."""
        self._ensure_writable()
        prev = self.buckets.payloads[bucket * self.buckets.bucket_size + slot]
        if isinstance(entry, VectorEntry):
            self.buckets.set_slot(bucket, slot, entry.fp, None)
            self._avecs[bucket, slot] = entry.avec
            if prev is not None:
                self._num_payload_slots -= 1
        else:
            self.buckets.set_slot(bucket, slot, entry.fp, entry)
            self._avecs[bucket, slot] = self._avec_empty
            if prev is None:
                self._num_payload_slots += 1
        self._flags[bucket, slot] = entry.matching

    def _try_add_entry(self, bucket: int, entry: Any) -> bool:
        """Place ``entry`` in the first free slot of ``bucket``; False if full."""
        self._ensure_writable()
        if isinstance(entry, VectorEntry):
            slot = self.buckets.try_add(bucket, entry.fp, None)
            if slot < 0:
                return False
            self._avecs[bucket, slot] = entry.avec
        else:
            slot = self.buckets.try_add(bucket, entry.fp, entry)
            if slot < 0:
                return False
            self._avecs[bucket, slot] = self._avec_empty
            self._num_payload_slots += 1
        self._flags[bucket, slot] = entry.matching
        return True

    def _clear_entry(self, bucket: int, slot: int) -> None:
        """Free (bucket, slot), resetting every parallel column."""
        self._ensure_writable()
        if self.buckets.payloads[bucket * self.buckets.bucket_size + slot] is not None:
            self._num_payload_slots -= 1
        self.buckets.clear_slot(bucket, slot)
        self._avecs[bucket, slot] = self._avec_empty
        self._flags[bucket, slot] = True

    # ------------------------------------------------------------------
    # Pair-level storage helpers
    # ------------------------------------------------------------------

    def _fp_count_in_pair(self, left: int, right: int, fingerprint: int) -> int:
        """Number of slots in the pair holding ``fingerprint``."""
        count = self.buckets.count_in_bucket(left, fingerprint)
        if right != left:
            count += self.buckets.count_in_bucket(right, fingerprint)
        return count

    def _fp_entries_in_pair(self, left: int, right: int, fingerprint: int) -> list[Any]:
        """Entries in the pair whose fingerprint matches (one per slot).

        Reads the live fingerprint column directly — this is the innermost
        loop of every scalar query.
        """
        matches: list[Any] = []
        for bucket in (left,) if right == left else (left, right):
            row = self.buckets.fps[bucket].tolist()
            for slot, fp in enumerate(row):
                if fp == fingerprint:
                    matches.append(self.entry_at(bucket, slot))
        return matches

    def _place_in_pair(self, left: int, right: int, entry: Any) -> bool:
        """Algorithm 4's placement: prefer ``left``, then kick within ``right``.

        Kicks swap the in-flight item into the victim's slot and continue
        with the victim at *its* alternate bucket — which is always the other
        bucket of the victim's own pair, so per-pair fingerprint counts are
        invariant under kicking (the structural core of Lemma 1).  On
        MaxKicks exhaustion the in-flight victim is stashed (queries consult
        the stash) and the structure is flagged failed.
        """
        if self._try_add_entry(left, entry):
            return True
        current = right
        item = entry
        for _ in range(self.params.max_kicks):
            if self._try_add_entry(current, item):
                return True
            victim_slot = self._rng.randrange(self.buckets.bucket_size)
            victim = self.entry_at(current, victim_slot)
            self._store_entry(current, victim_slot, item)
            item = victim
            current = self.alt_index(current, item.fp)
            self.num_kicks += 1
        self.stash.append(item)
        self.failed = True
        return False

    # ------------------------------------------------------------------
    # Predicate compilation and entry matching
    # ------------------------------------------------------------------

    def compile(self, predicate: Predicate | None) -> CompiledQuery | None:
        """Compile a predicate against this CCF's schema.

        Returns None for key-only queries (no predicate, or a predicate with
        no constraints).  Raises ``KeyError`` if the predicate touches a
        column the schema does not sketch, and
        :class:`~repro.ccf.predicates.UnsupportedPredicateError` for
        un-binned range predicates.
        """
        return compile_predicate(self.schema, self.fingerprinter, predicate)

    def _entry_matches(self, entry: Any, compiled: CompiledQuery | None) -> bool:
        """Does this entry's attribute sketch admit the compiled predicate?"""
        if compiled is None:
            return True
        if not entry.matching:
            return False
        if isinstance(entry, VectorEntry):
            avec = entry.avec
            for attr_index, _values, fps in compiled.constraints:
                if avec[attr_index] not in fps:
                    return False
            return True
        if isinstance(entry, BloomEntry):
            bloom = entry.bloom
            for attr_index, values, _fps in compiled.constraints:
                if not any((attr_index, value) in bloom for value in values):
                    return False
            return True
        if isinstance(entry, GroupSlot):
            bloom = entry.group.bloom
            for attr_index, _values, fps in compiled.constraints:
                if not any((attr_index, fp) in bloom for fp in fps):
                    return False
            return True
        raise TypeError(f"unknown entry type {type(entry).__name__}")

    def _resolve_compiled(
        self, predicate: Predicate | CompiledQuery | None
    ) -> CompiledQuery | None:
        if predicate is None or isinstance(predicate, CompiledQuery):
            return predicate
        return self.compile(predicate)

    def _payload_matcher(self, compiled: CompiledQuery) -> Callable[[Any], bool]:
        """Per-predicate matcher for payload (non-vector) slots, LRU-cached.

        Variants with payload entries precompute the predicate's Bloom
        probe positions once per compiled query (`_build_payload_matcher`);
        the small LRU keeps recently used predicates warm so alternating
        predicates don't recompute every batch.
        """
        cache = self._matcher_cache
        matcher = cache.get(compiled)
        if matcher is None:
            matcher = self._build_payload_matcher(compiled)
            cache[compiled] = matcher
            if len(cache) > MATCHER_CACHE_SIZE:
                cache.popitem(last=False)
        else:
            cache.move_to_end(compiled)
        return matcher

    def _build_payload_matcher(self, compiled: CompiledQuery) -> Callable[[Any], bool]:
        """Uncached `_payload_matcher` body; variants specialise."""
        return lambda entry: self._entry_matches(entry, compiled)

    # ------------------------------------------------------------------
    # Shared statistics
    # ------------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        """Number of occupied slots (the paper's Z')."""
        return self.buckets.filled

    def load_factor(self) -> float:
        """Fraction of slots occupied."""
        return self.buckets.load_factor()

    def slot_bits(self) -> int:
        """Bits per table slot under the paper's size accounting."""
        raise NotImplementedError

    def size_in_bits(self) -> int:
        """Total sketch size: slots plus any stashed overflow entries."""
        return (self.buckets.capacity + len(self.stash)) * self.slot_bits()

    def size_in_bytes(self) -> float:
        """Total sketch size in bytes."""
        return self.size_in_bits() / 8

    # ------------------------------------------------------------------
    # Insert / query interface
    # ------------------------------------------------------------------
    # Scalar `insert`/`query` and the batch `insert_many`/`query_many` are
    # thin wrappers over one pair of per-variant kernels (`_insert_hashed`,
    # `_query_hashed`) operating on precomputed hashes, so both paths share
    # a single policy implementation and stay bit-identical by construction.

    #: Whether `_insert_hashed` consumes precomputed attribute fingerprint
    #: vectors (False for the Bloom CCF, which sketches raw values instead).
    _needs_avec: bool = True

    def insert(self, key: object, attrs: Mapping[str, Any] | Sequence[Any]) -> bool:
        """Insert a (key, attribute row) under the variant's policy."""
        values = self.schema.row_values(attrs)
        return self._insert_hashed(
            self.geometry.fingerprint_of(key), self.geometry.home_index(key), values, None
        )

    def _insert_hashed(
        self,
        fingerprint: int,
        home: int,
        values: tuple[Any, ...] | None,
        avec: tuple[int, ...] | None,
    ) -> bool:
        """Insertion policy on precomputed hashes; subclasses implement.

        Exactly one of ``values`` (raw attribute row) / ``avec`` (its
        fingerprint vector) may be None: vector-storing variants derive
        ``avec`` from ``values`` when not supplied, the Bloom variant only
        reads ``values``.
        """
        raise NotImplementedError

    def insert_many(
        self,
        keys: Sequence[object] | np.ndarray,
        attr_columns: Sequence[Sequence[Any] | np.ndarray],
    ) -> np.ndarray:
        """Insert a batch of rows given column-major attributes.

        ``attr_columns`` holds one column per schema attribute, each as long
        as ``keys``.  Key and attribute hashing run in vectorised passes;
        the residual placement loop is sequential (placements displace
        earlier entries).  Filter state, stash contents, statistics counters
        and the returned per-row results are bit-identical to calling
        `insert` row by row.
        """
        columns = list(attr_columns)
        num_rows = len(keys)
        validate_attr_columns(columns, self.schema.num_attributes, num_rows)
        fps = self.geometry.fingerprints_of_many(keys)
        homes = self.geometry.home_indices_of_many(keys)
        if self._needs_avec:
            return self._insert_hashed_rows(fps, homes, self.fingerprinter.vectors_many(columns))
        out = np.empty(num_rows, dtype=bool)
        native = [as_native_list(column) for column in columns]
        for i, (fp, home) in enumerate(zip(fps.tolist(), homes.tolist())):
            values = tuple(column[i] for column in native)
            out[i] = self._insert_hashed(fp, home, values, None)
        return out

    def _insert_hashed_rows(
        self,
        fps: np.ndarray,
        homes: np.ndarray,
        avecs: Sequence[tuple[int, ...]],
    ) -> np.ndarray:
        """Row loop over `_insert_hashed` on fully precomputed hashes.

        The entry point for callers that hash and fingerprint once for many
        structures (the sharded FilterStore scatters one vectorised pass
        across shard levels through this kernel).  Bit-identical to scalar
        `insert` per row.
        """
        out = np.empty(len(fps), dtype=bool)
        for i, (fp, home) in enumerate(zip(fps.tolist(), homes.tolist())):
            out[i] = self._insert_hashed(fp, home, None, avecs[i])
        return out

    def query(self, key: object, predicate: Predicate | CompiledQuery | None = None) -> bool:
        """Membership test for ``key`` under an optional predicate."""
        compiled = self._resolve_compiled(predicate)
        return self._query_hashed(
            self.geometry.fingerprint_of(key), self.geometry.home_index(key), compiled
        )

    def _query_hashed(
        self, fingerprint: int, home: int, compiled: CompiledQuery | None
    ) -> bool:
        """Query policy on precomputed hashes; subclasses implement."""
        raise NotImplementedError

    def query_many(
        self,
        keys: Sequence[object] | np.ndarray,
        predicate: Predicate | CompiledQuery | None = None,
    ) -> np.ndarray:
        """Batch membership test under one (compiled-once) predicate.

        Answers are bit-identical to per-key `query` calls; hashing and —
        for the single-pair variants — the table probe itself are fully
        vectorised against the live slot columns (no snapshot rebuild,
        whatever mutations happened since the last batch).
        """
        compiled = self._resolve_compiled(predicate)
        fps = self.geometry.fingerprints_of_many(keys)
        homes = self.geometry.home_indices_of_many(keys)
        answers = self._query_hashed_many(fps, homes, compiled)
        if obs.state.enabled and answers.size:
            hits = int(np.count_nonzero(answers))
            _CCF_HITS.labels(kind=self.kind).inc(hits)
            _CCF_MISSES.labels(kind=self.kind).inc(int(answers.size) - hits)
        return answers

    def _query_hashed_many(
        self,
        fps: np.ndarray,
        homes: np.ndarray,
        compiled: CompiledQuery | None,
        alts: np.ndarray | None = None,
    ) -> np.ndarray:
        """Batch query kernel; the base fallback runs the scalar kernel.

        ``alts`` optionally carries precomputed partner-bucket indices
        (shared-geometry callers like the FilterStore hash once and fan
        out); kernels that don't use them may ignore the argument.
        """
        return self._scalar_batch_query(fps, homes, compiled)

    def _scalar_batch_query(
        self, fps: np.ndarray, homes: np.ndarray, compiled: CompiledQuery | None
    ) -> np.ndarray:
        """Row-by-row batch evaluation through the scalar kernel."""
        return np.fromiter(
            (
                self._query_hashed(fp, home, compiled)
                for fp, home in zip(fps.tolist(), homes.tolist())
            ),
            dtype=bool,
            count=len(fps),
        )

    def contains_key(self, key: object) -> bool:
        """Key-only membership test (no predicate)."""
        return self.query(key, None)

    def contains_key_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch key-only membership test."""
        return self.query_many(keys, None)

    def delete(self, key: object, attrs: Mapping[str, Any] | Sequence[Any]) -> bool:
        """Remove one stored (key, attribute row); True if a row was removed.

        Only variants with ``supports_deletion`` implement this: entries must
        be removable row-by-row, which rules out Bloom sketches (can't
        unlearn), converted groups (shared payloads) and chained placement
        (removing a copy from a d-full pair would let later queries stop
        walking early, breaking no-false-negatives).  The usual cuckoo
        caveat applies: only delete rows known to have been inserted, or a
        colliding row's entry may be removed instead.
        """
        values = self.schema.row_values(attrs)
        return self._delete_hashed(
            self.geometry.fingerprint_of(key),
            self.geometry.home_index(key),
            self.fingerprinter.vector(values),
        )

    def delete_many(
        self,
        keys: Sequence[object] | np.ndarray,
        attr_columns: Sequence[Sequence[Any] | np.ndarray],
    ) -> np.ndarray:
        """Batch `delete`: vectorised hashing, sequential removals."""
        columns = list(attr_columns)
        validate_attr_columns(columns, self.schema.num_attributes, len(keys))
        fps = self.geometry.fingerprints_of_many(keys)
        homes = self.geometry.home_indices_of_many(keys)
        return self._delete_hashed_rows(fps, homes, self.fingerprinter.vectors_many(columns))

    def _delete_hashed_rows(
        self,
        fps: np.ndarray,
        homes: np.ndarray,
        avecs: Sequence[tuple[int, ...]],
    ) -> np.ndarray:
        """Row loop over `_delete_hashed` on precomputed hashes."""
        out = np.empty(len(fps), dtype=bool)
        for i, (fp, home) in enumerate(zip(fps.tolist(), homes.tolist())):
            out[i] = self._delete_hashed(fp, home, avecs[i])
        return out

    def _delete_hashed(self, fingerprint: int, home: int, avec: tuple[int, ...]) -> bool:
        """Removal kernel; only deletion-capable variants implement it."""
        raise NotImplementedError(
            f"{self.kind} CCFs cannot delete entries (sketched rows cannot be unlearned)"
        )

    def _stash_matches(self, fingerprint: int, compiled: CompiledQuery | None) -> bool:
        return any(
            entry.fp == fingerprint and self._entry_matches(entry, compiled)
            for entry in self.stash
        )

    # ------------------------------------------------------------------
    # Vectorised probe machinery shared by the batch query kernels
    # ------------------------------------------------------------------

    def _eq_under_predicate(
        self, bucket_indices: np.ndarray, eq: np.ndarray, compiled: CompiledQuery
    ) -> np.ndarray:
        """AND a fingerprint-equality mask with predicate admissibility.

        ``eq`` is the ``(n, b)`` equality mask of the probed buckets
        ``bucket_indices``.  Admissibility is evaluated *only on the slots
        whose fingerprint matched* — O(batch + hits), never O(table):
        vector slots test their attribute-fingerprint columns vectorised,
        payload slots run the (cached) per-predicate matcher on their live
        objects, so in-place payload mutations are always visible.
        """
        out = np.zeros_like(eq)
        rows, slots = np.nonzero(eq)
        if rows.size == 0:
            return out
        hit_buckets = bucket_indices[rows]
        avec_rows = self._avecs[hit_buckets, slots]
        vec_ok = self._flags[hit_buckets, slots].copy()
        for (attr_index, _values, _fps), fp_array in zip(
            compiled.constraints, compiled.fp_arrays
        ):
            vec_ok &= np.isin(avec_rows[:, attr_index], fp_array)
        if self._num_payload_slots:
            payloads = self.buckets.payloads
            size = self.buckets.bucket_size
            flat = (hit_buckets * size + slots).tolist()
            objs = [payloads[i] for i in flat]
            if any(obj is not None for obj in objs):
                matcher = self._payload_matcher(compiled)
                admissible = np.fromiter(
                    (
                        vec_ok[i] if obj is None else matcher(obj)
                        for i, obj in enumerate(objs)
                    ),
                    dtype=bool,
                    count=len(objs),
                )
            else:
                admissible = vec_ok
        else:
            admissible = vec_ok
        out[rows, slots] = admissible
        return out

    def _matching_stash_fps(self, compiled: CompiledQuery | None) -> np.ndarray | None:
        """Fingerprints of stashed entries admitting ``compiled``, or None."""
        if not self.stash:
            return None
        fps = [e.fp for e in self.stash if self._entry_matches(e, compiled)]
        if not fps:
            return None
        return np.array(fps, dtype=np.int64)

    def _pair_probe(
        self,
        fps: np.ndarray,
        homes: np.ndarray,
        compiled: CompiledQuery | None,
        alts: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Fused probe of each key's first bucket pair.

        Returns ``(hit, eq_home, eq_alt, alts)``: the per-key match verdict
        (table match under the predicate, or a matching stash entry), the
        per-slot fingerprint-equality masks of both buckets, and the partner
        bucket indices — the raw material both the single-pair kernel and
        the chained hybrid kernel build on.  Home and alternate rows are
        gathered in one ``take`` over the live (width-adaptive) fingerprint
        column (`SlotMatrix.pair_eq`, dispatched to the active kernel
        backend — see `repro.kernels`); no snapshot is built.  Callers that
        already computed the partner indices (the FilterStore fans one
        hashing pass across many levels) pass ``alts`` to skip the re-hash.
        """
        if alts is None:
            alts = self.geometry.alt_indices_many(homes, fps)
        eq = self.buckets.pair_eq(fps, homes, alts)
        eq_home = eq[:, 0]
        eq_alt = eq[:, 1]
        if compiled is None:
            hit = eq.any(axis=(1, 2))
        else:
            hit = self._eq_under_predicate(homes, eq_home, compiled).any(axis=1)
            hit |= self._eq_under_predicate(alts, eq_alt, compiled).any(axis=1)
        stash_fps = self._matching_stash_fps(compiled)
        if stash_fps is not None:
            stash_hit = np.isin(fps, stash_fps)
            if obs.state.enabled:
                rescued = int(np.count_nonzero(stash_hit & ~hit))
                if rescued:
                    _STASH_HITS.labels(kind=self.kind).inc(rescued)
            hit |= stash_hit
        return hit, eq_home, eq_alt, alts

    def _single_pair_query_many(
        self,
        fps: np.ndarray,
        homes: np.ndarray,
        compiled: CompiledQuery | None,
        alts: np.ndarray | None = None,
    ) -> np.ndarray:
        """Fully vectorised one-bucket-pair probe (plain/mixed/bloom CCFs)."""
        hit, _eq_home, _eq_alt, _alts = self._pair_probe(fps, homes, compiled, alts)
        return hit

    # ------------------------------------------------------------------
    # Introspection for tests and experiments
    # ------------------------------------------------------------------

    def pair_fingerprint_counts(self) -> dict[tuple[int, int], int]:
        """Map (pair id, fingerprint) -> slot count, for invariant checking."""
        counts: dict[tuple[int, int], int] = {}
        for bucket, _slot, fp, _payload in self.buckets.iter_entries():
            alt = self.alt_index(bucket, fp)
            pair_id = bucket if bucket < alt else alt
            counter_key = (pair_id, fp)
            counts[counter_key] = counts.get(counter_key, 0) + 1
        return counts

    def _max_copies_per_pair(self) -> int:
        """The invariant cap on same-fingerprint slots in one pair."""
        return self.params.max_dupes

    def check_invariants(self) -> None:
        """Assert the per-pair fingerprint cap (Lemma 1 for capped variants)."""
        cap = self._max_copies_per_pair()
        for (pair_id, fingerprint), count in self.pair_fingerprint_counts().items():
            if count > cap:
                raise AssertionError(
                    f"pair {pair_id} holds {count} > cap={cap} copies of fingerprint "
                    f"{fingerprint:#x} in a {self.kind} CCF"
                )

    def __contains__(self, key: object) -> bool:
        """Container protocol: key-only membership (no predicate)."""
        return self.contains_key(key)

    def __len__(self) -> int:
        """Number of rows this filter represents (`num_rows_inserted`).

        Deduplicated and chain-discarded rows still count: both keep
        answering True, so the filter logically contains them.
        """
        return self.num_rows_inserted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(buckets={self.buckets.num_buckets}, "
            f"b={self.params.bucket_size}, entries={self.num_entries}, "
            f"load={self.load_factor():.3f}, failed={self.failed})"
        )
