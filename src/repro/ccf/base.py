"""Shared machinery for all conditional cuckoo filter variants (§5-§6).

Every CCF is a bucketed table of entries addressed by partial-key cuckoo
hashing: a key ``k`` hashes to a home bucket ``l`` and a ``key_bits``-wide
fingerprint ``κ``; the partner bucket is ``l' = l XOR h(κ)``.  A *bucket
pair* ``(l, l')`` is the unit the paper reasons about: at most ``d``
(= ``max_dupes``) copies of one fingerprint may live in a pair (Lemma 1),
and the chained variant extends a key to further pairs via the one-way step
``l̃ = h(min(l, l'), κ)`` (§6.2).  All geometry lives in
:class:`~repro.ccf.chain.PairGeometry`; this base class adds storage, the
Algorithm 4 placement/kick loop, predicate compilation, and entry matching
for the three entry shapes.

The kick loop only ever relocates an entry between the two buckets of its
own pair — the structural property from which Lemma 1 follows.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, Mapping, Sequence

from repro.ccf.attributes import AttributeFingerprinter, AttributeSchema
from repro.ccf.chain import PairGeometry
from repro.ccf.entries import BloomEntry, GroupSlot, VectorEntry
from repro.ccf.params import CCFParams
from repro.ccf.predicates import Predicate
from repro.cuckoo.buckets import BucketArray
from repro.hashing.mixers import derive_seed


class CompiledQuery:
    """A predicate compiled against a CCF's schema and fingerprinter.

    ``constraints`` holds one triple per constrained attribute:
    ``(attribute index, admissible raw values, admissible fingerprints)``.
    Compiling once and reusing across many keys is the intended hot path.
    """

    __slots__ = ("constraints",)

    def __init__(self, constraints: Sequence[tuple[int, tuple, frozenset[int]]]) -> None:
        self.constraints = tuple(constraints)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledQuery({self.constraints!r})"


class ConditionalCuckooFilterBase:
    """Common storage, hashing, walking and matching for CCF variants."""

    #: Human-readable variant name, set by subclasses.
    kind: str = "base"

    @staticmethod
    def make_fingerprinter(schema: AttributeSchema, params: CCFParams) -> AttributeFingerprinter:
        """The attribute fingerprinter a CCF with these params will use.

        Exposed so sizing code can predict occupancy from distinct
        *fingerprint* vectors — the unit the filter actually stores — rather
        than distinct raw attribute vectors (small fingerprints dedupe
        colliding values, and predictions over raw values would overshoot).
        """
        return AttributeFingerprinter(
            schema,
            params.attr_bits,
            seed=derive_seed(params.seed, "ccf-attr"),
            small_value_optimization=params.small_value_optimization,
        )

    def __init__(self, schema: AttributeSchema, num_buckets: int, params: CCFParams) -> None:
        if num_buckets < 2:
            raise ValueError("a CCF needs at least 2 buckets")
        self.schema = schema
        self.params = params
        self.geometry = PairGeometry(num_buckets, params.key_bits, seed=params.seed)
        self.buckets = BucketArray(num_buckets, params.bucket_size)
        self.fingerprinter = self.make_fingerprinter(schema, params)
        self._bloom_salt = derive_seed(params.seed, "ccf-bloom")
        self._rng = random.Random(derive_seed(params.seed, "ccf-rng"))
        # Statistics and health flags.
        self.num_rows_inserted = 0
        self.num_rows_discarded = 0
        self.num_kicks = 0
        self.failed = False
        self.stash: list[Any] = []

    # ------------------------------------------------------------------
    # Geometry delegation (kept on the filter for API convenience)
    # ------------------------------------------------------------------

    def fingerprint_of(self, key: object) -> int:
        """Return the key fingerprint κ (``key_bits`` wide)."""
        return self.geometry.fingerprint_of(key)

    def home_index(self, key: object) -> int:
        """Return the primary bucket l for ``key``."""
        return self.geometry.home_index(key)

    def alt_index(self, index: int, fingerprint: int) -> int:
        """Return the partner bucket ``index XOR h(κ)`` (§4.2)."""
        return self.geometry.alt_index(index, fingerprint)

    def _pair_walk(self, home: int, fingerprint: int) -> Iterator[tuple[int, int]]:
        return self.geometry.pair_walk(home, fingerprint)

    def _walk_limit(self) -> int:
        """Maximum number of pairs any walk may visit.

        ``max_chain`` (Lmax) if set; otherwise the number of buckets, which
        upper-bounds the number of distinct pairs and acts as a safety cap
        for the "uncapped" configuration of the multiset experiments.
        """
        if self.params.max_chain is not None:
            return self.params.max_chain
        return self.buckets.num_buckets

    # ------------------------------------------------------------------
    # Pair-level storage helpers
    # ------------------------------------------------------------------

    def _pair_entries(self, left: int, right: int) -> list[Any]:
        """All entries in the pair's (up to) 2b slots."""
        entries = self.buckets.entries(left)
        if right != left:
            entries.extend(self.buckets.entries(right))
        return entries

    def _fp_slots_in_pair(self, left: int, right: int, fingerprint: int) -> list[Any]:
        """Entries in the pair whose fingerprint matches (one per slot).

        Reads the flat slot storage directly — this is the innermost loop of
        every query.
        """
        slots = self.buckets.storage
        size = self.buckets.bucket_size
        base = left * size
        matches = [
            e for e in slots[base : base + size] if e is not None and e.fp == fingerprint
        ]
        if right != left:
            base = right * size
            matches.extend(
                e for e in slots[base : base + size] if e is not None and e.fp == fingerprint
            )
        return matches

    def _place_in_pair(self, left: int, right: int, entry: Any) -> bool:
        """Algorithm 4's placement: prefer ``left``, then kick within ``right``.

        Kicks swap the in-flight item into the victim's slot and continue
        with the victim at *its* alternate bucket — which is always the other
        bucket of the victim's own pair, so per-pair fingerprint counts are
        invariant under kicking (the structural core of Lemma 1).  On
        MaxKicks exhaustion the in-flight victim is stashed (queries consult
        the stash) and the structure is flagged failed.
        """
        if self.buckets.try_add(left, entry):
            return True
        current = right
        item = entry
        for _ in range(self.params.max_kicks):
            if self.buckets.try_add(current, item):
                return True
            victim_slot = self._rng.randrange(self.buckets.bucket_size)
            victim = self.buckets.get_slot(current, victim_slot)
            self.buckets.set_slot(current, victim_slot, item)
            item = victim
            current = self.alt_index(current, item.fp)
            self.num_kicks += 1
        self.stash.append(item)
        self.failed = True
        return False

    # ------------------------------------------------------------------
    # Predicate compilation and entry matching
    # ------------------------------------------------------------------

    def compile(self, predicate: Predicate | None) -> CompiledQuery | None:
        """Compile a predicate against this CCF's schema.

        Returns None for key-only queries (no predicate, or a predicate with
        no constraints).  Raises ``KeyError`` if the predicate touches a
        column the schema does not sketch, and
        :class:`~repro.ccf.predicates.UnsupportedPredicateError` for
        un-binned range predicates.
        """
        if predicate is None:
            return None
        constraint_map = predicate.constraints()
        if not constraint_map:
            return None
        compiled = []
        for column, values in constraint_map.items():
            attr_index = self.schema.index_of(column)
            raw_values = tuple(values)
            fps = self.fingerprinter.candidate_fingerprints(attr_index, raw_values)
            compiled.append((attr_index, raw_values, fps))
        compiled.sort(key=lambda item: item[0])
        return CompiledQuery(compiled)

    def _entry_matches(self, entry: Any, compiled: CompiledQuery | None) -> bool:
        """Does this entry's attribute sketch admit the compiled predicate?"""
        if compiled is None:
            return True
        if not entry.matching:
            return False
        if isinstance(entry, VectorEntry):
            avec = entry.avec
            for attr_index, _values, fps in compiled.constraints:
                if avec[attr_index] not in fps:
                    return False
            return True
        if isinstance(entry, BloomEntry):
            bloom = entry.bloom
            for attr_index, values, _fps in compiled.constraints:
                if not any((attr_index, value) in bloom for value in values):
                    return False
            return True
        if isinstance(entry, GroupSlot):
            bloom = entry.group.bloom
            for attr_index, _values, fps in compiled.constraints:
                if not any((attr_index, fp) in bloom for fp in fps):
                    return False
            return True
        raise TypeError(f"unknown entry type {type(entry).__name__}")

    def _resolve_compiled(
        self, predicate: Predicate | CompiledQuery | None
    ) -> CompiledQuery | None:
        if predicate is None or isinstance(predicate, CompiledQuery):
            return predicate
        return self.compile(predicate)

    # ------------------------------------------------------------------
    # Shared statistics
    # ------------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        """Number of occupied slots (the paper's Z')."""
        return self.buckets.filled

    def load_factor(self) -> float:
        """Fraction of slots occupied."""
        return self.buckets.load_factor()

    def slot_bits(self) -> int:
        """Bits per table slot under the paper's size accounting."""
        raise NotImplementedError

    def size_in_bits(self) -> int:
        """Total sketch size: slots plus any stashed overflow entries."""
        return (self.buckets.capacity + len(self.stash)) * self.slot_bits()

    def size_in_bytes(self) -> float:
        """Total sketch size in bytes."""
        return self.size_in_bits() / 8

    # ------------------------------------------------------------------
    # Insert / query interface (subclass responsibility)
    # ------------------------------------------------------------------

    def insert(self, key: object, attrs: Mapping[str, Any] | Sequence[Any]) -> bool:
        """Insert a (key, attribute row); subclasses implement the policy."""
        raise NotImplementedError

    def query(self, key: object, predicate: Predicate | CompiledQuery | None = None) -> bool:
        """Membership test for ``key`` under an optional predicate."""
        raise NotImplementedError

    def contains_key(self, key: object) -> bool:
        """Key-only membership test (no predicate)."""
        return self.query(key, None)

    def _stash_matches(self, fingerprint: int, compiled: CompiledQuery | None) -> bool:
        return any(
            entry.fp == fingerprint and self._entry_matches(entry, compiled)
            for entry in self.stash
        )

    # ------------------------------------------------------------------
    # Introspection for tests and experiments
    # ------------------------------------------------------------------

    def pair_fingerprint_counts(self) -> dict[tuple[int, int], int]:
        """Map (pair id, fingerprint) -> slot count, for invariant checking."""
        counts: dict[tuple[int, int], int] = {}
        for bucket, _slot, entry in self.buckets.iter_entries():
            alt = self.alt_index(bucket, entry.fp)
            pair_id = bucket if bucket < alt else alt
            counter_key = (pair_id, entry.fp)
            counts[counter_key] = counts.get(counter_key, 0) + 1
        return counts

    def _max_copies_per_pair(self) -> int:
        """The invariant cap on same-fingerprint slots in one pair."""
        return self.params.max_dupes

    def check_invariants(self) -> None:
        """Assert the per-pair fingerprint cap (Lemma 1 for capped variants)."""
        cap = self._max_copies_per_pair()
        for (pair_id, fingerprint), count in self.pair_fingerprint_counts().items():
            if count > cap:
                raise AssertionError(
                    f"pair {pair_id} holds {count} > cap={cap} copies of fingerprint "
                    f"{fingerprint:#x} in a {self.kind} CCF"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(buckets={self.buckets.num_buckets}, "
            f"b={self.params.bucket_size}, entries={self.num_entries}, "
            f"load={self.load_factor():.3f}, failed={self.failed})"
        )
