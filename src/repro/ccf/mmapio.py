"""SEG1 segment files: zero-copy, memory-mapped persistence for CCF levels.

The CCF wire formats (`serialize.py`) bit-pack every slot, so loading pays a
full decode and the loaded filter is entirely resident.  That is the wrong
trade for the paper's serving regime (§2-§3: filters are built once and
served under heavy read traffic): cold-open latency and resident memory both
scale with store size.  A **segment** stores the same level as flat,
page-aligned raw arrays instead — exactly the in-memory SlotMatrix columns —
so opening one is O(metadata): each column becomes a read-only ``np.memmap``
and the OS pages slots in on first probe.  The existing vectorised kernels
run on the mapped columns unchanged; mutation promotes the filter to private
heap copies (copy-on-write, `ConditionalCuckooFilterBase._ensure_writable`),
never writing through to the file.

Layout of a ``.seg`` file (DESIGN.md §10)::

    [prelude: 24 bytes]  b"SEG1" | u32 version | u64 meta_offset | u64 meta_length
    [column "fps"]       npy header (space-padded)   | raw (m, b) matrix
    [column "counts"]    npy header                  | raw (m,) occupancy
    [column "avecs"]     npy header                  | raw (m, b, a) vectors
    [column "flags"]     npy header                  | raw (m, b) bools
    [meta: JSON]         params, schema, counters, stash, column table

Every column block is a *valid standalone .npy stream*: the standard numpy
magic and dict header, padded with spaces so the raw data starts on a
``PAGE_SIZE`` boundary.  External tools can decode a column with nothing but
the block offset; the open path maps the recorded ``data_offset`` directly.
The JSON metadata at the tail is the source of truth (offsets, dtypes,
shapes, filter parameters, stash entries); the prelude locates it in O(1).

Only vector-slot filters can be segmented — plain and chained CCFs, and in
particular every FilterStore level.  Bloom/mixed variants carry live Python
payload objects that have no columnar form; they keep the bit-packed wire
format.  Decode failures raise the same typed
:class:`~repro.ccf.serialize.SerializeError` as the wire formats, with file
and byte-offset context.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
from dataclasses import asdict
from pathlib import Path
from typing import Any

import numpy as np

from repro.ccf.attributes import AttributeSchema
from repro.ccf.base import ConditionalCuckooFilterBase
from repro.ccf.chain import PairGeometry
from repro.ccf.entries import VectorEntry
from repro.ccf.factory import make_ccf
from repro.ccf.params import CCFParams
from repro.ccf.serialize import SerializeError, crc32c
from repro.cuckoo.buckets import SlotMatrix, dtype_for_bits

MAGIC = b"SEG1"
VERSION = 1

#: Column data is aligned to this many bytes (a typical OS page), so mapped
#: columns start on page boundaries and direct-IO readers stay happy.
PAGE_SIZE = 4096

#: The four typed columns of a segmented level, in file order.
COLUMN_NAMES = ("fps", "counts", "avecs", "flags")

_PRELUDE = struct.Struct("<4sIQQ")
_NPY_MAGIC = b"\x93NUMPY\x01\x00"

#: Lazily bound `repro.store.faults` module (importing it at module scope
#: would cycle: repro.store.__init__ → store.segments → this module).
_faults = None


def _fault_hit(point: str) -> None:
    """Cross a durability fault-injection point (write path only)."""
    global _faults
    if _faults is None:
        from repro.store import faults

        _faults = faults
    _faults.hit(point)


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def _npy_header(arr: np.ndarray, block_offset: int) -> bytes:
    """A numpy-format 1.0 header padded so the data lands page-aligned.

    The .npy spec pads its dict header with spaces to any length below 64KiB;
    we exploit that to push the raw data to the next ``PAGE_SIZE`` boundary
    while keeping the block bit-for-bit loadable by ``numpy.lib.format``.
    """
    descr = np.lib.format.dtype_to_descr(arr.dtype)
    base = (
        f"{{'descr': {descr!r}, 'fortran_order': False, "
        f"'shape': {tuple(arr.shape)!r}, }}"
    ).encode("latin1")
    minimal = len(_NPY_MAGIC) + 2 + len(base) + 1  # trailing newline
    total = -((block_offset + minimal) // -PAGE_SIZE) * PAGE_SIZE - block_offset
    header_len = total - len(_NPY_MAGIC) - 2
    if header_len > 0xFFFF:  # pragma: no cover - needs a pathological shape
        raise ValueError("npy header does not fit the 1.0 format")
    padded = base + b" " * (header_len - len(base) - 1) + b"\n"
    return _NPY_MAGIC + struct.pack("<H", header_len) + padded


def _segment_columns(ccf: ConditionalCuckooFilterBase) -> dict[str, np.ndarray]:
    return {
        "fps": ccf.buckets.fps,
        "counts": ccf.buckets.counts,
        "avecs": ccf._avecs,
        "flags": ccf._flags,
    }


def write_segment(
    ccf: ConditionalCuckooFilterBase,
    path: str | Path,
    checksums: bool = False,
    fsync: bool = False,
) -> Path:
    """Write ``ccf`` to a SEG1 segment file at ``path``.

    The filter must hold only vector slots (plain/chained CCFs; every
    FilterStore level qualifies) — payload slots carry live Python objects
    with no columnar representation and raise ``TypeError``.  Writing a
    *mapped* filter works and simply streams the mapped columns through.

    ``checksums=True`` records a CRC32C per column block in the metadata
    table; :func:`open_segment` then verifies each column as it maps.  It
    is opt-in (FilterStore checkpoints use it) so default snapshots stay
    byte-identical to pre-checksum writers.  ``fsync=True`` forces the
    finished file to stable storage before returning — required when the
    segment sits below a commit point, as in a checkpoint.
    """
    if ccf._num_payload_slots:
        raise TypeError(
            f"cannot segment a {ccf.kind} CCF holding {ccf._num_payload_slots} "
            "payload (Bloom/group) slots; use repro.ccf.serialize for those"
        )
    for entry in ccf.stash:
        if not isinstance(entry, VectorEntry):
            raise TypeError(
                f"cannot segment a stash holding {type(entry).__name__} entries"
            )
    path = Path(path)
    meta: dict[str, Any] = {
        "format": MAGIC.decode("ascii"),
        "version": VERSION,
        "page_size": PAGE_SIZE,
        "kind": ccf.kind,
        "params": asdict(ccf.params),
        "schema": list(ccf.schema.names),
        "counters": {
            "num_rows_inserted": ccf.num_rows_inserted,
            "num_rows_discarded": ccf.num_rows_discarded,
            "num_kicks": ccf.num_kicks,
            "failed": bool(ccf.failed),
        },
        "stash": [
            [entry.fp, list(entry.avec), bool(entry.matching)] for entry in ccf.stash
        ],
    }
    columns = _segment_columns(ccf)
    with open(path, "wb") as f:
        f.write(_PRELUDE.pack(MAGIC, VERSION, 0, 0))
        table: dict[str, dict] = {}
        for name in COLUMN_NAMES:
            arr = np.ascontiguousarray(columns[name])
            block_offset = f.tell()
            f.write(_npy_header(arr, block_offset))
            data_offset = f.tell()
            arr.tofile(f)
            table[name] = {
                "block_offset": block_offset,
                "data_offset": data_offset,
                "dtype": np.lib.format.dtype_to_descr(arr.dtype),
                "shape": list(arr.shape),
                "nbytes": int(arr.nbytes),
            }
            if checksums:
                table[name]["crc32c"] = crc32c(arr)
        _fault_hit("segment.write.columns")
        meta["columns"] = table
        meta_offset = f.tell()
        payload = json.dumps(meta, sort_keys=True).encode("utf-8")
        f.write(payload)
        f.seek(0)
        f.write(_PRELUDE.pack(MAGIC, VERSION, meta_offset, len(payload)))
        if fsync:
            f.flush()
            os.fsync(f.fileno())
        _fault_hit("segment.write.meta")
    return path


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


def read_segment_meta(path: str | Path) -> dict:
    """Parse and validate a segment's prelude + JSON metadata (no mapping).

    O(metadata): reads the 24-byte prelude and the JSON tail, nothing else.
    This is what the lazy FilterStore open and the ``inspect`` CLI use.
    Raises :class:`SerializeError` with file/byte-offset context for any
    structural problem (bad magic, truncation, meta out of bounds).
    """
    path = Path(path)
    source = str(path)
    try:
        size = path.stat().st_size
    except OSError as exc:
        raise SerializeError(f"cannot stat segment: {exc}", source=source) from exc
    with open(path, "rb") as f:
        prelude = f.read(_PRELUDE.size)
        if len(prelude) < _PRELUDE.size:
            raise SerializeError(
                f"file is {size} bytes, too short for a SEG1 prelude",
                source=source,
                offset=0,
                offset_unit="bytes",
            )
        magic, version, meta_offset, meta_length = _PRELUDE.unpack(prelude)
        if magic != MAGIC:
            raise SerializeError(
                f"unrecognised magic header {magic!r}",
                source=source,
                offset=0,
                offset_unit="bytes",
            )
        if version != VERSION:
            raise SerializeError(
                f"unsupported SEG1 version {version}",
                source=source,
                offset=4,
                offset_unit="bytes",
            )
        if meta_offset == 0 or meta_offset + meta_length > size:
            raise SerializeError(
                f"metadata block [{meta_offset}, {meta_offset + meta_length}) "
                f"lies outside the {size}-byte file (torn write?)",
                source=source,
                offset=8,
                offset_unit="bytes",
            )
        f.seek(meta_offset)
        raw = f.read(meta_length)
    try:
        meta = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializeError(
            f"corrupt segment metadata: {exc}",
            source=source,
            offset=meta_offset,
            offset_unit="bytes",
        ) from exc
    for key in ("kind", "params", "schema", "counters", "stash", "columns"):
        if key not in meta:
            raise SerializeError(
                f"segment metadata is missing the {key!r} field",
                source=source,
                offset=meta_offset,
                offset_unit="bytes",
            )
    missing = [name for name in COLUMN_NAMES if name not in meta["columns"]]
    if missing:
        raise SerializeError(
            f"segment metadata is missing columns {missing}",
            source=source,
            offset=meta_offset,
            offset_unit="bytes",
        )
    for name in COLUMN_NAMES:
        spec = meta["columns"][name]
        try:
            dtype = np.dtype(spec["dtype"])
            shape = [int(extent) for extent in spec["shape"]]
            nbytes = int(spec["nbytes"])
            data_offset = int(spec["data_offset"])
        except (TypeError, ValueError, KeyError) as exc:
            raise SerializeError(
                f"column {name!r} has malformed metadata: {exc}",
                source=source,
                offset=meta_offset,
                offset_unit="bytes",
            ) from exc
        expected_nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        if nbytes != expected_nbytes or any(extent < 0 for extent in shape):
            raise SerializeError(
                f"column {name!r} records {nbytes} bytes but shape "
                f"{shape} of {spec['dtype']} needs {expected_nbytes}",
                source=source,
                offset=data_offset,
                offset_unit="bytes",
            )
        end = data_offset + nbytes
        if end > size:
            raise SerializeError(
                f"column {name!r} extends to byte {end}, past the "
                f"{size}-byte file (truncated?)",
                source=source,
                offset=data_offset,
                offset_unit="bytes",
            )
    meta["file_size"] = size
    return meta


def _map_column(path: Path, spec: dict) -> np.ndarray:
    return np.memmap(
        path,
        dtype=np.dtype(spec["dtype"]),
        mode="r",
        offset=spec["data_offset"],
        shape=tuple(spec["shape"]),
        order="C",
    )


def open_segment(
    path: str | Path, verify: bool | None = None
) -> ConditionalCuckooFilterBase:
    """Open a SEG1 segment as a queryable CCF, zero-copy.

    Every typed column becomes a read-only ``np.memmap``; no slot data is
    read until a probe touches it, so open cost is O(metadata) regardless of
    table size.  The returned filter answers ``query``/``query_many``/
    ``contains_key_many`` bit-identically to the filter that was written;
    the first mutation (insert/delete) copy-on-write-promotes all columns to
    private heap arrays.

    ``verify`` controls CRC32C validation of column blocks written with
    ``write_segment(checksums=True)``: ``None`` (default) verifies exactly
    the columns that carry a checksum — unchecksummed segments keep their
    O(metadata) open; ``True`` additionally *requires* every column to be
    checksummed (a durable baseline must not silently lose its checksums);
    ``False`` skips validation.  Verifying pages a column in, so a durable
    recovery doubles as a warm-up.
    """
    path = Path(path)
    source = str(path)
    meta = read_segment_meta(path)
    try:
        params = CCFParams(**meta["params"])
        schema = AttributeSchema(meta["schema"])
    except (TypeError, ValueError) as exc:
        raise SerializeError(
            f"segment metadata holds invalid parameters: {exc}", source=source
        ) from exc
    specs = meta["columns"]
    num_buckets, bucket_size = specs["fps"]["shape"]
    expected = {
        "fps": (
            [num_buckets, bucket_size],
            dtype_for_bits(params.key_bits) if params.packed else np.dtype(np.int64),
        ),
        "counts": ([num_buckets], None),
        "avecs": (
            [num_buckets, bucket_size, schema.num_attributes],
            dtype_for_bits(params.attr_bits) if params.packed else np.dtype(np.int64),
        ),
        "flags": ([num_buckets, bucket_size], np.dtype(np.bool_)),
    }
    for name, (shape, dtype) in expected.items():
        spec = specs[name]
        if spec["shape"] != shape:
            raise SerializeError(
                f"column {name!r} has shape {spec['shape']}, expected {shape}",
                source=source,
                offset=spec["data_offset"],
                offset_unit="bytes",
            )
        if dtype is not None and np.dtype(spec["dtype"]) != dtype:
            raise SerializeError(
                f"column {name!r} has dtype {spec['dtype']}, expected "
                f"{np.lib.format.dtype_to_descr(np.dtype(dtype))}",
                source=source,
                offset=spec["data_offset"],
                offset_unit="bytes",
            )
    if bucket_size != params.bucket_size:
        raise SerializeError(
            f"fps matrix is {bucket_size} slots wide, params say "
            f"{params.bucket_size}",
            source=source,
        )

    # Build a minimal shell (2 buckets — the smallest legal table) and swap
    # in the real geometry and the mapped columns, so open never allocates
    # table-sized heap arrays.  The payload column stays None until a
    # mutation promotes the filter (DESIGN.md §10).
    ccf = make_ccf(meta["kind"], schema, 2, params)
    ccf.geometry = PairGeometry(num_buckets, params.key_bits, seed=params.seed)
    try:
        mapped = {name: _map_column(path, specs[name]) for name in COLUMN_NAMES}
    except (ValueError, OSError) as exc:
        raise SerializeError(
            f"inconsistent segment columns: {exc}", source=source
        ) from exc
    if verify is not False:
        for name in COLUMN_NAMES:
            recorded = specs[name].get("crc32c")
            if recorded is None:
                if verify:
                    raise SerializeError(
                        f"column {name!r} carries no checksum but "
                        "verification was required",
                        source=source,
                        offset=specs[name]["data_offset"],
                        offset_unit="bytes",
                    )
                continue
            actual = crc32c(mapped[name])
            if actual != recorded:
                raise SerializeError(
                    f"column {name!r} fails its checksum "
                    f"(recorded {recorded:#010x}, computed {actual:#010x}) — "
                    "the block is corrupt",
                    source=source,
                    offset=specs[name]["data_offset"],
                    offset_unit="bytes",
                )
    try:
        ccf.buckets = SlotMatrix.from_columns(
            mapped["fps"],
            mapped["counts"],
            fp_bits=params.key_bits if params.packed else None,
        )
        ccf._avecs = mapped["avecs"]
        ccf._flags = mapped["flags"]
    except (ValueError, OSError) as exc:
        raise SerializeError(
            f"inconsistent segment columns: {exc}", source=source
        ) from exc
    ccf._num_payload_slots = 0
    ccf._readonly = True
    counters = meta["counters"]
    ccf.num_rows_inserted = int(counters["num_rows_inserted"])
    ccf.num_rows_discarded = int(counters["num_rows_discarded"])
    ccf.num_kicks = int(counters["num_kicks"])
    ccf.failed = bool(counters["failed"])
    ccf.stash = [
        VectorEntry(int(fp), tuple(int(a) for a in avec), bool(matching))
        for fp, avec, matching in meta["stash"]
    ]
    return ccf


def warm_column(arr: np.ndarray) -> int:
    """Prefault a mapped column into the page cache; returns bytes warmed.

    Serving pools call this once before forking/spawning workers: the pages
    land in the (shared) OS page cache, so N workers attaching the same
    segment afterwards pay no per-worker IO — the multi-process zero-copy
    contract of DESIGN.md §10/§11.  ``madvise(WILLNEED)`` asks the kernel to
    read ahead where available; the strided touch below guarantees residency
    either way.  Heap (non-mapped) arrays are already resident and return 0.
    """
    if not isinstance(arr, np.memmap):
        return 0
    backing = getattr(arr, "_mmap", None)
    if backing is not None:
        try:
            backing.madvise(mmap.MADV_WILLNEED)
        except (AttributeError, ValueError, OSError):  # pragma: no cover - platform
            pass
    flat = np.ascontiguousarray(arr).reshape(-1).view(np.uint8) if arr.size else arr
    if flat.size:
        # One byte per page forces the fault-in without reading every byte.
        int(np.asarray(flat[::PAGE_SIZE]).sum())
    return int(arr.nbytes)


def segment_nbytes(meta: dict) -> dict[str, int]:
    """Per-column data byte sizes of a segment, from its parsed metadata."""
    return {name: int(meta["columns"][name]["nbytes"]) for name in COLUMN_NAMES}


def map_column(path: str | Path, meta: dict, name: str) -> np.ndarray:
    """Map one named column of a segment read-only (for tooling/inspection)."""
    if name not in meta["columns"]:
        raise SerializeError(
            f"segment has no column {name!r}", source=str(path)
        )
    return _map_column(Path(path), meta["columns"][name])
