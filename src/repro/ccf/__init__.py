"""Conditional cuckoo filters: the paper's core contribution (§5-§9).

Public surface:

* variants — :class:`PlainCCF`, :class:`ChainedCCF`, :class:`BloomCCF`,
  :class:`MixedCCF` (build via :func:`make_ccf` / :func:`build_ccf`);
* predicates — :class:`Eq`, :class:`In`, :class:`Range`, :class:`And`,
  :data:`TRUE`;
* range support — :class:`EquiSizeBinner`, :class:`DyadicDecomposer`;
* analysis — sizing and FPR estimators in :mod:`repro.ccf.sizing` and
  :mod:`repro.ccf.fpr`.
"""

from repro.ccf.attributes import AttributeFingerprinter, AttributeSchema
from repro.ccf.base import CompiledQuery, ConditionalCuckooFilterBase
from repro.ccf.binning import DyadicDecomposer, EquiSizeBinner, bin_predicate_for_ccf
from repro.ccf.bloom_ccf import BloomCCF
from repro.ccf.chain import PairGeometry
from repro.ccf.chained import ChainedCCF
from repro.ccf.factory import CCF_KINDS, build_ccf, make_ccf
from repro.ccf.mixed import MixedCCF
from repro.ccf.params import CCFParams, LARGE_PARAMS, SMALL_PARAMS
from repro.ccf.plain import PlainCCF
from repro.ccf.range_ccf import DyadicRangeCCF
from repro.ccf.predicates import (
    And,
    Eq,
    In,
    Predicate,
    Range,
    TRUE,
    TruePredicate,
    UnsupportedPredicateError,
)
from repro.ccf.mmapio import open_segment, read_segment_meta, write_segment
from repro.ccf.serialize import SerializeError, dumps, loads
from repro.ccf.views import ExtractedKeyFilter, MarkedKeyFilter

__all__ = [
    "And",
    "AttributeFingerprinter",
    "AttributeSchema",
    "BloomCCF",
    "CCFParams",
    "CCF_KINDS",
    "ChainedCCF",
    "CompiledQuery",
    "ConditionalCuckooFilterBase",
    "DyadicDecomposer",
    "DyadicRangeCCF",
    "Eq",
    "EquiSizeBinner",
    "ExtractedKeyFilter",
    "In",
    "LARGE_PARAMS",
    "MarkedKeyFilter",
    "MixedCCF",
    "PairGeometry",
    "PlainCCF",
    "Predicate",
    "Range",
    "SMALL_PARAMS",
    "SerializeError",
    "TRUE",
    "TruePredicate",
    "UnsupportedPredicateError",
    "bin_predicate_for_ccf",
    "build_ccf",
    "dumps",
    "loads",
    "make_ccf",
    "open_segment",
    "read_segment_meta",
    "write_segment",
]
