"""Predicate-only filter extraction — Algorithm 2 and its chained analogue.

Given only a predicate ``P`` (no key), a CCF can be *specialised* into a
key-only approximate membership filter for the set ``S_P`` of keys that have
a matching attribute row:

* :class:`ExtractedKeyFilter` (Bloom and Mixed CCFs, Algorithm 2): every
  entry whose attribute sketch cannot match ``P`` is simply erased; what
  remains is a plain cuckoo-filter bit pattern over the same geometry.
* :class:`MarkedKeyFilter` (chained CCFs, §6.2): erasing entries would open
  gaps in chains — a pair could drop below ``d`` copies and make queries
  stop probing early, yielding false negatives.  Instead every fingerprint
  is kept and non-matching entries carry a one-bit mark; lookups replay the
  chain walk counting marked and unmarked copies alike.

Both views share their source filter's :class:`~repro.ccf.chain.PairGeometry`
(the salts a real system would serialise alongside the table) but copy the
slot columns, so later source mutations don't leak into the view.  Storage
is columnar (a fingerprint :class:`~repro.cuckoo.buckets.SlotMatrix`; the
marked view adds a parallel bool marks matrix), so views ship exactly the
typed columns their wire format packs.
"""

from __future__ import annotations

import numpy as np

from repro.ccf.base import ConditionalCuckooFilterBase
from repro.ccf.chain import PairGeometry
from repro.ccf.predicates import Predicate
from repro.cuckoo.buckets import SlotMatrix


class ExtractedKeyFilter:
    """Key-only cuckoo filter extracted from a Bloom/Mixed CCF (Algorithm 2)."""

    def __init__(self, geometry: PairGeometry, bucket_size: int, packed: bool = True) -> None:
        self.geometry = geometry
        self.buckets = SlotMatrix(
            geometry.num_buckets, bucket_size, fp_bits=geometry.key_bits if packed else None
        )
        self.stash_fingerprints: list[int] = []

    @classmethod
    def from_ccf(cls, source: ConditionalCuckooFilterBase, predicate: Predicate) -> "ExtractedKeyFilter":
        """Erase non-matching entries of ``source`` into a key-only filter."""
        compiled = source.compile(predicate)
        view = cls(source.geometry, source.params.bucket_size, packed=source.params.packed)
        for bucket, slot, entry in source.iter_entries():
            if source._entry_matches(entry, compiled):
                view.buckets.set_slot(bucket, slot, entry.fp)
        for entry in source.stash:
            if source._entry_matches(entry, compiled):
                view.stash_fingerprints.append(entry.fp)
        return view

    def contains(self, key: object) -> bool:
        """Key-only membership against the extracted set (no false negatives)."""
        fingerprint = self.geometry.fingerprint_of(key)
        left = self.geometry.home_index(key)
        right = self.geometry.alt_index(left, fingerprint)
        if self.buckets.bucket_contains(left, fingerprint):
            return True
        if right != left and self.buckets.bucket_contains(right, fingerprint):
            return True
        return fingerprint in self.stash_fingerprints

    def contains_many(self, keys) -> np.ndarray:
        """Batch `contains`: one vectorised probe of both buckets per key.

        This is the hot call of the shipped-filter deployment (§2): the
        fact-table site probes every scan key against a few-KiB view, so the
        probe must not pay a Python loop per key.  Both buckets are gathered
        in one fused `SlotMatrix.pair_eq` probe at the packed width (the
        probe dispatches to the active kernel backend, `repro.kernels`).
        Answers are identical to scalar `contains` per key.
        """
        fps = self.geometry.fingerprints_of_many(keys)
        homes = self.geometry.home_indices_of_many(keys)
        alts = self.geometry.alt_indices_many(homes, fps)
        found = self.buckets.pair_eq(fps, homes, alts).any(axis=(1, 2))
        if self.stash_fingerprints:
            stash = np.fromiter(
                self.stash_fingerprints, dtype=np.int64, count=len(self.stash_fingerprints)
            )
            found |= np.isin(fps, stash)
        return found

    def __contains__(self, key: object) -> bool:
        return self.contains(key)

    @property
    def num_entries(self) -> int:
        """Number of surviving fingerprints."""
        return self.buckets.filled + len(self.stash_fingerprints)

    def load_factor(self) -> float:
        """Fraction of table slots occupied (stash excluded)."""
        return self.buckets.load_factor()

    def size_in_bits(self) -> int:
        """Size as a shipped artifact: one key fingerprint per slot."""
        return (self.buckets.capacity + len(self.stash_fingerprints)) * self.geometry.key_bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExtractedKeyFilter(entries={self.num_entries}, "
            f"load={self.load_factor():.3f})"
        )


class MarkedKeyFilter:
    """Chain-preserving predicate view of a chained CCF (§6.2).

    The fingerprint matrix keeps every copy; a parallel bool matrix holds
    the per-slot matching mark.  The lookup replays Algorithm 5's walk,
    counting every fingerprint copy toward the ``d`` continue-condition but
    reporting a hit only on marked copies.
    """

    def __init__(
        self,
        geometry: PairGeometry,
        bucket_size: int,
        max_dupes: int,
        max_chain: int | None,
        packed: bool = True,
    ) -> None:
        self.geometry = geometry
        self.buckets = SlotMatrix(
            geometry.num_buckets, bucket_size, fp_bits=geometry.key_bits if packed else None
        )
        self.marks = np.zeros((geometry.num_buckets, bucket_size), dtype=bool)
        self.max_dupes = max_dupes
        self.max_chain = max_chain
        self.stash_entries: list[tuple[int, bool]] = []

    def set_slot(self, bucket: int, slot: int, fp: int, matching: bool) -> None:
        """Store one (fingerprint, mark) pair."""
        self.buckets.set_slot(bucket, slot, fp)
        self.marks[bucket, slot] = matching

    @classmethod
    def from_ccf(cls, source: ConditionalCuckooFilterBase, predicate: Predicate) -> "MarkedKeyFilter":
        """Mark (not erase) entries of a chained CCF against ``predicate``."""
        compiled = source.compile(predicate)
        view = cls(
            source.geometry,
            source.params.bucket_size,
            source.params.max_dupes,
            source.params.max_chain,
            packed=source.params.packed,
        )
        for bucket, slot, entry in source.iter_entries():
            view.set_slot(bucket, slot, entry.fp, source._entry_matches(entry, compiled))
        for entry in source.stash:
            view.stash_entries.append((entry.fp, source._entry_matches(entry, compiled)))
        return view

    def _walk_limit(self) -> int:
        if self.max_chain is not None:
            return self.max_chain
        return self.geometry.num_buckets

    def contains(self, key: object) -> bool:
        """Key membership in the predicate-selected set (no false negatives)."""
        return self._contains_hashed(
            self.geometry.fingerprint_of(key), self.geometry.home_index(key)
        )

    def _contains_hashed(self, fingerprint: int, home: int) -> bool:
        """Lookup kernel on precomputed hashes (shared scalar/batch)."""
        stash_has_fp = False
        for stash_fp, matches in self.stash_entries:
            if stash_fp == fingerprint:
                if matches:
                    return True
                # A stashed copy means d-counts along this fingerprint's
                # chain may have decreased; disable the early stop below.
                stash_has_fp = True
        limit = self._walk_limit()
        walked = 0
        for left, right in self.geometry.pair_walk(home, fingerprint):
            if walked >= limit:
                break
            walked += 1
            copies = 0
            hit = False
            buckets = (left,) if left == right else (left, right)
            for bucket in buckets:
                row = self.buckets.fps[bucket].tolist()
                for slot, stored_fp in enumerate(row):
                    if stored_fp == fingerprint:
                        copies += 1
                        hit = hit or bool(self.marks[bucket, slot])
            if hit:
                return True
            if copies == self.max_dupes or stash_has_fp:
                continue
            return False
        # Lmax exhausted with every pair d-full: conservative True (Theorem 3).
        return True

    def contains_many(self, keys) -> np.ndarray:
        """Batch `contains`: hybrid kernel mirroring the chained CCF's.

        The first bucket pair is probed fully vectorised: a key resolves
        True if the pair holds a *marked* copy, and False if it holds fewer
        than ``d`` copies total (the scalar walk would stop there).  Only the
        residue — d-full first pairs of unmarked copies, or fingerprints
        with stashed entries — replays the scalar chain walk.  Answers are
        identical to scalar `contains` per key.
        """
        fps = self.geometry.fingerprints_of_many(keys)
        homes = self.geometry.home_indices_of_many(keys)
        alts = self.geometry.alt_indices_many(homes, fps)
        eq = self.buckets.pair_eq(fps, homes, alts)
        eq_home = eq[:, 0]
        eq_alt = eq[:, 1]
        marks = self.marks
        hit = (eq_home & marks[homes]).any(axis=1)
        hit |= (eq_alt & marks[alts]).any(axis=1)
        copies = eq_home.sum(axis=1)
        copies += np.where(alts == homes, 0, eq_alt.sum(axis=1))
        resolved_false = ~hit & (copies < self.max_dupes)
        if self.stash_entries:
            marked = [fp for fp, matching in self.stash_entries if matching]
            if marked:
                hit |= np.isin(fps, np.array(marked, dtype=np.int64))
            all_stash = np.array([fp for fp, _m in self.stash_entries], dtype=np.int64)
            resolved_false &= ~np.isin(fps, all_stash)
        out = hit.copy()
        for i in np.nonzero(~hit & ~resolved_false)[0]:
            out[i] = self._contains_hashed(int(fps[i]), int(homes[i]))
        return out

    def __contains__(self, key: object) -> bool:
        return self.contains(key)

    @property
    def num_entries(self) -> int:
        """Number of retained fingerprint slots (marked or not)."""
        return self.buckets.filled + len(self.stash_entries)

    def load_factor(self) -> float:
        """Fraction of table slots occupied (stash excluded)."""
        return self.buckets.load_factor()

    def num_matching(self) -> int:
        """Number of slots still marked as matching the predicate."""
        table = int((self.marks & self.buckets.occupied_mask()).sum())
        return table + sum(1 for _fp, m in self.stash_entries if m)

    def size_in_bits(self) -> int:
        """Size as a shipped artifact: fingerprint plus one marking bit."""
        return (self.buckets.capacity + len(self.stash_entries)) * (self.geometry.key_bits + 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MarkedKeyFilter(entries={self.num_entries}, "
            f"matching={self.num_matching()}, load={self.load_factor():.3f})"
        )
