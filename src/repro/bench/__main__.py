"""Command-line runner: regenerate the paper's experiments without pytest.

Usage::

    python -m repro.bench [--scale 0.002] [--runs 3] [--only fig4,fig8,...]

Prints every figure/table series (the same drivers the benchmark suite
uses) and writes JSON artifacts under ``bench_results/``.
"""

from __future__ import annotations

import argparse

from repro.bench.fpr_experiments import correlation, run_figure2
from repro.bench.joblight_experiments import (
    figure3_points,
    figure10_relative_sizes,
    get_context,
    standard_bundles,
)
from repro.bench.multiset_experiments import run_figure4, run_figure5, run_table1_check
from repro.bench.reporting import print_figure, save_json
from repro.join.reduction import aggregate_fpr, aggregate_rf, rf_by_join_count


def _run_fig2() -> None:
    points = run_figure2()
    print_figure(
        "Figure 2: estimated vs actual FPR",
        ["attr bits", "key bits", "cause", "actual", "estimated"],
        [(p.attr_bits, p.key_bits, p.cause, p.actual, p.estimated) for p in points],
    )
    print(f"correlation = {correlation(points):.3f}")
    save_json("fig2_fpr_bounds", {"points": [vars(p) for p in points]})


def _run_fig4(runs: int) -> None:
    rows = run_figure4(runs=runs)
    print_figure(
        "Figure 4: load factor at first failure",
        ["shape", "b", "avg dupes", "type", "load@failure"],
        [
            (r["shape"], r["bucket_size"], r["mean_duplicates"], r["type"], r["load_factor_at_failure"])
            for r in rows
        ],
    )
    save_json("fig4_load_factor", rows)


def _run_fig5() -> None:
    rows = run_figure5()
    print_figure(
        "Figure 5: bit efficiency vs fill",
        ["d", "fill", "efficiency", "FPR"],
        [(r["max_dupes"], r["fill"], r["bit_efficiency"], r["fpr"]) for r in rows],
    )
    save_json("fig5_bit_efficiency", rows)


def _run_table1() -> None:
    table = run_table1_check()
    print_figure(
        "Table 1: sizing bounds",
        ["filter", "queries", "bound", "actual", "ok"],
        [
            (r["filter"], r["supported_queries"], r["bound"], r["actual_entries"], r["within_bound"])
            for r in table
        ],
    )
    save_json("table1_sizing_bounds", table)


def _run_joblight(scale: float) -> None:
    context = get_context(scale, seed=1)
    labels = standard_bundles(context, "small") + standard_bundles(context, "large")
    results = context.evaluate(labels)

    points = figure3_points(context, standard_bundles(context, "small"))
    print_figure(
        "Figure 3: predicted vs actual entries",
        ["filter", "table", "predicted", "actual"],
        [(p["filter"], p["table"], p["predicted_entries"], p["actual_entries"]) for p in points],
    )

    methods = ["exact", "exact_binned", "cuckoo"] + list(labels)
    print_figure(
        "§10.6 aggregates (Figures 6-8 summary)",
        ["method", "aggregate RF", "FPR vs binned"],
        [
            (
                method,
                aggregate_rf(results, method),
                aggregate_fpr(results, method) if method in labels else "-",
            )
            for method in methods
        ],
    )

    by_joins = rf_by_join_count(results, "exact")
    ccf_by_joins = rf_by_join_count(results, "chained-small")
    baseline_by_joins = rf_by_join_count(results, "cuckoo")
    print_figure(
        "Figure 9: RF by number of filters",
        ["# filters", "optimal", "CCF", "no predicate"],
        [
            (count, by_joins[count], ccf_by_joins[count], baseline_by_joins[count])
            for count in sorted(by_joins)
        ],
    )

    rows = figure10_relative_sizes(context, standard_bundles(context, "small"))
    print_figure(
        "Figure 10: relative sizes",
        ["filter", "table", "relative size"],
        [(r["filter"], r["table"], r["relative_size"]) for r in rows],
    )


EXPERIMENTS = {
    "fig2": lambda args: _run_fig2(),
    "fig4": lambda args: _run_fig4(args.runs),
    "fig5": lambda args: _run_fig5(),
    "table1": lambda args: _run_table1(),
    "joblight": lambda args: _run_joblight(args.scale),
}


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__, add_help=True
    )
    parser.add_argument("--scale", type=float, default=0.002, help="synthetic IMDB scale")
    parser.add_argument("--runs", type=int, default=3, help="salted runs for Figure 4")
    parser.add_argument(
        "--only",
        default=None,
        help=f"comma-separated subset of {sorted(EXPERIMENTS)} (default: all)",
    )
    args = parser.parse_args(argv)
    selected = sorted(EXPERIMENTS) if args.only is None else args.only.split(",")
    for name in selected:
        if name not in EXPERIMENTS:
            parser.error(f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}")
        EXPERIMENTS[name](args)


if __name__ == "__main__":
    main()
