"""Reporting utilities shared by the benchmark harness.

Every benchmark prints the series of its paper figure/table as aligned text
and writes a JSON artifact under ``bench_results/`` so EXPERIMENTS.md can be
assembled from recorded runs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable, Sequence

#: Environment knob: fraction of full IMDB row counts used by the join
#: benchmarks (tests use smaller scales of their own).
SCALE_ENV = "REPRO_SCALE"
RUNS_ENV = "REPRO_RUNS"

RESULTS_DIR = Path(__file__).resolve().parents[3] / "bench_results"


def env_scale(default: float = 0.002) -> float:
    """Dataset scale for join benchmarks, overridable via REPRO_SCALE."""
    value = os.environ.get(SCALE_ENV)
    if value is None:
        return default
    scale = float(value)
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"{SCALE_ENV} must be in (0, 1], got {value}")
    return scale


def env_runs(default: int = 3) -> int:
    """Number of salted repetitions for stochastic experiments."""
    value = os.environ.get(RUNS_ENV)
    if value is None:
        return default
    runs = int(value)
    if runs < 1:
        raise ValueError(f"{RUNS_ENV} must be positive, got {value}")
    return runs


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render rows as an aligned text table."""
    materialised = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}" if abs(cell) < 100 else f"{cell:.1f}"
    return str(cell)


def print_figure(title: str, headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> None:
    """Print a figure/table reproduction with a banner."""
    banner = "=" * len(title)
    print(f"\n{banner}\n{title}\n{banner}")
    print(format_table(headers, rows))


def save_json(name: str, payload: Any) -> Path:
    """Write a JSON artifact under bench_results/ and return its path."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
    return path
