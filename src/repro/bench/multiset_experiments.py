"""Drivers for the §10.1 multiset experiments (Figures 4 and 5, Table 1).

The protocol follows §10.1: for each filter type and duplicate level,
generate a stream ~20% larger than the sketch capacity, insert until the
first failed insertion (a unique (key, attribute) pair that cannot generate
a new entry), and record the load factor at that point.  Runs are repeated
with salted hashes and averaged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ccf.attributes import AttributeSchema
from repro.ccf.factory import make_ccf
from repro.ccf.params import CCFParams
from repro.ccf.sizing import bit_efficiency, distinct_vector_counts, predicted_entries
from repro.data.streams import stream_for_capacity

#: The single-attribute schema used by the multiset experiments: duplicates
#: of a key differ only in this synthetic attribute.
STREAM_SCHEMA = AttributeSchema(["dup"])


@dataclass
class FailurePoint:
    """Outcome of one fill-to-failure run."""

    load_factor: float
    items_processed: int
    failed: bool


def fill_until_failure(
    kind: str,
    shape: str,
    mean_duplicates: float,
    num_buckets: int,
    params: CCFParams,
    seed: int = 0,
    overfill: float = 1.2,
) -> FailurePoint:
    """Insert a §10.1 stream until the first failed insertion."""
    ccf = make_ccf(kind, STREAM_SCHEMA, num_buckets, params)
    capacity = num_buckets * params.bucket_size
    stream = stream_for_capacity(shape, capacity, mean_duplicates, overfill=overfill, seed=seed)
    items = 0
    for key, attrs in stream:
        if not ccf.insert(key, attrs):
            return FailurePoint(ccf.load_factor(), items, True)
        items += 1
    return FailurePoint(ccf.load_factor(), items, False)


def load_factor_at_failure(
    kind: str,
    shape: str,
    mean_duplicates: float,
    num_buckets: int,
    params: CCFParams,
    runs: int = 3,
    seed: int = 0,
) -> float:
    """Mean load factor at first failure over salted runs (Figure 4's y-axis)."""
    total = 0.0
    for run in range(runs):
        point = fill_until_failure(
            kind,
            shape,
            mean_duplicates,
            num_buckets,
            params.with_seed(seed + 1000 * run + 1),
            seed=seed + run,
        )
        total += point.load_factor
    return total / runs


def run_figure4(
    bucket_sizes: tuple[int, ...] = (4, 6, 8),
    duplicate_levels: tuple[float, ...] = (1, 2, 4, 6, 8, 10, 12),
    shapes: tuple[str, ...] = ("constant", "zipf"),
    num_buckets: int = 1024,
    runs: int = 3,
    seed: int = 0,
) -> list[dict]:
    """Figure 4: load factor at failure vs duplicates, chained vs plain.

    Chained runs use d=3 and uncapped Lmax (the paper's setting); plain runs
    are the regular multiset cuckoo filter.
    """
    rows: list[dict] = []
    for shape in shapes:
        for bucket_size in bucket_sizes:
            for mean_duplicates in duplicate_levels:
                for kind in ("chained", "plain"):
                    params = CCFParams(
                        key_bits=12,
                        attr_bits=8,
                        bucket_size=bucket_size,
                        max_dupes=3,
                        max_chain=None,
                        seed=seed,
                    )
                    load = load_factor_at_failure(
                        kind, shape, mean_duplicates, num_buckets, params, runs=runs, seed=seed
                    )
                    rows.append(
                        {
                            "shape": shape,
                            "bucket_size": bucket_size,
                            "mean_duplicates": mean_duplicates,
                            "type": kind,
                            "load_factor_at_failure": load,
                        }
                    )
    return rows


def measure_key_fpr(ccf, num_trials: int = 20_000, probe_base: int = 10_000_000) -> float:
    """Empirical FPR for key-only membership queries on absent keys."""
    hits = 0
    for probe in range(probe_base, probe_base + num_trials):
        if ccf.contains_key(probe):
            hits += 1
    return hits / num_trials


def run_figure5(
    max_dupe_values: tuple[int, ...] = (2, 4, 6, 8, 10),
    fill_levels: tuple[float, ...] = (0.2, 0.4, 0.6, 0.75, 0.85),
    shape: str = "constant",
    duplicates_per_key: int = 12,
    num_buckets: int = 512,
    bucket_size: int = 6,
    seed: int = 0,
) -> list[dict]:
    """Figure 5: bit efficiency vs fill for different d = maxDupe.

    Streams have every key duplicated ``duplicates_per_key`` times (> d), the
    setting for the paper's 1.93 headline number; efficiency is Eq. (8) with
    the empirical key-only FPR.  At equal fill all d cost the same bits per
    row, so the figure's story is in where each curve *ends*: larger d fails
    at lower fill, wasting the table (the paper's "lower settings for d tend
    to achieve better use of bits").
    """
    rows: list[dict] = []
    for max_dupes in max_dupe_values:
        params = CCFParams(
            key_bits=12,
            attr_bits=8,
            bucket_size=max(bucket_size, (max_dupes + 1) // 2),
            max_dupes=max_dupes,
            max_chain=None,
            seed=seed,
        )
        capacity = num_buckets * params.bucket_size
        stream = stream_for_capacity(
            shape, capacity, duplicates_per_key, overfill=1.2, seed=seed
        )
        ccf = make_ccf("chained", STREAM_SCHEMA, num_buckets, params)
        targets = sorted(fill_levels)
        target_index = 0
        inserted = 0
        for key, attrs in stream:
            if target_index >= len(targets):
                break
            if not ccf.insert(key, attrs):
                break
            inserted += 1
            if ccf.load_factor() >= targets[target_index]:
                fpr = max(measure_key_fpr(ccf, num_trials=8000), 1e-5)
                rows.append(
                    {
                        "max_dupes": max_dupes,
                        "fill": ccf.load_factor(),
                        "bit_efficiency": bit_efficiency(
                            ccf.size_in_bits(), max(1, inserted), fpr
                        ),
                        "fpr": fpr,
                    }
                )
                target_index += 1
    return rows


def run_table1_check(
    num_keys: int = 2000,
    mean_duplicates: float = 6.0,
    params: CCFParams | None = None,
    seed: int = 0,
) -> list[dict]:
    """Table 1: supported queries and entry bounds, checked empirically."""
    from repro.ccf.factory import build_ccf
    from repro.data.streams import zipf_stream

    params = params or CCFParams(bucket_size=6, max_dupes=3, seed=seed)
    rows_data = zipf_stream(
        total_rows=int(num_keys * mean_duplicates), mean_duplicates=mean_duplicates, seed=seed
    )
    counts = distinct_vector_counts(rows_data)
    supported = {
        "bloom": ("k, (k,P), P", "n_k"),
        "mixed": ("k, (k,P), P", "sum min(A, d)"),
        "chained": ("k, (k,P), P*", "sum min(A, d*Lmax)"),
    }
    table: list[dict] = []
    for kind, (queries, bound_name) in supported.items():
        bound = predicted_entries(
            kind, counts, params.max_dupes, params.max_chain, params.bucket_size
        )
        ccf = build_ccf(kind, STREAM_SCHEMA, rows_data, params)
        table.append(
            {
                "filter": kind,
                "supported_queries": queries,
                "bound": bound,
                "actual_entries": ccf.num_entries,
                "within_bound": ccf.num_entries <= bound,
            }
        )
    return table
