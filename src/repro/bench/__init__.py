"""Benchmark drivers shared by the benchmarks/ suite."""

from repro.bench.reporting import (
    env_runs,
    env_scale,
    format_table,
    print_figure,
    save_json,
)

__all__ = ["env_runs", "env_scale", "format_table", "print_figure", "save_json"]
