"""Driver for Figure 2: estimated vs actual FPR decomposition (§7).

For a grid of configurations we build chained CCFs over synthetic keyed
rows, then measure two families of guaranteed-negative queries:

* *key absent* — the queried key was never inserted (FPR caused by key
  fingerprint collisions);
* *attribute mismatch* — the key exists but the queried attribute value does
  not (FPR caused by attribute sketch collisions).

For each family the §7 estimator produces a predicted rate; Figure 2's claim
is that predictions track actuals well.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.ccf.attributes import AttributeSchema
from repro.ccf.factory import build_ccf
from repro.ccf.fpr import estimate_query_fpr
from repro.ccf.params import CCFParams
from repro.ccf.predicates import Eq

SCHEMA = AttributeSchema(["attr"])


@dataclass
class FPRPoint:
    """One (configuration, cause) comparison point for Figure 2."""

    attr_bits: int
    key_bits: int
    cause: str
    actual: float
    estimated: float


def _build_dataset(num_keys: int, values_per_key: int, seed: int) -> list[tuple[int, tuple]]:
    rng = random.Random(seed)
    rows = []
    for key in range(num_keys):
        for value in rng.sample(range(1000), values_per_key):
            rows.append((key, (value,)))
    return rows


def run_figure2(
    attr_bit_choices: tuple[int, ...] = (4, 8),
    key_bit_choices: tuple[int, ...] = (7, 12),
    num_keys: int = 1500,
    values_per_key: int = 3,
    num_queries: int = 4000,
    seed: int = 0,
) -> list[FPRPoint]:
    """Produce Figure 2's (actual, estimated) points for each cause."""
    points: list[FPRPoint] = []
    rows = _build_dataset(num_keys, values_per_key, seed)
    present_values = {key: set() for key in range(num_keys)}
    for key, (value,) in rows:
        present_values[key].add(value)

    for attr_bits in attr_bit_choices:
        for key_bits in key_bit_choices:
            params = CCFParams(
                key_bits=key_bits,
                attr_bits=attr_bits,
                bucket_size=6,
                max_dupes=3,
                seed=seed,
                small_value_optimization=False,
            )
            ccf = build_ccf("chained", SCHEMA, rows, params)

            # Cause 1: key absent.
            absent_hits = 0
            absent_estimates = 0.0
            for probe in range(num_queries):
                key = 10_000_000 + probe
                predicate = Eq("attr", probe % 1000)
                absent_hits += ccf.query(key, predicate)
                if probe < 300:
                    absent_estimates += estimate_query_fpr(
                        ccf, key, predicate, key_in_data=False
                    ).overall
            points.append(
                FPRPoint(
                    attr_bits,
                    key_bits,
                    "key",
                    absent_hits / num_queries,
                    absent_estimates / min(300, num_queries),
                )
            )

            # Cause 2: key present, attribute value absent.
            mismatch_hits = 0
            mismatch_estimates = 0.0
            mismatch_count = 0
            for key in range(min(num_keys, num_queries)):
                value = 5000 + key  # never inserted (values < 1000)
                predicate = Eq("attr", value)
                mismatch_hits += ccf.query(key, predicate)
                mismatch_count += 1
                if key < 300:
                    mismatch_estimates += estimate_query_fpr(
                        ccf, key, predicate, key_in_data=True
                    ).overall
            points.append(
                FPRPoint(
                    attr_bits,
                    key_bits,
                    "attribute",
                    mismatch_hits / mismatch_count,
                    mismatch_estimates / min(300, mismatch_count),
                )
            )
    return points


def correlation(points: list[FPRPoint]) -> float:
    """Pearson correlation between actual and estimated rates."""
    if len(points) < 2:
        return 1.0
    actuals = [p.actual for p in points]
    estimates = [p.estimated for p in points]
    n = len(points)
    mean_a = sum(actuals) / n
    mean_e = sum(estimates) / n
    cov = sum((a - mean_a) * (e - mean_e) for a, e in zip(actuals, estimates))
    var_a = sum((a - mean_a) ** 2 for a in actuals)
    var_e = sum((e - mean_e) ** 2 for e in estimates)
    if var_a == 0 or var_e == 0:
        return 1.0
    return cov / (var_a * var_e) ** 0.5
