"""Shared context and drivers for the JOB-light experiments (Figures 3, 6-10).

Building the synthetic dataset, workload, filter bundles and the evaluation
results is expensive, so one module-level cache shares them across benchmark
files within a pytest session.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ccf.params import CCFParams, LARGE_PARAMS, SMALL_PARAMS
from repro.ccf.sizing import distinct_vector_counts, predicted_entries
from repro.data.imdb import IMDBDataset, generate_imdb
from repro.data.relation import Relation
from repro.join.job_light import make_job_light_workload
from repro.join.query import JoinQuery
from repro.join.reduction import (
    FilterBundle,
    InstanceResult,
    build_cuckoo_baseline,
    build_filter_bundle,
    ccf_attribute_columns,
    evaluate_workload,
)

#: CCF kinds evaluated in the JOB-light experiments (plain is excluded: the
#: paper found no reasonably sized plain filter; see bench_table1).
JOBLIGHT_KINDS = ("bloom", "mixed", "chained")


@dataclass
class JoblightContext:
    """Dataset + workload + lazily built bundles, shared across benches."""

    scale: float
    seed: int
    dataset: IMDBDataset
    workload: list[JoinQuery]
    bundles: dict[str, FilterBundle] = field(default_factory=dict)
    cuckoo: dict | None = None
    _results: dict[tuple[str, ...], list[InstanceResult]] = field(default_factory=dict)

    def bundle(self, kind: str, params: CCFParams, label: str) -> FilterBundle:
        """Build (or reuse) a filter bundle for one kind/parameterisation."""
        if label not in self.bundles:
            self.bundles[label] = build_filter_bundle(
                self.dataset, kind, params, name=label
            )
        return self.bundles[label]

    def cuckoo_baseline(self) -> dict:
        if self.cuckoo is None:
            self.cuckoo = build_cuckoo_baseline(self.dataset)
        return self.cuckoo

    def evaluate(self, labels: tuple[str, ...]) -> list[InstanceResult]:
        """Evaluate the workload under the named bundles (cached)."""
        key = tuple(sorted(labels))
        if key not in self._results:
            bundles = [self.bundles[label] for label in key]
            self._results[key] = evaluate_workload(
                self.dataset, self.workload, bundles, self.cuckoo_baseline()
            )
        return self._results[key]


_CONTEXT_CACHE: dict[tuple[float, int], JoblightContext] = {}


def get_context(scale: float, seed: int = 1) -> JoblightContext:
    """Build or fetch the shared JOB-light context at ``scale``."""
    key = (scale, seed)
    if key not in _CONTEXT_CACHE:
        dataset = generate_imdb(scale=scale, seed=seed)
        workload = make_job_light_workload(dataset, seed=seed + 2)
        _CONTEXT_CACHE[key] = JoblightContext(scale, seed, dataset, workload)
    return _CONTEXT_CACHE[key]


def standard_bundles(context: JoblightContext, size: str) -> tuple[str, ...]:
    """Build the paper's 'large'/'small' bundles for all three CCF kinds."""
    params = LARGE_PARAMS if size == "large" else SMALL_PARAMS
    labels = []
    for kind in JOBLIGHT_KINDS:
        label = f"{kind}-{size}"
        context.bundle(kind, params, label)
        labels.append(label)
    return tuple(labels)


def figure3_points(context: JoblightContext, labels: tuple[str, ...]) -> list[dict]:
    """Figure 3: predicted vs actual filled entries per (table, filter)."""
    points = []
    for label in labels:
        bundle = context.bundles[label]
        for table, ccf in bundle.ccfs.items():
            relation = context.dataset.table(table)
            if bundle.binning is not None and table == "title":
                relation = bundle.binning.augment(relation)
            key_column = context.dataset.join_key(table)
            attr_columns = ccf_attribute_columns(context.dataset, table)
            keys = relation.column(key_column)
            columns = [relation.column(c) for c in attr_columns]
            counts = distinct_vector_counts(
                zip(keys.tolist(), ccf.fingerprinter.vectors_many(columns))
            )
            predicted = predicted_entries(
                bundle.kind,
                counts,
                bundle.params.max_dupes,
                bundle.params.max_chain,
                bundle.params.bucket_size,
            )
            points.append(
                {
                    "filter": label,
                    "table": table,
                    "predicted_entries": predicted,
                    "actual_entries": ccf.num_entries,
                }
            )
    return points


def figure10_relative_sizes(
    context: JoblightContext, labels: tuple[str, ...]
) -> list[dict]:
    """Figure 10: CCF size relative to the raw data it sketches (§10.7)."""
    rows = []
    dataset = context.dataset
    for label in labels:
        bundle = context.bundles[label]
        total_ccf = 0
        total_raw = 0
        for table, ccf in bundle.ccfs.items():
            relation: Relation = dataset.table(table)
            raw_columns = (dataset.join_key(table),) + dataset.predicate_columns(table)
            raw_bytes = relation.raw_size_bytes(raw_columns)
            total_ccf += ccf.size_in_bits() // 8
            total_raw += raw_bytes
            rows.append(
                {
                    "filter": label,
                    "table": table,
                    "relative_size": (ccf.size_in_bits() / 8) / raw_bytes,
                }
            )
        rows.append(
            {"filter": label, "table": "Overall", "relative_size": total_ccf / total_raw}
        )
    return rows
