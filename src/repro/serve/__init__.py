"""Multi-core serving runtime for the FilterStore (DESIGN.md §11).

PRs 1-5 made one core fast; this package makes the store *serve*: many
concurrent readers across processes or threads, one coordinated writer,
and an async front end that turns point-query traffic into the vectorised
batches the kernels want.  Public surface:

* :class:`WorkerPool` — N workers (processes or threads) each attaching
  the same SEG1 snapshot zero-copy; round-robin batch dispatch, epoch
  refresh without reopen (`pool.py`);
* :class:`CoalescingFrontEnd` — asyncio request coalescing: concurrent
  single-key queries become one ``query_many`` per tick (`frontend.py`);
* :class:`ServeRuntime` — the full topology: single locked writer, epoch
  publishing, reader pool, stats endpoint (`runtime.py`);
* :class:`TelemetryServer` — live HTTP scrape surface over a runtime:
  ``/metrics``, ``/metrics.json``, ``/health``, ``/trace`` (`http.py`);
* :class:`RWLock` / :func:`shard_locks` — per-shard reader/writer
  coordination, installable on any FilterStore (`locks.py`);
* :class:`BatchSizeHistogram` — evidence of coalescing at work
  (`stats.py`).
"""

from repro.serve.frontend import CoalescingFrontEnd
from repro.serve.http import TelemetryServer
from repro.serve.locks import RWLock, shard_locks
from repro.serve.pool import WorkerPool
from repro.serve.runtime import ServeRuntime
from repro.serve.stats import BatchSizeHistogram, merge_worker_stats

__all__ = [
    "BatchSizeHistogram",
    "CoalescingFrontEnd",
    "RWLock",
    "ServeRuntime",
    "TelemetryServer",
    "WorkerPool",
    "merge_worker_stats",
    "shard_locks",
]
