"""ServeRuntime: single writer + shared-mmap reader pool + epoch publishing.

The full serving topology of DESIGN.md §11::

                     insert_many / delete_many
    clients ──────────────────────────────────▶ writer FilterStore
                                                  │ (per-shard RW locks)
                                                  │ publish(): snapshot
                                                  ▼        epoch N+1
                                            snapshots/epoch-000N+1
                                                  │ refresh broadcast
                  query / query_many       ┌──────┴──────┐
    clients ──▶ CoalescingFrontEnd ──▶ WorkerPool: N workers, each with
                (per-tick batches)     the epoch's segments mapped zero-copy

* The **writer** is the one mutable store.  Its per-shard RW locks (also
  installed here) let any in-process readers — e.g. ``fresh=True`` queries
  that need read-your-writes — run against shard j while the writer mutates
  shard i.
* ``publish()`` snapshots the writer into ``root/epoch-%06d`` and
  broadcasts the new epoch to the pool; each worker refreshes by content
  token, keeping unchanged levels mapped and attaching only rolled or
  compacted ones.  Old epoch directories can then be deleted — workers
  holding mappings into them keep serving from the live inodes.
* Reads default to the pool (scales across cores, epoch-consistent);
  ``fresh=True`` reads hit the writer store under its shard read locks.
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro import obs
from repro.ccf.predicates import Predicate
from repro.serve.frontend import CoalescingFrontEnd
from repro.serve.locks import shard_locks
from repro.serve.pool import WorkerPool
from repro.store.metrics import store_metrics
from repro.store.store import FilterStore

#: Epoch directories are named so a directory listing sorts by recency.
EPOCH_DIR_FORMAT = "epoch-{epoch:06d}"


class ServeRuntime:
    """A concurrent serving runtime over one writable FilterStore."""

    def __init__(
        self,
        store: FilterStore,
        root: str | Path,
        num_workers: int = 2,
        mode: str = "process",
        predicates: Mapping[str, Predicate] | None = None,
        tick_seconds: float = 0.001,
        max_batch: int = 8192,
        keep_epochs: int = 2,
        warm: bool = True,
        start_method: str | None = None,
    ) -> None:
        if keep_epochs < 1:
            raise ValueError("keep_epochs must be at least 1")
        self.store = store
        self.root = Path(root)
        self.num_workers = num_workers
        self.mode = mode
        self.predicates = dict(predicates or {})
        self.tick_seconds = tick_seconds
        self.max_batch = max_batch
        self.keep_epochs = keep_epochs
        self.warm = warm
        self.start_method = start_method
        self.epoch = 0
        self.pool: WorkerPool | None = None
        self.telemetry = None  # TelemetryServer once serve_telemetry() runs
        #: Optional budgeted maintenance, run after each publish
        #: (`install_maintenance`); requires a durable (WAL-attached) writer.
        self.maintenance = None
        self._maintenance_budget = 0
        self._locks = shard_locks(store.config.num_shards)
        store.install_shard_locks(self._locks)
        self._compiled = {
            name: store.compile(pred) for name, pred in self.predicates.items()
        }

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ServeRuntime":
        """Publish epoch 1 and launch the reader pool against it."""
        if self.pool is not None:
            raise RuntimeError("runtime already started")
        path = self.publish()
        self.pool = WorkerPool(
            path,
            num_workers=self.num_workers,
            mode=self.mode,
            predicates=self.predicates,
            start_method=self.start_method,
        ).start()
        return self

    def close(self) -> dict | None:
        """Stop the telemetry server and the pool (writer store stays
        usable); returns the final pool stats."""
        if self.telemetry is not None:
            self.telemetry.close()
            self.telemetry = None
        if self.pool is None:
            return None
        final = self.pool.close()
        self.pool = None
        self.store.install_shard_locks(None)
        return final

    def __enter__(self) -> "ServeRuntime":
        return self.start() if self.pool is None else self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- write path (single writer) -------------------------------------

    def insert_many(
        self,
        keys: Sequence[object] | np.ndarray,
        attr_columns: Sequence[Sequence[Any] | np.ndarray],
    ) -> np.ndarray:
        """Apply a write batch to the writer store (per-shard write locks)."""
        return self.store.insert_many(keys, attr_columns)

    def delete_many(
        self,
        keys: Sequence[object] | np.ndarray,
        attr_columns: Sequence[Sequence[Any] | np.ndarray],
    ) -> np.ndarray:
        """Apply a delete batch to the writer store (per-shard write locks)."""
        return self.store.delete_many(keys, attr_columns)

    def compact(self) -> None:
        """Compact the writer store shard-by-shard under its write locks."""
        self.store.compact()

    def install_maintenance(self, scheduler, steps_per_publish: int = 4) -> None:
        """Run budgeted maintenance steps piggybacked on every publish.

        ``scheduler`` is a `repro.store.maintenance.MaintenanceScheduler`
        over this runtime's (durable) writer.  Each ``publish()`` then
        retires at most ``steps_per_publish`` units of debt — compaction
        slices under single-shard write locks, WAL rolls when a log passes
        its threshold — so durability upkeep rides the publish cadence
        instead of needing a second timer.
        """
        if scheduler.store is not self.store:
            raise ValueError("scheduler must wrap this runtime's writer store")
        self.maintenance = scheduler
        self._maintenance_budget = steps_per_publish

    def publish(self) -> Path:
        """Snapshot the writer as the next epoch and refresh the pool.

        Workers re-attach only changed levels (content-token refresh); the
        page cache warmed here is shared by every worker.  Epoch
        directories older than ``keep_epochs`` are deleted afterwards —
        safe, because live mappings keep their inodes readable.

        Epoch snapshots are plain (no WAL section) even when the writer is
        durable: workers are read-only replicas and must never replay or
        adopt the writer's log.  A WAL roll between publishes is invisible
        to the pool — checkpoints re-seal levels under unchanged content
        tokens, so the next refresh still reuses every mapped level.  With
        a scheduler installed (`install_maintenance`), a budgeted
        maintenance pass runs after the broadcast.
        """
        self.epoch += 1
        path = self.root / EPOCH_DIR_FORMAT.format(epoch=self.epoch)
        self.store.snapshot(path)
        if self.warm:
            FilterStore.open(path).warm()
        if self.pool is not None:
            self.pool.refresh(path, self.epoch)
        self._prune_epochs()
        if self.maintenance is not None:
            self.maintenance.run(max_steps=self._maintenance_budget)
        return path

    def _prune_epochs(self) -> None:
        floor = self.epoch - self.keep_epochs
        for old in range(1, max(floor + 1, 1)):
            stale = self.root / EPOCH_DIR_FORMAT.format(epoch=old)
            if stale.exists():
                shutil.rmtree(stale, ignore_errors=True)

    # -- read path ------------------------------------------------------

    def query_many(
        self,
        keys: Sequence[object] | np.ndarray,
        predicate: str | None = None,
        fresh: bool = False,
    ) -> np.ndarray:
        """Batch membership: pooled (epoch-consistent) or writer-fresh.

        ``predicate`` is a name registered at construction.  Default reads
        go through the worker pool and see the last *published* epoch;
        ``fresh=True`` reads the writer store under shard read locks and
        see every applied write (read-your-writes, at the cost of sharing
        the writer's core).
        """
        if predicate is not None and predicate not in self.predicates:
            raise KeyError(
                f"unknown predicate {predicate!r}; registered: "
                f"{sorted(self.predicates)}"
            )
        if fresh or self.pool is None:
            return self.store.query_many(keys, self._compiled.get(predicate))
        return self.pool.query_many(keys, predicate)

    def frontend(
        self,
        tick_seconds: float | None = None,
        max_batch: int | None = None,
    ) -> CoalescingFrontEnd:
        """A coalescing asyncio front end over this runtime's read path.

        The runtime itself is the backend (its ``query_many`` resolves
        predicate names whether reads go to the pool or the writer), so
        the front end keeps working across start/close transitions.
        """
        return CoalescingFrontEnd(
            self,
            tick_seconds=self.tick_seconds if tick_seconds is None else tick_seconds,
            max_batch=self.max_batch if max_batch is None else max_batch,
            predicates=(None, *self.predicates),
        )

    # -- telemetry surface ----------------------------------------------

    def serve_telemetry(self, host: str = "127.0.0.1", port: int = 0):
        """Start the HTTP telemetry server (``/metrics``, ``/metrics.json``,
        ``/health``, ``/trace``) over this runtime; returns it.

        ``port=0`` binds an ephemeral port — read it off the returned
        server's ``.port``.  The server runs on its own thread/event loop
        and is stopped by :meth:`close` (or its own ``close()``).
        """
        if self.telemetry is not None:
            return self.telemetry
        from repro.serve.http import TelemetryServer

        self.telemetry = TelemetryServer(self, host=host, port=port).start()
        return self.telemetry

    def ready(self) -> bool:
        """Readiness: an epoch has been published and every worker lives."""
        return self.epoch >= 1 and self.pool is not None and self.pool.alive()

    def trace(self, slow_only: bool = False) -> dict:
        """One merged Chrome-trace export across frontend, pool and store.

        Process workers' span rings are drained, re-based onto this
        process's clock and adopted first, so the returned tree is whole
        regardless of pool mode.  ``slow_only=True`` restricts the export
        to the slow-op ring's trace ids — the ``/trace`` endpoint's view.
        """
        if self.pool is not None and self.pool.alive():
            self.pool.trace()
        trace_ids = obs.SLOW_OPS.trace_ids() if slow_only else None
        return obs.to_chrome_trace(trace_ids)

    # -- introspection --------------------------------------------------

    def stats(self) -> dict:
        """The serving stats endpoint: writer ops + pool counters + epoch."""
        writer = self.store.stats()
        return {
            "epoch": self.epoch,
            "mode": self.mode,
            "num_workers": self.num_workers,
            # Hoisted from the writer record: operators checking "can this
            # deployment lose acked writes?" shouldn't have to dig.
            "durability": writer["durability"],
            "slow_ops": obs.SLOW_OPS.summary(),
            "writer": writer,
            "pool": self.pool.stats() if self.pool is not None else None,
        }

    def metrics(self, fmt: str = "snapshot") -> dict | str:
        """The scrapeable telemetry endpoint: writer + pool, one registry.

        Merges the writer process's registry snapshot (with the store's
        structural gauges overlaid) with every pool worker's contribution —
        process workers ship their whole registry, thread workers just
        their served-ops delta (their counters already live in this
        process's registry).  ``fmt`` selects the output form:
        ``"snapshot"`` (the dict), ``"prometheus"`` (text exposition) or
        ``"json"``.
        """
        snapshots = [store_metrics(self.store)]
        if self.pool is not None:
            snapshots.append(self.pool.metrics())
        merged = obs.merge_snapshots(*snapshots)
        if fmt == "snapshot":
            return merged
        if fmt == "prometheus":
            return obs.to_prometheus(merged)
        if fmt == "json":
            return obs.to_json(merged)
        raise ValueError(
            f"fmt must be 'snapshot', 'prometheus' or 'json', got {fmt!r}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        running = self.pool is not None
        return (
            f"ServeRuntime(epoch={self.epoch}, workers={self.num_workers}, "
            f"mode={self.mode!r}, running={running})"
        )
