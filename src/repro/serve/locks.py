"""Reader/writer locks for per-shard coordination (DESIGN.md §11).

The FilterStore's hot paths are batch kernels that hold no global state per
call, so the only mutual exclusion a concurrent store needs is *per shard*:
one writer mutating shard i must exclude readers of shard i (a level roll
swaps list entries; a delete rewrites slots), while readers of every other
shard — and of the immutable mapped baseline — proceed untouched.  The
stdlib has no readers/writer lock, so this module provides a small
condition-variable one.

Writers are preferred: a waiting writer blocks *new* readers, so a steady
query stream cannot starve the single writer (the serve runtime's
mutation path).  Both sides are exposed as context managers, which is the
shape :meth:`repro.store.store.FilterStore.install_shard_locks` expects.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class RWLock:
    """A writer-preferring readers/writer lock.

    Any number of readers may hold the lock together; a writer holds it
    alone.  Once a writer is waiting, new readers queue behind it (writer
    preference), so mutations land promptly under heavy read traffic.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # -- reader side ----------------------------------------------------

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers < 0:
                self._readers = 0
                raise RuntimeError("release_read without a matching acquire_read")
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """Hold the lock in shared (reader) mode for the with-block."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- writer side ----------------------------------------------------

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write without a matching acquire_write")
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """Hold the lock in exclusive (writer) mode for the with-block."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RWLock(readers={self._readers}, writer={self._writer_active}, "
            f"waiting={self._writers_waiting})"
        )


def shard_locks(num_shards: int) -> list[RWLock]:
    """One fresh RWLock per shard, ready for ``install_shard_locks``."""
    return [RWLock() for _ in range(num_shards)]
