"""Batch-coalescing asyncio front end (DESIGN.md §11).

The vectorised probe kernels are fast *per key* only when batches are big:
at batch=1 the fixed numpy/dispatch overhead dominates by orders of
magnitude.  Real serving traffic is the worst case — thousands of
concurrent clients, each asking about one key.  The front end converts that
workload into the shape the kernels want: concurrent ``await query(key)``
calls land in a per-predicate accumulator, and once per **tick** (or as
soon as ``max_batch`` keys are pending) the accumulator is flushed as one
``query_many`` against the backend, with each caller's future resolved from
its slice of the answers.

The backend is anything with ``query_many(keys, predicate) -> ndarray`` — a
:class:`~repro.store.store.FilterStore` served inline, or a
:class:`~repro.serve.pool.WorkerPool` fanning batches across cores.
Backend calls run in an executor, so the event loop keeps accepting (and
coalescing) requests while a batch computes: the next tick's batch grows
during the current tick's kernel, which is exactly the pipelining that
hides per-batch latency under load.

``tick_seconds`` trades latency for batch size: an idle store answers a
lone request after at most one tick; under load the tick bounds how long
the oldest pending key waits for company.  ``max_batch=1`` degenerates to
naive per-call dispatch — the benchmark's baseline.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Any, Sequence

import numpy as np

from repro import obs
from repro.serve.stats import BatchSizeHistogram

# Stage timings of the request pipeline, one record per flush (never per
# request): how long the oldest key waited for company (coalesce), how long
# the backend batch took (dispatch), how long scattering answers back took.
_COALESCE_WAIT_US = obs.histogram(
    "repro_frontend_coalesce_wait_us",
    "Oldest pending key's wait before its batch flushed, in microseconds.",
)
_DISPATCH_US = obs.histogram(
    "repro_frontend_dispatch_us",
    "Backend query_many execution time per flushed batch, in microseconds.",
)
_SCATTER_US = obs.histogram(
    "repro_frontend_scatter_us",
    "Answer scatter-back time per flushed batch, in microseconds.",
)
_BATCH_SIZE = obs.histogram(
    "repro_frontend_batch_size", "Coalesced keys per flushed batch."
)
_REQUESTS = obs.counter(
    "repro_frontend_requests_total", "query/query_many calls accepted."
)
_FLUSHES = obs.counter("repro_frontend_flushes_total", "Batches flushed.")


class CoalescingFrontEnd:
    """Coalesce concurrent point queries into per-tick vectorised batches."""

    def __init__(
        self,
        backend: Any,
        tick_seconds: float = 0.001,
        max_batch: int = 8192,
        predicates: Sequence[Any] = (None,),
    ) -> None:
        """``predicates`` lists the predicate tokens requests may use: None
        for key-only membership, registered names for a WorkerPool backend,
        or compiled predicate objects for a direct FilterStore backend —
        anything hashable the backend's ``query_many`` accepts."""
        if tick_seconds < 0:
            raise ValueError("tick_seconds must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self.backend = backend
        self.tick_seconds = tick_seconds
        self.max_batch = max_batch
        #: chunks pending per predicate token: list of (keys, future, count).
        self._pending: dict[Any, list[tuple[Any, asyncio.Future, int]]] = {
            name: [] for name in predicates
        }
        self._pending_keys: dict[Any, int] = {name: 0 for name in predicates}
        #: When each predicate's oldest pending chunk arrived (coalesce wait).
        self._pending_since: dict[Any, float] = {}
        self._tick_handles: dict[Any, Any] = {}
        # One dedicated executor thread: backends like WorkerPool drive
        # their dispatch plane from a single thread, and batches still
        # pipeline — the next tick accumulates on the event loop while the
        # current batch computes here.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-frontend"
        )
        self.histogram = BatchSizeHistogram()
        self.requests = 0
        self.flushes = 0

    # -- client side ----------------------------------------------------

    async def query(self, key: object, predicate: Any = None) -> bool:
        """Point membership query; coalesced into the next tick's batch."""
        answers = await self.query_many([key], predicate)
        return bool(answers[0])

    async def query_many(
        self, keys: Sequence[object] | np.ndarray, predicate: Any = None
    ) -> np.ndarray:
        """Batch query; small batches ride along with everything pending."""
        if predicate not in self._pending:
            raise KeyError(
                f"predicate {predicate!r} not declared in this front end's "
                "predicates"
            )
        count = len(keys)
        if count == 0:
            return np.zeros(0, dtype=bool)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        if not self._pending[predicate]:
            self._pending_since[predicate] = perf_counter()
        self._pending[predicate].append((keys, future, count))
        self._pending_keys[predicate] += count
        self.requests += 1
        _REQUESTS.inc()
        if self._pending_keys[predicate] >= self.max_batch:
            self._flush(predicate)
        elif predicate not in self._tick_handles:
            # First pending chunk arms the tick timer for this predicate.
            self._tick_handles[predicate] = loop.call_later(
                self.tick_seconds, self._flush, predicate
            )
        return await future

    # -- flush machinery ------------------------------------------------

    def _flush(self, predicate: str | None) -> None:
        """Execute everything pending for ``predicate`` as one batch."""
        handle = self._tick_handles.pop(predicate, None)
        if handle is not None:
            handle.cancel()
        chunks = self._pending[predicate]
        if not chunks:
            return
        self._pending[predicate] = []
        self._pending_keys[predicate] = 0
        pending_since = self._pending_since.pop(predicate, None)
        merged = _concat_keys([keys for keys, _, _ in chunks])
        self.histogram.record(len(merged))
        self.flushes += 1
        _FLUSHES.inc()
        if obs.state.enabled:
            _BATCH_SIZE.observe(len(merged))
            if pending_since is not None:
                _COALESCE_WAIT_US.observe((perf_counter() - pending_since) * 1e6)
        loop = asyncio.get_running_loop()
        task = loop.run_in_executor(
            self._executor, self._dispatch, merged, predicate
        )
        task = asyncio.ensure_future(task)
        task.add_done_callback(lambda done: self._resolve(done, chunks))

    def _dispatch(self, merged: np.ndarray, predicate: Any) -> np.ndarray:
        """Run one coalesced batch on the backend (executor thread)."""
        with obs.span("frontend.flush", keys=int(len(merged))):
            start = perf_counter()
            try:
                return self.backend.query_many(merged, predicate)
            finally:
                _DISPATCH_US.observe((perf_counter() - start) * 1e6)

    @staticmethod
    def _resolve(
        done: "asyncio.Future[np.ndarray]",
        chunks: list[tuple[Any, asyncio.Future, int]],
    ) -> None:
        """Scatter one batch's answers back to each caller's future."""
        start = perf_counter()
        error = done.exception()
        offset = 0
        for _, future, count in chunks:
            if future.cancelled():
                offset += count
                continue
            if error is not None:
                future.set_exception(error)
            else:
                answers = done.result()
                future.set_result(answers[offset : offset + count])
            offset += count
        _SCATTER_US.observe((perf_counter() - start) * 1e6)

    async def drain(self) -> None:
        """Flush everything pending and wait for the batches to finish."""
        pending_futures = [
            future
            for chunks in self._pending.values()
            for _, future, _ in chunks
        ]
        for predicate in list(self._pending):
            self._flush(predicate)
        if pending_futures:
            await asyncio.gather(*pending_futures, return_exceptions=True)

    def close(self) -> None:
        """Release the dispatch executor (pending batches finish first)."""
        self._executor.shutdown(wait=True)

    def stats(self) -> dict:
        """Requests seen, flushes executed, and the coalesced-size histogram."""
        return {
            "requests": self.requests,
            "flushes": self.flushes,
            "tick_seconds": self.tick_seconds,
            "max_batch": self.max_batch,
            "histogram": self.histogram.to_dict(),
        }


def _concat_keys(parts: list[Any]) -> np.ndarray:
    """Merge request key chunks into one backend batch."""
    arrays = [np.asarray(part) for part in parts]
    if len(arrays) == 1:
        return arrays[0]
    if all(arr.dtype == arrays[0].dtype and arr.dtype != object for arr in arrays):
        return np.concatenate(arrays)
    # Mixed or object-typed keys: fall back to an object array, which the
    # hashing ingress treats as a generic python-object sequence.
    merged = np.empty(sum(arr.size for arr in arrays), dtype=object)
    offset = 0
    for arr in arrays:
        merged[offset : offset + arr.size] = arr
        offset += arr.size
    return merged
