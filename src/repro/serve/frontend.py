"""Batch-coalescing asyncio front end (DESIGN.md §11, §15).

The vectorised probe kernels are fast *per key* only when batches are big:
at batch=1 the fixed numpy/dispatch overhead dominates by orders of
magnitude.  Real serving traffic is the worst case — thousands of
concurrent clients, each asking about one key.  The front end converts that
workload into the shape the kernels want: concurrent ``await query(key)``
calls land in a per-predicate accumulator, and once per **tick** (or as
soon as ``max_batch`` keys are pending) the accumulator is flushed as one
``query_many`` against the backend, with each caller's future resolved from
its slice of the answers.

The backend is anything with ``query_many(keys, predicate) -> ndarray`` — a
:class:`~repro.store.store.FilterStore` served inline, or a
:class:`~repro.serve.pool.WorkerPool` fanning batches across cores.
Backend calls run in an executor, so the event loop keeps accepting (and
coalescing) requests while a batch computes: the next tick's batch grows
during the current tick's kernel, which is exactly the pipelining that
hides per-batch latency under load.

``tick_seconds`` trades latency for batch size: an idle store answers a
lone request after at most one tick; under load the tick bounds how long
the oldest pending key waits for company.  ``max_batch=1`` degenerates to
naive per-call dispatch — the benchmark's baseline.

**Request-scoped tracing** (DESIGN.md §15): with recording on, each
request's life is decomposed into the labelled SLO histogram
``repro_request_us{stage, tenant}`` — ``coalesce`` (arrival → flush),
``dispatch`` (backend batch), ``scatter`` (answer fan-out) and ``total`` —
with one matching span per observation, so per-stage span sums and
histogram sums agree by construction.  The flushed batch adopts its oldest
request's :class:`~repro.obs.context.TraceContext` (minting a fresh root
when no caller had one active); the dispatch context is re-activated on
the executor thread, which is what parents worker/store spans under this
request.  Completed requests are offered to the slow-op ring.

**Cost discipline**: the enqueue path records nothing but a
``perf_counter()`` stamp and a contextvar read; per-request span/histogram
recording is deferred to a loop callback scheduled *after* the batch's
futures resolve, so callers' wake-ups never wait on telemetry (the p99
overhead gate in ``bench_serve_latency.py`` holds the front end to within
5% of the kill switch).  Batch-level recording (the dispatch span) runs on
the executor thread, also off the loop.  All of it sits behind the
``REPRO_METRICS`` kill switch: disabled, nothing is recorded and answers
are bit-identical.
"""

from __future__ import annotations

import asyncio
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Any, Sequence

import numpy as np

from repro import obs
from repro.obs import context
from repro.serve.stats import BatchSizeHistogram

# Enqueue-path aliases: one attribute load and one bound-method call per
# request instead of module->object->attribute chains.  `_STATE.enabled`
# stays live (set_enabled mutates the shared _State object in place).
_STATE = obs.state
_current_context = context._CURRENT.get

# Stage timings of the request pipeline, one record per flush (never per
# request): how long the oldest key waited for company (coalesce), how long
# the backend batch took (dispatch), how long scattering answers back took.
_COALESCE_WAIT_US = obs.histogram(
    "repro_frontend_coalesce_wait_us",
    "Oldest pending key's wait before its batch flushed, in microseconds.",
)
_DISPATCH_US = obs.histogram(
    "repro_frontend_dispatch_us",
    "Backend query_many execution time per flushed batch, in microseconds.",
)
_SCATTER_US = obs.histogram(
    "repro_frontend_scatter_us",
    "Answer scatter-back time per flushed batch, in microseconds.",
)
_BATCH_SIZE = obs.histogram(
    "repro_frontend_batch_size", "Coalesced keys per flushed batch."
)
_REQUESTS = obs.counter(
    "repro_frontend_requests_total", "query/query_many calls accepted."
)
_FLUSHES = obs.counter("repro_frontend_flushes_total", "Batches flushed.")

# The SLO surface: per-request latency decomposition.  Per-request stages
# (coalesce, total) observe once per request; per-batch stages (dispatch,
# scatter) observe once per flush under the batch's adopted tenant.  Export
# derives p50/p99 per (stage, tenant) via `obs.slo_summary`.
_REQUEST_US = obs.histogram(
    "repro_request_us",
    "Per-request latency decomposition by pipeline stage, in microseconds.",
    ("stage", "tenant"),
)

#: Pre-bound (stage, tenant) children of ``_REQUEST_US``: the deferred
#: recording callback observes three stages per request, and the labels()
#: dict round-trip would dominate it.  Children survive registry clears.
_REQUEST_CHILDREN: dict[tuple[str, str], Any] = {}


def _request_child(stage: str, tenant: str):
    key = (stage, tenant)
    child = _REQUEST_CHILDREN.get(key)
    if child is None:
        child = _REQUEST_US.labels(stage=stage, tenant=tenant)
        _REQUEST_CHILDREN[key] = child
    return child


#: Shared, treat-as-immutable span-args dicts.  Per-request span records
#: would otherwise allocate two args dicts each, and the extra gen-0 GC
#: pressure at serving concurrency is measurable; consumers that mutate
#: args (the Chrome exporter) copy first.
_COALESCE_ARGS: dict[str, dict] = {}
_REQUEST_ARGS: dict[tuple, dict] = {}


def _coalesce_args(tenant: str) -> dict:
    args = _COALESCE_ARGS.get(tenant)
    if args is None:
        args = {"stage": "coalesce", "tenant": tenant}
        _COALESCE_ARGS[tenant] = args
    return args


def _request_args(tenant: str, predicate: Any, count: int) -> dict:
    if count != 1:
        # Multi-key requests are rare on the coalesced path; only the
        # point-query shape is worth interning.
        return {"stage": "total", "tenant": tenant, "predicate": predicate, "keys": count}
    key = (tenant, predicate)
    args = _REQUEST_ARGS.get(key)
    if args is None:
        args = {"stage": "total", "tenant": tenant, "predicate": predicate, "keys": 1}
        _REQUEST_ARGS[key] = args
    return args


class CoalescingFrontEnd:
    """Coalesce concurrent point queries into per-tick vectorised batches."""

    def __init__(
        self,
        backend: Any,
        tick_seconds: float = 0.001,
        max_batch: int = 8192,
        predicates: Sequence[Any] = (None,),
    ) -> None:
        """``predicates`` lists the predicate tokens requests may use: None
        for key-only membership, registered names for a WorkerPool backend,
        or compiled predicate objects for a direct FilterStore backend —
        anything hashable the backend's ``query_many`` accepts."""
        if tick_seconds < 0:
            raise ValueError("tick_seconds must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self.backend = backend
        self.tick_seconds = tick_seconds
        self.max_batch = max_batch
        #: chunks pending per predicate token: list of
        #: (keys, future, count, upstream_ctx, arrival, tenant); upstream
        #: and arrival are None when recording is off.
        self._pending: dict[Any, list[tuple]] = {name: [] for name in predicates}
        self._pending_keys: dict[Any, int] = {name: 0 for name in predicates}
        #: When each predicate's oldest pending chunk arrived (coalesce wait).
        self._pending_since: dict[Any, float] = {}
        #: Oldest pending upstream TraceContext per predicate — tracked at
        #: enqueue so _flush adopts it O(1) instead of scanning every chunk.
        self._pending_upstream: dict[Any, Any] = {}
        self._tick_handles: dict[Any, Any] = {}
        # One dedicated executor thread: backends like WorkerPool drive
        # their dispatch plane from a single thread, and batches still
        # pipeline — the next tick accumulates on the event loop while the
        # current batch computes here.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-frontend"
        )
        self.histogram = BatchSizeHistogram()
        self.requests = 0
        self.flushes = 0

    # -- client side ----------------------------------------------------

    async def query(
        self, key: object, predicate: Any = None, tenant: str = "default"
    ) -> bool:
        """Point membership query; coalesced into the next tick's batch."""
        answers = await self.query_many([key], predicate, tenant=tenant)
        return bool(answers[0])

    async def query_many(
        self,
        keys: Sequence[object] | np.ndarray,
        predicate: Any = None,
        tenant: str = "default",
    ) -> np.ndarray:
        """Batch query; small batches ride along with everything pending.

        ``tenant`` labels this request's ``repro_request_us`` series.  If a
        trace context is already active on the calling task it is joined
        (its tenant wins); otherwise a fresh root context is minted.
        """
        if predicate not in self._pending:
            raise KeyError(
                f"predicate {predicate!r} not declared in this front end's "
                "predicates"
            )
        count = len(keys)
        if count == 0:
            return np.zeros(0, dtype=bool)
        upstream = arrival = None
        if _STATE.enabled:
            # Deliberately cheap: a clock read and a contextvar read.  Trace
            # ids are minted lazily, after this request's future resolves.
            arrival = perf_counter()
            upstream = _current_context()
            if upstream is not None and self._pending_upstream.get(predicate) is None:
                self._pending_upstream[predicate] = upstream
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        if not self._pending[predicate]:
            self._pending_since[predicate] = perf_counter()
        self._pending[predicate].append(
            (keys, future, count, upstream, arrival, tenant)
        )
        self._pending_keys[predicate] += count
        self.requests += 1
        if self._pending_keys[predicate] >= self.max_batch:
            self._flush(predicate)
        elif predicate not in self._tick_handles:
            # First pending chunk arms the tick timer for this predicate.
            self._tick_handles[predicate] = loop.call_later(
                self.tick_seconds, self._flush, predicate
            )
        return await future

    # -- flush machinery ------------------------------------------------

    def _flush(self, predicate: str | None) -> None:
        """Execute everything pending for ``predicate`` as one batch."""
        handle = self._tick_handles.pop(predicate, None)
        if handle is not None:
            handle.cancel()
        chunks = self._pending[predicate]
        if not chunks:
            return
        self._pending[predicate] = []
        self._pending_keys[predicate] = 0
        pending_since = self._pending_since.pop(predicate, None)
        merged = _concat_keys([keys for keys, *_ in chunks])
        self.histogram.record(len(merged))
        self.flushes += 1
        _FLUSHES.inc()
        # Counted per flush, not per enqueue: a locked inc on the enqueue
        # path bills every concurrent caller ~0.5us, which is exactly the
        # per-request budget the tracing-overhead gate protects.
        _REQUESTS.inc(len(chunks))
        # Popped even when recording flipped off mid-batch, so a stale
        # adopter can't leak into the next batch.
        adopted_upstream = self._pending_upstream.pop(predicate, None)
        batch_info = None
        if obs.state.enabled:
            flush_t = perf_counter()
            _BATCH_SIZE.observe(len(merged))
            if pending_since is not None:
                _COALESCE_WAIT_US.observe((flush_t - pending_since) * 1e6)
            # The batch adopts the oldest request with an upstream context
            # (so a caller-propagated trace reaches the workers), minting a
            # fresh root on the oldest request's behalf otherwise.  The
            # adopter was tracked at enqueue — no scan over the chunks here,
            # this callback runs on the serving path.
            batch_ctx = adopted_upstream
            minted = batch_ctx is None
            if minted:
                batch_ctx = context.new_trace(
                    tenant=chunks[0][5],
                    predicate=None if predicate is None else str(predicate),
                )
            batch_info = {
                "batch_ctx": batch_ctx,
                "dispatch_ctx": batch_ctx.child(context.new_span_id()),
                "flush_t": flush_t,
                "minted": minted,
            }
        loop = asyncio.get_running_loop()
        task = loop.run_in_executor(
            self._executor, self._dispatch, merged, predicate, batch_info
        )
        task = asyncio.ensure_future(task)
        task.add_done_callback(
            lambda done: self._resolve(done, chunks, batch_info)
        )

    def _dispatch(
        self, merged: np.ndarray, predicate: Any, batch_info: dict | None = None
    ) -> np.ndarray:
        """Run one coalesced batch on the backend (executor thread).

        The batch's dispatch context is activated here explicitly —
        ``run_in_executor`` does not carry contextvars — so backend spans
        (worker probe, store probe) parent under this request's tree.
        """
        start = perf_counter()
        try:
            if batch_info is None:
                return self.backend.query_many(merged, predicate)
            # Raw token set/reset instead of the activate() helper: once per
            # batch on the dispatch path, and the generator-based context
            # manager costs a few extra microseconds there.
            token = context._CURRENT.set(batch_info["dispatch_ctx"])
            try:
                return self.backend.query_many(merged, predicate)
            finally:
                context._CURRENT.reset(token)
        finally:
            elapsed_us = (perf_counter() - start) * 1e6
            _DISPATCH_US.observe(elapsed_us)
            if batch_info is not None and obs.state.enabled:
                ctx = batch_info["batch_ctx"]
                batch_info["dispatch_us"] = elapsed_us
                _request_child("dispatch", ctx.tenant).observe(elapsed_us)
                obs.RECORDER.record(
                    "frontend.dispatch",
                    start=start,
                    duration=elapsed_us / 1e6,
                    trace=ctx.trace_id,
                    span=batch_info["dispatch_ctx"].span_id,
                    parent=ctx.span_id,
                    args={
                        "stage": "dispatch",
                        "tenant": ctx.tenant,
                        "keys": int(len(merged)),
                    },
                )

    def _resolve(
        self,
        done: "asyncio.Future[np.ndarray]",
        chunks: list[tuple],
        batch_info: dict | None = None,
    ) -> None:
        """Scatter one batch's answers back to each caller's future."""
        start = perf_counter()
        error = done.exception()
        offset = 0
        for _, future, count, *_ in chunks:
            if future.cancelled():
                offset += count
                continue
            if error is not None:
                future.set_exception(error)
            else:
                answers = done.result()
                future.set_result(answers[offset : offset + count])
            offset += count
        end = perf_counter()
        scatter_us = (end - start) * 1e6
        _SCATTER_US.observe(scatter_us)
        if batch_info is None or not obs.state.enabled:
            return
        # Defer the per-request recording to a later loop callback: the
        # set_result wake-ups queued above run first, so callers never wait
        # on telemetry bookkeeping.
        asyncio.get_running_loop().call_soon(
            self._record_requests, chunks, batch_info, start, end, scatter_us
        )

    def _record_requests(
        self,
        chunks: list[tuple],
        batch_info: dict,
        scatter_start: float,
        end: float,
        scatter_us: float,
    ) -> None:
        """Per-request SLO observations, spans and slow-op offers for one
        resolved batch (loop callback, after the callers woke up).

        Recording is bulk: span records are built as plain dicts and
        appended under one ring lock, and histogram values are grouped per
        (stage, tenant) and observed under one lock each.  Per-request
        locking multiplies by the batch size, and with batches pipelining
        under load this callback runs while later batches' callers still
        have their latency clocks open.
        """
        if not obs.state.enabled:
            return
        batch_ctx = batch_info["batch_ctx"]
        flush_t = batch_info["flush_t"]
        dispatch_us = batch_info.get("dispatch_us", 0.0)
        thread = threading.get_ident()
        pid = os.getpid()
        predicate = batch_ctx.predicate
        _request_child("scatter", batch_ctx.tenant).observe(scatter_us)
        records = [
            {
                "name": "frontend.scatter",
                "start": scatter_start,
                "duration": scatter_us / 1e6,
                "thread": thread,
                "pid": pid,
                "trace": batch_ctx.trace_id,
                "span": context.new_span_id(),
                "parent": batch_ctx.span_id,
                "args": {"stage": "scatter", "tenant": batch_ctx.tenant},
            }
        ]
        waits: dict[str, list] = {}
        totals: dict[str, list] = {}
        offers: list[tuple] = []
        # Requests no slower than the ring's current floor can't be tracked;
        # pre-filtering skips their offer bookkeeping (the fast majority).
        offer_floor = obs.SLOW_OPS.admit_floor()
        offers_skipped = 0
        # If the batch context was minted (no caller carried one), it was
        # minted on the oldest request's behalf: that request's tree is the
        # one holding the dispatch/worker/store spans.
        root_pending = batch_info["minted"]
        for _, _, count, upstream, arrival, tenant in chunks:
            if arrival is None:
                continue
            if upstream is not None:
                ctx = upstream
            elif root_pending:
                ctx = batch_ctx
                root_pending = False
            else:
                ctx = context.new_trace(tenant=tenant, predicate=predicate)
            wait_us = (flush_t - arrival) * 1e6
            total_us = (end - arrival) * 1e6
            waits.setdefault(ctx.tenant, []).append(wait_us)
            totals.setdefault(ctx.tenant, []).append(total_us)
            records.append(
                {
                    "name": "frontend.coalesce",
                    "start": arrival,
                    "duration": wait_us / 1e6,
                    "thread": thread,
                    "pid": pid,
                    "trace": ctx.trace_id,
                    "span": context.new_span_id(),
                    "parent": ctx.span_id,
                    "args": _coalesce_args(ctx.tenant),
                }
            )
            records.append(
                {
                    "name": "frontend.request",
                    "start": arrival,
                    "duration": total_us / 1e6,
                    "thread": thread,
                    "pid": pid,
                    "trace": ctx.trace_id,
                    "span": ctx.span_id,
                    "parent": None,
                    "args": _request_args(ctx.tenant, ctx.predicate, int(count)),
                }
            )
            if offer_floor is not None and total_us <= offer_floor:
                offers_skipped += 1
            else:
                offers.append((ctx.trace_id, ctx.tenant, total_us, wait_us))
        obs.RECORDER.record_many(records)
        for tenant, values in waits.items():
            _request_child("coalesce", tenant).observe_many(values)
        for tenant, values in totals.items():
            _request_child("total", tenant).observe_many(values)
        offer = obs.SLOW_OPS.offer
        for trace_id, tenant, total_us, wait_us in offers:
            offer(
                trace_id,
                tenant,
                total_us,
                stages={
                    "coalesce": wait_us,
                    "dispatch": dispatch_us,
                    "scatter": scatter_us,
                },
            )
        if offers_skipped:
            obs.SLOW_OPS.count_skipped(offers_skipped)

    async def drain(self) -> None:
        """Flush everything pending and wait for the batches to finish."""
        pending_futures = [
            future
            for chunks in self._pending.values()
            for _, future, *_ in chunks
        ]
        for predicate in list(self._pending):
            self._flush(predicate)
        if pending_futures:
            await asyncio.gather(*pending_futures, return_exceptions=True)

    def close(self) -> None:
        """Release the dispatch executor (pending batches finish first)."""
        self._executor.shutdown(wait=True)

    def stats(self) -> dict:
        """Requests seen, flushes executed, and the coalesced-size histogram."""
        return {
            "requests": self.requests,
            "flushes": self.flushes,
            "tick_seconds": self.tick_seconds,
            "max_batch": self.max_batch,
            "histogram": self.histogram.to_dict(),
        }


def _concat_keys(parts: list[Any]) -> np.ndarray:
    """Merge request key chunks into one backend batch."""
    arrays = [np.asarray(part) for part in parts]
    if len(arrays) == 1:
        return arrays[0]
    if all(arr.dtype == arrays[0].dtype and arr.dtype != object for arr in arrays):
        return np.concatenate(arrays)
    # Mixed or object-typed keys: fall back to an object array, which the
    # hashing ingress treats as a generic python-object sequence.
    merged = np.empty(sum(arr.size for arr in arrays), dtype=object)
    offset = 0
    for arr in arrays:
        merged[offset : offset + arr.size] = arr
        offset += arr.size
    return merged
