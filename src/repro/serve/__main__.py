"""``python -m repro.serve``: operational tooling for the serving runtime.

One subcommand::

    python -m repro.serve smoke [--keys N] [--mode thread|process]
                                [--workers N] [--out-dir DIR]

builds a small store, starts a full :class:`~repro.serve.runtime.
ServeRuntime` with the HTTP telemetry server attached, drives coalesced
multi-tenant traffic through the front end, then scrapes every endpoint
over real HTTP and checks the whole observability contract end to end:

* ``/health`` answers 200 with ``status: ok`` while serving;
* ``/metrics`` parses back through the Prometheus round-trip parser;
* ``/metrics.json``'s embedded registry snapshot passes
  `repro.obs.validate_snapshot` and carries the ``repro_request_us`` SLO
  series for every tenant driven;
* the merged Chrome-trace export contains a complete frontend → worker →
  store span tree under a single trace id.

Artifacts land in ``--out-dir`` (default ``bench_results/``):
``serve_telemetry_smoke.json`` (the ``/metrics.json`` body — CI
schema-validates it with ``python -m repro.obs validate``) and
``serve_trace.json`` (the merged Chrome trace — load it in
``chrome://tracing``).  Exit code 0 only if every check passes.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np

from repro import obs
from repro.ccf.attributes import AttributeSchema
from repro.ccf.params import CCFParams
from repro.ccf.predicates import Eq
from repro.serve.runtime import ServeRuntime
from repro.store import FilterStore, StoreConfig

SCHEMA = AttributeSchema(["status", "region"])
PARAMS = CCFParams(key_bits=20, attr_bits=8, bucket_size=4, seed=11)
TENANTS = ("alpha", "beta")


def _get(url: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _build_store(num_keys: int) -> tuple[FilterStore, np.ndarray]:
    store = FilterStore(
        SCHEMA, PARAMS, StoreConfig(num_shards=4, level_buckets=1024)
    )
    keys = np.arange(num_keys, dtype=np.int64)
    statuses = np.array(["live", "dead"], dtype=object)[keys % 2]
    assert store.insert_many(keys, [statuses, keys % 17]).all()
    return store, keys


async def _drive(frontend, keys: np.ndarray) -> None:
    """Concurrent point queries across tenants, plus predicate batches."""
    point = [
        frontend.query(int(key), tenant=TENANTS[i % len(TENANTS)])
        for i, key in enumerate(keys[:256])
    ]
    batches = [
        frontend.query_many(keys[:128], "live", tenant=tenant)
        for tenant in TENANTS
    ]
    answers = await asyncio.gather(*point)
    if not all(answers):
        raise AssertionError("smoke traffic returned a false negative")
    for hits in await asyncio.gather(*batches):
        if not (hits == (keys[:128] % 2 == 0)).all():
            raise AssertionError("predicate batch diverged")


def smoke(num_keys: int, mode: str, workers: int, out_dir: Path) -> int:
    obs.set_enabled(True)
    problems: list[str] = []
    store, keys = _build_store(num_keys)
    out_dir.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        runtime = ServeRuntime(
            store,
            Path(tmp) / "epochs",
            num_workers=workers,
            mode=mode,
            predicates={"live": Eq("status", "live")},
            warm=False,
        )
        with runtime:
            server = runtime.serve_telemetry()
            frontend = runtime.frontend()
            asyncio.run(_drive(frontend, keys))
            frontend.close()

            status, body = _get(server.url("/health"))
            health = json.loads(body)
            if status != 200 or health.get("status") != "ok":
                problems.append(f"/health: {status} {health}")

            status, body = _get(server.url("/metrics"))
            if status != 200:
                problems.append(f"/metrics: HTTP {status}")
            else:
                parsed = obs.parse_prometheus(body.decode())
                if "repro_request_us" not in parsed:
                    problems.append("/metrics: repro_request_us missing")

            status, body = _get(server.url("/metrics.json"))
            telemetry = json.loads(body) if status == 200 else {}
            if status != 200:
                problems.append(f"/metrics.json: HTTP {status}")
            else:
                schema_problems = obs.validate_snapshot(
                    telemetry.get("metrics_snapshot", {})
                )
                problems += [f"/metrics.json: {p}" for p in schema_problems]
                slo = telemetry.get("slo", {})
                for tenant in TENANTS:
                    if f"stage=total,tenant={tenant}" not in slo:
                        problems.append(f"/metrics.json: no SLO row for {tenant}")

            status, body = _get(server.url("/trace"))
            if status != 200 or not json.loads(body).get("traceEvents"):
                problems.append(f"/trace: HTTP {status} or empty")

            status, _ = _get(server.url("/bogus"))
            if status != 404:
                problems.append(f"/bogus: expected 404, got {status}")

            trace = runtime.trace()
            problems += _check_tree(trace)

            (out_dir / "serve_telemetry_smoke.json").write_text(
                json.dumps(telemetry, indent=2, sort_keys=True)
            )
            (out_dir / "serve_trace.json").write_text(
                json.dumps(trace, indent=2, sort_keys=True)
            )

    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    verdict = "FAILED" if problems else "ok"
    print(
        f"serve smoke {verdict}: {num_keys} keys, mode={mode}, "
        f"workers={workers}; artifacts in {out_dir}/"
    )
    return 1 if problems else 0


def _check_tree(trace: dict) -> list[str]:
    """Every traced event's parent must resolve inside its own trace, and
    at least one trace must span frontend, worker and store layers."""
    by_trace: dict[str, list[dict]] = {}
    for event in trace.get("traceEvents", []):
        trace_id = event.get("args", {}).get("trace")
        if trace_id:
            by_trace.setdefault(trace_id, []).append(event)
    if not by_trace:
        return ["trace: no traced events at all"]
    problems = []
    complete = 0
    for trace_id, events in by_trace.items():
        spans = {e["args"]["span"] for e in events}
        dangling = [
            e["args"]["parent"]
            for e in events
            if e["args"]["parent"] and e["args"]["parent"] not in spans
        ]
        if dangling:
            problems.append(f"trace {trace_id}: dangling parents {dangling[:3]}")
        names = {e["name"] for e in events}
        if {"frontend.request", "worker.probe", "store.probe"} <= names:
            complete += 1
    if not complete:
        problems.append("trace: no trace spans frontend → worker → store")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serving runtime tooling",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    smoke_cmd = sub.add_parser(
        "smoke",
        help="start a runtime + telemetry server, scrape and verify it",
    )
    smoke_cmd.add_argument("--keys", type=int, default=20_000)
    smoke_cmd.add_argument("--mode", choices=("thread", "process"), default="thread")
    smoke_cmd.add_argument("--workers", type=int, default=2)
    smoke_cmd.add_argument(
        "--out-dir",
        type=Path,
        default=Path("bench_results"),
        help="artifact directory (default: bench_results/)",
    )
    args = parser.parse_args(argv)
    if args.command == "smoke":
        return smoke(args.keys, args.mode, args.workers, args.out_dir)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
