"""Shared-mmap worker pool: N workers serving one FilterStore snapshot.

The scaling story (DESIGN.md §11): PR 5's SEG1 segments made a snapshot a
set of page-aligned, read-only files, so *attaching* a store is O(manifest)
and *serving* it reads straight from the OS page cache.  That cache is
shared machine-wide — N workers mapping the same snapshot cost one copy of
the data, however many processes serve it.  This module exploits that:

* ``mode="process"`` — each worker is a separate process that opens the
  snapshot itself (multi-process re-attach; fork or spawn both work).  True
  multi-core parallelism for the numpy probe kernels, zero incremental RSS
  for the slot data.
* ``mode="thread"`` — workers are threads, each with its own mapped store
  attachment.  The probe kernels are numpy and release the GIL during the
  gather/compare work, so threads overlap IO waits and some compute; best
  for read-only mapped stores when processes are unavailable.

Requests are whole key batches (the front end in `frontend.py` coalesces
singles into batches before they get here).  Dispatch is round-robin over
per-worker inboxes; results return on one shared outbox tagged by request
id, so callers can pipeline hundreds of batches and collect out of order.

Writers live *outside* the pool: a single writer process/thread mutates its
own store and periodically publishes a new snapshot epoch
(`runtime.ServeRuntime.publish`).  ``refresh(path, epoch)`` broadcasts the
epoch to every worker, which calls :meth:`FilterStore.refresh` — reusing
every level whose content token is unchanged, mapping only rolled/compacted
levels — and acks.  No worker ever does a full reopen.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import traceback
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro import obs
from repro.obs import context as trace_context
from repro.obs import spans as trace_spans
from repro.ccf.predicates import Predicate
from repro.kernels import active_backend, backend_spec, set_backend
from repro.serve.stats import WorkerStats, merge_worker_stats
from repro.store.metrics import OPS_METRIC, ops_family, store_metrics
from repro.store.store import FilterStore

#: Supported worker flavours.
POOL_MODES = ("process", "thread")

#: How long `wait`/`refresh`/`stats` polls the outbox between liveness
#: checks, seconds.
_POLL_INTERVAL = 0.25


def _serve_worker(
    worker_id: int,
    snapshot_path: str,
    predicate_items: Sequence[tuple[str, Predicate]],
    kernel_backend: str | None,
    inbox: Any,
    outbox: Any,
    isolated: bool = False,
) -> None:
    """One worker's loop: attach the snapshot, answer query batches.

    Runs in a forked/spawned process or a thread; everything it needs
    arrives through ``inbox`` and everything it produces leaves through
    ``outbox``, so the same body serves both modes.  ``kernel_backend`` is
    the pool's requested kernel-backend spec, replayed here *before* the
    store attaches: a spawned process re-imports `repro.kernels` with fresh
    state, so the selection must travel in the args (fork and threads would
    inherit it, spawn would silently lose it).  Replay is non-strict — a
    worker on a host without the accelerator degrades to numpy and says so
    in its stats rather than dying.

    ``isolated`` marks a worker whose metrics registry is its own (process
    mode).  An isolated worker zeroes the registry before attaching — a
    forked child inherits the parent's counters, and shipping those back
    would double-count every pre-fork flow — and answers ``metrics``
    requests with its full registry snapshot.  A thread worker *shares* the
    process registry (its kernel/probe counters are already in the parent's
    snapshot), so it must neither reset it nor re-ship it: it reports only
    its served-ops delta.
    """
    stats = WorkerStats(worker_id)
    try:
        if isolated:
            obs._reset_for_tests()
        if kernel_backend is not None:
            set_backend(kernel_backend, strict=False)
        store = FilterStore.open(snapshot_path)
        # The snapshot manifest restores the writer's lifetime OpCounters;
        # report deltas from here so pool merges count only work this
        # worker actually served.
        ops_baseline = store.ops.to_dict()
        compiled = {name: store.compile(pred) for name, pred in predicate_items}
    except BaseException as exc:  # startup failure: report, don't hang callers
        outbox.put(("fatal", worker_id, f"{type(exc).__name__}: {exc}"))
        return
    epoch = 0
    while True:
        message = inbox.get()
        kind = message[0]
        if kind == "stop":
            outbox.put(("stopped", worker_id, stats.to_dict()))
            return
        try:
            if kind == "query":
                _, request_id, keys, predicate_name, wire = message
                if wire is not None and obs.state.enabled:
                    # Re-activate the request's trace context shipped in the
                    # message, so the probe span (and the store spans under
                    # it) parent into the front end's dispatch span.  Raw
                    # token set/reset, not the activate() helper: this runs
                    # once per traced batch and the generator-based context
                    # manager costs a few extra microseconds the
                    # tracing-overhead gate has to absorb.
                    ctx = trace_context.TraceContext.from_wire(wire)
                    token = trace_context._CURRENT.set(ctx)
                    try:
                        with obs.span(
                            "worker.probe", worker=worker_id, keys=int(len(keys))
                        ):
                            answers = store.query_many(
                                keys, compiled.get(predicate_name)
                            )
                    finally:
                        trace_context._CURRENT.reset(token)
                else:
                    answers = store.query_many(keys, compiled.get(predicate_name))
                stats.record_batch(len(keys))
                outbox.put(("result", request_id, answers, worker_id))
            elif kind == "refresh":
                _, new_epoch, path = message
                if new_epoch > epoch:
                    store.refresh(path)
                    epoch = new_epoch
                    stats.refreshes += 1
                outbox.put(("refreshed", worker_id, new_epoch))
            elif kind == "stats":
                payload = stats.to_dict()
                payload["epoch"] = epoch
                payload["store_ops"] = store.ops.to_dict()
                payload["kernel_backend"] = active_backend().name
                outbox.put(("stats", worker_id, payload))
            elif kind == "metrics":
                current = store.ops.to_dict()
                delta = {
                    name: current[name] - ops_baseline.get(name, 0)
                    for name in current
                }
                if isolated:
                    payload = store_metrics(store, ops=delta)
                else:
                    payload = {OPS_METRIC: ops_family(delta)}
                outbox.put(("metrics", worker_id, payload))
            elif kind == "trace":
                # Ship-and-clear this process's span ring so the caller can
                # merge one coherent trace.  A thread worker shares the
                # caller's ring — its spans are already there, so it ships
                # nothing rather than duplicating them.
                if isolated:
                    payload = {
                        "spans": obs.RECORDER.drain(),
                        "origin_epoch": trace_spans._ORIGIN_EPOCH,
                        "pid": os.getpid(),
                    }
                else:
                    payload = None
                outbox.put(("trace", worker_id, payload))
            else:  # pragma: no cover - defensive
                outbox.put(("error", None, f"unknown message {kind!r}", worker_id))
        except BaseException:
            stats.errors += 1
            request_id = message[1] if kind == "query" else None
            outbox.put(("error", request_id, traceback.format_exc(), worker_id))


class WorkerPool:
    """A pool of snapshot-serving workers with round-robin batch dispatch."""

    def __init__(
        self,
        snapshot_path: str | Path,
        num_workers: int = 2,
        mode: str = "process",
        predicates: Mapping[str, Predicate] | None = None,
        start_method: str | None = None,
        timeout: float = 120.0,
    ) -> None:
        if mode not in POOL_MODES:
            raise ValueError(f"mode must be one of {POOL_MODES}, got {mode!r}")
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.snapshot_path = str(snapshot_path)
        self.num_workers = num_workers
        self.mode = mode
        self.predicates = dict(predicates or {})
        self.timeout = timeout
        # Capture the kernel-backend request *now* so spawned workers (fresh
        # interpreters, fresh `repro.kernels` state) replay the same choice.
        self.kernel_backend = backend_spec()
        self._ctx = (
            multiprocessing.get_context(start_method) if mode == "process" else None
        )
        self._workers: list[Any] = []
        self._inboxes: list[Any] = []
        self._outbox: Any = None
        self._next_worker = 0
        self._next_request = 0
        self._results: dict[int, np.ndarray] = {}
        self._inflight: set[int] = set()
        self._refresh_acks: list[tuple[int, int]] = []
        self._stats_replies: dict[int, dict] = {}
        self._metrics_replies: dict[int, dict] = {}
        self._trace_replies: dict[int, dict | None] = {}
        # Control-plane calls (refresh/stats/metrics/trace) may come from
        # more than one thread once a telemetry server is scraping a live
        # runtime; serialise them so concurrent collections don't clobber
        # each other's reply buffers.  The query plane stays lock-free.
        self._control_lock = threading.Lock()
        self._started = False
        self._closed = False
        self.final_stats: dict | None = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "WorkerPool":
        """Launch the workers (each attaches the snapshot on its own)."""
        if self._started:
            raise RuntimeError("pool already started")
        self._started = True
        items = tuple(self.predicates.items())
        if self.mode == "process":
            self._outbox = self._ctx.Queue()
            for worker_id in range(self.num_workers):
                inbox = self._ctx.Queue()
                proc = self._ctx.Process(
                    target=_serve_worker,
                    args=(
                        worker_id,
                        self.snapshot_path,
                        items,
                        self.kernel_backend,
                        inbox,
                        self._outbox,
                        True,  # isolated: own process, own metrics registry
                    ),
                    daemon=True,
                    name=f"repro-serve-{worker_id}",
                )
                proc.start()
                self._inboxes.append(inbox)
                self._workers.append(proc)
        else:
            self._outbox = queue.Queue()
            for worker_id in range(self.num_workers):
                inbox: Any = queue.Queue()
                thread = threading.Thread(
                    target=_serve_worker,
                    args=(
                        worker_id,
                        self.snapshot_path,
                        items,
                        self.kernel_backend,
                        inbox,
                        self._outbox,
                    ),
                    daemon=True,
                    name=f"repro-serve-{worker_id}",
                )
                thread.start()
                self._inboxes.append(inbox)
                self._workers.append(thread)
        return self

    def close(self) -> dict | None:
        """Stop every worker and return the merged final worker stats."""
        if not self._started or self._closed:
            return self.final_stats
        self._closed = True
        for inbox in self._inboxes:
            inbox.put(("stop",))
        collected: dict[int, dict] = {}
        deadline = self.timeout
        while len(collected) < self.num_workers and deadline > 0:
            try:
                message = self._outbox.get(timeout=_POLL_INTERVAL)
            except queue.Empty:
                deadline -= _POLL_INTERVAL
                if not any(self._alive()):
                    break
                continue
            if message[0] == "stopped":
                collected[message[1]] = message[2]
            elif message[0] == "result":
                self._results[message[1]] = message[2]
        for worker in self._workers:
            worker.join(timeout=5.0)
        self.final_stats = merge_worker_stats(
            [collected[i] for i in sorted(collected)]
        )
        return self.final_stats

    def __enter__(self) -> "WorkerPool":
        return self.start() if not self._started else self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _alive(self) -> list[bool]:
        return [worker.is_alive() for worker in self._workers]

    def alive(self) -> bool:
        """True while the pool is started, not closed, and every worker
        lives — the readiness half of the ``/health`` endpoint."""
        return self._started and not self._closed and all(self._alive())

    def _require_running(self) -> None:
        if not self._started:
            raise RuntimeError("pool not started (use start() or a with-block)")
        if self._closed:
            raise RuntimeError("pool is closed")

    # -- request plane --------------------------------------------------

    def submit(
        self, keys: Sequence[object] | np.ndarray, predicate: str | None = None
    ) -> int:
        """Enqueue one query batch; returns a request id for :meth:`wait`.

        ``predicate`` names one of the predicates registered at pool
        construction (compiled once per worker), or None for key-only
        membership.
        """
        self._require_running()
        if predicate is not None and predicate not in self.predicates:
            raise KeyError(
                f"unknown predicate {predicate!r}; registered: "
                f"{sorted(self.predicates)}"
            )
        request_id = self._next_request
        self._next_request += 1
        ctx = trace_context.current() if obs.state.enabled else None
        wire = None if ctx is None else ctx.to_wire()
        self._inboxes[self._next_worker].put(
            ("query", request_id, keys, predicate, wire)
        )
        self._next_worker = (self._next_worker + 1) % self.num_workers
        self._inflight.add(request_id)
        return request_id

    def _drain_one(self, timeout: float) -> None:
        """Route the next outbox message; raise on worker errors/death."""
        try:
            message = self._outbox.get(timeout=timeout)
        except queue.Empty:
            if not all(self._alive()):
                dead = [i for i, ok in enumerate(self._alive()) if not ok]
                raise RuntimeError(f"serve worker(s) {dead} died") from None
            return
        kind = message[0]
        if kind == "result":
            _, request_id, answers, _worker = message
            self._inflight.discard(request_id)
            self._results[request_id] = answers
        elif kind == "error":
            _, request_id, text, worker_id = message
            if request_id is not None:
                self._inflight.discard(request_id)
            raise RuntimeError(f"serve worker {worker_id} failed:\n{text}")
        elif kind == "fatal":
            raise RuntimeError(
                f"serve worker {message[1]} failed to attach snapshot: {message[2]}"
            )
        elif kind == "refreshed":
            self._refresh_acks.append((message[1], message[2]))
        elif kind == "stats":
            self._stats_replies[message[1]] = message[2]
        elif kind == "metrics":
            self._metrics_replies[message[1]] = message[2]
        elif kind == "trace":
            self._trace_replies[message[1]] = message[2]

    def wait(self, request_id: int, timeout: float | None = None) -> np.ndarray:
        """Block until ``request_id``'s answers arrive and return them."""
        self._require_running()
        remaining = self.timeout if timeout is None else timeout
        while request_id not in self._results:
            if remaining <= 0:
                raise TimeoutError(f"request {request_id} not answered in time")
            self._drain_one(min(_POLL_INTERVAL, remaining))
            remaining -= _POLL_INTERVAL
        return self._results.pop(request_id)

    def query_many(
        self, keys: Sequence[object] | np.ndarray, predicate: str | None = None
    ) -> np.ndarray:
        """Synchronous single-batch convenience: submit + wait."""
        return self.wait(self.submit(keys, predicate))

    def map_batches(
        self,
        batches: Iterable[np.ndarray],
        predicate: str | None = None,
    ) -> list[np.ndarray]:
        """Dispatch many batches round-robin and collect answers in order.

        The pipelined path the latency benchmark drives: all batches are
        enqueued up front (workers start on batch 0 while batch 1 is still
        being pickled), then answers are collected by request id.
        """
        request_ids = [self.submit(batch, predicate) for batch in batches]
        return [self.wait(request_id) for request_id in request_ids]

    # -- control plane --------------------------------------------------

    def refresh(self, path: str | Path, epoch: int) -> None:
        """Broadcast a published snapshot epoch; blocks until all acks.

        Idempotent per worker (an epoch at or below the worker's current one
        is acked without re-attaching), so redelivery is harmless.
        """
        self._require_running()
        with self._control_lock:
            self._refresh_acks = []
            for inbox in self._inboxes:
                inbox.put(("refresh", epoch, str(path)))
            remaining = self.timeout
            acked: set[int] = set()
            while len(acked) < self.num_workers:
                if remaining <= 0:
                    raise TimeoutError(
                        f"refresh to epoch {epoch} not acknowledged"
                    )
                self._drain_one(_POLL_INTERVAL)
                remaining -= _POLL_INTERVAL
                acked = {worker for worker, e in self._refresh_acks if e == epoch}

    def stats(self) -> dict:
        """Live pool stats: merged per-worker counters + epochs."""
        self._require_running()
        with self._control_lock:
            self._stats_replies = {}
            for inbox in self._inboxes:
                inbox.put(("stats",))
            remaining = self.timeout
            while len(self._stats_replies) < self.num_workers:
                if remaining <= 0:
                    raise TimeoutError("workers did not report stats in time")
                self._drain_one(_POLL_INTERVAL)
                remaining -= _POLL_INTERVAL
        merged = merge_worker_stats(
            [self._stats_replies[i] for i in sorted(self._stats_replies)]
        )
        merged["mode"] = self.mode
        merged["snapshot_path"] = self.snapshot_path
        # One name when every worker agrees (the common case), else the
        # per-worker breakdown already carries each worker's answer.
        backends = {
            s.get("kernel_backend") for s in merged["per_worker"]
        } - {None}
        merged["kernel_backend"] = (
            backends.pop() if len(backends) == 1 else sorted(backends)
        )
        return merged

    def metrics(self) -> dict:
        """Merged per-worker metrics snapshots (one registry-shaped dict).

        Process workers ship their full registry (counters/histograms sum,
        gauges take the max); thread workers ship only their served-ops
        delta, because their hot-path counters already live in this
        process's registry.  Either way the result merges cleanly into the
        caller's snapshot via :func:`repro.obs.merge_snapshots`.
        """
        self._require_running()
        with self._control_lock:
            self._metrics_replies = {}
            for inbox in self._inboxes:
                inbox.put(("metrics",))
            remaining = self.timeout
            while len(self._metrics_replies) < self.num_workers:
                if remaining <= 0:
                    raise TimeoutError("workers did not report metrics in time")
                self._drain_one(_POLL_INTERVAL)
                remaining -= _POLL_INTERVAL
        return obs.merge_snapshots(
            *[self._metrics_replies[i] for i in sorted(self._metrics_replies)]
        )

    def trace(self) -> int:
        """Collect every worker's drained span ring into this process's.

        Process workers ship their ring plus their clock origin, and the
        spans are re-based and adopted into ``obs.RECORDER`` — after this
        call one :func:`repro.obs.to_chrome_trace` export holds the whole
        request tree, frontend through store.  Thread workers share this
        process's ring already and ship nothing.  Returns the number of
        spans adopted.
        """
        self._require_running()
        with self._control_lock:
            self._trace_replies = {}
            for inbox in self._inboxes:
                inbox.put(("trace",))
            remaining = self.timeout
            while len(self._trace_replies) < self.num_workers:
                if remaining <= 0:
                    raise TimeoutError("workers did not ship traces in time")
                self._drain_one(_POLL_INTERVAL)
                remaining -= _POLL_INTERVAL
            adopted = 0
            for payload in self._trace_replies.values():
                if payload is None:
                    continue
                adopted += obs.RECORDER.adopt(
                    payload["spans"], origin_epoch=payload["origin_epoch"]
                )
        return adopted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("running" if self._started else "new")
        return (
            f"WorkerPool(mode={self.mode!r}, workers={self.num_workers}, "
            f"{state}, snapshot={self.snapshot_path!r})"
        )
