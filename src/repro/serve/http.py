"""Asyncio HTTP telemetry server for a live ServeRuntime (DESIGN.md §15).

A deliberately tiny HTTP/1.1 server — stdlib only, GET only, one response
per connection — that turns a running :class:`~repro.serve.runtime.
ServeRuntime` into a scrape target:

* ``/metrics`` — Prometheus text exposition of the merged writer + pool
  registry (the same bytes ``runtime.metrics("prometheus")`` returns).
* ``/metrics.json`` — ``{"metrics_snapshot": <registry dict>, "slo":
  <p50/p99 per repro_request_us series>, "stats": <runtime.stats()>}``;
  the wrapper key is what ``python -m repro.obs validate`` looks for, so
  the body schema-checks with the stock CLI.
* ``/health`` — 200 when ready (epoch published + every worker alive),
  503 otherwise; JSON body either way, so load balancers and humans read
  the same endpoint.
* ``/trace`` — Chrome-trace JSON of the slow-op ring's requests (worker
  spans drained and merged first); load it in ``chrome://tracing``.

The server owns a daemon thread running its own event loop, so it scrapes
concurrently with the serving work; handler bodies run on the loop's
default executor because the pool control-plane calls they make are
blocking.  ``port=0`` binds an ephemeral port, published via ``.port``
once :meth:`start` returns.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import TYPE_CHECKING

from repro import obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.runtime import ServeRuntime

_MAX_REQUEST_BYTES = 16384
_PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
_JSON_CONTENT_TYPE = "application/json; charset=utf-8"

_REQUESTS = obs.counter(
    "repro_telemetry_requests_total",
    "Telemetry HTTP requests served, by route and status.",
    ("route", "status"),
)


class TelemetryServer:
    """Live scrape endpoint over one ServeRuntime."""

    def __init__(
        self, runtime: "ServeRuntime", host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.runtime = runtime
        self.host = host
        self.port = port  # rebound to the real port once started
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "TelemetryServer":
        if self._thread is not None:
            raise RuntimeError("telemetry server already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-telemetry", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            raise RuntimeError(
                f"telemetry server failed to bind {self.host}:{self.port}"
            ) from self._startup_error
        if not self._started.is_set():
            raise RuntimeError("telemetry server did not start in time")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self._server = loop.run_until_complete(
                asyncio.start_server(self._handle, self.host, self.port)
            )
        except BaseException as exc:  # bind failure: report, don't hang start()
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self.port = self._server.sockets[0].getsockname()[1]
        self._started.set()
        try:
            loop.run_forever()
        finally:
            self._server.close()
            loop.run_until_complete(self._server.wait_closed())
            loop.close()

    def close(self) -> None:
        """Stop accepting and join the server thread (idempotent)."""
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._thread = None
        self._loop = None
        self._server = None

    def __enter__(self) -> "TelemetryServer":
        return self if self._thread is not None else self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def url(self, path: str = "/") -> str:
        """Absolute URL for ``path`` on the bound socket."""
        return f"http://{self.host}:{self.port}{path}"

    # -- request handling -----------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=10.0
            )
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            asyncio.TimeoutError,
        ):
            writer.close()
            return
        try:
            line = request.split(b"\r\n", 1)[0].decode("latin-1")
            method, target, _ = line.split(" ", 2)
            path = target.split("?", 1)[0]
        except ValueError:
            method, path = "GET", "/__malformed__"
        loop = asyncio.get_running_loop()
        status, reason, ctype, body = await loop.run_in_executor(
            None, self._respond, method, path
        )
        known = ("/metrics", "/metrics.json", "/health", "/trace")
        route = path if path in known else "other"  # bound label cardinality
        _REQUESTS.labels(route=route, status=str(status)).inc()
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        try:
            await writer.drain()
        except ConnectionError:  # pragma: no cover - client went away
            pass
        writer.close()

    def _respond(self, method: str, path: str) -> tuple[int, str, str, bytes]:
        """Route one request (runs on the executor: handlers may block on
        the pool control plane)."""
        if method != "GET":
            return 405, "Method Not Allowed", _JSON_CONTENT_TYPE, _json_body(
                {"error": f"method {method} not allowed"}
            )
        try:
            if path == "/metrics":
                text = self.runtime.metrics("prometheus")
                return 200, "OK", _PROM_CONTENT_TYPE, text.encode()
            if path == "/metrics.json":
                snapshot = self.runtime.metrics("snapshot")
                body = {
                    "metrics_snapshot": snapshot,
                    "slo": obs.slo_summary(snapshot),
                    "slow_ops": obs.SLOW_OPS.summary(),
                }
                return 200, "OK", _JSON_CONTENT_TYPE, _json_body(body)
            if path == "/health":
                ready = self.runtime.ready()
                body = {
                    "status": "ok" if ready else "unavailable",
                    "epoch": self.runtime.epoch,
                    "workers_alive": (
                        self.runtime.pool is not None
                        and self.runtime.pool.alive()
                    ),
                    "mode": self.runtime.mode,
                }
                status = 200 if ready else 503
                reason = "OK" if ready else "Service Unavailable"
                return status, reason, _JSON_CONTENT_TYPE, _json_body(body)
            if path == "/trace":
                trace = self.runtime.trace(slow_only=True)
                return 200, "OK", _JSON_CONTENT_TYPE, _json_body(trace)
        except Exception as exc:  # surface handler failures as 500s
            return 500, "Internal Server Error", _JSON_CONTENT_TYPE, _json_body(
                {"error": f"{type(exc).__name__}: {exc}"}
            )
        return 404, "Not Found", _JSON_CONTENT_TYPE, _json_body(
            {"error": f"no route {path}"}
        )


def _json_body(payload) -> bytes:
    return json.dumps(payload, sort_keys=True).encode()
