"""Serving-side statistics: batch-size histograms and worker counters.

Two complementary views of a running serve stack (DESIGN.md §11):

* :class:`BatchSizeHistogram` — power-of-two buckets over the batch sizes a
  component actually executed.  The coalescing front end records one entry
  per flushed tick, so the histogram *is* the evidence that single-key
  traffic left the batch=1 regime the numpy kernels hate.
* :class:`WorkerStats` — per-worker served-op counters (batches, keys,
  refreshes picked up), merged across the pool for the runtime's stats
  endpoint alongside :meth:`FilterStore.stats`'s lifetime ``ops`` counters.

Everything here is plain data + a lock where concurrent writers exist, so
the counters stay exact without touching any hot kernel.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.obs import Pow2Histogram


class BatchSizeHistogram(Pow2Histogram):
    """Power-of-two histogram of executed batch sizes.

    A thin façade over :class:`repro.obs.Pow2Histogram` (the bucketing and
    merge logic live there) keeping this module's historical vocabulary:
    ``batches``/``keys``/``max_size`` and the ``to_dict`` schema consumers
    scrape.  Bucket ``2**k`` counts batches of size in ``(2**(k-1), 2**k]``
    (bucket 1 holds exactly size-1 batches), so the batch=1 pathology and
    the coalesced regime are separate bars at a glance.

    Deliberately not gated by the metrics kill switch: the histogram is
    part of the serve stats contract, not optional telemetry.
    """

    def record(self, size: int) -> None:
        if size < 0:
            raise ValueError("batch size must be non-negative")
        self.observe(size)

    @property
    def batches(self) -> int:
        return self.count

    @property
    def keys(self) -> int:
        return self.total

    @property
    def max_size(self) -> int:
        return self.max

    def merge(self, other: "BatchSizeHistogram | Mapping") -> None:
        """Fold another histogram (or its dict form) into this one."""
        if isinstance(other, Pow2Histogram):
            return super().merge(other)
        self.merge_data(
            other.get("buckets", {}),
            int(other.get("batches", 0)),
            int(other.get("keys", 0)),
            int(other.get("max_size", 0)),
        )

    def mean_size(self) -> float:
        """Average executed batch size (0.0 before any batch)."""
        return self.mean()

    def to_dict(self) -> dict:
        """JSON-safe form: bucket upper bounds (as strings) to counts."""
        return {
            "batches": self.count,
            "keys": self.total,
            "max_size": self.max,
            "mean_size": round(self.mean(), 2),
            "buckets": self.buckets_dict(),
        }


class WorkerStats:
    """One serving worker's counters (queries served, keys, refreshes)."""

    __slots__ = ("worker_id", "batches", "keys", "refreshes", "errors")

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.batches = 0
        self.keys = 0
        self.refreshes = 0
        self.errors = 0

    def record_batch(self, keys: int) -> None:
        self.batches += 1
        self.keys += keys

    def to_dict(self) -> dict:
        return {
            "worker": self.worker_id,
            "batches": self.batches,
            "keys": self.keys,
            "refreshes": self.refreshes,
            "errors": self.errors,
        }


def merge_worker_stats(stats: Iterable[Mapping]) -> dict:
    """Pool-level totals plus the per-worker breakdown."""
    per_worker = [dict(s) for s in stats]
    return {
        "workers": len(per_worker),
        "batches": sum(s.get("batches", 0) for s in per_worker),
        "keys": sum(s.get("keys", 0) for s in per_worker),
        "refreshes": sum(s.get("refreshes", 0) for s in per_worker),
        "errors": sum(s.get("errors", 0) for s in per_worker),
        "per_worker": per_worker,
    }
