"""repro — a reproduction of "Conditional Cuckoo Filters" (Ting & Cole, 2021).

The package is organised bottom-up:

* :mod:`repro.hashing` — Jenkins lookup3 port, 64-bit mixers, hash families;
* :mod:`repro.sketches` — bit arrays and Bloom filters;
* :mod:`repro.cuckoo` — cuckoo hash table, cuckoo filter, multiset filter;
* :mod:`repro.ccf` — the conditional cuckoo filter variants (the paper's
  contribution) plus predicates, binning, sizing and FPR analysis;
* :mod:`repro.data` — Zipf-Mandelbrot streams and the synthetic IMDB dataset;
* :mod:`repro.join` — join engine, semijoin reducers and the JOB-light-style
  reduction-factor evaluation;
* :mod:`repro.store` — the sharded log-structured FilterStore, an unbounded
  mutable persistent membership service over CCF levels;
* :mod:`repro.bench` — experiment drivers shared by the benchmark suite.

Quick start::

    from repro.ccf import AttributeSchema, CCFParams, Eq, build_ccf

    schema = AttributeSchema(["color", "size"])
    rows = [(1, ("red", 10)), (1, ("blue", 12)), (2, ("red", 9))]
    ccf = build_ccf("chained", schema, rows, CCFParams())
    ccf.query(1, Eq("color", "red"))      # True
    ccf.query(2, Eq("color", "blue"))     # False (up to the FPR)
"""

from repro.ccf import (
    AttributeSchema,
    BloomCCF,
    CCFParams,
    ChainedCCF,
    Eq,
    In,
    LARGE_PARAMS,
    MixedCCF,
    PlainCCF,
    Range,
    SMALL_PARAMS,
    build_ccf,
    make_ccf,
)
from repro.cuckoo import CuckooFilter, CuckooHashTable, MultisetCuckooFilter
from repro.sketches import BloomFilter
from repro.store import FilterStore, StoreConfig

__version__ = "1.0.0"

__all__ = [
    "AttributeSchema",
    "BloomCCF",
    "BloomFilter",
    "CCFParams",
    "ChainedCCF",
    "CuckooFilter",
    "CuckooHashTable",
    "Eq",
    "FilterStore",
    "In",
    "LARGE_PARAMS",
    "MixedCCF",
    "MultisetCuckooFilter",
    "PlainCCF",
    "Range",
    "SMALL_PARAMS",
    "StoreConfig",
    "build_ccf",
    "make_ccf",
]
