"""Configuration for the sharded log-structured FilterStore.

A :class:`StoreConfig` holds only the *store-shape* knobs — shard fan-out,
per-level geometry, the saturation threshold that rolls a new level, and the
compaction trigger.  What the levels store (schema, fingerprint widths,
bucket size, seeds) stays in the usual :class:`~repro.ccf.params.CCFParams`,
so one parameter bundle describes a filter identically whether it lives
standalone or as a store level.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.cuckoo.buckets import is_power_of_two


@dataclass(frozen=True)
class StoreConfig:
    """Shape of a :class:`~repro.store.store.FilterStore`.

    * ``num_shards`` — hash-partition fan-out.  Keys are routed by an
      independent salted hash; each shard owns a disjoint key subset.
    * ``level_buckets`` — bucket count of every level.  All levels of all
      shards share this (power-of-two) geometry, which is what lets one
      vectorised hashing pass serve every level and lets compaction relocate
      entries by bucket index.
    * ``target_load`` — occupancy fraction at which the active level is
      sealed and a fresh one started (the LSM "memtable full" moment).
    * ``compact_at`` — automatically compact a shard once it stacks this
      many levels (None = compaction only on explicit ``compact()``).
    * ``seed`` — salt for the shard-routing hash, independent of the level
      hashing salts in ``CCFParams.seed``.
    """

    num_shards: int = 4
    level_buckets: int = 1024
    target_load: float = 0.85
    compact_at: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if not is_power_of_two(self.level_buckets) or self.level_buckets < 2:
            raise ValueError("level_buckets must be a power of two >= 2")
        if not 0.0 < self.target_load <= 1.0:
            raise ValueError("target_load must be in (0, 1]")
        if self.compact_at is not None and self.compact_at < 2:
            raise ValueError("compact_at must be at least 2 levels (or None)")

    def to_dict(self) -> dict:
        """Plain-dict form for the snapshot manifest."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "StoreConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


FSYNC_MODES = ("never", "batch", "always")


@dataclass(frozen=True)
class DurabilityConfig:
    """Durability knobs for a WAL-attached :class:`FilterStore`.

    * ``fsync`` — when appended frames are forced to stable storage:

      - ``"always"``: every append fsyncs before it is acked.  An acked
        batch survives both process *and* machine crashes.
      - ``"batch"``: appends are written (and survive process crashes
        immediately — the OS holds the data) but fsync is deferred until
        ``flush_bytes`` unsynced bytes accumulate, a checkpoint runs, or
        the WAL rolls.
      - ``"never"``: no fsync on the append path at all; commit points
        (checkpoint manifests, WAL rolls) still sync.  Survives process
        crashes, not power loss.

    * ``flush_bytes`` — unsynced-byte threshold for ``fsync="batch"``.
    * ``roll_bytes`` — WAL size past which maintenance rolls the shard's
      log into a fresh generation (checkpointing the shard's state).
    """

    fsync: str = "batch"
    flush_bytes: int = 1 << 20
    roll_bytes: int = 64 << 20

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_MODES:
            raise ValueError(f"fsync must be one of {FSYNC_MODES}")
        if self.flush_bytes < 1:
            raise ValueError("flush_bytes must be positive")
        if self.roll_bytes < 1:
            raise ValueError("roll_bytes must be positive")

    def to_dict(self) -> dict:
        """Plain-dict form for the manifest's ``wal`` section."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DurabilityConfig":
        """Inverse of :meth:`to_dict` (ignores non-config manifest keys)."""
        fields = {k: data[k] for k in ("fsync", "flush_bytes", "roll_bytes") if k in data}
        return cls(**fields)
