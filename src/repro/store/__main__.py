"""``python -m repro.store``: operational tooling for FilterStore snapshots.

Two subcommands::

    python -m repro.store inspect <path>

prints a snapshot directory's manifest (format, kind, schema, store shape),
a per-level table — payload format, geometry, storage dtype, load factor,
entries and on-disk byte size — and one compact memory line per shard
(mapped vs resident column bytes, from segment metadata).  Segment levels
are inspected from their SEG1 metadata alone (O(metadata), no column data
read); bit-packed ``.ccf`` payloads are fully deserialised.  Durable roots
additionally show a store-level ``durability:`` mode line and one WAL line
per shard — frames, rows, bytes, last seq, and whether the tail is clean
or torn (the scan is read-only: inspecting a crashed store never truncates
what recovery would).

::

    python -m repro.store metrics <path> [--format prometheus|json]

attaches the snapshot and emits the unified observability snapshot
(`repro.store.metrics.store_metrics`): the structural gauges sampled from
the attached store plus this process's metrics registry, in Prometheus
text exposition (default) or JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import obs
from repro.ccf.mmapio import map_column
from repro.ccf.serialize import SerializeError, loads
from repro.cuckoo.buckets import dtype_for_bits
from repro.kernels import active_backend
from repro.store.metrics import store_metrics
from repro.store.segments import read_segment_meta, segment_nbytes
from repro.store.store import MANIFEST_NAME, FilterStore
from repro.store.wal import scan_wal, wal_dir, wal_name


def _level_entries(record: dict) -> list[dict]:
    """Normalise a shard record's level list (format-1 compat)."""
    return [
        {"file": entry, "format": "ccf"} if isinstance(entry, str) else entry
        for entry in record["levels"]
    ]


def _describe_segment(path: Path) -> dict:
    meta = read_segment_meta(path)
    params = meta["params"]
    num_buckets, bucket_size = meta["columns"]["fps"]["shape"]
    capacity = num_buckets * bucket_size
    # The occupancy column is one byte per bucket — cheap enough to read for
    # a real load factor without touching the slot matrices.
    entries = int(map_column(path, meta, "counts").sum())
    column_bytes = segment_nbytes(meta)
    if params.get("packed", True):
        dtype = dtype_for_bits(params["key_bits"]).name
    else:
        dtype = "int64"
    return {
        "format": "segment",
        "kind": meta["kind"],
        "num_buckets": num_buckets,
        "bucket_size": bucket_size,
        "capacity": capacity,
        "dtype": dtype,
        "stash": len(meta["stash"]),
        "file_bytes": meta["file_size"],
        "column_bytes": sum(column_bytes.values()),
        "load_factor": entries / capacity if capacity else 0.0,
        "entries": entries,
    }


def _describe_ccf(path: Path) -> dict:
    level = loads(path.read_bytes(), source=str(path))
    return {
        "format": "ccf",
        "kind": level.kind,
        "num_buckets": level.buckets.num_buckets,
        "bucket_size": level.buckets.bucket_size,
        "capacity": level.buckets.capacity,
        "dtype": level.buckets.fps.dtype.name,
        "stash": len(level.stash),
        "file_bytes": path.stat().st_size,
        "column_bytes": level.buckets.fingerprint_bytes(),
        "load_factor": level.load_factor(),
        "entries": level.num_entries,
    }


def inspect(path: str | Path, out=None) -> int:
    """Print a snapshot's manifest and per-level geometry; 0 on success."""
    out = sys.stdout if out is None else out
    root = Path(path)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        print(f"error: no {MANIFEST_NAME} under {root}", file=out)
        return 1
    manifest = json.loads(manifest_path.read_text())
    params = manifest["params"]
    config = manifest["config"]
    print(f"FilterStore snapshot: {root}", file=out)
    print(
        f"  manifest format {manifest['format']}, kind={manifest['kind']}, "
        f"schema={manifest['schema']}",
        file=out,
    )
    print(
        f"  params: key_bits={params['key_bits']} attr_bits={params['attr_bits']} "
        f"bucket_size={params['bucket_size']} packed={params.get('packed', True)} "
        f"seed={params['seed']}",
        file=out,
    )
    print(
        f"  config: num_shards={config['num_shards']} "
        f"level_buckets={config['level_buckets']} target_load={config['target_load']}",
        file=out,
    )
    # The backend this process would probe the snapshot with (selection is
    # process-local: env var / set_backend, not a property of the snapshot).
    print(f"  kernel backend: {active_backend().name}", file=out)
    # This process's slow-op ring (worst traced requests), if anything has
    # been served here — an operator inspecting inside a serving process
    # sees the worst request without a second tool.
    slow = obs.SLOW_OPS.summary()
    if slow["count"]:
        print(
            f"  slow ops: {slow['count']} seen, {slow['tracked']} kept, "
            f"worst={slow['worst_us']:.0f}us stage={slow['worst_stage']} "
            f"tenant={slow['worst_tenant']}",
            file=out,
        )
    else:
        print("  slow ops: none", file=out)
    walsec = manifest.get("wal")
    if walsec is None:
        print("  durability: none (snapshot-only)", file=out)
    else:
        print(
            f"  durability: fsync={walsec['fsync']} gen={walsec['gen']} "
            f"flush_bytes={walsec['flush_bytes']} roll_bytes={walsec['roll_bytes']}",
            file=out,
        )
    ops = manifest.get("ops")
    if ops:
        print(
            "  ops: "
            f"queries={ops.get('query_calls', 0)} ({ops.get('query_keys', 0)} keys) "
            f"inserts={ops.get('insert_calls', 0)} ({ops.get('insert_keys', 0)} keys) "
            f"deletes={ops.get('delete_calls', 0)} ({ops.get('delete_keys', 0)} keys)",
            file=out,
        )
    total_bytes = 0
    total_levels = 0
    for shard_index, record in enumerate(manifest["shards"]):
        print(
            f"  shard {shard_index}: rows_inserted={record['rows_inserted']} "
            f"rows_deleted={record['rows_deleted']} "
            f"compactions={record['compactions']}",
            file=out,
        )
        shard_mapped = shard_resident = 0
        for entry in _level_entries(record):
            level_path = root / entry["file"]
            try:
                if entry["format"] == "segment":
                    info = _describe_segment(level_path)
                else:
                    info = _describe_ccf(level_path)
            except (OSError, SerializeError) as exc:
                print(f"    {entry['file']}: UNREADABLE ({exc})", file=out)
                return 1
            print(
                f"    {entry['file']} [{info['format']}] "
                f"{info['num_buckets']}x{info['bucket_size']} slots "
                f"dtype={info['dtype']} load={info['load_factor']:.3f} "
                f"stash={info['stash']} bytes={info['file_bytes']}",
                file=out,
            )
            # Segment columns serve memory-mapped (shared page cache);
            # ccf payloads deserialise to private heap arrays.
            if info["format"] == "segment":
                shard_mapped += info["column_bytes"]
            else:
                shard_resident += info["column_bytes"]
            total_bytes += info["file_bytes"]
            total_levels += 1
        print(
            f"    memory: mapped={shard_mapped} resident={shard_resident} bytes",
            file=out,
        )
        if walsec is not None:
            wal_line = _describe_wal(
                wal_dir(root) / wal_name(shard_index, walsec["gen"])
            )
            print(f"    {wal_line}", file=out)
    print(f"  total: {total_levels} levels, {total_bytes} payload bytes", file=out)
    return 0


def _describe_wal(path: Path) -> str:
    """One shard's WAL line: frame chain shape and tail health (read-only)."""
    if not path.exists():
        return f"wal: {path.name} MISSING (recovery would fail)"
    try:
        scan = scan_wal(path)
    except SerializeError as exc:
        return f"wal: {path.name} UNREADABLE ({exc})"
    tail = "clean" if not scan.torn else (
        f"torn ({scan.torn_reason}; {scan.file_bytes - scan.valid_bytes} "
        "bytes would truncate)"
    )
    rows = sum(frame.nrows for frame in scan.frames)
    return (
        f"wal: frames={len(scan.frames)} rows={rows} bytes={scan.valid_bytes} "
        f"last_seq={scan.last_seq} tail={tail}"
    )


def metrics(path: str | Path, fmt: str = "prometheus", out=None) -> int:
    """Attach a snapshot and emit its metrics snapshot; 0 on success."""
    out = sys.stdout if out is None else out
    root = Path(path)
    if not (root / MANIFEST_NAME).exists():
        print(f"error: no {MANIFEST_NAME} under {root}", file=out)
        return 1
    store = FilterStore.open(root)
    snapshot = store_metrics(store)
    if fmt == "prometheus":
        print(obs.to_prometheus(snapshot), end="", file=out)
    else:
        print(obs.to_json(snapshot), file=out)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="FilterStore snapshot tooling",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    inspect_cmd = sub.add_parser(
        "inspect", help="print a snapshot's manifest and per-level geometry"
    )
    inspect_cmd.add_argument("path", help="snapshot directory (holds manifest.json)")
    metrics_cmd = sub.add_parser(
        "metrics", help="emit the snapshot's metrics registry (scrape surface)"
    )
    metrics_cmd.add_argument("path", help="snapshot directory (holds manifest.json)")
    metrics_cmd.add_argument(
        "--format",
        choices=("prometheus", "json"),
        default="prometheus",
        help="output form (default: prometheus text exposition)",
    )
    args = parser.parse_args(argv)
    if args.command == "inspect":
        return inspect(args.path)
    if args.command == "metrics":
        return metrics(args.path, args.format)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
