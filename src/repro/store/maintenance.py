"""Incremental background maintenance for durable FilterStores.

A durable writer accumulates debt: WALs grow without bound, level stacks
deepen (slowing reads), and mutated levels sit on the heap instead of in
sealed segments.  The :class:`MaintenanceScheduler` retires that debt in
**budgeted steps** — each ``step()`` call performs at most one bounded unit
of work and returns, so the caller (a serving loop, a timer thread, a CLI
``tick``) decides the cadence and no call ever stops the world:

* ``compact`` — merge ONE shard's level stack, chosen where the debt is
  deepest, under that shard's write lock only.  Readers and writers on
  every other shard proceed; this is how "compaction in slices" composes
  with the per-shard RW locks from the serve layer (DESIGN.md §11).
* ``checkpoint`` — seal state and roll every WAL when any shard's log
  passes the durability config's ``roll_bytes``, or when enough rows have
  mutated since the last seal (``seal_rows``).  The checkpoint itself is
  the commit-point protocol of `FilterStore.checkpoint` (all write locks,
  one manifest replace); the scheduler's job is *when*, not *how*.

``run(max_steps)`` loops ``step()`` until the store reports no debt or the
budget runs out — the catch-up mode after a long unmaintained stretch.

Thresholds trade write amplification against recovery time: a smaller
``roll_bytes`` bounds replay work after a crash, a smaller
``compact_levels`` bounds read fan-out.  Both default conservatively; the
crash property suite runs with tiny thresholds so every step kind fires.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from repro import obs
from repro.store.store import FilterStore

_STEPS = obs.counter(
    "repro_store_maintenance_steps_total",
    "Maintenance steps executed, by step kind.",
    ("kind",),
)
_STEP_US = obs.histogram(
    "repro_store_maintenance_step_us",
    "Maintenance step duration by step kind, in microseconds.",
    ("kind",),
)


@dataclass(frozen=True)
class MaintenancePolicy:
    """When each maintenance step kind becomes due.

    * ``compact_levels`` — a shard owing this many levels is compaction
      debt (must exceed the store's own ``compact_at`` auto-trigger to
      matter, since the shard self-compacts at that depth).
    * ``roll_bytes`` — WAL size past which a checkpoint is due; ``None``
      adopts the store's ``DurabilityConfig.roll_bytes``.
    * ``seal_rows`` — rows mutated since the last checkpoint past which a
      seal is due even if the WAL is small (bounds replay *work*, not just
      replay *bytes*).  ``None`` disables the row trigger.
    """

    compact_levels: int = 4
    roll_bytes: int | None = None
    seal_rows: int | None = None

    def __post_init__(self) -> None:
        if self.compact_levels < 2:
            raise ValueError("compact_levels must be at least 2")
        if self.roll_bytes is not None and self.roll_bytes < 1:
            raise ValueError("roll_bytes must be positive (or None)")
        if self.seal_rows is not None and self.seal_rows < 1:
            raise ValueError("seal_rows must be positive (or None)")


class MaintenanceScheduler:
    """Budgeted, incremental maintenance over one durable FilterStore."""

    def __init__(
        self, store: FilterStore, policy: MaintenancePolicy | None = None
    ) -> None:
        if not store.durable:
            raise ValueError(
                "maintenance schedules WAL rolls and seals; attach_wal first"
            )
        self.store = store
        self.policy = policy or MaintenancePolicy()
        self.steps_run = 0

    # ------------------------------------------------------------------
    # Debt assessment (cheap: counters only, no locks)
    # ------------------------------------------------------------------

    def _roll_bytes(self) -> int:
        if self.policy.roll_bytes is not None:
            return self.policy.roll_bytes
        return self.store._durability.roll_bytes

    def _checkpoint_due(self) -> bool:
        roll_at = self._roll_bytes()
        seal_rows = self.policy.seal_rows
        for shard in self.store.shards:
            wal = shard.wal
            # A frameless log has nothing to seal: its header bytes must not
            # count as debt, or a small roll_bytes would re-trigger forever.
            if wal is None or wal.num_frames == 0:
                continue
            if wal.nbytes >= roll_at:
                return True
            if seal_rows is not None and wal.num_rows >= seal_rows:
                return True
        return False

    def _compaction_shard(self) -> int | None:
        """The shard owing the deepest stack past the threshold, if any."""
        worst, worst_depth = None, self.policy.compact_levels - 1
        for shard in self.store.shards:
            depth = shard.num_levels
            if depth > worst_depth:
                worst, worst_depth = shard.shard_id, depth
        return worst

    def pending(self) -> list[str]:
        """The step kinds currently due, in execution priority order."""
        due = []
        if self._compaction_shard() is not None:
            due.append("compact")
        if self._checkpoint_due():
            due.append("checkpoint")
        return due

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> str | None:
        """Run at most one unit of maintenance; returns what ran, or None.

        Compaction runs before checkpointing on purpose: sealing a deep
        stack would write one segment per level, then the next compact
        would obsolete them all — merging first makes the seal smaller.
        """
        shard_id = self._compaction_shard()
        if shard_id is not None:
            start = perf_counter()
            with obs.span("maintenance.step", kind="compact", shard=shard_id):
                self._compact_one(shard_id)
            _STEP_US.labels(kind="compact").observe((perf_counter() - start) * 1e6)
            _STEPS.labels(kind="compact").inc()
            self.steps_run += 1
            return "compact"
        if self._checkpoint_due():
            start = perf_counter()
            with obs.span("maintenance.step", kind="checkpoint"):
                self.store.checkpoint()
            _STEP_US.labels(kind="checkpoint").observe(
                (perf_counter() - start) * 1e6
            )
            _STEPS.labels(kind="checkpoint").inc()
            self.steps_run += 1
            return "checkpoint"
        return None

    def _compact_one(self, shard_id: int) -> None:
        store = self.store
        shard = store.shards[shard_id]
        guard = store._write_guard(shard_id)
        if guard is None:
            shard.log_compact()
            shard.compact()
        else:
            with guard:
                shard.log_compact()
                shard.compact()

    def run(self, max_steps: int = 64) -> list[str]:
        """Step until no debt remains or the budget is spent; returns the
        kinds executed, in order."""
        executed: list[str] = []
        for _ in range(max_steps):
            kind = self.step()
            if kind is None:
                break
            executed.append(kind)
        return executed
