"""Sharded log-structured FilterStore: the unbounded, mutable CCF layer.

Public surface:

* :class:`FilterStore` — hash-sharded, LSM-levelled, persistent membership
  service over plain-CCF levels (`store.py`);
* :class:`FilterShard` — one shard's level stack (`shard.py`);
* :class:`StoreConfig` — shard fan-out, level geometry, load/compaction
  policy (`config.py`);
* :func:`merge_levels` — the compaction kernel (`compaction.py`);
* :class:`SegmentLevelRef` — a sealed level in a SEG1 segment file, mapped
  zero-copy on first probe (`segments.py`).

See DESIGN.md §8 for the FilterStore contract (level growth, delete
routing, compaction, manifest format) and §10 for segment-backed
persistence and the out-of-core open path.  ``python -m repro.store
inspect <path>`` prints a snapshot's manifest and per-level geometry.
"""

from repro.store.compaction import merge_levels
from repro.store.config import StoreConfig
from repro.store.segments import SegmentLevelRef
from repro.store.shard import FilterShard
from repro.store.store import FilterStore

__all__ = [
    "FilterShard",
    "FilterStore",
    "SegmentLevelRef",
    "StoreConfig",
    "merge_levels",
]
