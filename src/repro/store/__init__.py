"""Sharded log-structured FilterStore: the unbounded, mutable CCF layer.

Public surface:

* :class:`FilterStore` — hash-sharded, LSM-levelled, persistent membership
  service over plain-CCF levels (`store.py`);
* :class:`FilterShard` — one shard's level stack (`shard.py`);
* :class:`StoreConfig` — shard fan-out, level geometry, load/compaction
  policy (`config.py`);
* :func:`merge_levels` — the compaction kernel (`compaction.py`);
* :class:`SegmentLevelRef` — a sealed level in a SEG1 segment file, mapped
  zero-copy on first probe (`segments.py`);
* :class:`DurabilityConfig` — fsync discipline and WAL roll thresholds
  (`config.py`);
* :class:`ShardWal` / :func:`scan_wal` — per-shard write-ahead log and its
  pure frame-chain scanner (`wal.py`);
* :class:`MaintenanceScheduler` / :class:`MaintenancePolicy` — budgeted
  incremental compaction, sealing and WAL rolls (`maintenance.py`).

See DESIGN.md §8 for the FilterStore contract (level growth, delete
routing, compaction, manifest format), §10 for segment-backed persistence
and the out-of-core open path, and §14 for the crash-consistency story
(WAL framing, checkpoint commit points, recovery, fault injection via
`faults.py`).  ``python -m repro.store inspect <path>`` prints a
snapshot's manifest, per-level geometry, and per-shard WAL state.
"""

from repro.store.compaction import merge_levels
from repro.store.config import DurabilityConfig, StoreConfig
from repro.store.maintenance import MaintenancePolicy, MaintenanceScheduler
from repro.store.segments import SegmentLevelRef
from repro.store.shard import FilterShard
from repro.store.store import FilterStore
from repro.store.wal import ShardWal, scan_wal

__all__ = [
    "DurabilityConfig",
    "FilterShard",
    "FilterStore",
    "MaintenancePolicy",
    "MaintenanceScheduler",
    "SegmentLevelRef",
    "ShardWal",
    "StoreConfig",
    "merge_levels",
    "scan_wal",
]
