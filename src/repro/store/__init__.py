"""Sharded log-structured FilterStore: the unbounded, mutable CCF layer.

Public surface:

* :class:`FilterStore` — hash-sharded, LSM-levelled, persistent membership
  service over plain-CCF levels (`store.py`);
* :class:`FilterShard` — one shard's level stack (`shard.py`);
* :class:`StoreConfig` — shard fan-out, level geometry, load/compaction
  policy (`config.py`);
* :func:`merge_levels` — the compaction kernel (`compaction.py`).

See DESIGN.md §8 for the FilterStore contract (level growth, delete
routing, compaction, manifest format).
"""

from repro.store.compaction import merge_levels
from repro.store.config import StoreConfig
from repro.store.shard import FilterShard
from repro.store.store import FilterStore

__all__ = ["FilterShard", "FilterStore", "StoreConfig", "merge_levels"]
