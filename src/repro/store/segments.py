"""Segment-backed FilterStore levels: lazy, memory-mapped level handles.

A snapshotted store is a directory of per-level payloads plus a manifest.
With SEG1 segments (`repro.ccf.mmapio`) a level no longer needs loading at
all: :class:`SegmentLevelRef` holds the path and maps the level's columns on
first use, so ``FilterStore.open`` is O(manifest) however large the store is
and the OS pages slot data in as probes touch it — the out-of-core serving
path (DESIGN.md §10).

The ref also owns the level-shape validation that ``FilterStore.open`` used
to do eagerly: a mapped level must be a plain CCF on the store's shared
geometry, or every cross-level kernel (hash-once fan-out, delete routing,
compaction) would silently mis-probe.
"""

from __future__ import annotations

from pathlib import Path

from repro.ccf.mmapio import (
    open_segment,
    read_segment_meta,
    segment_nbytes,
    warm_column,
    write_segment,
)
from repro.ccf.plain import PlainCCF
from repro.ccf.serialize import SerializeError

__all__ = [
    "SEGMENT_SUFFIX",
    "SegmentLevelRef",
    "read_segment_meta",
    "segment_nbytes",
    "warm_level",
    "write_segment",
]

#: File suffix of SEG1 level payloads inside a snapshot directory.
SEGMENT_SUFFIX = ".seg"


class SegmentLevelRef:
    """A sealed level living in a SEG1 file, opened (mapped) on first use.

    ``open()`` maps the segment's columns read-only and validates that the
    level fits the owning store (plain kind, manifest bucket count).  Refs
    are single-shot by design: the shard materialises every ref of its stack
    the first time any probe needs the levels, then drops them.

    ``verify`` is `repro.ccf.mmapio.open_segment`'s checksum policy: the
    default (None) validates exactly the columns that carry a CRC32C —
    checkpoint-sealed baselines verify as they map, classic snapshots keep
    their O(metadata) open.
    """

    __slots__ = ("path", "expected_buckets", "verify")

    def __init__(
        self,
        path: str | Path,
        expected_buckets: int,
        verify: bool | None = None,
    ) -> None:
        self.path = Path(path)
        self.expected_buckets = expected_buckets
        self.verify = verify

    def open(self) -> PlainCCF:
        """Map the segment and validate it against the store geometry."""
        level = open_segment(self.path, verify=self.verify)
        if not isinstance(level, PlainCCF):
            raise SerializeError(
                f"level segment holds a {level.kind!r} CCF; store levels "
                "must be plain (see DESIGN.md §8)",
                source=str(self.path),
            )
        if level.buckets.num_buckets != self.expected_buckets:
            raise SerializeError(
                f"level segment has {level.buckets.num_buckets} buckets, "
                f"the store manifest says {self.expected_buckets}",
                source=str(self.path),
            )
        return level

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SegmentLevelRef({str(self.path)!r})"


def warm_level(level: PlainCCF) -> int:
    """Prefault a mapped level's typed columns; returns bytes warmed.

    A serving pool warms the baseline snapshot once in the parent so every
    worker — forked process or thread — attaches segments whose pages are
    already in the shared page cache (no per-worker read amplification).
    Heap-resident (promoted) levels contribute 0.
    """
    return (
        warm_column(level.buckets.fps)
        + warm_column(level.buckets.counts)
        + warm_column(level._avecs)
        + warm_column(level._flags)
    )
