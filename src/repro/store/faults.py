"""Fault injection for durability code paths.

Every fsync/rename/write boundary in the WAL, segment writer, and
checkpoint/snapshot protocols calls :func:`hit` with a stable point name
(e.g. ``"wal.append.torn"``).  In normal operation this is a single dict
lookup on an empty registry.  Under test, points are *armed* — either
programmatically via :func:`arm` / :func:`arm_many`, or through the
``REPRO_FAULTS`` environment variable — and the Nth hit of an armed point
raises :class:`InjectedFault`, simulating a crash at exactly that boundary
(the process state that would die with a real crash is whatever the code
had durably written *before* the point).

``REPRO_FAULTS`` is a comma-separated list of ``point[@n]`` specs:
``REPRO_FAULTS="wal.fsync@3,checkpoint.staged"`` kills the third fsync and
the first checkpoint-staging hit.  The env var is read once per
:func:`reset` (tests call ``reset()`` around each scenario).

Trace mode (:func:`trace`) records every point crossed, in order, without
raising — the crash-recovery property suite uses one traced run to
enumerate the exact kill schedule a workload exposes, then replays the
workload once per (point, hit-count) pair.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field


class InjectedFault(RuntimeError):
    """Raised at an armed injection point; simulates a crash there."""

    def __init__(self, point: str, hit: int) -> None:
        super().__init__(f"injected fault at {point!r} (hit {hit})")
        self.point = point
        self.hit = hit


@dataclass
class _Registry:
    #: armed point -> 1-based hit count at which to raise
    armed: dict[str, int] = field(default_factory=dict)
    #: per-point crossing counters (all points, armed or not, once tracing
    #: or arming is active; empty-registry fast path skips counting)
    hits: dict[str, int] = field(default_factory=dict)
    #: ordered crossings recorded while trace mode is on
    trace: list[str] | None = None

    @property
    def active(self) -> bool:
        return bool(self.armed) or self.trace is not None


_REG = _Registry()


def _parse_env(spec: str) -> dict[str, int]:
    armed: dict[str, int] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        point, _, count = part.partition("@")
        armed[point] = int(count) if count else 1
    return armed


def reset() -> None:
    """Clear all armed points, counters, and trace state; re-read env."""
    _REG.armed = _parse_env(os.environ.get("REPRO_FAULTS", ""))
    _REG.hits = {}
    _REG.trace = None


def arm(point: str, hit: int = 1) -> None:
    """Arm ``point`` to raise on its ``hit``-th crossing (1-based)."""
    if hit < 1:
        raise ValueError("hit count is 1-based")
    _REG.armed[point] = hit


def arm_many(spec: dict[str, int]) -> None:
    """Arm several points at once (``{point: hit}``)."""
    for point, count in spec.items():
        arm(point, count)


def disarm(point: str) -> None:
    """Remove ``point`` from the armed set (no-op if not armed)."""
    _REG.armed.pop(point, None)


def trace(enabled: bool = True) -> None:
    """Record every crossing (without raising) into :func:`trace_log`."""
    _REG.trace = [] if enabled else None


def trace_log() -> list[str]:
    """Ordered point crossings since trace mode was enabled."""
    return list(_REG.trace or [])


def active() -> bool:
    """Whether any point is armed or trace mode is on (fast-path check)."""
    return _REG.active


def hit_counts() -> dict[str, int]:
    """Per-point crossing counts since the last :func:`reset`."""
    return dict(_REG.hits)


def hit(point: str) -> None:
    """Cross an injection point; raises :class:`InjectedFault` if armed.

    The un-armed, un-traced path is one attribute load and two truthiness
    checks — cheap enough to sit on every fsync/rename in production code.
    """
    reg = _REG
    if not reg.armed and reg.trace is None:
        return
    count = reg.hits.get(point, 0) + 1
    reg.hits[point] = count
    if reg.trace is not None:
        reg.trace.append(point)
    when = reg.armed.get(point)
    if when is not None and count == when:
        raise InjectedFault(point, count)


reset()
