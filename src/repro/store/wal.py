"""Per-shard write-ahead log: the FilterStore's crash-durability spine.

Layout (``<root>/wal/shard-SSSS-GGGGGG.wal``, one file per shard per
checkpoint generation)::

    header   <4sIIIQQ>   magic b"WAL1", version, shard_id, reserved,
                         generation, base_seq          (32 bytes)
    frame*   <II>        payload_len, crc32c(payload)  (8 bytes)
             payload     <BBHIQ> op, flags, nattrs, nrows, seq
                         fps   int64[nrows]
                         homes int64[nrows]
                         avecs int64[nrows * nattrs]

One ``insert_many``/``delete_many`` batch routed to a shard is **one
frame** — recovery replays whole batches or nothing, so a reopened store
can never observe half a batch.  Frames carry the *hashed* rows (key
fingerprints, home buckets, attribute-fingerprint vectors): partner
buckets re-derive from the shared geometry, and every shard mutation is
deterministic given these arrays, so replay over the checkpoint baseline
is bit-identical to the original application (DESIGN.md §14).

Frame seqs chain contiguously from the header's ``base_seq``; the CRC, the
length prefix, and the seq chain together classify any tail damage — a
torn write, a bit flip, a duplicated or dropped frame all stop the scan at
the last good frame instead of raising.  :func:`scan_wal` is pure (the
``inspect`` CLI uses it on live stores); truncation of a torn tail happens
only when :meth:`ShardWal.attach` takes ownership during recovery.

fsync discipline is per :class:`~repro.store.config.DurabilityConfig`:
``always`` syncs inside every append (acked ⇒ power-loss durable),
``batch`` defers until ``flush_bytes`` unsynced bytes accumulate (acked ⇒
process-crash durable), ``never`` leaves syncing to commit points.  Every
write/fsync/rename boundary crosses a named `repro.store.faults` point.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter

import numpy as np

from repro import obs
from repro.ccf.serialize import SerializeError, crc32c
from repro.store import faults
from repro.store.config import DurabilityConfig

WAL_MAGIC = b"WAL1"
WAL_VERSION = 1
WAL_DIRNAME = "wal"
WAL_SUFFIX = ".wal"

#: Frame operations.  Only *explicit* compactions are logged: automatic
#: ``compact_at`` compactions re-derive deterministically while an insert
#: frame replays, and logging them too would compact twice.
OP_INSERT = 1
OP_DELETE = 2
OP_COMPACT = 3
OP_NAMES = {OP_INSERT: "insert", OP_DELETE: "delete", OP_COMPACT: "compact"}

_HEADER = struct.Struct("<4sIIIQQ")
_FRAME = struct.Struct("<II")
_PAYLOAD = struct.Struct("<BBHIQ")

_WAL_APPENDS = obs.counter(
    "repro_wal_appends_total", "WAL frames appended, by operation.", ("op",)
)
_WAL_BYTES = obs.counter("repro_wal_bytes_total", "WAL bytes appended.")
_WAL_REPLAYS = obs.counter(
    "repro_wal_replays_total", "Shard WALs replayed during recovery."
)
_WAL_TORN = obs.counter(
    "repro_wal_torn_frames_total",
    "Invalid tail frames discarded by recovery (torn writes, corruption).",
)
_WAL_FSYNC_US = obs.histogram(
    "repro_wal_fsync_us", "WAL fsync latency in microseconds."
)
# Discipline-labelled durability telemetry (DESIGN.md §15): the fsync mode
# ("always"/"batch"/"never") is the knob operators trade durability against
# throughput with, so frames/rows/fsyncs are attributed to it — a scrape
# shows at a glance which discipline the write volume actually ran under.
_WAL_FRAMES = obs.counter(
    "repro_wal_frames_total",
    "WAL frames appended, by fsync discipline.",
    ("discipline",),
)
_WAL_ROWS = obs.counter(
    "repro_wal_rows_total",
    "Rows covered by appended WAL frames, by fsync discipline.",
    ("discipline",),
)
_WAL_FSYNCS = obs.counter(
    "repro_wal_fsyncs_total",
    "WAL fsync calls issued, by fsync discipline.",
    ("discipline",),
)
_WAL_REPLAY_ROWS = obs.counter(
    "repro_wal_replay_rows_total",
    "Rows re-applied from WAL frames during crash recovery.",
)


def wal_dir(root: Path) -> Path:
    """The WAL directory of a store rooted at ``root``."""
    return Path(root) / WAL_DIRNAME


def wal_name(shard_id: int, gen: int) -> str:
    """File name of one shard's log for one checkpoint generation."""
    return f"shard-{shard_id:04d}-{gen:06d}{WAL_SUFFIX}"


@dataclass
class Frame:
    """One decoded WAL frame (a whole routed batch, or a compaction mark)."""

    op: int
    seq: int
    fps: np.ndarray
    homes: np.ndarray
    #: ``(nrows, nattrs)`` attribute-fingerprint vectors.
    avecs: np.ndarray

    @property
    def nrows(self) -> int:
        return len(self.fps)


def encode_frame(
    op: int,
    seq: int,
    fps: np.ndarray,
    homes: np.ndarray,
    avecs: np.ndarray,
) -> bytes:
    """Encode one frame (length prefix + CRC32C + payload) to bytes."""
    fps = np.ascontiguousarray(fps, dtype="<i8")
    homes = np.ascontiguousarray(homes, dtype="<i8")
    avecs = np.ascontiguousarray(avecs, dtype="<i8")
    nrows = len(fps)
    nattrs = avecs.shape[1] if avecs.ndim == 2 else 0
    if len(homes) != nrows or (nrows and avecs.shape[0] != nrows):
        raise ValueError("fps/homes/avecs must agree on row count")
    payload = b"".join(
        (
            _PAYLOAD.pack(op, 0, nattrs, nrows, seq),
            fps.tobytes(),
            homes.tobytes(),
            avecs.tobytes(),
        )
    )
    return _FRAME.pack(len(payload), crc32c(payload)) + payload


def decode_payload(payload: bytes | memoryview) -> Frame:
    """Decode one frame payload (already CRC-validated) into arrays."""
    op, _flags, nattrs, nrows, seq = _PAYLOAD.unpack_from(payload)
    expected = _PAYLOAD.size + nrows * 8 * 2 + nrows * nattrs * 8
    if len(payload) != expected:
        raise SerializeError(
            f"WAL frame payload holds {len(payload)} bytes, "
            f"header implies {expected}"
        )
    body = np.frombuffer(payload, dtype="<i8", offset=_PAYLOAD.size)
    fps = body[:nrows]
    homes = body[nrows : 2 * nrows]
    avecs = body[2 * nrows :].reshape(nrows, nattrs)
    return Frame(op=op, seq=seq, fps=fps, homes=homes, avecs=avecs)


@dataclass
class WalScan:
    """Result of scanning one WAL file (pure — the file is not modified)."""

    path: Path
    shard_id: int
    gen: int
    base_seq: int
    frames: list[Frame]
    #: Sequence of the last valid frame (``base_seq`` when none).
    last_seq: int
    #: Offset up to which the file is a valid frame chain.
    valid_bytes: int
    file_bytes: int
    #: Why the scan stopped before the end of the file, if it did.
    torn_reason: str | None = None

    @property
    def torn(self) -> bool:
        return self.valid_bytes != self.file_bytes


def scan_wal(path: str | Path) -> WalScan:
    """Validate a WAL file's frame chain; classify (don't truncate) damage.

    The header must be intact — it is written under a temp-file + rename
    protocol, so a damaged header means corruption beyond the torn-tail
    model and raises :class:`SerializeError`.  Frame damage never raises:
    the scan stops at the last frame whose length prefix, CRC32C, and seq
    chain all check out, recording the reason.
    """
    path = Path(path)
    blob = path.read_bytes()
    if len(blob) < _HEADER.size:
        raise SerializeError(
            f"WAL file is {len(blob)} bytes, header needs {_HEADER.size}",
            source=str(path),
            offset=0,
        )
    magic, version, shard_id, _reserved, gen, base_seq = _HEADER.unpack_from(blob)
    if magic != WAL_MAGIC:
        raise SerializeError(
            f"bad WAL magic {magic!r}", source=str(path), offset=0
        )
    if version != WAL_VERSION:
        raise SerializeError(
            f"unsupported WAL version {version}", source=str(path), offset=4
        )
    frames: list[Frame] = []
    offset = _HEADER.size
    last_seq = base_seq
    torn_reason = None
    view = memoryview(blob)
    while offset < len(blob):
        if offset + _FRAME.size > len(blob):
            torn_reason = "truncated length prefix"
            break
        payload_len, crc = _FRAME.unpack_from(blob, offset)
        if payload_len < _PAYLOAD.size:
            torn_reason = (
                "zero-length frame" if payload_len == 0 else "short frame"
            )
            break
        start = offset + _FRAME.size
        if start + payload_len > len(blob):
            torn_reason = "truncated payload"
            break
        payload = view[start : start + payload_len]
        if crc32c(payload) != crc:
            torn_reason = "checksum mismatch"
            break
        try:
            frame = decode_payload(payload)
        except SerializeError:
            torn_reason = "inconsistent frame geometry"
            break
        if frame.op not in OP_NAMES:
            torn_reason = f"unknown op {frame.op}"
            break
        if frame.seq != last_seq + 1:
            torn_reason = (
                "duplicate frame seq"
                if frame.seq <= last_seq
                else "gap in frame seqs"
            )
            break
        frames.append(frame)
        last_seq = frame.seq
        offset = start + payload_len
    return WalScan(
        path=path,
        shard_id=shard_id,
        gen=gen,
        base_seq=base_seq,
        frames=frames,
        last_seq=last_seq,
        valid_bytes=offset,
        file_bytes=len(blob),
        torn_reason=torn_reason,
    )


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class ShardWal:
    """Append handle on one shard's live WAL file."""

    def __init__(
        self,
        path: Path,
        file,
        shard_id: int,
        gen: int,
        base_seq: int,
        last_seq: int,
        nbytes: int,
        num_frames: int,
        num_rows: int,
        durability: DurabilityConfig,
    ) -> None:
        self.path = path
        self._file = file
        self.shard_id = shard_id
        self.gen = gen
        self.base_seq = base_seq
        self.last_seq = last_seq
        self.nbytes = nbytes
        self.num_frames = num_frames
        self.num_rows = num_rows
        self.durability = durability
        self._unsynced = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | Path,
        shard_id: int,
        gen: int,
        base_seq: int,
        durability: DurabilityConfig,
    ) -> "ShardWal":
        """Create a fresh log atomically (staged header + rename)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        staging = path.parent / f".{path.name}.tmp-{os.getpid()}"
        header = _HEADER.pack(WAL_MAGIC, WAL_VERSION, shard_id, 0, gen, base_seq)
        with open(staging, "wb") as f:
            f.write(header)
            f.flush()
            os.fsync(f.fileno())
        faults.hit("wal.create.staged")
        os.replace(staging, path)
        _fsync_dir(path.parent)
        faults.hit("wal.create.renamed")
        file = open(path, "r+b", buffering=0)
        file.seek(0, os.SEEK_END)
        return cls(
            path=path,
            file=file,
            shard_id=shard_id,
            gen=gen,
            base_seq=base_seq,
            last_seq=base_seq,
            nbytes=_HEADER.size,
            num_frames=0,
            num_rows=0,
            durability=durability,
        )

    @classmethod
    def attach(cls, scan: WalScan, durability: DurabilityConfig) -> "ShardWal":
        """Take append ownership of a scanned log, truncating a torn tail.

        The truncation is the one destructive step of recovery: everything
        past the last valid frame is, by construction, bytes no caller was
        ever acked for (an acked frame is fully written — and, per the
        fsync mode, synced — before ``append`` returns).
        """
        file = open(scan.path, "r+b", buffering=0)
        if scan.torn:
            file.truncate(scan.valid_bytes)
            os.fsync(file.fileno())
        file.seek(0, os.SEEK_END)
        return cls(
            path=scan.path,
            file=file,
            shard_id=scan.shard_id,
            gen=scan.gen,
            base_seq=scan.base_seq,
            last_seq=scan.last_seq,
            nbytes=scan.valid_bytes,
            num_frames=len(scan.frames),
            num_rows=sum(frame.nrows for frame in scan.frames),
            durability=durability,
        )

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------

    def append(
        self,
        op: int,
        fps: np.ndarray,
        homes: np.ndarray,
        avecs: np.ndarray,
    ) -> int:
        """Append one frame; returns its seq.  The frame is acked (written,
        and synced per the fsync mode) when this returns."""
        seq = self.last_seq + 1
        frame = encode_frame(op, seq, fps, homes, avecs)
        faults.hit("wal.append.begin")
        if faults.active():
            # Two-part write so an armed "torn" point leaves a half frame
            # on disk — the shape a real mid-write crash produces.
            split = len(frame) // 2
            self._file.write(frame[:split])
            faults.hit("wal.append.torn")
            self._file.write(frame[split:])
        else:
            self._file.write(frame)
        faults.hit("wal.append.written")
        self.last_seq = seq
        self.num_frames += 1
        self.num_rows += len(fps)
        self.nbytes += len(frame)
        self._unsynced += len(frame)
        if obs.state.enabled:
            _WAL_APPENDS.labels(op=OP_NAMES[op]).inc()
            _WAL_BYTES.inc(len(frame))
            discipline = self.durability.fsync
            _WAL_FRAMES.labels(discipline=discipline).inc()
            _WAL_ROWS.labels(discipline=discipline).inc(len(fps))
        mode = self.durability.fsync
        if mode == "always" or (
            mode == "batch" and self._unsynced >= self.durability.flush_bytes
        ):
            self.sync()
        return seq

    def sync(self) -> None:
        """Force everything appended so far to stable storage."""
        if self._unsynced == 0:
            return
        faults.hit("wal.fsync")
        start = perf_counter()
        os.fsync(self._file.fileno())
        if obs.state.enabled:
            _WAL_FSYNC_US.observe((perf_counter() - start) * 1e6)
            _WAL_FSYNCS.labels(discipline=self.durability.fsync).inc()
        self._unsynced = 0

    def stats(self) -> dict:
        """Live log shape (the ``inspect`` CLI prints the scanned twin)."""
        return {
            "path": self.path.name,
            "gen": self.gen,
            "frames": self.num_frames,
            "rows": self.num_rows,
            "bytes": self.nbytes,
            "last_seq": self.last_seq,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardWal(shard={self.shard_id}, gen={self.gen}, "
            f"frames={self.num_frames}, bytes={self.nbytes})"
        )


def record_replay(num_torn: int, num_rows: int = 0) -> None:
    """Count one shard replay, its re-applied rows, and any discarded
    tail frames in metrics."""
    _WAL_REPLAYS.inc()
    if num_rows:
        _WAL_REPLAY_ROWS.inc(num_rows)
    if num_torn:
        _WAL_TORN.inc(num_torn)
