"""Collection-time store metrics: registry snapshot + structural gauges.

:func:`store_metrics` is how every telemetry surface — ``store.stats()``,
the ``repro.store metrics`` CLI, ``ServeRuntime.metrics()`` — obtains one
coherent snapshot: the process registry's hot-path flows (kernel calls,
probe outcomes, wave work) overlaid with gauges *sampled from the store at
collection time* (per-shard mapped/resident bytes, entries, levels, load
factor) and the lifetime ``OpCounters`` re-expressed as a counter family.

Gauges and ops are synthesized here rather than maintained through the
registry for two reasons: they are derivable state, not flows (sampling at
scrape time is both cheaper and always current), and they must stay
visible when the kill switch disables hot-path recording — an operator who
turned metrics off for a benchmark still gets structure and lifetime ops
from the CLI.
"""

from __future__ import annotations

from typing import Mapping

from repro import obs

OPS_METRIC = "repro_store_ops_total"

_GAUGE_SPECS = (
    ("repro_store_mapped_bytes", "Segment-mapped slot-column bytes, by shard."),
    ("repro_store_resident_bytes", "Private heap slot-column bytes, by shard."),
    ("repro_store_entries", "Occupied table slots, by shard."),
    ("repro_store_levels", "Level-stack depth, by shard."),
    ("repro_store_load_factor", "Occupied slot fraction, by shard."),
    ("repro_store_wal_bytes", "Live write-ahead log bytes, by shard (0 = no WAL)."),
    ("repro_store_wal_frames", "Unsealed write-ahead log frames, by shard."),
)


def _gauge_family(name: str, help_text: str, samples: list[dict]) -> dict:
    return {
        "type": "gauge",
        "help": help_text,
        "labelnames": ["shard"],
        "samples": samples,
    }


def ops_family(ops: Mapping[str, int]) -> dict:
    """The ``OpCounters`` dict as one labelled counter family."""
    samples = []
    for name in sorted(ops):
        op, _, unit = name.rpartition("_")
        samples.append(
            {"labels": {"op": op, "unit": unit}, "value": int(ops[name])}
        )
    return {
        "type": "counter",
        "help": "Lifetime served operations (batch calls and keys, by kind).",
        "labelnames": ["op", "unit"],
        "samples": samples,
    }


def store_metrics(store, ops: Mapping[str, int] | None = None) -> dict:
    """One registry snapshot with the store's structural gauges overlaid.

    ``ops`` overrides the store's own lifetime counters — serve workers pass
    their since-attach delta so a pool merge doesn't re-count the baseline
    the snapshot manifest restored into every worker.
    """
    snapshot = obs.snapshot()
    per_gauge: dict[str, list[dict]] = {name: [] for name, _ in _GAUGE_SPECS}
    total_size = 0.0
    for shard in store.shards:
        label = {"shard": str(shard.shard_id)}
        mapped, resident = shard.storage_nbytes()
        per_gauge["repro_store_mapped_bytes"].append(
            {"labels": label, "value": mapped}
        )
        per_gauge["repro_store_resident_bytes"].append(
            {"labels": dict(label), "value": resident}
        )
        per_gauge["repro_store_entries"].append(
            {"labels": dict(label), "value": shard.num_entries}
        )
        per_gauge["repro_store_levels"].append(
            {"labels": dict(label), "value": shard.num_levels}
        )
        per_gauge["repro_store_load_factor"].append(
            {"labels": dict(label), "value": shard.load_factor()}
        )
        wal = getattr(shard, "wal", None)
        per_gauge["repro_store_wal_bytes"].append(
            {"labels": dict(label), "value": 0 if wal is None else wal.nbytes}
        )
        per_gauge["repro_store_wal_frames"].append(
            {"labels": dict(label), "value": 0 if wal is None else wal.num_frames}
        )
        total_size += shard.size_in_bits() / 8
    for name, help_text in _GAUGE_SPECS:
        snapshot[name] = _gauge_family(name, help_text, per_gauge[name])
    snapshot["repro_store_size_bytes"] = {
        "type": "gauge",
        "help": "Summed sketch size of every level in bytes.",
        "labelnames": [],
        "samples": [{"labels": {}, "value": total_size}],
    }
    snapshot[OPS_METRIC] = ops_family(store.ops.to_dict() if ops is None else ops)
    return snapshot
