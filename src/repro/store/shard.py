"""One shard of the FilterStore: an LSM-style stack of plain-CCF levels.

A shard owns a disjoint slice of the key space.  Writes go to the **active
level** (the newest); when its occupancy crosses the configured target load
— or a placement failure latches ``failed`` — the level is sealed and a
fresh one is started, so a shard's capacity is unbounded while every level
stays inside the load regime where cuckoo placement succeeds.  Reads fan
across the stack newest-first and OR the per-level answers; deletes are
*routed to the owning level*: the newest level holding the exact row loses
it, other levels are untouched.

Every level shares one :class:`~repro.ccf.chain.PairGeometry` (same bucket
count, same seeds), so the store hashes a batch **once** and feeds the same
fingerprint/home arrays to every level's kernels — the per-level cost of a
query is one fancy-indexed probe, not a rehash.

Levels are plain CCFs deliberately: plain placement is the one policy whose
entries can be deleted and relocated safely (no chains to break, no Bloom
payloads to unlearn).  The paper's verdict that the plain variant "cannot
hold duplicate skew at a reasonable size" (§4.3) is about a *single*
fixed-size table — here duplicates spread across levels as they arrive and
compaction re-packs them into taller buckets, which is exactly the
LSM-levelling answer (`LSMTreeCuckoo`) to that failure mode.
"""

from __future__ import annotations

import itertools
import uuid
from time import perf_counter
from typing import Sequence

import numpy as np

from repro import obs
from repro.ccf.attributes import AttributeSchema
from repro.ccf.base import CompiledQuery
from repro.ccf.params import CCFParams
from repro.ccf.plain import PlainCCF
from repro.store.compaction import merge_levels
from repro.store.config import StoreConfig
from repro.store.segments import SegmentLevelRef
from repro.store.wal import OP_COMPACT, OP_DELETE, OP_INSERT, ShardWal

# Store-layer structural metrics (all batch- or event-granularity).  Probe
# outcomes are labelled by level depth-from-newest: depth 0 is the active
# level, so a drifting hit depth means reads are paying for old levels —
# the signal that compaction is overdue.
_LEVEL_ROLLS = obs.counter(
    "repro_store_level_rolls_total",
    "Active levels sealed because they reached target load (or failed).",
    ("shard",),
)
_COMPACTIONS = obs.counter(
    "repro_store_compactions_total", "Level-stack compactions run.", ("shard",)
)
_COMPACTION_ENTRIES = obs.counter(
    "repro_store_compaction_entries_total", "Entries merged by compactions."
)
_COMPACTION_BYTES = obs.counter(
    "repro_store_compaction_bytes_total",
    "Slot-column bytes read by compactions (stack size before the merge).",
)
_COMPACTION_US = obs.histogram(
    "repro_store_compaction_us", "Compaction duration in microseconds."
)
_PROBE_HITS = obs.counter(
    "repro_probe_hits_total",
    "Keys answered True, by level depth-from-newest that answered.",
    ("level",),
)
_PROBE_MISSES = obs.counter(
    "repro_probe_misses_total",
    "Keys no level of the probed shard answered True.",
)

#: Pre-bound per-depth children of ``_PROBE_HITS``: the query loop bumps
#: one per (shard, level) every batch, and the labels() dict round-trip
#: costs more than the inc itself.  Children survive registry clears, so
#: the cache never goes stale.
_PROBE_HIT_LEVELS: list = []


def _probe_hits_child(depth: int):
    while len(_PROBE_HIT_LEVELS) <= depth:
        _PROBE_HIT_LEVELS.append(
            _PROBE_HITS.labels(level=str(len(_PROBE_HIT_LEVELS)))
        )
    return _PROBE_HIT_LEVELS[depth]

#: Process-unique prefix + global counter for level sequence tokens.  A seq
#: names one immutable *content version* of a level: any mutation (insert,
#: delete, compaction, roll) assigns a fresh token, so two levels carrying the
#: same seq — even across processes, via snapshot manifests — are guaranteed
#: bit-identical.  `FilterStore.refresh` relies on this to keep already-mapped
#: levels attached instead of re-opening them (DESIGN.md §11).
_SEQ_PREFIX = uuid.uuid4().hex[:12]
_SEQ_COUNTER = itertools.count()


def alloc_level_seq() -> str:
    """A fresh level-content token, unique across processes and restarts."""
    return f"{_SEQ_PREFIX}-{next(_SEQ_COUNTER)}"


class FilterShard:
    """An unbounded level stack over one hash partition of the key space."""

    def __init__(
        self,
        shard_id: int,
        schema: AttributeSchema,
        params: CCFParams,
        config: StoreConfig,
    ) -> None:
        self.shard_id = shard_id
        self.schema = schema
        self.params = params
        self.config = config
        self._levels: list[PlainCCF] = [self._new_level()]
        self._pending_segments: list[SegmentLevelRef] = []
        #: Content tokens parallel to the level stack (see `alloc_level_seq`).
        self.level_seqs: list[str | None] = [alloc_level_seq()]
        #: Bumped on every structural change to the stack (roll, compaction,
        #: wholesale replacement, refresh) — the cheap staleness signal a
        #: serving worker polls instead of diffing level lists.
        self.generation = 0
        self.rows_inserted = 0
        self.rows_deleted = 0
        self.num_compactions = 0
        self.entries_compacted = 0
        #: Write-ahead log handle, attached by a durable FilterStore.  When
        #: set, every mutation batch appends one frame *before* it applies
        #: (redo logging): a crash mid-apply replays the whole frame over
        #: the checkpoint baseline, which re-derives the identical state.
        #: Detached (None) during recovery replay so replays don't re-log.
        self.wal: ShardWal | None = None

    def _new_level(self, bucket_size: int | None = None) -> PlainCCF:
        params = self.params
        if bucket_size is not None and bucket_size != params.bucket_size:
            params = params.replace(bucket_size=bucket_size)
        return PlainCCF(self.schema, self.config.level_buckets, params)

    # ------------------------------------------------------------------
    # Level stack (with lazy segment materialisation)
    # ------------------------------------------------------------------

    @property
    def levels(self) -> list[PlainCCF]:
        """The level stack; pending segment refs map on first access.

        A segment-backed ``FilterStore.open`` hands each shard its sealed
        levels as :class:`SegmentLevelRef` paths instead of loaded filters;
        the first probe (or any other level access) materialises them all as
        memmapped plain CCFs.  Mapping is O(metadata) per level — no slot
        data is read until a kernel gathers it.
        """
        if self._pending_segments:
            # Open every ref before committing: a failed open (corrupt or
            # missing segment) must leave the refs pending so the error
            # repeats on retry instead of silently emptying the stack.
            opened = [ref.open() for ref in self._pending_segments]
            self._levels = opened
            self._pending_segments = []
        return self._levels

    @levels.setter
    def levels(self, value: list[PlainCCF]) -> None:
        self._levels = list(value)
        self._pending_segments = []
        self.level_seqs = [alloc_level_seq() for _ in self._levels]
        self.generation += 1

    def attach_pending_levels(
        self,
        refs: list[SegmentLevelRef],
        seqs: Sequence[str | None] | None = None,
    ) -> None:
        """Adopt a snapshot's level stack lazily (replacing the current one).

        ``seqs`` carries the manifest's per-level content tokens so a later
        :meth:`refresh_from` can recognise unchanged levels; omitted (legacy
        manifests), every level is treated as new content.
        """
        if not refs:
            raise ValueError("a shard needs at least one level")
        if seqs is not None and len(seqs) != len(refs):
            raise ValueError("level seqs must parallel the refs")
        self._levels = []
        self._pending_segments = list(refs)
        self.level_seqs = list(seqs) if seqs is not None else [None] * len(refs)
        self.generation += 1

    def refresh_from(
        self,
        seqs: Sequence[str | None],
        refs: Sequence["SegmentLevelRef | PlainCCF"],
    ) -> tuple[int, int]:
        """Adopt a newer snapshot's stack, reusing unchanged attached levels.

        ``seqs``/``refs`` describe the published stack newest-last.  Levels
        whose seq matches one already attached here are kept as-is (their
        mapped columns stay mapped — no reopen, no page-cache churn); new
        seqs are materialised from their ref.  Any local, unpublished
        mutation bumped the local seq, so it can never shadow published
        content.  Returns ``(reused, attached)``.
        """
        if not refs:
            raise ValueError("a shard needs at least one level")
        if len(seqs) != len(refs):
            raise ValueError("level seqs must parallel the refs")
        if self._pending_segments and all(
            isinstance(ref, SegmentLevelRef) for ref in refs
        ):
            # Nothing is materialised yet — stay lazy, adopt wholesale.
            self.attach_pending_levels(list(refs), seqs)
            return 0, len(refs)
        attached = {
            seq: level
            for seq, level in zip(self.level_seqs, self._levels)
            if seq is not None
        }
        new_levels: list[PlainCCF] = []
        reused = 0
        for seq, ref in zip(seqs, refs):
            current = attached.get(seq)
            if current is not None:
                new_levels.append(current)
                reused += 1
            elif isinstance(ref, SegmentLevelRef):
                new_levels.append(ref.open())
            else:
                new_levels.append(ref)
        self._levels = new_levels
        self._pending_segments = []
        self.level_seqs = list(seqs)
        self.generation += 1
        return reused, len(refs) - reused

    @property
    def num_levels(self) -> int:
        """Stack depth — counts pending segments without materialising them."""
        if self._pending_segments:
            return len(self._pending_segments)
        return len(self._levels)

    @property
    def num_pending_segments(self) -> int:
        """Sealed levels still waiting on disk (not yet mapped)."""
        return len(self._pending_segments)

    @property
    def active(self) -> PlainCCF:
        """The level currently taking writes (always the newest)."""
        return self.levels[-1]

    def _roll_level(self) -> None:
        """Seal the active level and start a fresh one (a structural change)."""
        self._levels.append(self._new_level())
        self.level_seqs.append(alloc_level_seq())
        self.generation += 1
        _LEVEL_ROLLS.labels(shard=str(self.shard_id)).inc()

    def _touch_level(self, index: int) -> None:
        """Record that the level at ``index`` changed content (fresh seq)."""
        self.level_seqs[index] = alloc_level_seq()

    def _target_slots(self, level: PlainCCF) -> int:
        # At least one slot, or a degenerate target_load could roll forever.
        return max(1, int(self.config.target_load * level.buckets.capacity))

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def _alts_for(self, fps: np.ndarray, homes: np.ndarray, alts: np.ndarray | None) -> np.ndarray:
        """Partner buckets: accept the store's hash-once array or derive."""
        if alts is None:
            alts = self.active.geometry.alt_indices_many(homes, fps)
        return alts

    def _avec_matrix(self, avecs: Sequence[tuple[int, ...]], n: int) -> np.ndarray:
        """The batch's attribute-fingerprint vectors as an (n, nattrs) int64
        matrix — the WAL frame's third column group."""
        return np.asarray(avecs, dtype=np.int64).reshape(n, self.schema.num_attributes)

    def log_compact(self) -> None:
        """Append an explicit-compaction frame (callers compact right after).

        Only *explicit* compactions log: automatic ``compact_at`` merges
        re-derive deterministically while the triggering insert frame
        replays, and logging those too would compact twice on recovery.
        """
        if self.wal is not None:
            empty = np.empty(0, dtype=np.int64)
            self.wal.append(OP_COMPACT, empty, empty, empty.reshape(0, self.schema.num_attributes))

    def insert_hashed_rows(
        self,
        fps: np.ndarray,
        homes: np.ndarray,
        avecs: Sequence[tuple[int, ...]],
        alts: np.ndarray | None = None,
    ) -> np.ndarray:
        """Insert pre-hashed rows, rolling new levels as the active saturates.

        Each chunk is sized to the active level's remaining room under the
        target load (a row adds at most one entry), so a single batch can
        seamlessly span a level roll — the unbounded-growth contract.

        Rows an older (sealed) level already stores are **not** inserted
        again (read-before-write dedup, screened with one vectorised
        fingerprint probe per sealed level): the stack keeps the monolith
        CCF's one-entry-per-row semantics, so a later delete of the row
        removes it from the store entirely, not copy-by-copy.
        """
        n = len(fps)
        if self.wal is not None and n:
            self.wal.append(OP_INSERT, fps, homes, self._avec_matrix(avecs, n))
        out = np.ones(n, dtype=bool)
        alts = self._alts_for(fps, homes, alts)
        start = 0
        while start < n:
            level = self.active
            room = self._target_slots(level) - level.num_entries
            if room <= 0 or level.failed:
                self._roll_level()
                continue
            stop = min(n, start + room)
            index = np.arange(start, stop)
            if len(self.levels) > 1:
                duplicate = self._rows_present_in(
                    self.levels[:-1], fps[index], homes[index], avecs, index, alts[index]
                )
                index = index[~duplicate]
            if index.size:
                out[index] = level._insert_hashed_rows(
                    fps[index], homes[index], [avecs[i] for i in index.tolist()]
                )
                self._touch_level(-1)
            start = stop
        self.rows_inserted += n
        if self.config.compact_at is not None and len(self.levels) >= self.config.compact_at:
            self.compact()
        return out

    def _rows_present_in(
        self,
        levels: list[PlainCCF],
        fps: np.ndarray,
        homes: np.ndarray,
        avecs: Sequence[tuple[int, ...]],
        index: np.ndarray,
        alts: np.ndarray,
    ) -> np.ndarray:
        """Which rows (fps/homes sliced by ``index``) some level already holds.

        A fused key-fingerprint probe (shared precomputed partner buckets,
        no per-level re-hash) screens each level; only candidates pay the
        exact (fingerprint, vector) pair scan.
        """
        duplicate = np.zeros(len(fps), dtype=bool)
        for level in levels:
            pending = np.nonzero(~duplicate)[0]
            if pending.size == 0:
                break
            candidate = level._single_pair_query_many(
                fps[pending], homes[pending], None, alts[pending]
            )
            for local in np.nonzero(candidate)[0].tolist():
                i = int(pending[local])
                if level._row_present(int(fps[i]), int(homes[i]), avecs[int(index[i])]):
                    duplicate[i] = True
        return duplicate

    def delete_hashed_rows(
        self,
        fps: np.ndarray,
        homes: np.ndarray,
        avecs: Sequence[tuple[int, ...]],
        alts: np.ndarray | None = None,
    ) -> np.ndarray:
        """Route each delete to its owning level (newest level wins).

        Levels are screened newest-first with one fused key-fingerprint
        probe (shared precomputed partner buckets); only candidate rows run
        the exact (fingerprint, vector) slot removal.  A row deleted in one
        level is not searched for in older ones, so re-inserted rows shadow
        their older copies correctly.
        """
        n = len(fps)
        if self.wal is not None and n:
            self.wal.append(OP_DELETE, fps, homes, self._avec_matrix(avecs, n))
        out = np.zeros(n, dtype=bool)
        alts = self._alts_for(fps, homes, alts)
        pending = np.arange(n)
        for level_index in range(len(self.levels) - 1, -1, -1):
            if pending.size == 0:
                break
            level = self.levels[level_index]
            present = level._single_pair_query_many(
                fps[pending], homes[pending], None, alts[pending]
            )
            touched = False
            for local in np.nonzero(present)[0].tolist():
                i = int(pending[local])
                if level._delete_hashed(int(fps[i]), int(homes[i]), avecs[i]):
                    out[i] = True
                    touched = True
            if touched:
                self._touch_level(level_index)
            pending = pending[~out[pending]]
        self.rows_deleted += int(out.sum())
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query_hashed_many(
        self,
        fps: np.ndarray,
        homes: np.ndarray,
        compiled: CompiledQuery | None,
        alts: np.ndarray | None = None,
    ) -> np.ndarray:
        """OR of the level answers, probing newest-first.

        Every level shares one geometry, so the partner buckets are hashed
        once (by the store) and each level runs only its fused gather —
        no per-level re-hash.  Keys already answered True drop out of the
        remaining levels' probes, so a hit in a young level costs nothing
        in the old ones.
        """
        out = np.zeros(len(fps), dtype=bool)
        alts = self._alts_for(fps, homes, alts)
        pending = np.arange(len(fps))
        record = obs.state.enabled
        for depth, level in enumerate(reversed(self.levels)):
            if pending.size == 0:
                break
            answers = level._query_hashed_many(
                fps[pending], homes[pending], compiled, alts[pending]
            )
            hit_idx = pending[answers]
            out[hit_idx] = True
            pending = pending[~answers]
            # hit_idx is needed for the scatter anyway, so the hit count is a
            # free .size read — no extra count_nonzero on the probe path.
            if record and hit_idx.size:
                _probe_hits_child(depth).inc(hit_idx.size)
        if record and pending.size:
            _PROBE_MISSES.inc(int(pending.size))
        return out

    # ------------------------------------------------------------------
    # Compaction and introspection
    # ------------------------------------------------------------------

    def compact(self) -> PlainCCF:
        """Merge the level stack into one right-sized filter (see compaction.py)."""
        if len(self.levels) == 1 and not self.levels[0].num_entries:
            return self.levels[0]
        entries = sum(level.num_entries for level in self.levels)
        self.entries_compacted += entries
        record = obs.state.enabled
        if record:
            mapped, resident = self.storage_nbytes()
            start = perf_counter()
        with obs.span("shard.compact", shard=self.shard_id, entries=entries):
            merged = merge_levels(
                self.schema, self.params, self.levels, self.config.target_load
            )
        if record:
            _COMPACTIONS.labels(shard=str(self.shard_id)).inc()
            _COMPACTION_ENTRIES.inc(entries)
            _COMPACTION_BYTES.inc(mapped + resident)
            _COMPACTION_US.observe((perf_counter() - start) * 1e6)
        self.num_compactions += 1
        self.levels = [merged]
        return merged

    @property
    def num_entries(self) -> int:
        """Occupied table slots across the stack (stash excluded, like CCFs)."""
        return sum(level.num_entries for level in self.levels)

    @property
    def num_stashed(self) -> int:
        """Stashed overflow entries across the stack."""
        return sum(len(level.stash) for level in self.levels)

    @property
    def capacity(self) -> int:
        """Total slots across the stack."""
        return sum(level.buckets.capacity for level in self.levels)

    def load_factor(self) -> float:
        """Occupied fraction of the whole stack (stash excluded, in [0, 1])."""
        capacity = self.capacity
        return self.num_entries / capacity if capacity else 0.0

    def size_in_bits(self) -> int:
        """Summed sketch size of the stack."""
        return sum(level.size_in_bits() for level in self.levels)

    def storage_nbytes(self) -> tuple[int, int]:
        """(mapped, resident) bytes of the stack's typed slot columns.

        Mapped bytes live in segment files (paged in on demand); resident
        bytes are private heap arrays.  Accessing this materialises pending
        segments — mapping is O(metadata), the columns stay on disk.
        """
        mapped = resident = 0
        for level in self.levels:
            level_mapped, level_resident = level.storage_nbytes()
            mapped += level_mapped
            resident += level_resident
        return mapped, resident

    def stats(self) -> dict:
        """Occupancy, level shape and compaction-work counters."""
        mapped_bytes, resident_bytes = self.storage_nbytes()
        return {
            "shard": self.shard_id,
            "levels": len(self.levels),
            "entries": self.num_entries,
            "stashed": self.num_stashed,
            "capacity": self.capacity,
            "fingerprint_dtype": self.active.buckets.fps.dtype.name,
            "bytes_per_slot": self.active.buckets.bytes_per_slot,
            "load_factor": round(self.load_factor(), 4),
            "level_loads": [round(level.load_factor(), 4) for level in self.levels],
            "level_bucket_sizes": [level.buckets.bucket_size for level in self.levels],
            "mapped_bytes": mapped_bytes,
            "resident_bytes": resident_bytes,
            "rows_inserted": self.rows_inserted,
            "rows_deleted": self.rows_deleted,
            "compactions": self.num_compactions,
            "entries_compacted": self.entries_compacted,
            "wal": None if self.wal is None else self.wal.stats(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FilterShard(id={self.shard_id}, levels={len(self.levels)}, "
            f"entries={self.num_entries}, load={self.load_factor():.3f})"
        )
