"""Level compaction: merge a shard's level stack into one right-sized filter.

Because every level of a shard shares one pair geometry (same bucket count,
same seeds — enforced by :class:`~repro.store.config.StoreConfig`), an entry
observed at bucket ``b`` of any level belongs to the bucket pair
``{b, b XOR h(κ)}`` in *every* level.  Compaction exploits this: it walks
``iter_entries`` over all levels, deduplicates rows per (pair, fingerprint,
attribute vector), right-sizes a single merged filter — same bucket count,
**taller buckets** (bucket size never changes pair identity) — and places
each entry back into its own pair.

Right-sizing follows the rebuild-time sizing argument of *Smaller and More
Flexible Cuckoo Filters* (arXiv:2505.05847): instead of overprovisioning the
store up front, each compaction picks the smallest bucket size that holds
the surviving entries at the configured target load while respecting the
hottest pair's 2b capacity, so space tracks the live data after churn.

The placement reuses PR 2's bulk-build shape (DESIGN.md §7): the
conflict-free first wave — entries whose resident bucket still has room —
is scattered into the fingerprint/attribute/flag columns in one vectorised
pass; only the residue runs the sequential pair-placement kernel.  Because
rows are pre-deduplicated and plain placement has no cross-pair policy, the
wave is policy-equivalent to replaying ``_insert_hashed`` row by row:
membership answers are identical, only slot positions may differ.
"""

from __future__ import annotations

import numpy as np

from repro.ccf.attributes import AttributeSchema
from repro.ccf.entries import VectorEntry
from repro.ccf.params import CCFParams
from repro.ccf.plain import PlainCCF

#: How many times a failing merge grows the merged bucket size before
#: giving up.  Failures need adversarial pair congestion, so one or two
#: retries is already generous.
MERGE_RETRIES = 4


def collect_live_rows(
    levels: list[PlainCCF],
) -> tuple[np.ndarray, np.ndarray, list[tuple[int, ...]], list[VectorEntry], dict[int, int]]:
    """Gather every live row across ``levels``, deduplicated per pair.

    Returns ``(buckets, fps, avecs, stash_entries, pair_counts)``: the
    resident bucket / fingerprint / attribute vector of each distinct
    (pair, fingerprint, vector) row, the surviving stash entries (their
    buckets are unknowable — stashed victims lost their position), and the
    per-pair row counts that drive hot-pair sizing.
    """
    seen: set[tuple[int, int, tuple[int, ...]]] = set()
    buckets: list[int] = []
    fps: list[int] = []
    avecs: list[tuple[int, ...]] = []
    pair_counts: dict[int, int] = {}
    stash_entries: list[VectorEntry] = []
    stash_seen: set[tuple[int, tuple[int, ...]]] = set()
    for level in levels:
        # Gather each level's occupied slots straight out of the packed
        # columns: one fancy-index per column and one vectorised jump pass
        # (shared geometry) instead of a per-entry Python walk.
        bucket_idx, slot_idx = np.nonzero(level.buckets.occupied_mask())
        if bucket_idx.size:
            level_fps = level.buckets.fps[bucket_idx, slot_idx].astype(np.int64)
            level_avecs = level._avecs[bucket_idx, slot_idx].astype(np.int64)
            alts = level.geometry.alt_indices_many(bucket_idx, level_fps)
            pairs = np.minimum(bucket_idx, alts)
            for bucket, fp, pair, avec_row in zip(
                bucket_idx.tolist(), level_fps.tolist(), pairs.tolist(), level_avecs.tolist()
            ):
                signature = (pair, fp, tuple(avec_row))
                if signature in seen:
                    continue
                seen.add(signature)
                buckets.append(bucket)
                fps.append(fp)
                avecs.append(signature[2])
                pair_counts[pair] = pair_counts.get(pair, 0) + 1
        for entry in level.stash:
            stash_signature = (entry.fp, entry.avec)
            if stash_signature not in stash_seen:
                stash_seen.add(stash_signature)
                stash_entries.append(VectorEntry(entry.fp, entry.avec, entry.matching))
    return (
        np.array(buckets, dtype=np.int64),
        np.array(fps, dtype=np.int64),
        avecs,
        stash_entries,
        pair_counts,
    )


def right_sized_bucket_size(
    num_rows: int,
    num_buckets: int,
    pair_counts: dict[int, int],
    target_load: float,
    min_bucket_size: int,
    max_dupes: int,
) -> int:
    """Smallest bucket size holding ``num_rows`` at ``target_load``.

    Two floors: global occupancy (rows over ``m*b`` slots stays under the
    target) and the hottest pair (a pair's rows must fit its ``2b`` slots —
    the plain variant's only structural cap).
    """
    hottest = max(pair_counts.values(), default=0)
    by_load = -(-num_rows // max(1, round(num_buckets * target_load)))
    by_pair = -(-hottest // 2)
    by_dupes = -(-max_dupes // 2)
    return max(min_bucket_size, by_load, by_pair, by_dupes, 1)


def bulk_load_rows(
    merged: PlainCCF, buckets: np.ndarray, fps: np.ndarray, avecs: list[tuple[int, ...]]
) -> None:
    """Place pre-deduplicated rows into ``merged`` at their resident buckets.

    First wave (vectorised, PR 2's ranking, planned by the active kernel
    backend's placement planner — `repro.kernels`): rows are stably grouped
    by bucket and the first ``bucket_size - counts[bucket]`` of each group
    are scattered straight into that bucket's free slots — fingerprints into
    the SlotMatrix, vectors into the attribute column.  The residue replays the
    sequential pair-placement kernel (`_insert_hashed`), which may kick but
    never leaves the row's own pair.
    """
    n = len(fps)
    if n == 0:
        return
    avec_matrix = np.array(avecs, dtype=np.int64).reshape(n, -1)
    rows, placed_buckets, slots, residue = merged.buckets.plan_bulk_placement(buckets)
    if placed_buckets.size:
        merged.buckets.fps[placed_buckets, slots] = fps[rows]
        merged._avecs[placed_buckets, slots] = avec_matrix[rows]
        merged.buckets.note_bulk_placement(placed_buckets)
        merged.num_rows_inserted += int(placed_buckets.size)

    if residue.size:
        for i in residue.tolist():
            merged._insert_hashed(int(fps[i]), int(buckets[i]), None, avecs[i])


def merge_levels(
    schema: AttributeSchema,
    params: CCFParams,
    levels: list[PlainCCF],
    target_load: float,
) -> PlainCCF:
    """Merge a level stack into one right-sized plain CCF.

    The merged filter keeps the stack's bucket count and seeds (so it stays
    interchangeable with any future level) and answers exactly the union of
    the levels' memberships: every live row lands back in its own bucket
    pair, stash entries carry over, and the row/discard counters sum.
    """
    num_buckets = levels[0].buckets.num_buckets
    buckets, fps, avecs, stash_entries, pair_counts = collect_live_rows(levels)
    num_rows = len(fps)
    bucket_size = right_sized_bucket_size(
        num_rows,
        num_buckets,
        pair_counts,
        target_load,
        params.bucket_size,
        params.max_dupes,
    )
    last_error: PlainCCF | None = None
    for _attempt in range(MERGE_RETRIES):
        merged = PlainCCF(schema, num_buckets, params.replace(bucket_size=bucket_size))
        bulk_load_rows(merged, buckets, fps, avecs)
        if not merged.failed:
            merged.num_rows_inserted = sum(level.num_rows_inserted for level in levels)
            merged.num_rows_discarded = sum(level.num_rows_discarded for level in levels)
            merged.stash.extend(stash_entries)
            return merged
        last_error = merged
        bucket_size += 1
    raise RuntimeError(
        f"compaction could not place {num_rows} rows in {num_buckets} buckets "
        f"even at bucket_size={bucket_size - 1} (stash={len(last_error.stash)})"
    )
