"""FilterStore: a sharded, log-structured, mutable CCF serving layer.

The paper's deployment story (§2-§3) precomputes one fixed-capacity CCF per
table.  A production service under mutable traffic outgrows any pre-sized
filter; the FilterStore removes the cap while keeping every per-batch code
path a single vectorised fan-out:

1. **Route** — one salted hash partitions the batch across ``num_shards``
   shards (numpy scatter; results gather back to input order).
2. **Hash once** — key fingerprints, home buckets and attribute-fingerprint
   vectors are computed once per batch; every level of every shard shares
   one geometry, so the same arrays feed every level kernel.
3. **Level** — each shard appends to an LSM-style stack of plain-CCF levels
   (`shard.py`), growing a level when the active one saturates and merging
   the stack into one right-sized filter on compaction (`compaction.py`).

Persistence is **segment-first** (DESIGN.md §10): ``snapshot(path)`` stages
a JSON manifest plus one SEG1 segment per level into a temp directory and
renames it into place (a crash can never leave a torn store), and
``open(path)`` restores an equivalent store in O(manifest) — sealed levels
stay on disk as :class:`~repro.store.segments.SegmentLevelRef` handles and
map (read-only, zero-copy) the first time a probe touches their shard.
``snapshot(path, level_format="ccf")`` keeps the bit-packed
`ccf/serialize.py` wire payloads for interchange; those deserialise eagerly
on open.  The deployment contract either way: answers after ``open`` equal
answers before ``snapshot``.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro.ccf.attributes import AttributeSchema
from repro.ccf.base import (
    CompiledQuery,
    ConditionalCuckooFilterBase,
    compile_predicate,
    validate_attr_columns,
)
from repro.ccf.chain import PairGeometry
from repro.ccf.params import CCFParams
from repro.ccf.plain import PlainCCF
from repro.ccf.predicates import Predicate
from repro.ccf.serialize import SerializeError, dumps, loads
from repro.hashing.mixers import derive_seed, hash64, hash64_many
from repro.store.config import StoreConfig
from repro.store.segments import SEGMENT_SUFFIX, SegmentLevelRef, write_segment
from repro.store.shard import FilterShard

#: Manifest schema version; bump on layout changes.  Format 2 records each
#: level as ``{"file", "format"}`` (``segment`` = SEG1, ``ccf`` = bit-packed
#: wire payload); format-1 manifests (bare filename lists, all ccf) still load.
MANIFEST_FORMAT = 2
MANIFEST_NAME = "manifest.json"

#: Per-level payload formats a snapshot can write.
LEVEL_FORMATS = ("segment", "ccf")


class FilterStore:
    """Unbounded, mutable, persistent conditional-membership service."""

    def __init__(
        self,
        schema: AttributeSchema,
        params: CCFParams,
        config: StoreConfig | None = None,
        kind: str = "plain",
    ) -> None:
        if kind != "plain":
            raise ValueError(
                "FilterStore levels must be plain CCFs: plain placement is the "
                "only policy whose entries can be deleted and relocated during "
                f"compaction (got kind={kind!r}); see DESIGN.md §8"
            )
        self.kind = kind
        self.schema = schema
        self.params = params
        self.config = config or StoreConfig()
        self.fingerprinter = ConditionalCuckooFilterBase.make_fingerprinter(schema, params)
        #: The geometry every level of every shard shares.
        self.geometry = PairGeometry(
            self.config.level_buckets, params.key_bits, seed=params.seed
        )
        self._shard_salt = derive_seed(self.config.seed, "store-shard")
        self.shards = [
            FilterShard(i, schema, params, self.config)
            for i in range(self.config.num_shards)
        ]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def shard_of(self, key: object) -> int:
        """The shard owning ``key`` (independent of the level hashes)."""
        return int(hash64(key, self._shard_salt) % self.config.num_shards)

    def shard_ids_of_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch `shard_of` (bit-identical per element)."""
        hashed = hash64_many(keys, self._shard_salt)
        return (hashed % np.uint64(self.config.num_shards)).astype(np.int64)

    def _scatter(
        self, keys: Sequence[object] | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(shard ids, key fingerprints, home buckets, partner buckets).

        Hashed exactly once per batch: every level of every shard shares
        this geometry, so the same four arrays feed every level's fused
        probe kernel with no per-level re-hash (DESIGN.md §8/§9).
        """
        shard_ids = self.shard_ids_of_many(keys)
        fps = self.geometry.fingerprints_of_many(keys)
        homes = self.geometry.home_indices_of_many(keys)
        alts = self.geometry.alt_indices_many(homes, fps)
        return shard_ids, fps, homes, alts

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def insert(self, key: object, attrs: Mapping[str, Any] | Sequence[Any]) -> bool:
        """Insert one (key, attribute row)."""
        return bool(self.insert_many([key], [[v] for v in self.schema.row_values(attrs)])[0])

    def insert_many(
        self,
        keys: Sequence[object] | np.ndarray,
        attr_columns: Sequence[Sequence[Any] | np.ndarray],
    ) -> np.ndarray:
        """Insert a batch of rows: one hashing pass, one scatter, per-shard fills.

        Capacity is unbounded — shards roll new levels as they saturate —
        so unlike a fixed CCF this never needs pre-sizing.  Returns the
        per-row placement results in input order (False only on the rare
        MaxKicks overflow, where the row is stash-preserved).
        """
        columns = list(attr_columns)
        n = len(keys)
        validate_attr_columns(columns, self.schema.num_attributes, n)
        out = np.ones(n, dtype=bool)
        if n == 0:
            return out
        shard_ids, fps, homes, alts = self._scatter(keys)
        avecs = self.fingerprinter.vectors_many(columns)
        for shard in self.shards:
            index = np.nonzero(shard_ids == shard.shard_id)[0]
            if index.size == 0:
                continue
            out[index] = shard.insert_hashed_rows(
                fps[index], homes[index], [avecs[i] for i in index.tolist()], alts[index]
            )
        return out

    def delete(self, key: object, attrs: Mapping[str, Any] | Sequence[Any]) -> bool:
        """Delete one stored (key, attribute row); True if a row was removed."""
        return bool(self.delete_many([key], [[v] for v in self.schema.row_values(attrs)])[0])

    def delete_many(
        self,
        keys: Sequence[object] | np.ndarray,
        attr_columns: Sequence[Sequence[Any] | np.ndarray],
    ) -> np.ndarray:
        """Batch delete; each row is removed from its newest owning level.

        The usual cuckoo-deletion caveat applies per row: only delete rows
        known to have been inserted (a colliding row's entry may be removed
        otherwise).
        """
        columns = list(attr_columns)
        n = len(keys)
        validate_attr_columns(columns, self.schema.num_attributes, n)
        out = np.zeros(n, dtype=bool)
        if n == 0:
            return out
        shard_ids, fps, homes, alts = self._scatter(keys)
        avecs = self.fingerprinter.vectors_many(columns)
        for shard in self.shards:
            index = np.nonzero(shard_ids == shard.shard_id)[0]
            if index.size == 0:
                continue
            out[index] = shard.delete_hashed_rows(
                fps[index], homes[index], [avecs[i] for i in index.tolist()], alts[index]
            )
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def compile(self, predicate: Predicate | None) -> CompiledQuery | None:
        """Compile a predicate once for every level of every shard."""
        return compile_predicate(self.schema, self.fingerprinter, predicate)

    def _resolve_compiled(
        self, predicate: Predicate | CompiledQuery | None
    ) -> CompiledQuery | None:
        if predicate is None or isinstance(predicate, CompiledQuery):
            return predicate
        return self.compile(predicate)

    def query(self, key: object, predicate: Predicate | CompiledQuery | None = None) -> bool:
        """Membership test for ``key`` under an optional predicate."""
        return bool(self.query_many([key], predicate)[0])

    def query_many(
        self,
        keys: Sequence[object] | np.ndarray,
        predicate: Predicate | CompiledQuery | None = None,
    ) -> np.ndarray:
        """Batch membership under one (compiled-once) predicate.

        One hashing pass and one scatter; each shard ORs its level answers
        newest-first.  No false negatives for live rows, the same contract
        as a single CCF.
        """
        compiled = self._resolve_compiled(predicate)
        n = len(keys)
        out = np.zeros(n, dtype=bool)
        if n == 0:
            return out
        shard_ids, fps, homes, alts = self._scatter(keys)
        for shard in self.shards:
            index = np.nonzero(shard_ids == shard.shard_id)[0]
            if index.size == 0:
                continue
            out[index] = shard.query_hashed_many(
                fps[index], homes[index], compiled, alts[index]
            )
        return out

    def contains_key(self, key: object) -> bool:
        """Key-only membership test."""
        return self.query(key, None)

    def contains_key_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch key-only membership test."""
        return self.query_many(keys, None)

    def __contains__(self, key: object) -> bool:
        return self.contains_key(key)

    # ------------------------------------------------------------------
    # Maintenance and introspection
    # ------------------------------------------------------------------

    def compact(self) -> None:
        """Compact every shard's level stack into one right-sized filter."""
        for shard in self.shards:
            shard.compact()

    @property
    def num_levels(self) -> int:
        """Total level count across shards (pending segments counted unmapped)."""
        return sum(shard.num_levels for shard in self.shards)

    @property
    def num_entries(self) -> int:
        """Occupied table slots across every level of every shard (stash excluded)."""
        return sum(shard.num_entries for shard in self.shards)

    def load_factor(self) -> float:
        """Occupied fraction over the store's total slot capacity (in [0, 1])."""
        capacity = sum(shard.capacity for shard in self.shards)
        return self.num_entries / capacity if capacity else 0.0

    def size_in_bits(self) -> int:
        """Summed sketch size across all levels (manifest overhead excluded)."""
        return sum(shard.size_in_bits() for shard in self.shards)

    def size_in_bytes(self) -> float:
        """Summed sketch size in bytes."""
        return self.size_in_bits() / 8

    def __len__(self) -> int:
        """Number of live rows (inserted minus deleted)."""
        return sum(shard.rows_inserted - shard.rows_deleted for shard in self.shards)

    def stats(self) -> dict:
        """Per-shard occupancy, level shapes and compaction work, plus totals."""
        shards = [shard.stats() for shard in self.shards]
        return {
            "num_shards": self.config.num_shards,
            "level_buckets": self.config.level_buckets,
            "target_load": self.config.target_load,
            "fingerprint_dtype": shards[0]["fingerprint_dtype"] if shards else None,
            "bytes_per_slot": shards[0]["bytes_per_slot"] if shards else None,
            "levels": self.num_levels,
            "entries": self.num_entries,
            "load_factor": round(self.load_factor(), 4),
            "rows_inserted": sum(s["rows_inserted"] for s in shards),
            "rows_deleted": sum(s["rows_deleted"] for s in shards),
            "compactions": sum(s["compactions"] for s in shards),
            "entries_compacted": sum(s["entries_compacted"] for s in shards),
            "size_in_bytes": self.size_in_bytes(),
            "mapped_bytes": sum(s["mapped_bytes"] for s in shards),
            "resident_bytes": sum(s["resident_bytes"] for s in shards),
            "shards": shards,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FilterStore(shards={self.config.num_shards}, levels={self.num_levels}, "
            f"rows={len(self)}, load={self.load_factor():.3f})"
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def snapshot(self, path: str | Path, level_format: str = "segment") -> Path:
        """Write the store to a directory: manifest + one payload per level.

        ``level_format="segment"`` (the default) writes each level as a SEG1
        segment file (`repro.ccf.mmapio`) — page-aligned raw columns that
        :meth:`open` maps back zero-copy.  ``level_format="ccf"`` writes the
        bit-packed columnar wire format (`ccf/serialize.py`) instead, so any
        tool that reads a serialised CCF can read a level.

        The write is staged: everything lands in a hidden sibling temp
        directory (manifest last, the commit point) and is renamed into
        place with ``os.replace``, so a crash while writing payloads leaves
        the target untouched — never a torn store.  Snapshots to a fresh
        path are fully atomic.  Overwriting an existing snapshot first
        displaces the old directory to a hidden sibling, so the previous
        data survives on disk until the new directory is in place; a crash
        in the narrow window between the two renames leaves the target
        momentarily absent but both snapshots intact under their hidden
        names (and the next snapshot to the same path cleans them up).
        """
        if level_format not in LEVEL_FORMATS:
            raise ValueError(
                f"level_format must be one of {LEVEL_FORMATS}, got {level_format!r}"
            )
        root = Path(path)
        root.parent.mkdir(parents=True, exist_ok=True)
        # Clear staging/displaced debris from earlier runs, whatever their
        # pid: a crashed snapshot must not leak directories forever.
        for pattern in (f".{root.name}.tmp-*", f".{root.name}.old-*"):
            for stale in root.parent.glob(pattern):
                shutil.rmtree(stale, ignore_errors=True)
        staging = root.parent / f".{root.name}.tmp-{os.getpid()}"
        staging.mkdir()
        suffix = SEGMENT_SUFFIX if level_format == "segment" else ".ccf"
        try:
            shard_records = []
            for shard in self.shards:
                level_files = []
                for level_index, level in enumerate(shard.levels):
                    name = f"shard-{shard.shard_id:04d}-level-{level_index:04d}{suffix}"
                    if level_format == "segment":
                        write_segment(level, staging / name)
                    else:
                        (staging / name).write_bytes(dumps(level))
                    level_files.append({"file": name, "format": level_format})
                shard_records.append(
                    {
                        "levels": level_files,
                        "rows_inserted": shard.rows_inserted,
                        "rows_deleted": shard.rows_deleted,
                        "compactions": shard.num_compactions,
                        "entries_compacted": shard.entries_compacted,
                    }
                )
            manifest = {
                "format": MANIFEST_FORMAT,
                "kind": self.kind,
                "schema": list(self.schema.names),
                "params": _params_to_dict(self.params),
                "config": self.config.to_dict(),
                "shards": shard_records,
            }
            # The manifest is the commit point within the staging directory.
            (staging / MANIFEST_NAME).write_text(
                json.dumps(manifest, indent=2, sort_keys=True)
            )
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        if root.exists():
            displaced = root.parent / f".{root.name}.old-{os.getpid()}"
            os.replace(root, displaced)
            os.replace(staging, root)
            shutil.rmtree(displaced)
        else:
            os.replace(staging, root)
        return root

    @classmethod
    def open(cls, path: str | Path) -> "FilterStore":
        """Restore a store from a :meth:`snapshot` directory.

        Segment-backed shards open in O(manifest): sealed levels are
        attached as lazy :class:`SegmentLevelRef` handles and memory-map on
        the first probe that reaches their shard, so cold-open cost and
        resident memory are independent of store size.  CCF wire payloads
        (``level_format="ccf"`` snapshots and format-1 manifests)
        deserialise eagerly, as before.
        """
        root = Path(path)
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        if manifest.get("format") not in (1, MANIFEST_FORMAT):
            raise ValueError(
                f"unsupported FilterStore manifest format {manifest.get('format')!r}"
            )
        schema = AttributeSchema(manifest["schema"])
        params = CCFParams(**manifest["params"])
        config = StoreConfig.from_dict(manifest["config"])
        store = cls(schema, params, config, kind=manifest["kind"])
        for shard, record in zip(store.shards, manifest["shards"]):
            # Format-1 manifests record bare filenames (all ccf payloads).
            entries = [
                {"file": entry, "format": "ccf"} if isinstance(entry, str) else entry
                for entry in record["levels"]
            ]
            for entry in entries:
                if entry["format"] not in LEVEL_FORMATS:
                    raise ValueError(
                        f"unsupported level payload format {entry['format']!r} "
                        f"for {entry['file']}"
                    )
            if entries and all(entry["format"] == "segment" for entry in entries):
                shard.attach_pending_levels(
                    [
                        SegmentLevelRef(root / entry["file"], config.level_buckets)
                        for entry in entries
                    ]
                )
            elif entries:
                shard.levels = [
                    _load_level(root, entry, config) for entry in entries
                ]
            shard.rows_inserted = record["rows_inserted"]
            shard.rows_deleted = record["rows_deleted"]
            shard.num_compactions = record["compactions"]
            shard.entries_compacted = record["entries_compacted"]
        return store


def _load_level(root: Path, entry: Mapping[str, str], config: StoreConfig) -> PlainCCF:
    """Eagerly load one level payload (the non-lazy open path)."""
    name = entry["file"]
    if entry["format"] == "segment":
        return SegmentLevelRef(root / name, config.level_buckets).open()
    level = loads((root / name).read_bytes(), source=str(root / name))
    if not isinstance(level, PlainCCF):
        raise SerializeError(
            f"level payload holds a {getattr(level, 'kind', type(level).__name__)!r}; "
            "store levels must be plain CCFs",
            source=str(root / name),
        )
    if level.buckets.num_buckets != config.level_buckets:
        raise SerializeError(
            f"level payload has {level.buckets.num_buckets} buckets, "
            f"manifest says {config.level_buckets}",
            source=str(root / name),
        )
    return level


def _params_to_dict(params: CCFParams) -> dict:
    """CCFParams as a JSON-safe dict (field names match the constructor)."""
    from dataclasses import asdict

    return asdict(params)
