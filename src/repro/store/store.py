"""FilterStore: a sharded, log-structured, mutable CCF serving layer.

The paper's deployment story (§2-§3) precomputes one fixed-capacity CCF per
table.  A production service under mutable traffic outgrows any pre-sized
filter; the FilterStore removes the cap while keeping every per-batch code
path a single vectorised fan-out:

1. **Route** — one salted hash partitions the batch across ``num_shards``
   shards (numpy scatter; results gather back to input order).
2. **Hash once** — key fingerprints, home buckets and attribute-fingerprint
   vectors are computed once per batch; every level of every shard shares
   one geometry, so the same arrays feed every level kernel.
3. **Level** — each shard appends to an LSM-style stack of plain-CCF levels
   (`shard.py`), growing a level when the active one saturates and merging
   the stack into one right-sized filter on compaction (`compaction.py`).

Persistence is **segment-first** (DESIGN.md §10): ``snapshot(path)`` stages
a JSON manifest plus one SEG1 segment per level into a temp directory and
renames it into place (a crash can never leave a torn store), and
``open(path)`` restores an equivalent store in O(manifest) — sealed levels
stay on disk as :class:`~repro.store.segments.SegmentLevelRef` handles and
map (read-only, zero-copy) the first time a probe touches their shard.
``snapshot(path, level_format="ccf")`` keeps the bit-packed
`ccf/serialize.py` wire payloads for interchange; those deserialise eagerly
on open.  The deployment contract either way: answers after ``open`` equal
answers before ``snapshot``.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
from contextlib import ExitStack
from pathlib import Path
from time import perf_counter
from typing import Any, Mapping, Sequence

import numpy as np

from repro import obs
from repro.ccf.attributes import AttributeSchema
from repro.ccf.base import (
    CompiledQuery,
    ConditionalCuckooFilterBase,
    compile_predicate,
    validate_attr_columns,
)
from repro.ccf.chain import PairGeometry
from repro.ccf.params import CCFParams
from repro.ccf.plain import PlainCCF
from repro.ccf.predicates import Predicate
from repro.ccf.serialize import SerializeError, dumps, loads
from repro.hashing.mixers import derive_seed, hash64, hash64_many
from repro.kernels import active_backend
from repro.store import faults
from repro.store.config import DurabilityConfig, StoreConfig
from repro.store.metrics import store_metrics
from repro.store.segments import (
    SEGMENT_SUFFIX,
    SegmentLevelRef,
    warm_level,
    write_segment,
)
from repro.store.shard import FilterShard
from repro.store.wal import (
    OP_COMPACT,
    OP_DELETE,
    OP_INSERT,
    ShardWal,
    WAL_SUFFIX,
    record_replay,
    scan_wal,
    wal_dir,
    wal_name,
)

#: Manifest schema version; bump on layout changes.  Format 2 records each
#: level as ``{"file", "format"}`` (``segment`` = SEG1, ``ccf`` = bit-packed
#: wire payload); format-1 manifests (bare filename lists, all ccf) still load.
MANIFEST_FORMAT = 2
MANIFEST_NAME = "manifest.json"

#: Per-level payload formats a snapshot can write.
LEVEL_FORMATS = ("segment", "ccf")

#: The operation kinds `OpCounters` tracks (batch calls and keys for each).
OP_KINDS = ("query", "insert", "delete")

# Persistence-path instrumentation: one record per snapshot/refresh call.
_SNAPSHOT_US = obs.histogram(
    "repro_store_snapshot_us", "Snapshot write duration in microseconds."
)
_SNAPSHOTS = obs.counter("repro_store_snapshots_total", "Snapshots written.")
_REFRESH_US = obs.histogram(
    "repro_store_refresh_us", "Snapshot refresh duration in microseconds."
)
_REFRESH_LEVELS = obs.counter(
    "repro_store_refresh_levels_total",
    "Levels handled by refresh, by outcome (reused = mapping kept).",
    ("outcome",),
)
_CHECKPOINTS = obs.counter(
    "repro_store_checkpoints_total", "Durable checkpoints committed."
)
_CHECKPOINT_US = obs.histogram(
    "repro_store_checkpoint_us", "Checkpoint (seal + WAL roll) duration in microseconds."
)


class OpCounters:
    """Served-operation counters: batch calls and keys per operation kind.

    One lock-protected bump per *batch* (not per key), so the counters stay
    exact under the serve layer's concurrent readers at negligible cost.
    Snapshots persist them and ``open`` restores them, so a restarted writer
    keeps its lifetime totals; the ``inspect`` CLI and ``stats()`` surface
    them (DESIGN.md §11).
    """

    __slots__ = ("_lock", "counts")

    def __init__(self, counts: Mapping[str, int] | None = None) -> None:
        self._lock = threading.Lock()
        self.counts = {
            f"{kind}_{unit}": 0 for kind in OP_KINDS for unit in ("calls", "keys")
        }
        if counts:
            for name, value in counts.items():
                if name in self.counts:
                    self.counts[name] = int(value)

    def record(self, kind: str, keys: int) -> None:
        """Count one batch call of ``kind`` covering ``keys`` keys."""
        with self._lock:
            self.counts[f"{kind}_calls"] += 1
            self.counts[f"{kind}_keys"] += keys

    def to_dict(self) -> dict[str, int]:
        """A plain-dict copy (stats / manifest form)."""
        with self._lock:
            return dict(self.counts)

    def __getstate__(self) -> dict:
        return {"counts": self.to_dict()}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["counts"])


class FilterStore:
    """Unbounded, mutable, persistent conditional-membership service."""

    def __init__(
        self,
        schema: AttributeSchema,
        params: CCFParams,
        config: StoreConfig | None = None,
        kind: str = "plain",
    ) -> None:
        if kind != "plain":
            raise ValueError(
                "FilterStore levels must be plain CCFs: plain placement is the "
                "only policy whose entries can be deleted and relocated during "
                f"compaction (got kind={kind!r}); see DESIGN.md §8"
            )
        self.kind = kind
        self.schema = schema
        self.params = params
        self.config = config or StoreConfig()
        self.fingerprinter = ConditionalCuckooFilterBase.make_fingerprinter(schema, params)
        #: The geometry every level of every shard shares.
        self.geometry = PairGeometry(
            self.config.level_buckets, params.key_bits, seed=params.seed
        )
        self._shard_salt = derive_seed(self.config.seed, "store-shard")
        self.shards = [
            FilterShard(i, schema, params, self.config)
            for i in range(self.config.num_shards)
        ]
        #: Lifetime served-operation counters (queries/inserts/deletes).
        self.ops = OpCounters()
        #: Durable-store attachment (None = the classic snapshot-only mode).
        #: Set by :meth:`attach_wal` or a WAL-carrying :meth:`open`; when
        #: set, every shard holds a live `ShardWal` and mutations are
        #: logged-before-applied under the root's WAL directory.
        self._root: Path | None = None
        self._durability: DurabilityConfig | None = None
        self._wal_gen = 0
        #: Latched when a checkpoint dies half-way: the in-memory state and
        #: the on-disk commit point can then disagree, so further writes
        #: would risk acking frames recovery cannot see.  Reopen to clear.
        self._wal_broken = False
        #: Per-shard reader/writer locks, installed by the serve layer
        #: (`repro.serve`).  None (the default) means unguarded single-thread
        #: access with zero overhead; installed, every per-shard kernel call
        #: runs under that shard's read or write lock, so a writer on shard i
        #: never blocks readers on shard j (DESIGN.md §11).
        self._shard_locks: Sequence[Any] | None = None

    # ------------------------------------------------------------------
    # Concurrency seams
    # ------------------------------------------------------------------

    def install_shard_locks(self, locks: Sequence[Any] | None) -> None:
        """Install (or with ``None`` remove) per-shard reader/writer locks.

        ``locks`` must provide one lock per shard with ``read_locked()`` /
        ``write_locked()`` context managers (see `repro.serve.locks.RWLock`).
        """
        if locks is not None and len(locks) != self.config.num_shards:
            raise ValueError(
                f"need one lock per shard ({self.config.num_shards}), got {len(locks)}"
            )
        self._shard_locks = locks

    def _read_guard(self, shard_id: int):
        locks = self._shard_locks
        return None if locks is None else locks[shard_id].read_locked()

    def _write_guard(self, shard_id: int):
        locks = self._shard_locks
        return None if locks is None else locks[shard_id].write_locked()

    @property
    def durable(self) -> bool:
        """Whether a WAL is attached (mutations survive a crash)."""
        return self._root is not None

    def _ensure_writable(self) -> None:
        if self._wal_broken:
            raise RuntimeError(
                "durable store is write-poisoned: a checkpoint failed part-way, "
                "so in-memory state and the on-disk commit point may disagree; "
                "reopen the store from its root to recover"
            )

    @property
    def generation(self) -> int:
        """Monotonic structural-change counter (sum of the shard counters).

        Bumped whenever any shard rolls a level, compacts, or adopts a
        refreshed stack — the cheap signal a serving worker compares before
        deciding whether cached per-shard state is stale.  Process-local
        (not persisted); cross-process staleness is carried by the serve
        runtime's published epoch instead.
        """
        return sum(shard.generation for shard in self.shards)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def shard_of(self, key: object) -> int:
        """The shard owning ``key`` (independent of the level hashes)."""
        return int(hash64(key, self._shard_salt) % self.config.num_shards)

    def shard_ids_of_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch `shard_of` (bit-identical per element)."""
        hashed = hash64_many(keys, self._shard_salt)
        return (hashed % np.uint64(self.config.num_shards)).astype(np.int64)

    def _scatter(
        self, keys: Sequence[object] | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(shard ids, key fingerprints, home buckets, partner buckets).

        Hashed exactly once per batch: every level of every shard shares
        this geometry, so the same four arrays feed every level's fused
        probe kernel with no per-level re-hash (DESIGN.md §8/§9).
        """
        shard_ids = self.shard_ids_of_many(keys)
        fps = self.geometry.fingerprints_of_many(keys)
        homes = self.geometry.home_indices_of_many(keys)
        alts = self.geometry.alt_indices_many(homes, fps)
        return shard_ids, fps, homes, alts

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def insert(self, key: object, attrs: Mapping[str, Any] | Sequence[Any]) -> bool:
        """Insert one (key, attribute row)."""
        return bool(self.insert_many([key], [[v] for v in self.schema.row_values(attrs)])[0])

    def insert_many(
        self,
        keys: Sequence[object] | np.ndarray,
        attr_columns: Sequence[Sequence[Any] | np.ndarray],
    ) -> np.ndarray:
        """Insert a batch of rows: one hashing pass, one scatter, per-shard fills.

        Capacity is unbounded — shards roll new levels as they saturate —
        so unlike a fixed CCF this never needs pre-sizing.  Returns the
        per-row placement results in input order (False only on the rare
        MaxKicks overflow, where the row is stash-preserved).
        """
        self._ensure_writable()
        columns = list(attr_columns)
        n = len(keys)
        validate_attr_columns(columns, self.schema.num_attributes, n)
        self.ops.record("insert", n)
        out = np.ones(n, dtype=bool)
        if n == 0:
            return out
        shard_ids, fps, homes, alts = self._scatter(keys)
        avecs = self.fingerprinter.vectors_many(columns)
        for shard in self.shards:
            index = np.nonzero(shard_ids == shard.shard_id)[0]
            if index.size == 0:
                continue
            guard = self._write_guard(shard.shard_id)
            if guard is None:
                out[index] = shard.insert_hashed_rows(
                    fps[index], homes[index], [avecs[i] for i in index.tolist()], alts[index]
                )
            else:
                with guard:
                    out[index] = shard.insert_hashed_rows(
                        fps[index], homes[index], [avecs[i] for i in index.tolist()], alts[index]
                    )
        return out

    def delete(self, key: object, attrs: Mapping[str, Any] | Sequence[Any]) -> bool:
        """Delete one stored (key, attribute row); True if a row was removed."""
        return bool(self.delete_many([key], [[v] for v in self.schema.row_values(attrs)])[0])

    def delete_many(
        self,
        keys: Sequence[object] | np.ndarray,
        attr_columns: Sequence[Sequence[Any] | np.ndarray],
    ) -> np.ndarray:
        """Batch delete; each row is removed from its newest owning level.

        The usual cuckoo-deletion caveat applies per row: only delete rows
        known to have been inserted (a colliding row's entry may be removed
        otherwise).
        """
        self._ensure_writable()
        columns = list(attr_columns)
        n = len(keys)
        validate_attr_columns(columns, self.schema.num_attributes, n)
        self.ops.record("delete", n)
        out = np.zeros(n, dtype=bool)
        if n == 0:
            return out
        shard_ids, fps, homes, alts = self._scatter(keys)
        avecs = self.fingerprinter.vectors_many(columns)
        for shard in self.shards:
            index = np.nonzero(shard_ids == shard.shard_id)[0]
            if index.size == 0:
                continue
            guard = self._write_guard(shard.shard_id)
            if guard is None:
                out[index] = shard.delete_hashed_rows(
                    fps[index], homes[index], [avecs[i] for i in index.tolist()], alts[index]
                )
            else:
                with guard:
                    out[index] = shard.delete_hashed_rows(
                        fps[index], homes[index], [avecs[i] for i in index.tolist()], alts[index]
                    )
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def compile(self, predicate: Predicate | None) -> CompiledQuery | None:
        """Compile a predicate once for every level of every shard."""
        return compile_predicate(self.schema, self.fingerprinter, predicate)

    def _resolve_compiled(
        self, predicate: Predicate | CompiledQuery | None
    ) -> CompiledQuery | None:
        if predicate is None or isinstance(predicate, CompiledQuery):
            return predicate
        return self.compile(predicate)

    def query(self, key: object, predicate: Predicate | CompiledQuery | None = None) -> bool:
        """Membership test for ``key`` under an optional predicate."""
        return bool(self.query_many([key], predicate)[0])

    def query_many(
        self,
        keys: Sequence[object] | np.ndarray,
        predicate: Predicate | CompiledQuery | None = None,
    ) -> np.ndarray:
        """Batch membership under one (compiled-once) predicate.

        One hashing pass and one scatter; each shard ORs its level answers
        newest-first.  No false negatives for live rows, the same contract
        as a single CCF.
        """
        compiled = self._resolve_compiled(predicate)
        n = len(keys)
        self.ops.record("query", n)
        out = np.zeros(n, dtype=bool)
        if n == 0:
            return out
        # One probe span per *traced* request (an active TraceContext): the
        # serving path gets per-request store attribution, while bulk
        # untraced scans keep the zero-span hot path.  Deliberately no
        # per-shard child spans — the scatter loop is the dispatch critical
        # path, and n_shards extra span records per batch is exactly the
        # cost the tracing-overhead gate bounds; a hot shard still shows in
        # `repro_probe_*` counters.
        traced = obs.state.enabled and obs.current() is not None
        if traced:
            with obs.span("store.probe", keys=int(n), shards=self.config.num_shards):
                self._query_scattered(keys, compiled, out)
        else:
            self._query_scattered(keys, compiled, out)
        return out

    def _query_scattered(
        self,
        keys: Sequence[object] | np.ndarray,
        compiled: CompiledQuery | None,
        out: np.ndarray,
    ) -> None:
        """Hash once, scatter to shards, OR each shard's level answers."""
        shard_ids, fps, homes, alts = self._scatter(keys)
        for shard in self.shards:
            index = np.nonzero(shard_ids == shard.shard_id)[0]
            if index.size == 0:
                continue
            guard = self._read_guard(shard.shard_id)
            self._probe_shard(shard, guard, out, index, fps, homes, alts, compiled)

    @staticmethod
    def _probe_shard(shard, guard, out, index, fps, homes, alts, compiled) -> None:
        if guard is None:
            out[index] = shard.query_hashed_many(
                fps[index], homes[index], compiled, alts[index]
            )
        else:
            with guard:
                out[index] = shard.query_hashed_many(
                    fps[index], homes[index], compiled, alts[index]
                )

    def contains_key(self, key: object) -> bool:
        """Key-only membership test."""
        return self.query(key, None)

    def contains_key_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch key-only membership test."""
        return self.query_many(keys, None)

    def __contains__(self, key: object) -> bool:
        return self.contains_key(key)

    # ------------------------------------------------------------------
    # Maintenance and introspection
    # ------------------------------------------------------------------

    def compact(self) -> None:
        """Compact every shard's level stack into one right-sized filter.

        With shard locks installed, each shard compacts under its write
        lock: readers on other shards keep going, readers on this shard
        wait out one merge rather than seeing a half-replaced stack.
        On a durable store each shard logs a compaction frame first, so
        recovery re-merges at the same point in the operation order.
        """
        self._ensure_writable()
        for shard in self.shards:
            guard = self._write_guard(shard.shard_id)
            if guard is None:
                shard.log_compact()
                shard.compact()
            else:
                with guard:
                    shard.log_compact()
                    shard.compact()

    def warm(self) -> int:
        """Prefault every mapped level's columns; returns bytes warmed.

        Materialises pending segment refs (O(metadata) each) and touches one
        byte per page of every mapped column, so the segment pages sit in
        the shared OS page cache before a worker pool forks/spawns against
        the same snapshot.  Promoted (heap) levels contribute nothing.
        """
        with obs.span("store.warm"):
            return sum(
                warm_level(level) for shard in self.shards for level in shard.levels
            )

    @property
    def num_levels(self) -> int:
        """Total level count across shards (pending segments counted unmapped)."""
        return sum(shard.num_levels for shard in self.shards)

    @property
    def num_entries(self) -> int:
        """Occupied table slots across every level of every shard (stash excluded)."""
        return sum(shard.num_entries for shard in self.shards)

    def load_factor(self) -> float:
        """Occupied fraction over the store's total slot capacity (in [0, 1])."""
        capacity = sum(shard.capacity for shard in self.shards)
        return self.num_entries / capacity if capacity else 0.0

    def size_in_bits(self) -> int:
        """Summed sketch size across all levels (manifest overhead excluded)."""
        return sum(shard.size_in_bits() for shard in self.shards)

    def size_in_bytes(self) -> float:
        """Summed sketch size in bytes."""
        return self.size_in_bits() / 8

    def __len__(self) -> int:
        """Number of live rows (inserted minus deleted)."""
        return sum(shard.rows_inserted - shard.rows_deleted for shard in self.shards)

    def stats(self) -> dict:
        """Per-shard occupancy, level shapes and compaction work, plus totals."""
        shards = [shard.stats() for shard in self.shards]
        return {
            "num_shards": self.config.num_shards,
            "level_buckets": self.config.level_buckets,
            "target_load": self.config.target_load,
            "fingerprint_dtype": shards[0]["fingerprint_dtype"] if shards else None,
            "bytes_per_slot": shards[0]["bytes_per_slot"] if shards else None,
            # What actually executes the probe/kick/delete kernels in this
            # process — benchmark artifacts and serve stats record it so a
            # number is never attributed to the wrong backend.
            "kernel_backend": active_backend().name,
            "levels": self.num_levels,
            "entries": self.num_entries,
            "load_factor": round(self.load_factor(), 4),
            "rows_inserted": sum(s["rows_inserted"] for s in shards),
            "rows_deleted": sum(s["rows_deleted"] for s in shards),
            "compactions": sum(s["compactions"] for s in shards),
            "entries_compacted": sum(s["entries_compacted"] for s in shards),
            "size_in_bytes": self.size_in_bytes(),
            "mapped_bytes": sum(s["mapped_bytes"] for s in shards),
            "resident_bytes": sum(s["resident_bytes"] for s in shards),
            "generation": self.generation,
            # Durability posture: None = snapshot-only; attached, the mode
            # plus live WAL shape (the serve runtime surfaces this as the
            # writer's durability line).
            "durability": None
            if self._durability is None
            else {
                **self._durability.to_dict(),
                "gen": self._wal_gen,
                "wal_bytes": sum(
                    s["wal"]["bytes"] for s in shards if s["wal"] is not None
                ),
                "wal_frames": sum(
                    s["wal"]["frames"] for s in shards if s["wal"] is not None
                ),
            },
            "ops": self.ops.to_dict(),
            "shards": shards,
            # The unified observability view: the process registry overlaid
            # with collection-time store gauges (repro.store.metrics).
            "metrics": store_metrics(self),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FilterStore(shards={self.config.num_shards}, levels={self.num_levels}, "
            f"rows={len(self)}, load={self.load_factor():.3f})"
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def snapshot(self, path: str | Path, level_format: str = "segment") -> Path:
        """Write the store to a directory: manifest + one payload per level.

        ``level_format="segment"`` (the default) writes each level as a SEG1
        segment file (`repro.ccf.mmapio`) — page-aligned raw columns that
        :meth:`open` maps back zero-copy.  ``level_format="ccf"`` writes the
        bit-packed columnar wire format (`ccf/serialize.py`) instead, so any
        tool that reads a serialised CCF can read a level.

        The write is staged: everything lands in a hidden sibling temp
        directory (manifest last, the commit point) and is renamed into
        place with ``os.replace``, so a crash while writing payloads leaves
        the target untouched — never a torn store.  Snapshots to a fresh
        path are fully atomic.  Overwriting an existing snapshot first
        displaces the old directory to a hidden sibling, so the previous
        data survives on disk until the new directory is in place; a crash
        in the narrow window between the two renames leaves the target
        momentarily absent but both snapshots intact under their hidden
        names (and the next snapshot to the same path cleans them up).
        """
        if level_format not in LEVEL_FORMATS:
            raise ValueError(
                f"level_format must be one of {LEVEL_FORMATS}, got {level_format!r}"
            )
        if self._root is not None and Path(path).resolve() == self._root:
            # Snapshotting a durable store onto its own root *is* a
            # checkpoint: seal, commit manifest-last, roll the WALs.  The
            # staged-directory protocol below would displace (and then
            # delete) the live WAL directory out from under the store.
            return self.checkpoint()
        start = perf_counter()
        with obs.span("store.snapshot", path=str(path), level_format=level_format):
            root = self._snapshot(path, level_format)
        _SNAPSHOTS.inc()
        _SNAPSHOT_US.observe((perf_counter() - start) * 1e6)
        return root

    def _snapshot(self, path: str | Path, level_format: str) -> Path:
        root = Path(path)
        root.parent.mkdir(parents=True, exist_ok=True)
        # Clear staging/displaced debris from earlier runs, whatever their
        # pid: a crashed snapshot must not leak directories forever.
        for pattern in (f".{root.name}.tmp-*", f".{root.name}.old-*"):
            for stale in root.parent.glob(pattern):
                shutil.rmtree(stale, ignore_errors=True)
        staging = root.parent / f".{root.name}.tmp-{os.getpid()}"
        staging.mkdir()
        suffix = SEGMENT_SUFFIX if level_format == "segment" else ".ccf"
        try:
            shard_records = []
            for shard in self.shards:
                level_files = []
                for level_index, level in enumerate(shard.levels):
                    name = f"shard-{shard.shard_id:04d}-level-{level_index:04d}{suffix}"
                    if level_format == "segment":
                        write_segment(level, staging / name)
                    else:
                        (staging / name).write_bytes(dumps(level))
                    # The seq names this level's content version: readers
                    # refreshing onto this snapshot keep any level they
                    # already have mapped under the same seq (DESIGN.md §11).
                    level_files.append(
                        {
                            "file": name,
                            "format": level_format,
                            "seq": shard.level_seqs[level_index],
                        }
                    )
                shard_records.append(
                    {
                        "levels": level_files,
                        "rows_inserted": shard.rows_inserted,
                        "rows_deleted": shard.rows_deleted,
                        "compactions": shard.num_compactions,
                        "entries_compacted": shard.entries_compacted,
                    }
                )
            manifest = self._manifest_dict(shard_records)
            # The manifest is the commit point within the staging directory.
            (staging / MANIFEST_NAME).write_text(
                json.dumps(manifest, indent=2, sort_keys=True)
            )
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        faults.hit("snapshot.staged")
        if root.exists():
            displaced = root.parent / f".{root.name}.old-{os.getpid()}"
            os.replace(root, displaced)
            faults.hit("snapshot.displaced")
            os.replace(staging, root)
            shutil.rmtree(displaced)
        else:
            os.replace(staging, root)
        return root

    def _manifest_dict(self, shard_records: list[dict]) -> dict:
        """The manifest common to snapshots and checkpoints (no wal section)."""
        return {
            "format": MANIFEST_FORMAT,
            "kind": self.kind,
            "schema": list(self.schema.names),
            "params": _params_to_dict(self.params),
            "config": self.config.to_dict(),
            "ops": self.ops.to_dict(),
            "shards": shard_records,
        }

    # ------------------------------------------------------------------
    # Durability (write-ahead logging; DESIGN.md §14)
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the per-shard WAL file handles (no-op when not durable).

        Unsynced batch-mode bytes are synced first, so a clean close never
        costs acked frames even on later power loss.  The store must not
        be mutated afterwards; reopen from the root to resume.
        """
        for shard in self.shards:
            if shard.wal is not None:
                shard.wal.sync()
                shard.wal.close()
                shard.wal = None
        self._wal_broken = self._root is not None

    def attach_wal(
        self, path: str | Path, durability: DurabilityConfig | None = None
    ) -> Path:
        """Make this store durable, rooted at ``path``.

        Runs an initial :meth:`checkpoint`: the current state is sealed to
        checksummed segments under ``path``, a fresh per-shard WAL
        generation starts under ``path/wal/``, and from then on every
        mutation batch appends one checksummed frame *before* it applies.
        ``path`` may be a fresh directory or an existing snapshot of this
        store (upgrade-in-place); there must be exactly one durable writer
        per root at a time.  ``snapshot(path)`` onto the root becomes a
        checkpoint; reopen with plain :meth:`open`, which replays the log.
        """
        if self._root is not None:
            raise RuntimeError(f"a WAL is already attached at {self._root}")
        self._durability = durability or DurabilityConfig()
        self._root = Path(path).resolve()
        self._wal_gen = 0
        try:
            self.checkpoint()
        except BaseException:
            self._root = None
            self._durability = None
            raise
        return self._root

    def checkpoint(self) -> Path:
        """Seal state to segments and roll the WALs (the durable commit).

        Equivalent to a snapshot for a durable store: after it returns,
        recovery replays an empty log over freshly sealed checksummed
        segments.  The manifest ``os.replace`` is the single commit point —
        a crash anywhere before it leaves the previous generation (old
        manifest + old WALs) fully intact, a crash after it leaves the new
        one; either way no acked frame is lost.  Runs with every shard's
        write lock held (when installed): mutations wait, readers on
        already-mapped levels keep going.
        """
        if self._root is None:
            raise RuntimeError("no WAL attached: call attach_wal(path) first")
        self._ensure_writable()
        start = perf_counter()
        gen = self._wal_gen + 1
        with obs.span("store.checkpoint", path=str(self._root), gen=gen):
            with ExitStack() as stack:
                for shard in self.shards:
                    guard = self._write_guard(shard.shard_id)
                    if guard is not None:
                        stack.enter_context(guard)
                root = self._checkpoint(gen)
        _CHECKPOINTS.inc()
        _CHECKPOINT_US.observe((perf_counter() - start) * 1e6)
        return root

    def _checkpoint(self, gen: int) -> Path:
        root = self._root
        root.mkdir(parents=True, exist_ok=True)
        wdir = wal_dir(root)
        wdir.mkdir(exist_ok=True)
        _reap_stale_wal_temps(wdir)
        faults.hit("checkpoint.begin")
        new_wals: list[ShardWal] = []
        try:
            # 1. Fresh WAL generation, one file per shard, seq chains
            #    continuing where the live logs stand.  Created (atomically,
            #    each) before the seal so the commit can switch instantly.
            for shard in self.shards:
                base_seq = 0 if shard.wal is None else shard.wal.last_seq
                new_wals.append(
                    ShardWal.create(
                        wdir / wal_name(shard.shard_id, gen),
                        shard.shard_id,
                        gen,
                        base_seq,
                        self._durability,
                    )
                )
            faults.hit("checkpoint.walled")
            # 2. Seal every level to a generation-prefixed checksummed
            #    segment.  Direct writes into the live root: until the
            #    manifest commits these names are unreferenced, so a crash
            #    leaves debris (reaped on the next open/checkpoint), never
            #    a torn store.
            shard_records = []
            for shard in self.shards:
                level_files = []
                for level_index, level in enumerate(shard.levels):
                    name = (
                        f"g{gen:06d}-shard-{shard.shard_id:04d}"
                        f"-level-{level_index:04d}{SEGMENT_SUFFIX}"
                    )
                    write_segment(level, root / name, checksums=True, fsync=True)
                    faults.hit("checkpoint.segment")
                    level_files.append(
                        {
                            "file": name,
                            "format": "segment",
                            "seq": shard.level_seqs[level_index],
                        }
                    )
                shard_records.append(
                    {
                        "levels": level_files,
                        "rows_inserted": shard.rows_inserted,
                        "rows_deleted": shard.rows_deleted,
                        "compactions": shard.num_compactions,
                        "entries_compacted": shard.entries_compacted,
                    }
                )
            manifest = self._manifest_dict(shard_records)
            manifest["wal"] = {"gen": gen, **self._durability.to_dict()}
            # 3. Commit: durable staged manifest, one atomic replace.
            staged = root / f".{MANIFEST_NAME}.tmp-{os.getpid()}"
            with open(staged, "w") as f:
                f.write(json.dumps(manifest, indent=2, sort_keys=True))
                f.flush()
                os.fsync(f.fileno())
            faults.hit("checkpoint.staged")
            os.replace(staged, root / MANIFEST_NAME)
            _fsync_dir_path(root)
            faults.hit("checkpoint.committed")
        except BaseException:
            # The store object may now disagree with the on-disk commit
            # point (e.g. manifest committed, WAL handles not switched).
            # Poison writes; the on-disk state itself is consistent and a
            # reopen recovers it.
            self._wal_broken = True
            for new_wal in new_wals:
                new_wal.close()
            for shard in self.shards:
                if shard.wal is not None:
                    shard.wal.close()
                    shard.wal = None
            raise
        # 4. Committed: switch the live logs, then retire the previous
        #    generation (close + unlink old WALs, unlink unreferenced
        #    segment payloads — including debris from crashed checkpoints).
        old_wals = [shard.wal for shard in self.shards]
        for shard, new_wal in zip(self.shards, new_wals):
            shard.wal = new_wal
        self._wal_gen = gen
        for old_wal in old_wals:
            if old_wal is not None:
                old_wal.close()
                old_wal.path.unlink(missing_ok=True)
        referenced = {
            entry["file"] for record in shard_records for entry in record["levels"]
        }
        for stale in root.iterdir():
            if (
                stale.is_file()
                and stale.suffix in (SEGMENT_SUFFIX, ".ccf")
                and stale.name not in referenced
            ):
                stale.unlink()
        for stale in wdir.glob(f"*{WAL_SUFFIX}"):
            if stale.name not in {wal_name(s.shard_id, gen) for s in self.shards}:
                stale.unlink()
        return root

    @classmethod
    def open(cls, path: str | Path) -> "FilterStore":
        """Restore a store from a :meth:`snapshot` directory.

        Segment-backed shards open in O(manifest): sealed levels are
        attached as lazy :class:`SegmentLevelRef` handles and memory-map on
        the first probe that reaches their shard, so cold-open cost and
        resident memory are independent of store size.  CCF wire payloads
        (``level_format="ccf"`` snapshots and format-1 manifests)
        deserialise eagerly, as before.

        A durable root (manifest carries a ``wal`` section) additionally
        **recovers**: each shard's log is scanned, a torn/corrupt tail is
        truncated at the last valid frame (never raising — those bytes were
        never acked), valid frames replay over the sealed baseline, and the
        logs re-attach for appending, so the returned store is the durable
        writer resuming exactly where the last acked batch left it.
        """
        root = Path(path)
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        if manifest.get("format") not in (1, MANIFEST_FORMAT):
            raise ValueError(
                f"unsupported FilterStore manifest format {manifest.get('format')!r}"
            )
        schema = AttributeSchema(manifest["schema"])
        params = CCFParams(**manifest["params"])
        config = StoreConfig.from_dict(manifest["config"])
        store = cls(schema, params, config, kind=manifest["kind"])
        store.ops = OpCounters(manifest.get("ops"))
        for shard, record in zip(store.shards, manifest["shards"]):
            entries = _normalise_level_entries(record)
            if entries and all(entry["format"] == "segment" for entry in entries):
                shard.attach_pending_levels(
                    [
                        SegmentLevelRef(root / entry["file"], config.level_buckets)
                        for entry in entries
                    ],
                    seqs=[entry.get("seq") for entry in entries],
                )
            elif entries:
                shard.levels = [
                    _load_level(root, entry, config) for entry in entries
                ]
                # Keep the manifest's content tokens so a later refresh can
                # recognise these levels as already loaded.
                shard.level_seqs = [entry.get("seq") for entry in entries]
            shard.rows_inserted = record["rows_inserted"]
            shard.rows_deleted = record["rows_deleted"]
            shard.num_compactions = record["compactions"]
            shard.entries_compacted = record["entries_compacted"]
        if manifest.get("wal") is not None:
            store._recover_wal(root, manifest)
        return store

    def _recover_wal(self, root: Path, manifest: Mapping[str, Any]) -> None:
        """Replay and re-attach the per-shard logs of a durable root."""
        walsec = manifest["wal"]
        self._durability = DurabilityConfig.from_dict(walsec)
        self._root = root.resolve()
        self._wal_gen = gen = int(walsec["gen"])
        wdir = wal_dir(root)
        _reap_stale_wal_temps(wdir)
        # Reap crashed-checkpoint debris: logs of non-committed generations
        # and sealed payloads the committed manifest doesn't reference.
        expected = {wal_name(shard.shard_id, gen) for shard in self.shards}
        for stale in wdir.glob(f"*{WAL_SUFFIX}"):
            if stale.name not in expected:
                stale.unlink()
        referenced = {
            entry["file"]
            for record in manifest["shards"]
            for entry in _normalise_level_entries(record)
        }
        for stale in root.iterdir():
            if (
                stale.is_file()
                and stale.suffix in (SEGMENT_SUFFIX, ".ccf")
                and stale.name not in referenced
            ):
                stale.unlink()
        for stale in root.glob(f".{MANIFEST_NAME}.tmp-*"):
            if not _pid_alive(_path_pid(stale)):
                stale.unlink()
        for shard in self.shards:
            path = wdir / wal_name(shard.shard_id, gen)
            if not path.exists():
                raise SerializeError(
                    f"durable store is missing its log: manifest generation "
                    f"{gen} expects {path.name}",
                    source=str(path),
                )
            scan = scan_wal(path)
            if scan.shard_id != shard.shard_id or scan.gen != gen:
                raise SerializeError(
                    f"WAL header says shard {scan.shard_id} gen {scan.gen}, "
                    f"manifest expects shard {shard.shard_id} gen {gen}",
                    source=str(path),
                )
            if scan.frames:
                with obs.span(
                    "store.wal_replay", shard=shard.shard_id, frames=len(scan.frames)
                ):
                    _replay_frames(shard, scan.frames)
            record_replay(
                1 if scan.torn else 0,
                sum(frame.nrows for frame in scan.frames),
            )
            # Attach truncates the torn tail (the one destructive step) and
            # takes append ownership at the last acked frame.
            shard.wal = ShardWal.attach(scan, self._durability)

    def refresh(self, path: str | Path) -> dict[str, int]:
        """Adopt a newer snapshot of this store without a full reopen.

        The serve runtime's epoch signal (DESIGN.md §11): a reader holding a
        mapped store calls ``refresh(path)`` when the writer publishes a new
        snapshot.  Per shard, levels whose manifest ``seq`` matches one
        already attached are kept — their memory-mapped columns stay exactly
        as they are (unlinked old snapshot directories stay readable through
        the live mapping, so the writer may garbage-collect them) — and only
        rolled, compacted, or otherwise changed levels are (re-)attached.
        Shard counters adopt the published totals; this store's own served-op
        counters are untouched.

        The snapshot must come from the same store lineage: schema, params
        and config all have to match, or every shared-geometry kernel would
        silently mis-probe.  Returns ``{"levels_reused": ..,
        "levels_attached": ..}``.
        """
        if self._root is not None:
            raise RuntimeError(
                "refresh() is for read-only serving replicas; this store owns "
                "a WAL — its durable state advances through checkpoint(), not "
                "by adopting snapshots"
            )
        start = perf_counter()
        with obs.span("store.refresh", path=str(path)):
            result = self._refresh(path)
        _REFRESH_US.observe((perf_counter() - start) * 1e6)
        _REFRESH_LEVELS.labels(outcome="reused").inc(result["levels_reused"])
        _REFRESH_LEVELS.labels(outcome="attached").inc(result["levels_attached"])
        return result

    def _refresh(self, path: str | Path) -> dict[str, int]:
        root = Path(path)
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        if manifest.get("format") not in (1, MANIFEST_FORMAT):
            raise ValueError(
                f"unsupported FilterStore manifest format {manifest.get('format')!r}"
            )
        if manifest["kind"] != self.kind:
            raise ValueError(
                f"cannot refresh a {self.kind!r} store from a "
                f"{manifest['kind']!r} snapshot"
            )
        if list(manifest["schema"]) != list(self.schema.names):
            raise ValueError("cannot refresh from a snapshot with a different schema")
        if CCFParams(**manifest["params"]) != self.params:
            raise ValueError("cannot refresh from a snapshot with different params")
        if StoreConfig.from_dict(manifest["config"]) != self.config:
            raise ValueError("cannot refresh from a snapshot with a different config")
        reused = attached = 0
        for shard, record in zip(self.shards, manifest["shards"]):
            entries = _normalise_level_entries(record)
            seqs = [entry.get("seq") for entry in entries]
            refs: list[SegmentLevelRef | PlainCCF] = [
                SegmentLevelRef(root / entry["file"], self.config.level_buckets)
                if entry["format"] == "segment"
                else _load_level(root, entry, self.config)
                for entry in entries
            ]
            guard = self._write_guard(shard.shard_id)
            if guard is None:
                shard_reused, shard_attached = shard.refresh_from(seqs, refs)
            else:
                with guard:
                    shard_reused, shard_attached = shard.refresh_from(seqs, refs)
            reused += shard_reused
            attached += shard_attached
            shard.rows_inserted = record["rows_inserted"]
            shard.rows_deleted = record["rows_deleted"]
            shard.num_compactions = record["compactions"]
            shard.entries_compacted = record["entries_compacted"]
        return {"levels_reused": reused, "levels_attached": attached}


def _normalise_level_entries(record: Mapping[str, Any]) -> list[dict]:
    """A shard record's level list as dicts (format-1 manifests recorded
    bare filenames, all ccf payloads), with payload formats validated."""
    entries = [
        {"file": entry, "format": "ccf"} if isinstance(entry, str) else entry
        for entry in record["levels"]
    ]
    for entry in entries:
        if entry["format"] not in LEVEL_FORMATS:
            raise ValueError(
                f"unsupported level payload format {entry['format']!r} "
                f"for {entry['file']}"
            )
    return entries


def _load_level(root: Path, entry: Mapping[str, str], config: StoreConfig) -> PlainCCF:
    """Eagerly load one level payload (the non-lazy open path)."""
    name = entry["file"]
    if entry["format"] == "segment":
        return SegmentLevelRef(root / name, config.level_buckets).open()
    level = loads((root / name).read_bytes(), source=str(root / name))
    if not isinstance(level, PlainCCF):
        raise SerializeError(
            f"level payload holds a {getattr(level, 'kind', type(level).__name__)!r}; "
            "store levels must be plain CCFs",
            source=str(root / name),
        )
    if level.buckets.num_buckets != config.level_buckets:
        raise SerializeError(
            f"level payload has {level.buckets.num_buckets} buckets, "
            f"manifest says {config.level_buckets}",
            source=str(root / name),
        )
    return level


def _params_to_dict(params: CCFParams) -> dict:
    """CCFParams as a JSON-safe dict (field names match the constructor)."""
    from dataclasses import asdict

    return asdict(params)


def _fsync_dir_path(path: Path) -> None:
    """Force a directory's entry table (renames, unlinks) to stable storage."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _path_pid(path: Path) -> int:
    """The pid suffix of a ``.…tmp-<pid>`` staging name (0 if malformed)."""
    _, _, tail = path.name.rpartition("-")
    return int(tail) if tail.isdigit() else 0


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal-0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by another user
        return True
    return True


def _reap_stale_wal_temps(wdir: Path) -> int:
    """Remove WAL-roll staging files left by dead processes.

    A crash between `ShardWal.create`'s staged write and its rename leaves
    ``.shard-….wal.tmp-<pid>`` debris; files whose pid is still alive are
    left alone (a concurrent roll mid-flight).  Returns the reap count.
    """
    reaped = 0
    if not wdir.is_dir():
        return reaped
    for stale in wdir.glob(".*.tmp-*"):
        if not _pid_alive(_path_pid(stale)):
            stale.unlink(missing_ok=True)
            reaped += 1
    return reaped


def _replay_frames(shard: FilterShard, frames: Sequence) -> None:
    """Re-apply a scanned frame chain to a shard (recovery redo).

    The shard's ``wal`` must be detached (frames must not re-log), and its
    counters must already hold the checkpoint-time values — replay advances
    them exactly as the original applications did.  Every shard mutation is
    deterministic given the frame arrays (partner buckets re-derive from
    the shared geometry; automatic ``compact_at`` merges re-trigger at the
    same fill points), so the replayed stack is bit-identical to the state
    the acked batches had built.
    """
    assert shard.wal is None, "replay would re-log frames"
    for frame in frames:
        fps = np.asarray(frame.fps, dtype=np.int64)
        homes = np.asarray(frame.homes, dtype=np.int64)
        if frame.op == OP_INSERT:
            shard.insert_hashed_rows(
                fps, homes, [tuple(row) for row in frame.avecs.tolist()]
            )
        elif frame.op == OP_DELETE:
            shard.delete_hashed_rows(
                fps, homes, [tuple(row) for row in frame.avecs.tolist()]
            )
        elif frame.op == OP_COMPACT:
            shard.compact()
        else:  # pragma: no cover - scan_wal rejects unknown ops
            raise SerializeError(f"unknown WAL op {frame.op}")
