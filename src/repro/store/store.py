"""FilterStore: a sharded, log-structured, mutable CCF serving layer.

The paper's deployment story (§2-§3) precomputes one fixed-capacity CCF per
table.  A production service under mutable traffic outgrows any pre-sized
filter; the FilterStore removes the cap while keeping every per-batch code
path a single vectorised fan-out:

1. **Route** — one salted hash partitions the batch across ``num_shards``
   shards (numpy scatter; results gather back to input order).
2. **Hash once** — key fingerprints, home buckets and attribute-fingerprint
   vectors are computed once per batch; every level of every shard shares
   one geometry, so the same arrays feed every level kernel.
3. **Level** — each shard appends to an LSM-style stack of plain-CCF levels
   (`shard.py`), growing a level when the active one saturates and merging
   the stack into one right-sized filter on compaction (`compaction.py`).

Persistence reuses the columnar wire formats: ``snapshot(path)`` writes a
JSON manifest plus one `ccf/serialize.py` payload per level; ``open(path)``
restores an equivalent store.  The deployment contract: answers after
``open`` equal answers before ``snapshot``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro.ccf.attributes import AttributeSchema
from repro.ccf.base import (
    CompiledQuery,
    ConditionalCuckooFilterBase,
    compile_predicate,
    validate_attr_columns,
)
from repro.ccf.chain import PairGeometry
from repro.ccf.params import CCFParams
from repro.ccf.plain import PlainCCF
from repro.ccf.predicates import Predicate
from repro.ccf.serialize import dumps, loads
from repro.hashing.mixers import derive_seed, hash64, hash64_many
from repro.store.config import StoreConfig
from repro.store.shard import FilterShard

#: Manifest schema version; bump on layout changes.
MANIFEST_FORMAT = 1
MANIFEST_NAME = "manifest.json"


class FilterStore:
    """Unbounded, mutable, persistent conditional-membership service."""

    def __init__(
        self,
        schema: AttributeSchema,
        params: CCFParams,
        config: StoreConfig | None = None,
        kind: str = "plain",
    ) -> None:
        if kind != "plain":
            raise ValueError(
                "FilterStore levels must be plain CCFs: plain placement is the "
                "only policy whose entries can be deleted and relocated during "
                f"compaction (got kind={kind!r}); see DESIGN.md §8"
            )
        self.kind = kind
        self.schema = schema
        self.params = params
        self.config = config or StoreConfig()
        self.fingerprinter = ConditionalCuckooFilterBase.make_fingerprinter(schema, params)
        #: The geometry every level of every shard shares.
        self.geometry = PairGeometry(
            self.config.level_buckets, params.key_bits, seed=params.seed
        )
        self._shard_salt = derive_seed(self.config.seed, "store-shard")
        self.shards = [
            FilterShard(i, schema, params, self.config)
            for i in range(self.config.num_shards)
        ]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def shard_of(self, key: object) -> int:
        """The shard owning ``key`` (independent of the level hashes)."""
        return int(hash64(key, self._shard_salt) % self.config.num_shards)

    def shard_ids_of_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch `shard_of` (bit-identical per element)."""
        hashed = hash64_many(keys, self._shard_salt)
        return (hashed % np.uint64(self.config.num_shards)).astype(np.int64)

    def _scatter(
        self, keys: Sequence[object] | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(shard ids, key fingerprints, home buckets, partner buckets).

        Hashed exactly once per batch: every level of every shard shares
        this geometry, so the same four arrays feed every level's fused
        probe kernel with no per-level re-hash (DESIGN.md §8/§9).
        """
        shard_ids = self.shard_ids_of_many(keys)
        fps = self.geometry.fingerprints_of_many(keys)
        homes = self.geometry.home_indices_of_many(keys)
        alts = self.geometry.alt_indices_many(homes, fps)
        return shard_ids, fps, homes, alts

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def insert(self, key: object, attrs: Mapping[str, Any] | Sequence[Any]) -> bool:
        """Insert one (key, attribute row)."""
        return bool(self.insert_many([key], [[v] for v in self.schema.row_values(attrs)])[0])

    def insert_many(
        self,
        keys: Sequence[object] | np.ndarray,
        attr_columns: Sequence[Sequence[Any] | np.ndarray],
    ) -> np.ndarray:
        """Insert a batch of rows: one hashing pass, one scatter, per-shard fills.

        Capacity is unbounded — shards roll new levels as they saturate —
        so unlike a fixed CCF this never needs pre-sizing.  Returns the
        per-row placement results in input order (False only on the rare
        MaxKicks overflow, where the row is stash-preserved).
        """
        columns = list(attr_columns)
        n = len(keys)
        validate_attr_columns(columns, self.schema.num_attributes, n)
        out = np.ones(n, dtype=bool)
        if n == 0:
            return out
        shard_ids, fps, homes, alts = self._scatter(keys)
        avecs = self.fingerprinter.vectors_many(columns)
        for shard in self.shards:
            index = np.nonzero(shard_ids == shard.shard_id)[0]
            if index.size == 0:
                continue
            out[index] = shard.insert_hashed_rows(
                fps[index], homes[index], [avecs[i] for i in index.tolist()], alts[index]
            )
        return out

    def delete(self, key: object, attrs: Mapping[str, Any] | Sequence[Any]) -> bool:
        """Delete one stored (key, attribute row); True if a row was removed."""
        return bool(self.delete_many([key], [[v] for v in self.schema.row_values(attrs)])[0])

    def delete_many(
        self,
        keys: Sequence[object] | np.ndarray,
        attr_columns: Sequence[Sequence[Any] | np.ndarray],
    ) -> np.ndarray:
        """Batch delete; each row is removed from its newest owning level.

        The usual cuckoo-deletion caveat applies per row: only delete rows
        known to have been inserted (a colliding row's entry may be removed
        otherwise).
        """
        columns = list(attr_columns)
        n = len(keys)
        validate_attr_columns(columns, self.schema.num_attributes, n)
        out = np.zeros(n, dtype=bool)
        if n == 0:
            return out
        shard_ids, fps, homes, alts = self._scatter(keys)
        avecs = self.fingerprinter.vectors_many(columns)
        for shard in self.shards:
            index = np.nonzero(shard_ids == shard.shard_id)[0]
            if index.size == 0:
                continue
            out[index] = shard.delete_hashed_rows(
                fps[index], homes[index], [avecs[i] for i in index.tolist()], alts[index]
            )
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def compile(self, predicate: Predicate | None) -> CompiledQuery | None:
        """Compile a predicate once for every level of every shard."""
        return compile_predicate(self.schema, self.fingerprinter, predicate)

    def _resolve_compiled(
        self, predicate: Predicate | CompiledQuery | None
    ) -> CompiledQuery | None:
        if predicate is None or isinstance(predicate, CompiledQuery):
            return predicate
        return self.compile(predicate)

    def query(self, key: object, predicate: Predicate | CompiledQuery | None = None) -> bool:
        """Membership test for ``key`` under an optional predicate."""
        return bool(self.query_many([key], predicate)[0])

    def query_many(
        self,
        keys: Sequence[object] | np.ndarray,
        predicate: Predicate | CompiledQuery | None = None,
    ) -> np.ndarray:
        """Batch membership under one (compiled-once) predicate.

        One hashing pass and one scatter; each shard ORs its level answers
        newest-first.  No false negatives for live rows, the same contract
        as a single CCF.
        """
        compiled = self._resolve_compiled(predicate)
        n = len(keys)
        out = np.zeros(n, dtype=bool)
        if n == 0:
            return out
        shard_ids, fps, homes, alts = self._scatter(keys)
        for shard in self.shards:
            index = np.nonzero(shard_ids == shard.shard_id)[0]
            if index.size == 0:
                continue
            out[index] = shard.query_hashed_many(
                fps[index], homes[index], compiled, alts[index]
            )
        return out

    def contains_key(self, key: object) -> bool:
        """Key-only membership test."""
        return self.query(key, None)

    def contains_key_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch key-only membership test."""
        return self.query_many(keys, None)

    def __contains__(self, key: object) -> bool:
        return self.contains_key(key)

    # ------------------------------------------------------------------
    # Maintenance and introspection
    # ------------------------------------------------------------------

    def compact(self) -> None:
        """Compact every shard's level stack into one right-sized filter."""
        for shard in self.shards:
            shard.compact()

    @property
    def num_levels(self) -> int:
        """Total level count across shards."""
        return sum(len(shard.levels) for shard in self.shards)

    @property
    def num_entries(self) -> int:
        """Occupied table slots across every level of every shard (stash excluded)."""
        return sum(shard.num_entries for shard in self.shards)

    def load_factor(self) -> float:
        """Occupied fraction over the store's total slot capacity (in [0, 1])."""
        capacity = sum(shard.capacity for shard in self.shards)
        return self.num_entries / capacity if capacity else 0.0

    def size_in_bits(self) -> int:
        """Summed sketch size across all levels (manifest overhead excluded)."""
        return sum(shard.size_in_bits() for shard in self.shards)

    def size_in_bytes(self) -> float:
        """Summed sketch size in bytes."""
        return self.size_in_bits() / 8

    def __len__(self) -> int:
        """Number of live rows (inserted minus deleted)."""
        return sum(shard.rows_inserted - shard.rows_deleted for shard in self.shards)

    def stats(self) -> dict:
        """Per-shard occupancy, level shapes and compaction work, plus totals."""
        shards = [shard.stats() for shard in self.shards]
        return {
            "num_shards": self.config.num_shards,
            "level_buckets": self.config.level_buckets,
            "target_load": self.config.target_load,
            "fingerprint_dtype": shards[0]["fingerprint_dtype"] if shards else None,
            "bytes_per_slot": shards[0]["bytes_per_slot"] if shards else None,
            "levels": self.num_levels,
            "entries": self.num_entries,
            "load_factor": round(self.load_factor(), 4),
            "rows_inserted": sum(s["rows_inserted"] for s in shards),
            "rows_deleted": sum(s["rows_deleted"] for s in shards),
            "compactions": sum(s["compactions"] for s in shards),
            "entries_compacted": sum(s["entries_compacted"] for s in shards),
            "size_in_bytes": self.size_in_bytes(),
            "shards": shards,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FilterStore(shards={self.config.num_shards}, levels={self.num_levels}, "
            f"rows={len(self)}, load={self.load_factor():.3f})"
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def snapshot(self, path: str | Path) -> Path:
        """Write the store to a directory: manifest + one payload per level.

        Level payloads are the standard columnar CCF wire format
        (`ccf/serialize.py`), so any tool that reads a serialised CCF can
        read a level.  The manifest is written last as the commit point.
        """
        root = Path(path)
        root.mkdir(parents=True, exist_ok=True)
        shard_records = []
        for shard in self.shards:
            level_files = []
            for level_index, level in enumerate(shard.levels):
                name = f"shard-{shard.shard_id:04d}-level-{level_index:04d}.ccf"
                (root / name).write_bytes(dumps(level))
                level_files.append(name)
            shard_records.append(
                {
                    "levels": level_files,
                    "rows_inserted": shard.rows_inserted,
                    "rows_deleted": shard.rows_deleted,
                    "compactions": shard.num_compactions,
                    "entries_compacted": shard.entries_compacted,
                }
            )
        manifest = {
            "format": MANIFEST_FORMAT,
            "kind": self.kind,
            "schema": list(self.schema.names),
            "params": _params_to_dict(self.params),
            "config": self.config.to_dict(),
            "shards": shard_records,
        }
        (root / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2, sort_keys=True))
        return root

    @classmethod
    def open(cls, path: str | Path) -> "FilterStore":
        """Restore a store from a :meth:`snapshot` directory."""
        root = Path(path)
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        if manifest.get("format") != MANIFEST_FORMAT:
            raise ValueError(
                f"unsupported FilterStore manifest format {manifest.get('format')!r}"
            )
        schema = AttributeSchema(manifest["schema"])
        params = CCFParams(**manifest["params"])
        config = StoreConfig.from_dict(manifest["config"])
        store = cls(schema, params, config, kind=manifest["kind"])
        for shard, record in zip(store.shards, manifest["shards"]):
            levels = []
            for name in record["levels"]:
                level = loads((root / name).read_bytes())
                if not isinstance(level, PlainCCF):
                    raise ValueError(f"level payload {name} is not a plain CCF")
                if level.buckets.num_buckets != config.level_buckets:
                    raise ValueError(
                        f"level payload {name} has {level.buckets.num_buckets} buckets, "
                        f"manifest says {config.level_buckets}"
                    )
                levels.append(level)
            if levels:
                shard.levels = levels
            shard.rows_inserted = record["rows_inserted"]
            shard.rows_deleted = record["rows_deleted"]
            shard.num_compactions = record["compactions"]
            shard.entries_compacted = record["entries_compacted"]
        return store


def _params_to_dict(params: CCFParams) -> dict:
    """CCFParams as a JSON-safe dict (field names match the constructor)."""
    from dataclasses import asdict

    return asdict(params)
