"""A minimal column-store relation used by the join experiments (§10.3).

Columns are numpy arrays of equal length; scans are boolean-mask selections.
The class also implements the paper's §10.7 raw-size accounting — keys and
high-cardinality attributes cost 32 bits per row, low-cardinality attributes
8 bits — which Figure 10 normalises CCF sizes against.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

import numpy as np

#: §10.7: columns with at most this many distinct values count as 8-bit.
LOW_CARDINALITY_LIMIT = 256


class Relation:
    """A named, immutable-by-convention bundle of equal-length columns."""

    def __init__(self, name: str, columns: Mapping[str, np.ndarray]) -> None:
        if not columns:
            raise ValueError("a relation needs at least one column")
        lengths = {len(array) for array in columns.values()}
        if len(lengths) != 1:
            raise ValueError(f"column length mismatch in {name!r}: {sorted(lengths)}")
        self.name = name
        self.columns = {key: np.asarray(array) for key, array in columns.items()}
        self.num_rows = lengths.pop()

    def column(self, name: str) -> np.ndarray:
        """Return a column by name."""
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(f"relation {self.name!r} has no column {name!r}") from None

    def column_names(self) -> tuple[str, ...]:
        """Return the column names."""
        return tuple(self.columns)

    def select(self, mask: np.ndarray) -> "Relation":
        """Return a new relation with only the rows where ``mask`` is True."""
        if len(mask) != self.num_rows:
            raise ValueError("mask length does not match row count")
        return Relation(self.name, {k: v[mask] for k, v in self.columns.items()})

    def distinct(self, name: str) -> np.ndarray:
        """Return the sorted distinct values of a column."""
        return np.unique(self.column(name))

    def cardinality(self, name: str) -> int:
        """Return the number of distinct values in a column."""
        return int(len(self.distinct(name)))

    def iter_rows(self, names: tuple[str, ...] | None = None) -> Iterator[dict[str, Any]]:
        """Yield rows as dicts (for tests/small relations; scans use masks)."""
        names = names or self.column_names()
        arrays = [self.columns[n] for n in names]
        for values in zip(*(a.tolist() for a in arrays)):
            yield dict(zip(names, values))

    def rows_as_tuples(self, names: tuple[str, ...]) -> list[tuple]:
        """Return selected columns as a list of row tuples."""
        arrays = [self.columns[n].tolist() for n in names]
        return list(zip(*arrays))

    def raw_size_bytes(self, columns: tuple[str, ...] | None = None) -> int:
        """§10.7 size model: 32 bits for keys/high-cardinality, 8 bits otherwise."""
        names = columns or self.column_names()
        bits_per_row = 0
        for name in names:
            cardinality = self.cardinality(name)
            bits_per_row += 32 if cardinality > LOW_CARDINALITY_LIMIT else 8
        return bits_per_row * self.num_rows // 8

    def duplicate_stats(self, key: str, attribute: str) -> tuple[float, int]:
        """Table 3's statistic: (avg, max) distinct attribute values per key."""
        keys = self.column(key)
        values = self.column(attribute)
        pairs = np.unique(np.stack([keys, values], axis=1), axis=0)
        _unique_keys, counts = np.unique(pairs[:, 0], return_counts=True)
        if len(counts) == 0:
            return 0.0, 0
        return float(counts.mean()), int(counts.max())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.name!r}, rows={self.num_rows}, cols={list(self.columns)})"
