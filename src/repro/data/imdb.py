"""Synthetic IMDB-like dataset matching the paper's Tables 2 and 3.

The paper evaluates on a pre-2017 IMDB snapshot (Join Order Benchmark data),
which is not redistributable; DESIGN.md records the substitution.  This
generator reproduces the *published statistics* that drive every CCF
phenomenon the paper measures:

* per-table row counts (Table 2), scaled by a configurable factor;
* predicate-column cardinalities (Table 2) — low cardinalities kept exact,
  high cardinalities scaled with the data;
* per-join-key distinct-duplicate distributions (Table 3's avg/max dupes,
  e.g. ``movie_keyword.keyword_id`` averaging 9.48 with a 539 maximum),
  realised with truncated-geometric duplicate counts solved to the target
  mean and value popularity skew;
* partial join-key coverage per fact table, which shapes semijoin
  selectivities.

All tables join ``title.id = <fact>.movie_id``, exactly as in JOB-light.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.data.relation import Relation

#: Production years span 1888-2019: the 132 distinct values of Table 2.
YEAR_LOW = 1888
YEAR_HIGH = 2019


@dataclass(frozen=True)
class PredicateColumnSpec:
    """One predicate column of a table (Table 2/3 row)."""

    name: str
    cardinality: int
    avg_dupes: float
    max_dupes: int
    #: Zipf-like skew exponent for value popularity (0 = uniform).
    value_skew: float = 1.0
    #: High-cardinality columns scale with the dataset; small ones stay exact.
    scale_cardinality: bool = False


@dataclass(frozen=True)
class FactTableSpec:
    """One fact table joining ``movie_id`` against ``title.id``."""

    name: str
    rows: int
    #: Fraction of movies appearing in this table at all.
    coverage: float
    #: The column whose per-key duplicate distribution Table 3 reports first.
    primary: PredicateColumnSpec
    #: Optional second predicate column stored on the same rows.
    secondary: PredicateColumnSpec | None = None


#: Table 2/3 of the paper, transcribed.  Coverage fractions are not published;
#: they are chosen so row counts, duplicate averages and plausible row
#: multiplicities coexist (see DESIGN.md).
TITLE_ROWS = 2_528_312

FACT_TABLE_SPECS: tuple[FactTableSpec, ...] = (
    FactTableSpec(
        name="cast_info",
        rows=36_244_344,
        coverage=0.76,
        primary=PredicateColumnSpec("role_id", 11, 4.70, 11, value_skew=0.8),
    ),
    FactTableSpec(
        name="movie_companies",
        rows=2_609_129,
        coverage=0.42,
        primary=PredicateColumnSpec(
            "company_id", 234_997, 2.14, 87, value_skew=1.1, scale_cardinality=True
        ),
        secondary=PredicateColumnSpec("company_type_id", 2, 1.54, 2, value_skew=0.3),
    ),
    FactTableSpec(
        name="movie_info",
        rows=14_835_720,
        coverage=0.70,
        primary=PredicateColumnSpec("info_type_id", 71, 4.17, 68, value_skew=1.0),
    ),
    FactTableSpec(
        name="movie_info_idx",
        rows=1_380_035,
        coverage=0.18,
        primary=PredicateColumnSpec("info_type_id", 5, 3.00, 4, value_skew=0.5),
    ),
    FactTableSpec(
        name="movie_keyword",
        rows=4_523_930,
        coverage=0.19,
        primary=PredicateColumnSpec(
            "keyword_id", 134_170, 9.48, 539, value_skew=1.05, scale_cardinality=True
        ),
    ),
)

#: kind_id popularity (6 kinds; movies dominate).
KIND_WEIGHTS = np.array([0.65, 0.15, 0.08, 0.06, 0.04, 0.02])


@dataclass
class IMDBDataset:
    """The generated tables plus the metadata experiments need."""

    scale: float
    seed: int
    num_movies: int
    tables: dict[str, Relation] = field(default_factory=dict)
    #: table name -> (join key column, predicate column names)
    schema: dict[str, tuple[str, tuple[str, ...]]] = field(default_factory=dict)

    def table(self, name: str) -> Relation:
        """Return a table by name."""
        return self.tables[name]

    def join_key(self, name: str) -> str:
        """Return the join-key column of a table ('id' for title)."""
        return self.schema[name][0]

    def predicate_columns(self, name: str) -> tuple[str, ...]:
        """Return the predicate columns of a table."""
        return self.schema[name][1]


def _power_law_weights(gamma: float, maximum: int) -> np.ndarray:
    ranks = np.arange(1, maximum + 1, dtype=np.float64)
    weights = ranks**-gamma
    return weights / weights.sum()


def _solve_power_law_gamma(mean: float, maximum: int) -> float:
    """Find γ so a 1..maximum distribution with P(r) ∝ r^-γ has ``mean``.

    The mean decreases continuously in γ from ``maximum`` (γ → -∞) to 1
    (γ → +∞), so bisection suffices.  A power law (rather than a geometric)
    matches the heavy tails of Table 3 — e.g. ``movie_keyword`` averages
    9.48 distinct keywords per movie yet peaks at 539.
    """
    if maximum == 1 or mean <= 1.0:
        return 64.0
    mean = min(mean, maximum - 1e-6)

    def mean_at(gamma: float) -> float:
        weights = _power_law_weights(gamma, maximum)
        ranks = np.arange(1, maximum + 1, dtype=np.float64)
        return float((ranks * weights).sum())

    low, high = -32.0, 64.0  # mean_at decreasing in gamma
    for _ in range(100):
        mid = (low + high) / 2
        if mean_at(mid) > mean:
            low = mid
        else:
            high = mid
    return (low + high) / 2


def sample_duplicate_counts(
    size: int, mean: float, maximum: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw per-key distinct-duplicate counts in [1, maximum] with ``mean``."""
    if size < 0:
        raise ValueError("size must be non-negative")
    if maximum < 1:
        raise ValueError("maximum must be at least 1")
    if maximum == 1 or mean <= 1.0:
        return np.ones(size, dtype=np.int64)
    gamma = _solve_power_law_gamma(mean, maximum)
    weights = _power_law_weights(gamma, maximum)
    return rng.choice(np.arange(1, maximum + 1), size=size, p=weights)


def _skewed_value_cdf(cardinality: int, skew: float) -> np.ndarray:
    """CDF of a Zipf(skew) popularity law over value ids 1..cardinality."""
    ranks = np.arange(1, cardinality + 1, dtype=np.float64)
    weights = ranks**-skew if skew > 0 else np.ones_like(ranks)
    return np.cumsum(weights / weights.sum())


def _sample_distinct_values(
    value_cdf: np.ndarray, count: int, rng: np.random.Generator, max_rounds: int = 8
) -> np.ndarray:
    """Sample ``count`` distinct values from a popularity CDF.

    Draws with replacement and tops up until the distinct set is full (or the
    round budget runs out — skewed laws over tiny domains can fall short,
    which the measured Table 3 statistics then report honestly).
    """
    count = min(count, len(value_cdf))
    distinct = np.unique(np.searchsorted(value_cdf, rng.random(count), side="right"))
    for _ in range(max_rounds):
        missing = count - len(distinct)
        if missing <= 0:
            break
        extra = np.searchsorted(value_cdf, rng.random(2 * missing), side="right")
        distinct = np.union1d(distinct, extra)
    return (distinct[:count] + 1).astype(np.int64)


def _scaled_cardinality(spec: PredicateColumnSpec, scale: float) -> int:
    if not spec.scale_cardinality:
        return spec.cardinality
    return max(50, round(spec.cardinality * scale))


def _generate_title(num_movies: int, rng: np.random.Generator) -> Relation:
    ids = np.arange(1, num_movies + 1, dtype=np.int64)
    kind = rng.choice(np.arange(1, 7), size=num_movies, p=KIND_WEIGHTS)
    years = np.arange(YEAR_LOW, YEAR_HIGH + 1, dtype=np.int64)
    # Recent years hold far more titles; quadratic ramp approximates IMDB.
    year_weights = (years - (YEAR_LOW - 1)).astype(np.float64) ** 2
    year_weights /= year_weights.sum()
    production_year = rng.choice(years, size=num_movies, p=year_weights)
    return Relation(
        "title", {"id": ids, "kind_id": kind, "production_year": production_year}
    )


def _popularity(num_movies: int, rng: np.random.Generator, skew: float = 1.0) -> np.ndarray:
    """Per-movie popularity weights (Zipf over a random rank permutation).

    Real IMDB concentrates fact-table rows on popular movies, which appear in
    *every* fact table; this shared popularity vector correlates the tables'
    join-key coverage and row mass the same way.  Without it, independently
    chosen coverage sets would make cross-table semijoin selectivities far
    smaller than the paper reports.
    """
    ranks = rng.permutation(num_movies).astype(np.float64) + 1.0
    return ranks**-skew


def _rank_matched(
    values: np.ndarray, priority: np.ndarray, rng: np.random.Generator, jitter: float = 0.15
) -> np.ndarray:
    """Assign the largest ``values`` to the highest ``priority`` slots, noisily."""
    noisy = np.argsort(-(priority + rng.normal(0.0, jitter * priority.std() + 1e-12, len(priority))))
    assigned = np.empty(len(values), dtype=values.dtype)
    assigned[noisy] = np.sort(values)[::-1]
    return assigned


def _generate_fact_table(
    spec: FactTableSpec,
    num_movies: int,
    scale: float,
    rng: np.random.Generator,
    popularity: np.ndarray,
) -> Relation:
    covered_count = max(1, round(spec.coverage * num_movies))
    # Popularity-weighted coverage via Gumbel top-k: popular movies are in
    # (nearly) every table, unpopular ones in few.  The 0.6 temperature keeps
    # the tables' coverage sets strongly (not perfectly) nested.
    scores = np.log(popularity) + 0.6 * rng.gumbel(size=num_movies)
    covered = np.argsort(-scores)[:covered_count] + 1
    primary_card = _scaled_cardinality(spec.primary, scale)
    max_dupes = min(spec.primary.max_dupes, primary_card)
    counts = sample_duplicate_counts(
        covered_count, spec.primary.avg_dupes, max_dupes, rng
    )
    # Popular movies also get the larger duplicate counts (more cast members,
    # more keywords), concentrating row mass where every table has coverage.
    counts = _rank_matched(counts, popularity[covered - 1], rng)
    value_cdf = _skewed_value_cdf(primary_card, spec.primary.value_skew)

    # Draw each movie's distinct primary values from the popularity law.
    movie_ids: list[np.ndarray] = []
    primary_values: list[np.ndarray] = []
    for movie, count in zip(covered.tolist(), counts.tolist()):
        distinct = _sample_distinct_values(value_cdf, count, rng)
        primary_values.append(distinct)
        movie_ids.append(np.full(len(distinct), movie, dtype=np.int64))
    movie_column = np.concatenate(movie_ids)
    primary_column = np.concatenate(primary_values).astype(np.int64)

    # Row multiplicity brings the table to its target row count.
    target_rows = max(len(movie_column), round(spec.rows * scale))
    mean_multiplicity = target_rows / len(movie_column)
    if mean_multiplicity > 1.0:
        multiplicities = rng.geometric(1.0 / mean_multiplicity, size=len(movie_column))
    else:
        multiplicities = np.ones(len(movie_column), dtype=np.int64)
    movie_column = np.repeat(movie_column, multiplicities)
    primary_column = np.repeat(primary_column, multiplicities)

    columns = {"movie_id": movie_column, spec.primary.name: primary_column}

    if spec.secondary is not None:
        secondary_card = _scaled_cardinality(spec.secondary, scale)
        sec_max = min(spec.secondary.max_dupes, secondary_card)
        sec_cdf = _skewed_value_cdf(secondary_card, spec.secondary.value_skew)
        # Per movie: a small set of admissible secondary values, then one
        # draw per row from the movie's set (Table 3's distinct-per-key
        # statistic is over the sets).
        sec_counts = sample_duplicate_counts(
            covered_count, spec.secondary.avg_dupes, sec_max, rng
        )
        # Rows are grouped by movie; work out each movie's row span first.
        boundaries = np.flatnonzero(np.diff(movie_column) != 0) + 1
        segment_starts = np.concatenate(([0], boundaries))
        segment_ends = np.concatenate((boundaries, [len(movie_column)]))
        spans = segment_ends - segment_starts
        # A movie can only express as many distinct values as it has rows, so
        # hand the larger sampled set sizes to the movies with more rows
        # (plausible for real data too: more companies -> more company types)
        # — otherwise the realised Table 3 average undershoots its target.
        order = np.argsort(-(spans + rng.random(len(spans))))
        sorted_counts = np.sort(sec_counts)[::-1]
        counts_by_segment = np.empty(len(spans), dtype=np.int64)
        counts_by_segment[order] = sorted_counts[: len(spans)]
        # Express each admissible value at least once, then draw the rest.
        secondary_column = np.empty(len(movie_column), dtype=np.int64)
        for start, end, count in zip(
            segment_starts.tolist(), segment_ends.tolist(), counts_by_segment.tolist()
        ):
            options = _sample_distinct_values(sec_cdf, count, rng)
            span = end - start
            guaranteed = min(span, len(options))
            secondary_column[start : start + guaranteed] = options[:guaranteed]
            if span > guaranteed:
                secondary_column[start + guaranteed : end] = options[
                    rng.integers(len(options), size=span - guaranteed)
                ]
        columns[spec.secondary.name] = secondary_column

    return Relation(spec.name, columns)


def generate_imdb(scale: float = 0.01, seed: int = 0) -> IMDBDataset:
    """Generate the six-table synthetic IMDB dataset at ``scale``.

    ``scale`` multiplies every row count of Table 2 (1.0 would reproduce the
    full 36M-row ``cast_info``); high-cardinality predicate domains scale
    with it, low-cardinality domains stay exact.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    rng = np.random.default_rng(seed)
    num_movies = max(200, round(TITLE_ROWS * scale))
    dataset = IMDBDataset(scale=scale, seed=seed, num_movies=num_movies)

    dataset.tables["title"] = _generate_title(num_movies, rng)
    dataset.schema["title"] = ("id", ("kind_id", "production_year"))

    popularity = _popularity(num_movies, rng)
    for spec in FACT_TABLE_SPECS:
        dataset.tables[spec.name] = _generate_fact_table(spec, num_movies, scale, rng, popularity)
        predicate_columns = (spec.primary.name,) + (
            (spec.secondary.name,) if spec.secondary else ()
        )
        dataset.schema[spec.name] = ("movie_id", predicate_columns)
    return dataset


def table_summary(dataset: IMDBDataset) -> list[dict]:
    """Regenerate Table 2: per-table rows and predicate column cardinality."""
    rows = []
    for name, relation in dataset.tables.items():
        for column in dataset.predicate_columns(name):
            rows.append(
                {
                    "table": name,
                    "rows": relation.num_rows,
                    "column": column,
                    "cardinality": relation.cardinality(column),
                }
            )
    return rows


def dupes_summary(dataset: IMDBDataset) -> list[dict]:
    """Regenerate Table 3: avg/max distinct duplicate values per join key."""
    rows = []
    for name, relation in dataset.tables.items():
        key = dataset.join_key(name)
        for column in dataset.predicate_columns(name):
            avg, peak = relation.duplicate_stats(key, column)
            rows.append(
                {
                    "table": name,
                    "join_key": key,
                    "column": column,
                    "avg_dupes": avg,
                    "max_dupes": peak,
                }
            )
    return rows
