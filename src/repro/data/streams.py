"""Multiset insertion streams for the §10.1 experiments.

The multiset experiments feed a filter with (key, attribute) rows where each
key recurs with *distinct* attribute values — "duplicates" in the paper's
sense (distinct attribute vectors sharing a key).  Two frequency shapes are
used:

* ``constant`` — every key has exactly the same number of duplicates;
* ``zipf`` — duplicate counts follow a truncated Zipf-Mandelbrot law
  (offset 2.7, support [1, 500]), the highly skewed case where plain cuckoo
  filters fail almost immediately.

Streams are materialised as lists of ``(key, (attr,))`` rows and shuffled
(the paper randomly permutes insertion order).
"""

from __future__ import annotations

import random

import numpy as np

from repro.data.zipf import ZipfMandelbrot, solve_alpha_for_mean_duplicates


def constant_stream(
    num_keys: int, dupes_per_key: int, seed: int = 0
) -> list[tuple[int, tuple[int]]]:
    """Rows with exactly ``dupes_per_key`` distinct attribute values per key."""
    if num_keys < 1:
        raise ValueError("num_keys must be positive")
    if dupes_per_key < 1:
        raise ValueError("dupes_per_key must be positive")
    rows = [
        (key, (duplicate,))
        for key in range(num_keys)
        for duplicate in range(dupes_per_key)
    ]
    random.Random(seed).shuffle(rows)
    return rows


def zipf_stream(
    total_rows: int,
    mean_duplicates: float,
    seed: int = 0,
    offset: float = 2.7,
    support: int = 500,
) -> list[tuple[int, tuple[int]]]:
    """Rows whose per-key duplicate counts follow Zipf-Mandelbrot skew.

    ``support`` ranks are mapped to key blocks: rank r keys draw their
    duplicate count from the skewed law solved to give ``mean_duplicates``
    on average over ``total_rows`` rows.  Attribute values within a key are
    the distinct duplicate indexes 0..count-1.
    """
    if total_rows < 1:
        raise ValueError("total_rows must be positive")
    # A truncated support bounds the mean duplicates from below: uniform
    # draws over ``support`` keys already collide (birthday effect), so for
    # targets near 1 the support must far exceed the row count.  Double it
    # until the uniform floor sits below the target, mirroring how the paper
    # picks its data size relative to the support.
    support = max(support, int(np.ceil(total_rows / max(1.0, mean_duplicates) * 1.5)))
    for _ in range(20):
        floor = ZipfMandelbrot(0.0, offset, support).mean_duplicates_per_key(total_rows)
        if floor <= mean_duplicates * 1.01:
            break
        support *= 2
    alpha = solve_alpha_for_mean_duplicates(
        mean_duplicates, total_rows, offset=offset, support=support
    )
    distribution = ZipfMandelbrot(alpha, offset, support, seed=seed)
    ranks = distribution.sample(total_rows)
    # Each sampled rank r is one row of key r; duplicates of a key get
    # successive attribute values.
    rows: list[tuple[int, tuple[int]]] = []
    seen: dict[int, int] = {}
    for rank in ranks.tolist():
        duplicate_index = seen.get(rank, 0)
        seen[rank] = duplicate_index + 1
        rows.append((rank, (duplicate_index,)))
    random.Random(seed).shuffle(rows)
    return rows


def stream_for_capacity(
    shape: str,
    capacity: int,
    mean_duplicates: float,
    overfill: float = 1.2,
    seed: int = 0,
) -> list[tuple[int, tuple[int]]]:
    """Build a §10.1 stream ~``overfill``x the sketch capacity.

    The paper generates data "approximately 20% larger than the capacity of
    the sketch" and measures the first failed insertion.  For the constant
    shape, the duplicate count is rounded to at least one.
    """
    if capacity < 1:
        raise ValueError("capacity must be positive")
    total_rows = max(1, round(capacity * overfill))
    if shape == "constant":
        dupes = max(1, round(mean_duplicates))
        num_keys = max(1, total_rows // dupes)
        return constant_stream(num_keys, dupes, seed=seed)
    if shape == "zipf":
        # The truncated support caps how many distinct keys exist; scale the
        # support so the uniform case could still fit the row budget.
        support = max(500, int(np.ceil(total_rows / max(1.0, mean_duplicates) * 1.5)))
        return zipf_stream(total_rows, mean_duplicates, seed=seed, support=support)
    raise ValueError(f"unknown stream shape {shape!r}; expected 'constant' or 'zipf'")


def duplicate_statistics(rows: list[tuple[int, tuple]]) -> tuple[float, int]:
    """Return (mean, max) distinct attribute values per key for a stream."""
    per_key: dict[int, set] = {}
    for key, attrs in rows:
        per_key.setdefault(key, set()).add(attrs)
    counts = [len(v) for v in per_key.values()]
    if not counts:
        return 0.0, 0
    return sum(counts) / len(counts), max(counts)
