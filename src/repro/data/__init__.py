"""Data substrate: skewed streams, column relations, synthetic IMDB."""

from repro.data.imdb import IMDBDataset, dupes_summary, generate_imdb, table_summary
from repro.data.relation import Relation
from repro.data.streams import (
    constant_stream,
    duplicate_statistics,
    stream_for_capacity,
    zipf_stream,
)
from repro.data.zipf import ZipfMandelbrot, solve_alpha_for_mean_duplicates

__all__ = [
    "IMDBDataset",
    "Relation",
    "ZipfMandelbrot",
    "constant_stream",
    "dupes_summary",
    "duplicate_statistics",
    "generate_imdb",
    "solve_alpha_for_mean_duplicates",
    "stream_for_capacity",
    "table_summary",
    "zipf_stream",
]
