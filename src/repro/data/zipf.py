"""Truncated Zipf-Mandelbrot distribution (§10.1).

The paper's multiset experiments draw key frequencies from a truncated
Zipf-Mandelbrot law ``p(x) ∝ (c + x)^-α`` with offset ``c = 2.7`` on the
support ``x ∈ [1, 500]``, varying ``α`` to hit a target average number of
duplicates per key.  This module provides the distribution (exact pmf,
inverse-CDF sampling via numpy) and the numeric solver for ``α``.

The "average number of duplicates per key" of a stream of ``n`` draws is
``n / E[#distinct keys]`` with ``E[#distinct] = Σ_x (1 - (1 - p_x)^n)`` —
the quantity the solver inverts.
"""

from __future__ import annotations

import numpy as np

DEFAULT_OFFSET = 2.7
DEFAULT_SUPPORT = 500


class ZipfMandelbrot:
    """Truncated Zipf-Mandelbrot distribution over ``{1, ..., support}``."""

    def __init__(
        self,
        alpha: float,
        offset: float = DEFAULT_OFFSET,
        support: int = DEFAULT_SUPPORT,
        seed: int = 0,
    ) -> None:
        if support < 1:
            raise ValueError("support must be at least 1")
        if offset <= -1.0:
            raise ValueError("offset must exceed -1 so all masses are positive")
        self.alpha = alpha
        self.offset = offset
        self.support = support
        self.seed = seed
        ranks = np.arange(1, support + 1, dtype=np.float64)
        weights = (offset + ranks) ** -alpha
        self._pmf = weights / weights.sum()
        self._cdf = np.cumsum(self._pmf)
        self._rng = np.random.default_rng(seed)

    def pmf(self) -> np.ndarray:
        """Return the probability mass function as an array over ranks 1..support."""
        return self._pmf.copy()

    def probability(self, rank: int) -> float:
        """Return ``p(rank)``; ranks outside the support have mass zero."""
        if not 1 <= rank <= self.support:
            return 0.0
        return float(self._pmf[rank - 1])

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` ranks by inverse-CDF sampling (values in 1..support)."""
        if size < 0:
            raise ValueError("size must be non-negative")
        uniforms = self._rng.random(size)
        return np.searchsorted(self._cdf, uniforms, side="right").astype(np.int64) + 1

    def expected_distinct(self, num_draws: int) -> float:
        """Return ``E[#distinct keys]`` among ``num_draws`` i.i.d. draws."""
        if num_draws < 0:
            raise ValueError("num_draws must be non-negative")
        if num_draws == 0:
            return 0.0
        # log1p for numerical stability with tiny tail masses.
        return float(np.sum(-np.expm1(num_draws * np.log1p(-self._pmf))))

    def mean_duplicates_per_key(self, num_draws: int) -> float:
        """Return ``num_draws / E[#distinct]`` — the paper's x-axis quantity."""
        expected = self.expected_distinct(num_draws)
        if expected == 0.0:
            return 0.0
        return num_draws / expected


def skewed_probe_indices(
    size: int,
    universe: int,
    alpha: float,
    offset: float = DEFAULT_OFFSET,
    seed: int = 0,
) -> np.ndarray:
    """Zipf-skewed indices in ``[0, universe)`` for serving benchmarks.

    The serve-latency benchmark (DESIGN.md §11) probes a mapped store with
    the traffic shape the paper's deployment sees: a small set of hot keys
    dominating, a long cold tail.  This draws ``size`` indices from a
    truncated Zipf-Mandelbrot over a ``universe``-wide support (rather than
    the paper's fixed 500-rank support) and shifts to 0-based, so index 0
    is the hottest key.  Deterministic under ``seed``.
    """
    if universe < 1:
        raise ValueError("universe must be at least 1")
    dist = ZipfMandelbrot(alpha, offset=offset, support=universe, seed=seed)
    return dist.sample(size) - 1


def solve_alpha_for_mean_duplicates(
    target_mean: float,
    num_draws: int,
    offset: float = DEFAULT_OFFSET,
    support: int = DEFAULT_SUPPORT,
    tolerance: float = 1e-3,
    max_iterations: int = 80,
) -> float:
    """Find ``α`` so ``num_draws`` draws average ``target_mean`` duplicates/key.

    Mean duplicates per key increases monotonically in ``α`` (more skew →
    fewer distinct keys), so a bisection over ``α ∈ [0, 32]`` suffices.  The
    achievable range is bounded below by the α=0 (uniform) value — e.g. one
    cannot average fewer duplicates than ``num_draws/support`` — and a
    ValueError reports an unreachable target.
    """
    if target_mean <= 0:
        raise ValueError("target_mean must be positive")
    if num_draws < 1:
        raise ValueError("num_draws must be positive")

    def mean_at(alpha: float) -> float:
        return ZipfMandelbrot(alpha, offset, support).mean_duplicates_per_key(num_draws)

    low_alpha, high_alpha = 0.0, 32.0
    low_mean = mean_at(low_alpha)
    high_mean = mean_at(high_alpha)
    if target_mean <= low_mean:
        if low_mean - target_mean < max(tolerance, 0.05 * target_mean):
            return low_alpha
        raise ValueError(
            f"target mean {target_mean:.3f} unreachable: even α=0 yields "
            f"{low_mean:.3f} duplicates/key for {num_draws} draws over "
            f"support {support}"
        )
    if target_mean >= high_mean:
        return high_alpha
    for _ in range(max_iterations):
        mid = (low_alpha + high_alpha) / 2
        mid_mean = mean_at(mid)
        if abs(mid_mean - target_mean) <= tolerance:
            return mid
        if mid_mean < target_mean:
            low_alpha = mid
        else:
            high_alpha = mid
    return (low_alpha + high_alpha) / 2
