"""Sequential kernel implementations shared by the python and numba backends.

These are the *exact* functions the numba backend JIT-compiles — written in
the numba-compatible subset of Python/numpy (scalar loops, no fancy
indexing, no Python objects), and registered un-jitted as the ``"python"``
backend so their bit-identity to the vectorised numpy reference is
property-testable on machines without numba installed.  The python backend
is a correctness oracle, not a fast path: interpreted per-item loops are
orders of magnitude slower than either real backend at scale.

Equivalence to the reference (``reference.py``), round for round:

* **Placement pass** — first-fit in item order over live occupancy equals
  the rank-based plan: within a bucket holding ``f`` free slots, the first
  ``f`` items targeting it (in item order) take its empty slots in slot
  order, exactly the ``rank < free`` / empty-slot-rank assignment of
  :func:`~repro.kernels.reference.plan_bulk_placement`; survivors compact
  in place, preserving the reference's ascending-residue order.
* **Exhaust pass** — over-budget chains stash in batch order, matching the
  reference's boolean-mask compaction.
* **Eviction pass** — a per-round bucket stamp (``contested``) lets the
  *earliest* item win each bucket, which is precisely what the reference's
  ``np.unique(cur, return_index=True)`` + ascending-winner sort computes;
  victim slots come from the same counter-based SplitMix64 stream, consumed
  in ascending item order in both backends, so every draw lands on the same
  item.

uint64 discipline: all mixing arithmetic stays in uint64 via typed
module-level constants — in numba, mixing uint64 with int64 operands
promotes to float64 and silently destroys the hash; in plain python, the
host wrappers run under ``np.errstate(over="ignore")`` because scalar
uint64 wrap-around (intended here) emits RuntimeWarnings that jitted code
never produces.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

_U27 = np.uint64(27)
_U30 = np.uint64(30)
_U31 = np.uint64(31)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def mix64_scalar(x):
    """SplitMix64 finalizer on one uint64 (numba-compatible `mix64` twin)."""
    x = (x ^ (x >> _U30)) * _MIX1
    x = (x ^ (x >> _U27)) * _MIX2
    return x ^ (x >> _U31)


def pair_eq_impl(table, qfps, homes, alts):
    """Scalar twin of the fused pair probe.

    ``qfps`` must already be cast to the table dtype (the host wrapper does
    this) so every comparison runs width-exact — a uint64 table compared
    against int64 queries would promote to float64 and lose bits.
    """
    n = qfps.shape[0]
    bucket_size = table.shape[1]
    eq = np.zeros((n, 2, bucket_size), dtype=np.bool_)
    for i in range(n):
        home = homes[i]
        alt = alts[i]
        fp = qfps[i]
        for slot in range(bucket_size):
            eq[i, 0, slot] = table[home, slot] == fp
            eq[i, 1, slot] = table[alt, slot] == fp
    return eq


def wave_kick_impl(
    table,
    counts,
    empty,
    item_fps,
    cur,
    origins,
    kicks,
    out,
    max_kicks,
    index_mask,
    jump_seed,
    victim_seed,
    victim_counter,
    scalar_cutoff,
):
    """Scalar twin of the wave-eviction kick loop (see module docstring).

    ``empty`` must be a scalar of the table dtype and ``index_mask`` /
    ``jump_seed`` / ``victim_seed`` uint64 scalars (host wrapper casts).
    Mutates ``table``, ``counts``, ``out`` and the item arrays in place;
    returns the same 8-tuple as the reference kernel.
    """
    num_buckets = table.shape[0]
    bucket_size = table.shape[1]
    bucket_size_u = np.uint64(bucket_size)
    n = item_fps.shape[0]
    stash_fps = np.empty(n, dtype=np.int64)
    stash_origins = np.empty(n, dtype=np.int64)
    n_stash = 0
    placed = 0
    n_live = n
    contested = np.zeros(num_buckets, dtype=np.int64)
    round_id = 0
    counter = victim_counter
    while n_live > scalar_cutoff:
        # Placement pass: first-fit in item order == the rank-based plan.
        write = 0
        for r in range(n_live):
            bucket = cur[r]
            if counts[bucket] < bucket_size:
                for slot in range(bucket_size):
                    if table[bucket, slot] == empty:
                        table[bucket, slot] = item_fps[r]
                        break
                counts[bucket] += 1
                placed += 1
            else:
                item_fps[write] = item_fps[r]
                cur[write] = bucket
                origins[write] = origins[r]
                kicks[write] = kicks[r]
                write += 1
        n_live = write
        if n_live == 0:
            break
        # Exhaust pass: stash over-budget chains in batch order.
        write = 0
        for r in range(n_live):
            if kicks[r] >= max_kicks:
                stash_fps[n_stash] = item_fps[r]
                stash_origins[n_stash] = origins[r]
                out[origins[r]] = False
                n_stash += 1
            else:
                item_fps[write] = item_fps[r]
                cur[write] = cur[r]
                origins[write] = origins[r]
                kicks[write] = kicks[r]
                write += 1
        n_live = write
        if n_live <= scalar_cutoff:
            break
        # Eviction pass: one eviction per contested bucket, earliest item
        # wins; losers retry next round against the winner-free bucket.
        round_id += 1
        for r in range(n_live):
            bucket = cur[r]
            if contested[bucket] == round_id:
                continue
            contested[bucket] = round_id
            slot = np.int64(
                mix64_scalar(np.uint64(counter) ^ victim_seed) % bucket_size_u
            )
            counter += 1
            victim = table[bucket, slot]
            table[bucket, slot] = item_fps[r]
            item_fps[r] = np.int64(victim)
            jump = np.int64(mix64_scalar(np.uint64(victim) ^ jump_seed) & index_mask)
            cur[r] = bucket ^ jump
            kicks[r] += 1
    return (
        stash_fps[:n_stash].copy(),
        stash_origins[:n_stash].copy(),
        item_fps[:n_live].copy(),
        cur[:n_live].copy(),
        origins[:n_live].copy(),
        kicks[:n_live].copy(),
        placed,
        counter,
    )


def host_wrappers(
    pair_eq_fn: Callable, wave_kick_fn: Callable
) -> tuple[Callable, Callable]:
    """Wrap raw impls (plain or jitted) with the host-side casting shims.

    The shims pin down everything the impls assume: query fingerprints cast
    to the table dtype, the EMPTY sentinel as a table-dtype scalar, masks
    and seeds as uint64 scalars — and run under ``errstate(over="ignore")``
    so the plain-python backend's intentional uint64 wrap-around stays
    silent.
    """

    def pair_eq(table, qfps, homes, alts):
        with np.errstate(over="ignore"):
            return pair_eq_fn(
                table, qfps.astype(table.dtype, copy=False), homes, alts
            )

    def wave_kick(
        table,
        counts,
        empty,
        item_fps,
        cur,
        origins,
        kicks,
        out,
        max_kicks,
        index_mask,
        jump_seed,
        victim_seed,
        victim_counter,
        scalar_cutoff,
    ):
        with np.errstate(over="ignore"):
            return wave_kick_fn(
                table,
                counts,
                table.dtype.type(empty),
                item_fps,
                cur,
                origins,
                kicks,
                out,
                int(max_kicks),
                np.uint64(index_mask),
                np.uint64(jump_seed),
                np.uint64(victim_seed),
                int(victim_counter),
                int(scalar_cutoff),
            )

    return pair_eq, wave_kick


def make_backend():
    """The un-jitted ``"python"`` test backend (reference-parity oracle)."""
    from repro.kernels import reference
    from repro.kernels.dispatch import KernelBackend

    pair_eq, wave_kick = host_wrappers(pair_eq_impl, wave_kick_impl)
    return KernelBackend(
        name="python",
        pair_eq=pair_eq,
        grouped_ranks=reference.grouped_ranks,
        plan_bulk_placement=reference.plan_bulk_placement,
        delete_plan=reference.delete_plan,
        wave_kick=wave_kick,
        info={"array_module": "numpy", "jit": None},
    )
