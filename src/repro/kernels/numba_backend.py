"""The optional numba backend: JIT-compiled scalar kernels, guarded import.

numba is deliberately *not* a dependency of this package — the factory
raises :class:`~repro.kernels.dispatch.BackendUnavailable` when it cannot be
imported (missing, or broken install), and the dispatch layer falls back to
the numpy reference with a warning.  ``pip install repro[numba]`` opts in.

What gets compiled: exactly the sequential implementations in
``_sequential.py`` — the per-item wave-eviction loop and the scalar pair
probe, the two kernels whose work numpy either cannot express without
per-round full-array passes (wave kick: plan + unique + compaction every
round) or pays gather/reshape overheads on (pair probe).  The
``grouped_ranks`` / placement-planner / delete-plan kernels stay on the
vectorised reference implementations: their cost is one ``lexsort`` +
cumulative passes, already memory-bound optimal, and numba's typed
re-implementation measured no better.  Because the jitted functions *are*
the python backend's functions, the cross-backend parity property suite
exercises this backend's exact algorithm even where numba itself is absent.

Compilation cost: ``cache=True`` persists compiled machine code next to the
module, so the first call per (dtype) signature pays the JIT once per
environment, not once per process; the microbenchmark records cold
(compiling) and warm timings separately so compile time never pollutes
steady-state numbers.  ``nogil=True`` releases the GIL inside the kernels —
the serve pool's thread mode overlaps jitted probes the same way it
overlaps numpy's.
"""

from __future__ import annotations

from repro.kernels import _sequential, reference
from repro.kernels.dispatch import BackendUnavailable, KernelBackend


def make_backend() -> KernelBackend:
    """Build the numba backend, or raise :class:`BackendUnavailable`."""
    try:
        import numba
    except Exception as exc:  # broken installs raise more than ImportError
        raise BackendUnavailable(f"numba is not importable ({exc})") from None
    try:
        jit = numba.njit(cache=True, nogil=True)
        pair_eq_jit = jit(_sequential.pair_eq_impl)
        wave_kick_jit = jit(_sequential.wave_kick_impl)
    except Exception as exc:  # pragma: no cover - depends on numba install
        raise BackendUnavailable(f"numba njit setup failed ({exc})") from None
    pair_eq, wave_kick = _sequential.host_wrappers(pair_eq_jit, wave_kick_jit)
    return KernelBackend(
        name="numba",
        pair_eq=pair_eq,
        grouped_ranks=reference.grouped_ranks,
        plan_bulk_placement=reference.plan_bulk_placement,
        delete_plan=reference.delete_plan,
        wave_kick=wave_kick,
        info={
            "array_module": "numpy",
            "jit": "numba",
            "numba_version": numba.__version__,
        },
    )
