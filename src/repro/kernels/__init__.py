"""Backend-dispatched hot kernels for every cuckoo structure (DESIGN.md §12).

The package splits into:

* :mod:`repro.kernels.dispatch` — backend registry, selection
  (``REPRO_KERNEL_BACKEND`` / :func:`set_backend`), fallback semantics and
  the :func:`xp` array-namespace shim;
* :mod:`repro.kernels.reference` — the vectorised numpy kernels (the
  behavioural contract every backend must match bit for bit);
* :mod:`repro.kernels._sequential` — numba-compatible scalar twins,
  registered as the ``"python"`` oracle backend;
* :mod:`repro.kernels.numba_backend` — the optional JIT fast path
  (guarded import; falls back to numpy when numba is absent).

Call sites never pick an implementation: they fetch
``active_backend()`` and call through its :class:`KernelBackend` fields.
"""

from repro.kernels import _sequential, numba_backend, reference
from repro.kernels.dispatch import (
    DEFAULT_BACKEND,
    ENV_VAR,
    BackendUnavailable,
    KernelBackend,
    active_backend,
    available_backends,
    backend_spec,
    register_backend,
    registered_backends,
    set_backend,
    xp,
)
from repro.kernels.reference import grouped_ranks

register_backend("numpy", reference.make_backend)
register_backend("python", _sequential.make_backend)
register_backend("numba", numba_backend.make_backend)

__all__ = [
    "BackendUnavailable",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "KernelBackend",
    "active_backend",
    "available_backends",
    "backend_spec",
    "grouped_ranks",
    "register_backend",
    "registered_backends",
    "set_backend",
    "xp",
]
