"""Backend dispatch for the hot cuckoo kernels (DESIGN.md §12).

Every hot kernel in the repository — the fused pair probe, the grouped-rank
helper, the bulk-placement planner, the rank-deduped delete plan and the
wave-eviction kick loop — is a *pure function over columns* collected into a
:class:`KernelBackend`.  Callers never import a kernel module directly; they
ask :func:`active_backend` and call through it, so `SlotMatrix`, the five CCF
variants, the FilterStore shards and the serve workers all share one seam
behind which alternative implementations (numba JIT today, CuPy tomorrow)
can slot in without touching any call site.

Selection, in precedence order:

1. an explicit :func:`set_backend` call (process-local; the serve pool
   forwards its spec to workers so the choice survives fork *and* spawn);
2. the ``REPRO_KERNEL_BACKEND`` environment variable;
3. the default, ``"numpy"``.

A requested backend that is not registered or whose factory raises
:class:`BackendUnavailable` (e.g. ``numba`` without numba installed) falls
back to numpy with a warning — an accelerator going missing must degrade to
the reference path, never crash the store.  ``set_backend(..., strict=True)``
turns that fallback into an error for callers that need the real thing
(benchmarks, the CI numba leg).

Backends are *contractually bit-identical*: every registered backend must
produce the same placements, stash contents and query answers as the numpy
reference on identical inputs (property-tested in
``tests/test_kernel_backends.py``).  Speed may differ; behaviour may not.

The module also hosts the array-namespace shim :func:`xp`: kernels that can
be expressed in the array-API subset resolve their array module from the
operand (``arr.__array_namespace__()``), so a CuPy array would transparently
bring its own namespace.  Kernels that need numpy-only primitives
(``lexsort``, ``ufunc.at``) document the dependency instead.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Any, Callable, Mapping

import numpy as np

from repro import obs

#: Environment variable naming the kernel backend (e.g. ``numba``).
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: The always-available reference backend every fallback lands on.
DEFAULT_BACKEND = "numpy"


class BackendUnavailable(RuntimeError):
    """A backend factory's dependencies are missing or broken."""


def xp(arr: Any):
    """Resolve the array namespace of ``arr`` (array-API style).

    Returns ``arr.__array_namespace__()`` when the operand publishes one
    (numpy >= 2 ndarrays do, as would CuPy arrays), else the numpy module.
    Kernels use this so array-API-expressible steps follow their operand's
    backing library instead of hard-wiring ``np``.
    """
    ns = getattr(arr, "__array_namespace__", None)
    if ns is not None:
        return ns()
    return np


@dataclass(frozen=True)
class KernelBackend:
    """One backend's kernel suite: pure functions over column arrays.

    Fields mirror the five extracted kernels; see ``reference.py`` for the
    canonical signatures and semantics.  ``info`` carries provenance for
    stats/benchmark records (e.g. the numba version that compiled the
    fast path).
    """

    name: str
    pair_eq: Callable[..., np.ndarray]
    grouped_ranks: Callable[..., tuple]
    plan_bulk_placement: Callable[..., tuple]
    delete_plan: Callable[..., tuple]
    wave_kick: Callable[..., tuple]
    info: Mapping[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelBackend(name={self.name!r})"


#: Registered backend factories.  Factories run lazily (on first resolve) so
#: optional dependencies are only imported when the backend is requested.
_FACTORIES: dict[str, Callable[[], KernelBackend]] = {}

#: Instantiated backends, by name (a factory runs at most once per process).
_INSTANCES: dict[str, KernelBackend] = {}

#: Explicit process-local request (highest precedence), or None.
_REQUESTED: str | None = None

#: The resolved backend, cached until the selection inputs change.
_ACTIVE: KernelBackend | None = None


def register_backend(name: str, factory: Callable[[], KernelBackend]) -> None:
    """Register a backend factory under ``name``.

    The factory must return a fully-populated :class:`KernelBackend` or
    raise :class:`BackendUnavailable`.  Registering is how a future CuPy
    backend plugs in: implement the five kernels over ``cupy`` arrays and
    call ``register_backend("cupy", make_backend)`` at import time.
    """
    _FACTORIES[name] = factory


def registered_backends() -> tuple[str, ...]:
    """Names of all registered backends (available or not)."""
    return tuple(_FACTORIES)


def available_backends() -> dict[str, bool]:
    """Map each registered backend to whether its factory currently works."""
    out: dict[str, bool] = {}
    for name in _FACTORIES:
        try:
            _instantiate(name)
        except BackendUnavailable:
            out[name] = False
        else:
            out[name] = True
    return out


#: The five kernel fields every backend populates, in declaration order.
_KERNEL_FIELDS = (
    "pair_eq",
    "grouped_ranks",
    "plan_bulk_placement",
    "delete_plan",
    "wave_kick",
)

_KERNEL_CALLS = obs.counter(
    "repro_kernel_calls_total",
    "Kernel invocations, by backend and kernel (one per batch call).",
    ("backend", "kernel"),
)
_KERNEL_SECONDS = obs.counter(
    "repro_kernel_seconds_total",
    "Wall time spent inside kernels, by backend and kernel.",
    ("backend", "kernel"),
)


def _timed_kernel(fn: Callable, calls, seconds) -> Callable:
    # The two children are written *only* by this wrapper (one closure per
    # (backend, kernel) pair), so a single shared lock covers both updates —
    # one acquisition and two direct value writes instead of two locked
    # ``inc()`` calls.  Kernels run ~20x per query batch, so the wrapper is
    # itself a hot path the tracing-overhead gate bounds.
    lock = calls._lock
    state = obs.state

    def run(*args, **kwargs):
        if not state.enabled:
            return fn(*args, **kwargs)
        start = perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            elapsed = perf_counter() - start
            with lock:
                calls.value += 1
                seconds.value += elapsed

    run.__name__ = getattr(fn, "__name__", "kernel")
    run.__wrapped__ = fn
    return run


def _instrument(backend: KernelBackend) -> KernelBackend:
    """Wrap a backend's kernels with call-count + wall-time instruments.

    One counter bump and one timestamp pair per *kernel call* — the
    batch-granularity cost point; the kill-switch check is the only work
    left on the path when metrics are off.  ``name``/``info`` and the
    frozen-dataclass contract are preserved by ``dataclasses.replace``.
    """
    wrapped = {
        kernel: _timed_kernel(
            getattr(backend, kernel),
            _KERNEL_CALLS.labels(backend=backend.name, kernel=kernel),
            _KERNEL_SECONDS.labels(backend=backend.name, kernel=kernel),
        )
        for kernel in _KERNEL_FIELDS
    }
    return replace(backend, **wrapped)


def _instantiate(name: str) -> KernelBackend:
    backend = _INSTANCES.get(name)
    if backend is None:
        factory = _FACTORIES.get(name)
        if factory is None:
            raise BackendUnavailable(
                f"unknown kernel backend {name!r}; registered: {sorted(_FACTORIES)}"
            )
        backend = _instrument(factory())  # factory may raise BackendUnavailable
        _INSTANCES[name] = backend
    return backend


def backend_spec() -> str | None:
    """The *requested* backend spec (explicit request or env), or None.

    This is what must be forwarded across process boundaries: spawned serve
    workers re-import this module with fresh state, so the pool ships
    ``backend_spec()`` in the worker args and the worker replays it through
    :func:`set_backend` before attaching its store.
    """
    if _REQUESTED is not None:
        return _REQUESTED
    return os.environ.get(ENV_VAR) or None


def set_backend(spec: str | None, strict: bool = True) -> KernelBackend:
    """Select the kernel backend for this process and return it.

    ``spec=None`` clears any explicit request (selection falls back to the
    environment variable / default).  With ``strict=False`` an unavailable
    or unknown backend degrades to numpy with a warning instead of raising —
    the behaviour env-var selection always gets.
    """
    global _REQUESTED, _ACTIVE
    _REQUESTED = spec
    _ACTIVE = None
    if spec is not None and strict:
        _ACTIVE = _instantiate(spec)
        return _ACTIVE
    return active_backend()


def active_backend() -> KernelBackend:
    """The process's resolved kernel backend (cached after first call)."""
    global _ACTIVE
    backend = _ACTIVE
    if backend is not None:
        return backend
    spec = backend_spec()
    if spec is None or spec == DEFAULT_BACKEND:
        backend = _instantiate(DEFAULT_BACKEND)
    else:
        try:
            backend = _instantiate(spec)
        except BackendUnavailable as exc:
            warnings.warn(
                f"kernel backend {spec!r} unavailable ({exc}); "
                f"falling back to {DEFAULT_BACKEND!r}",
                RuntimeWarning,
                stacklevel=2,
            )
            backend = _instantiate(DEFAULT_BACKEND)
    _ACTIVE = backend
    return backend


def _reset_for_tests() -> None:
    """Clear resolution state (not the registry); test isolation hook."""
    global _REQUESTED, _ACTIVE
    _REQUESTED = None
    _ACTIVE = None
