"""The reference (numpy) kernel suite — the behaviour every backend must match.

These are the repository's hot kernels, extracted from ``cuckoo/batch.py``
and ``cuckoo/buckets.py`` into pure functions over column arrays: nothing in
here touches a ``SlotMatrix`` or a filter object, only the fingerprint
matrix, the occupancy-count column and per-batch index/fingerprint vectors.
That purity is the backend contract (DESIGN.md §12): a backend reimplements
these signatures over its own array library and must reproduce the reference
bit for bit — same placements, same stash contents (and order), same
answers.

Array-namespace note: :func:`pair_eq` is expressible in the array-API subset
and resolves its namespace from the operand via :func:`~repro.kernels.dispatch.xp`.
The planner/delete/wave kernels lean on numpy-only primitives (``lexsort``,
``ufunc.at``, boolean fancy indexing); a non-numpy backend supplies its own
equivalents rather than inheriting these.

Randomness: the wave-eviction kernel draws victim slots from a *stateless
counter-based SplitMix64 stream* (``mix64(counter ^ victim_seed) %
bucket_size``) instead of a stateful ``np.random.Generator``.  The stream is
reproducible in any backend from two integers, so vectorised numpy rounds
and the sequential (numba) loop consume identical draws — the keystone of
cross-backend bit-identity.  The host object persists the counter; no
per-call RNG construction, no reseeding.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.mixers import mix64_many
from repro.kernels.dispatch import KernelBackend, xp as _xp

_EMPTY_I64 = np.empty(0, dtype=np.int64)


def pair_eq(
    table: np.ndarray, qfps: np.ndarray, homes: np.ndarray, alts: np.ndarray
) -> np.ndarray:
    """Fused bucket-pair probe: one gather over each key's home+alt rows.

    Returns the ``(n, 2, bucket_size)`` equality mask of each query
    fingerprint against its home row (``[:, 0]``) and alternate row
    (``[:, 1]``).  Both rows are gathered in a single ``take`` over the live
    matrix and compared at the matrix's native dtype, so packed tables probe
    at their narrow width end to end.  Query fingerprints are always valid
    stored values (non-negative, never the sentinel), so the unsigned cast
    is exact.
    """
    ns = _xp(table)
    n = len(qfps)
    bucket_size = table.shape[1]
    idx = ns.empty((n, 2), dtype=np.intp)
    idx[:, 0] = homes
    idx[:, 1] = alts
    gathered = ns.take(table, ns.reshape(idx, (-1,)), axis=0)
    eq = ns.reshape(gathered, (n, 2 * bucket_size)) == ns.astype(
        qfps, table.dtype, copy=False
    )[:, None]
    return ns.reshape(eq, (n, 2, bucket_size))


def grouped_ranks(
    *keys: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Stable within-group ranks for rows grouped by equal key tuples.

    Returns ``(order, boundary, group_start, rank)``, all in sorted space:
    ``order`` sorts rows by the key arrays with original position as the
    tie-break (so earlier rows rank first within their group), ``boundary``
    marks each group's first sorted row, ``group_start`` maps every sorted
    position to its group's first sorted position, and ``rank`` is each
    sorted row's 0-based position within its group.  Requires at least one
    row.  The one audited copy of the grouped-rank idiom shared by
    :func:`plan_bulk_placement` and the batch-delete rank-deduping kernel
    (:func:`delete_plan`).
    """
    n = len(keys[0])
    positions = np.arange(n)
    order = np.lexsort((positions,) + tuple(reversed(keys)))
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    changed = np.zeros(n - 1, dtype=bool)
    for key in keys:
        sorted_key = key[order]
        changed |= sorted_key[1:] != sorted_key[:-1]
    boundary[1:] = changed
    group_start = np.maximum.accumulate(np.where(boundary, positions, 0))
    return order, boundary, group_start, positions - group_start


def plan_bulk_placement(
    table: np.ndarray, counts: np.ndarray, empty: int, homes: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Plan a conflict-free first wave: one row per free slot per bucket.

    Given each row's target bucket, rows are ranked within their bucket
    (stable sort, so earlier rows win) and the first
    ``bucket_size - counts[bucket]`` of each bucket's rows are assigned to
    that bucket's actual free slots (holes from deletions honoured via a
    per-bucket empty-slot rank).  Returns ``(rows, buckets, slots,
    residue)``: the planned rows (indices into ``homes``), their target
    buckets and slots, and the left-over row indices in ascending input
    order.

    The planner only *reads* the columns; callers scatter into
    ``table[buckets, slots]`` (and any parallel columns) and update the
    occupancy column themselves.  Shared by the cuckoo-filter bulk build,
    wave eviction, and store compaction.
    """
    n = len(homes)
    bucket_size = table.shape[1]
    if n == 0:
        return _EMPTY_I64, _EMPTY_I64, _EMPTY_I64, _EMPTY_I64
    order, _boundary, _group_start, rank = grouped_ranks(homes)
    sorted_homes = homes[order]
    free = (bucket_size - counts[sorted_homes]).astype(np.int64)
    placed = rank < free
    placed_buckets = sorted_homes[placed]
    slots = _EMPTY_I64
    if placed_buckets.size:
        touched, inverse = np.unique(placed_buckets, return_inverse=True)
        emptiness = table[touched] == empty
        empty_rank = np.cumsum(emptiness, axis=1) - 1
        slot_of_rank = np.full((len(touched), bucket_size), -1, dtype=np.int64)
        for slot in range(bucket_size):
            here = emptiness[:, slot]
            slot_of_rank[here, empty_rank[here, slot]] = slot
        slots = slot_of_rank[inverse, rank[placed]]
    residue = order[~placed]
    residue.sort()
    return order[placed], placed_buckets, slots, residue


def delete_plan(
    eq: np.ndarray, fps: np.ndarray, homes: np.ndarray, alts: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Plan a vectorised first-match deletion, bit-identical to a scalar loop.

    ``eq`` is the batch's fused pair-probe mask (:func:`pair_eq`).  Each key
    claims the slot a scalar loop would have cleared: the r-th batch
    occurrence of a (fingerprint, pair) group takes the group's r-th
    matching slot in home-then-alternate slot order (**rank deduping** —
    duplicate keys in one batch can never claim the same slot).  Distinct
    groups touch disjoint (bucket, fingerprint) slots, so the snapshot
    ranking equals sequential processing.

    Returns ``(clear_buckets, clear_slots, deleted, scalar_rows,
    overflow)``: the pairwise-distinct occupied slots to clear, the rows
    they satisfy, and the two residues the caller must run through the
    scalar kernel in batch order — rows of groups whose members disagree on
    home orientation (two keys sharing a pair from opposite ends — their
    interleaved scans don't rank-decompose), and rows whose rank overflows
    the table matches into the stash scan.
    """
    n = len(fps)
    eq_home = eq[:, 0]
    eq_alt = eq[:, 1]
    match_home = eq_home.sum(axis=1)
    match_alt = np.where(alts == homes, 0, eq_alt.sum(axis=1))
    # Rank each row within its (fingerprint, pair) group, in batch order.
    pair_lo = np.minimum(homes, alts)
    order, boundary, group_start, sorted_rank = grouped_ranks(fps, pair_lo)
    rank = np.empty(n, dtype=np.int64)
    rank[order] = sorted_rank
    gid = np.cumsum(boundary) - 1
    differs = homes[order] != homes[order[group_start]]
    group_mixed = np.zeros(int(gid[-1]) + 1, dtype=bool)
    np.logical_or.at(group_mixed, gid, differs)
    scalar_rows = np.empty(n, dtype=bool)
    scalar_rows[order] = group_mixed[gid]

    vec = ~scalar_rows
    take_home = vec & (rank < match_home)
    take_alt = vec & ~take_home & (rank < match_home + match_alt)
    overflow = vec & ~take_home & ~take_alt
    rows_h = np.nonzero(take_home)[0]
    slots_h = _EMPTY_I64
    if rows_h.size:
        csum = np.cumsum(eq_home[rows_h], axis=1)
        slots_h = (csum == (rank[rows_h] + 1)[:, None]).argmax(axis=1)
    rows_a = np.nonzero(take_alt)[0]
    slots_a = _EMPTY_I64
    if rows_a.size:
        csum = np.cumsum(eq_alt[rows_a], axis=1)
        slots_a = (csum == (rank[rows_a] - match_home[rows_a] + 1)[:, None]).argmax(axis=1)
    clear_buckets = np.concatenate([homes[rows_h], alts[rows_a]])
    clear_slots = np.concatenate([slots_h, slots_a]).astype(np.int64, copy=False)
    return clear_buckets, clear_slots, take_home | take_alt, scalar_rows, overflow


def victim_slots(counter: int, count: int, victim_seed: int, bucket_size: int) -> np.ndarray:
    """``count`` victim-slot draws from the counter-based SplitMix64 stream.

    Draw ``i`` is ``mix64(uint64(counter + i) ^ victim_seed) % bucket_size``
    — a pure function of the stream position, so any backend reproduces the
    identical sequence from the two integers alone.
    """
    stream = np.arange(counter, counter + count, dtype=np.uint64)
    return (
        mix64_many(stream ^ np.uint64(victim_seed)) % np.uint64(bucket_size)
    ).astype(np.int64)


def wave_kick(
    table: np.ndarray,
    counts: np.ndarray,
    empty: int,
    item_fps: np.ndarray,
    cur: np.ndarray,
    origins: np.ndarray,
    kicks: np.ndarray,
    out: np.ndarray,
    max_kicks: int,
    index_mask: int,
    jump_seed: int,
    victim_seed: int,
    victim_counter: int,
    scalar_cutoff: int,
) -> tuple:
    """Wave eviction: process the whole kick residue per round, vectorised.

    Every in-flight item targets one bucket (``cur``).  Each round first
    places every item whose target has room (:func:`plan_bulk_placement`,
    conflicts rank-resolved), stashes items whose chains exhausted
    ``max_kicks`` (recorded in batch order; their ``out`` rows are cleared),
    then performs **one eviction per contested bucket**: the earliest item
    targeting each bucket wins (losers retry next round against the
    winner-free bucket), swaps into a victim slot drawn from the
    counter-based SplitMix64 stream, and continues as the victim — bound for
    the victim's alternate bucket ``bucket ^ (mix64(victim ^ jump_seed) &
    index_mask)``, always within the victim's own pair, so per-pair
    fingerprint multisets (and hence membership answers) evolve exactly as
    under scalar kicking.  Winners are processed in ascending item order so
    stream consumption matches a sequential scan draw for draw.

    Mutates ``table``, ``counts`` and ``out`` in place; the item arrays are
    consumed.  Returns ``(stash_fps, stash_origins, strag_fps, strag_cur,
    strag_origins, strag_kicks, placed, victim_counter)``: the stashed
    fingerprints/origin rows in stash order, the final <= ``scalar_cutoff``
    stragglers (the host settles them through its scalar kick loop, which
    costs less than another wave round), the number of slots filled (the
    host reconciles its occupancy total) and the advanced stream counter.
    """
    bucket_size = table.shape[1]
    stash_fps_parts: list[np.ndarray] = []
    stash_origins_parts: list[np.ndarray] = []
    placed_total = 0
    while item_fps.size > scalar_cutoff:
        rows, placed_buckets, slots, rem = plan_bulk_placement(table, counts, empty, cur)
        if rows.size:
            table[placed_buckets, slots] = item_fps[rows]
            np.add.at(counts, placed_buckets, 1)
            placed_total += int(placed_buckets.size)
            item_fps = item_fps[rem]
            cur = cur[rem]
            origins = origins[rem]
            kicks = kicks[rem]
            if item_fps.size == 0:
                break
        exhausted = kicks >= max_kicks
        if exhausted.any():
            stash_fps_parts.append(item_fps[exhausted])
            stash_origins_parts.append(origins[exhausted])
            out[origins[exhausted]] = False
            keep = ~exhausted
            item_fps = item_fps[keep]
            cur = cur[keep]
            origins = origins[keep]
            kicks = kicks[keep]
            if item_fps.size == 0:
                break
        if item_fps.size <= scalar_cutoff:
            break
        # One eviction per destination bucket this round; earliest item wins.
        _uniq, winners = np.unique(cur, return_index=True)
        winners.sort()
        victim_buckets = cur[winners]
        slots = victim_slots(victim_counter, winners.size, victim_seed, bucket_size)
        victim_counter += int(winners.size)
        victim_fps = table[victim_buckets, slots].astype(np.int64)
        table[victim_buckets, slots] = item_fps[winners]
        item_fps[winners] = victim_fps
        jumps = (
            mix64_many(victim_fps.astype(np.uint64) ^ np.uint64(jump_seed))
            & np.uint64(index_mask)
        ).astype(np.int64)
        cur[winners] = victim_buckets ^ jumps
        kicks[winners] += 1
    stash_fps = (
        np.concatenate(stash_fps_parts) if stash_fps_parts else _EMPTY_I64
    )
    stash_origins = (
        np.concatenate(stash_origins_parts) if stash_origins_parts else _EMPTY_I64
    )
    return (
        stash_fps,
        stash_origins,
        item_fps,
        cur,
        origins,
        kicks,
        placed_total,
        victim_counter,
    )


def make_backend() -> KernelBackend:
    """The always-available numpy reference backend."""
    return KernelBackend(
        name="numpy",
        pair_eq=pair_eq,
        grouped_ranks=grouped_ranks,
        plan_bulk_placement=plan_bulk_placement,
        delete_plan=delete_plan,
        wave_kick=wave_kick,
        info={"array_module": "numpy", "numpy_version": np.__version__},
    )
