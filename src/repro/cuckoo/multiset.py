"""Multiset cuckoo filter: the duplicate-key baseline of §4.3.

A regular cuckoo filter extended in the simplest possible way to multisets:
every insertion adds another copy of the key's fingerprint.  A key's two
buckets can hold at most ``2 * bucket_size`` copies, so heavily duplicated
keys exhaust their bucket pair and insertion fails — the failure mode that
Figure 4 quantifies and that the paper's chaining technique repairs.

Storage is the columnar :class:`~repro.cuckoo.buckets.SlotMatrix`; batch
`count_many`/`contains_many` probe the live fingerprint matrix directly.

``insert`` returns False at the first placement failure and latches
:attr:`failed`; experiment harnesses read the load factor at that point.
"""

from __future__ import annotations

import random
from typing import Sequence

import numpy as np

from repro.cuckoo.batch import FingerprintBatchMixin
from repro.cuckoo.buckets import SlotMatrix, fingerprint_fold, next_power_of_two
from repro.hashing.mixers import JumpCache, derive_seed, hash64

DEFAULT_MAX_KICKS = 500


class MultisetCuckooFilter(FingerprintBatchMixin):
    """Cuckoo filter that stores one fingerprint copy per insertion."""

    def __init__(
        self,
        num_buckets: int,
        bucket_size: int = 4,
        fingerprint_bits: int = 12,
        max_kicks: int = DEFAULT_MAX_KICKS,
        seed: int = 0,
        packed: bool = True,
    ) -> None:
        self.fingerprint_bits = fingerprint_bits
        self.max_kicks = max_kicks
        self.seed = seed
        self.packed = packed
        self.buckets = SlotMatrix(
            next_power_of_two(num_buckets),
            bucket_size,
            fp_bits=fingerprint_bits if packed else None,
        )
        self.num_items = 0
        self.failed = False
        self.stash: list[int] = []
        self._fp_mask = (1 << fingerprint_bits) - 1
        self._fp_fold = fingerprint_fold(fingerprint_bits)
        self._index_salt = derive_seed(seed, "mcf-index")
        self._fp_salt = derive_seed(seed, "mcf-fingerprint")
        self._jump_salt = derive_seed(seed, "mcf-jump")
        self._jump_cache = JumpCache(self._jump_salt, self.buckets.num_buckets - 1)
        self._rng = random.Random(derive_seed(seed, "mcf-rng"))

    # -- hashing ------------------------------------------------------------

    def fingerprint_of(self, key: object) -> int:
        """Return the fingerprint of ``key`` (boundary widths fold all-ones)."""
        fp = hash64(key, self._fp_salt) & self._fp_mask
        return 0 if fp == self._fp_fold else fp

    def home_index(self, key: object) -> int:
        """Return the primary bucket for ``key``."""
        return hash64(key, self._index_salt) & (self.buckets.num_buckets - 1)

    def _fp_jump(self, fingerprint: int) -> int:
        return self._jump_cache.jump(fingerprint)

    def alt_index(self, index: int, fingerprint: int) -> int:
        """Return the partner bucket of ``index`` for ``fingerprint``."""
        return index ^ self._fp_jump(fingerprint)

    # -- operations -----------------------------------------------------------

    def insert(self, key: object) -> bool:
        """Add one copy of ``key``; False once the bucket pair is exhausted."""
        return self._insert_hashed(self.fingerprint_of(key), self.home_index(key))

    def _insert_hashed(self, fp: int, i1: int) -> bool:
        """Placement kernel shared by `insert` and `insert_many`."""
        i2 = self.alt_index(i1, fp)
        self.num_items += 1
        if self.buckets.try_add(i1, fp) >= 0 or self.buckets.try_add(i2, fp) >= 0:
            return True
        return self._kick_residual(self._rng.choice((i1, i2)), fp, self.max_kicks)

    def contains(self, key: object) -> bool:
        """Return True if at least one copy of ``key`` may be present."""
        return self.count(key) > 0

    def __contains__(self, key: object) -> bool:
        return self.contains(key)

    def count(self, key: object) -> int:
        """Return the number of stored fingerprint copies matching ``key``.

        Upper-bounds the true multiplicity (fingerprint collisions inflate
        it); never undercounts an inserted key.
        """
        fp = self.fingerprint_of(key)
        i1 = self.home_index(key)
        i2 = self.alt_index(i1, fp)
        total = self.buckets.count_in_bucket(i1, fp)
        if i2 != i1:
            total += self.buckets.count_in_bucket(i2, fp)
        total += sum(1 for e in self.stash if e == fp)
        return total

    def count_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch `count`: fused copy counts over both buckets + stash.

        One `SlotMatrix.pair_eq` gather probes the live fingerprint matrix;
        answers are identical to scalar `count` per key with no snapshot
        rebuild after mutations.
        """
        fps = self.fingerprints_of_many(keys)
        homes = self.home_indices_of_many(keys)
        eq, alts = self._pair_eq_many(fps, homes)
        totals = eq[:, 0].sum(axis=1)
        totals += np.where(alts == homes, 0, eq[:, 1].sum(axis=1))
        if self.stash:
            stash = np.fromiter(self.stash, dtype=np.int64, count=len(self.stash))
            totals += (fps[:, None] == stash[None, :]).sum(axis=1)
        return totals

    def contains_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch `contains` (``count_many > 0``)."""
        return self.count_many(keys) > 0

    def delete(self, key: object) -> bool:
        """Remove one copy of ``key``; True if a fingerprint was removed."""
        return self._delete_hashed(self.fingerprint_of(key), self.home_index(key))

    def _delete_hashed(self, fp: int, i1: int) -> bool:
        """Removal kernel shared by `delete` and `delete_many`."""
        i2 = self.alt_index(i1, fp)
        for bucket in (i1, i2) if i1 != i2 else (i1,):
            if self.buckets.remove_fp(bucket, fp):
                self.num_items -= 1
                return True
        if fp in self.stash:
            self.stash.remove(fp)
            self.num_items -= 1
            return True
        return False

    def load_factor(self) -> float:
        """Fraction of table slots occupied."""
        return self.buckets.load_factor()

    def size_in_bits(self) -> int:
        """Table size: one fingerprint per slot."""
        return self.buckets.capacity * self.fingerprint_bits

    def __len__(self) -> int:
        return self.num_items

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultisetCuckooFilter(buckets={self.buckets.num_buckets}, "
            f"b={self.buckets.bucket_size}, items={self.num_items}, "
            f"load={self.load_factor():.3f}, failed={self.failed})"
        )
