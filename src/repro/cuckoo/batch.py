"""Shared batch machinery for fingerprint-per-slot cuckoo structures.

`CuckooFilter` and `MultisetCuckooFilter` store a bare integer fingerprint
in each slot and share identical batch hashing and placement/removal loops;
this mixin holds the single copy.  Host classes provide ``buckets`` (a
:class:`~repro.cuckoo.buckets.SlotMatrix`), ``_fp_salt``, ``_index_salt``,
``_jump_salt``, ``_fp_mask``, a ``num_items`` counter, and the scalar
kernels ``_insert_hashed`` / ``_delete_hashed``.

Batch *probes* live on the host classes and index ``buckets.fps`` — the live
columnar matrix — directly; there is no snapshot to build or invalidate
(DESIGN.md §6).  This module adds the other half of the columnar story: an
opt-in **bulk build** (`insert_many(..., bulk=True)`) that places the
conflict-free first wave with vectorised occupancy counting and runs the
sequential kick loop only on the residue.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.hashing.mixers import hash64_many_masked


class FingerprintBatchMixin:
    """Vectorised fingerprint/index derivation and bulk placement."""

    def fingerprints_of_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch `fingerprint_of` (int64 array, bit-identical per element)."""
        return hash64_many_masked(keys, self._fp_salt, self._fp_mask)

    def home_indices_of_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch `home_index` (int64 array, bit-identical per element)."""
        return hash64_many_masked(keys, self._index_salt, self.buckets.num_buckets - 1)

    def _fp_jump_many(self, fingerprints: np.ndarray) -> np.ndarray:
        """Batch `_fp_jump`, computed on the fly (bypasses the memo)."""
        return hash64_many_masked(fingerprints, self._jump_salt, self.buckets.num_buckets - 1)

    def insert_many(
        self, keys: Sequence[object] | np.ndarray, bulk: bool = False
    ) -> np.ndarray:
        """Insert a batch of keys; returns the per-key `insert` results.

        Default path (``bulk=False``): fingerprints and home buckets are
        derived in one vectorised pass; the residual placement loop (which
        is inherently sequential — each placement may displace earlier
        entries) runs per key.  State and results are bit-identical to
        calling `insert` in a loop.

        Bulk path (``bulk=True``): the conflict-free first wave — every key
        whose home bucket still has room, counted vectorised against the
        live occupancy column — is scattered into the fingerprint matrix in
        one pass; only the residue runs the sequential kick loop.  The
        resulting *placement* may differ from the scalar loop (first-wave
        keys never probe their alternate bucket and consume no kick RNG),
        but the membership contract is preserved exactly: every key is
        stored (or stashed) and `contains` has no false negatives.  See
        DESIGN.md §7.
        """
        fps = self.fingerprints_of_many(keys)
        homes = self.home_indices_of_many(keys)
        if bulk:
            return self._bulk_insert_hashed(fps, homes)
        out = np.empty(len(fps), dtype=bool)
        for i, (fp, home) in enumerate(zip(fps.tolist(), homes.tolist())):
            out[i] = self._insert_hashed(fp, home)
        return out

    def _bulk_insert_hashed(self, fps: np.ndarray, homes: np.ndarray) -> np.ndarray:
        """Vectorised first-wave placement; sequential kicks for the residue.

        The first wave fills each home bucket's free slots in key order:
        keys are ranked within their home bucket (stable sort), and the
        first ``bucket_size - counts[bucket]`` of them are written straight
        into that bucket's free slots — no per-key Python placement at all.
        Everything else (keys whose home bucket is already full, or whose
        rank exceeds the free room) goes through `_insert_hashed` in input
        order, exactly like the default path.
        """
        n = len(fps)
        out = np.ones(n, dtype=bool)
        if n == 0:
            return out
        # The (bucket, rank) -> free-slot assignment lives on SlotMatrix
        # (`plan_bulk_placement`), shared with store compaction.
        rows, placed_buckets, slots, residue = self.buckets.plan_bulk_placement(homes)
        if placed_buckets.size:
            self.buckets.fps[placed_buckets, slots] = fps[rows]
            self.buckets.note_bulk_placement(placed_buckets)
            self.num_items += int(placed_buckets.size)

        if residue.size:
            res_fps = fps[residue].tolist()
            res_homes = homes[residue].tolist()
            for i, fp, home in zip(residue.tolist(), res_fps, res_homes):
                out[i] = self._insert_hashed(fp, home)
        return out

    def delete_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Delete a batch of keys; returns the per-key `delete` results.

        Hashing is vectorised; removals run sequentially (each may free a
        slot the next key's removal inspects) and match a scalar loop
        exactly.  The usual deletion caveat applies per key.
        """
        fps = self.fingerprints_of_many(keys).tolist()
        homes = self.home_indices_of_many(keys).tolist()
        out = np.empty(len(fps), dtype=bool)
        for i, (fp, home) in enumerate(zip(fps, homes)):
            out[i] = self._delete_hashed(fp, home)
        return out
