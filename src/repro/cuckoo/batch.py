"""Shared batch machinery for fingerprint-per-slot cuckoo structures.

`CuckooFilter` and `MultisetCuckooFilter` store a bare integer fingerprint
in each slot and share identical batch hashing and placement/removal
kernels; this mixin holds the single copy.  Host classes provide ``buckets``
(a :class:`~repro.cuckoo.buckets.SlotMatrix`), ``_fp_salt``, ``_index_salt``,
``_jump_salt``, ``_fp_mask``, ``_fp_fold``, ``seed``, a ``num_items``
counter, ``stash``/``failed``, and the scalar kernels ``_insert_hashed`` /
``_delete_hashed``.

Three kernels run loop-free on the live columnar matrix (no snapshot to
build or invalidate; DESIGN.md §6, §9), all dispatched through the kernel
backend seam (`repro.kernels`, DESIGN.md §12):

* **Fused pair probe** — `contains_many`/`count_many` gather each key's home
  and alternate rows in one ``take`` over the (width-adaptive) fingerprint
  matrix (`SlotMatrix.pair_eq` → backend ``pair_eq``).
* **Wave eviction** — the opt-in bulk build (`insert_many(..., bulk=True)`)
  places the conflict-free first wave, then hands the kick residue to the
  backend ``wave_kick`` kernel: every in-flight item attempts its target
  bucket per round, conflicting evictions are resolved one-per-bucket, and
  only the final stragglers fall back to the scalar kick loop here.  Victim
  slots come from a stateless counter-based SplitMix64 stream (seed + stream
  position persisted on the host object), so every backend reproduces the
  same kick chains and no per-call RNG object is ever constructed.
* **Vectorised delete** — `delete_many` selects each key's first matching
  slot by rank over the pair equality mask, made conflict-safe for
  duplicate keys in one batch by rank-deduping within (fingerprint, pair)
  groups (backend ``delete_plan``); results and final state are
  bit-identical to a scalar loop.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import obs
from repro.hashing.mixers import _mixed_seed, derive_seed, hash64_many_masked
from repro.kernels import active_backend

#: Below this many surviving in-flight items a wave round costs more than the
#: scalar kick loop; the stragglers are settled sequentially instead.
WAVE_SCALAR_CUTOFF = 4

# Wave-eviction instrumentation: one record set per wave_kick call (never per
# key).  Relocations are counted from the victim-stream counter delta — each
# draw is exactly one eviction, and the counter advances identically on every
# backend, so this is the backend-stable kick-depth signal.
_WAVE_CALLS = obs.counter(
    "repro_wave_calls_total", "Bulk wave-eviction kernel invocations."
)
_WAVE_ITEMS = obs.counter(
    "repro_wave_items_total", "In-flight items handed to the wave kernel."
)
_WAVE_RELOCATIONS = obs.counter(
    "repro_wave_relocations_total",
    "Evictions performed by the wave kernel (victim-stream counter delta).",
)
_WAVE_STASH_SPILLS = obs.counter(
    "repro_wave_stash_spills_total",
    "Items whose kick chains exhausted max_kicks and spilled to the stash.",
)
_WAVE_STRAGGLERS = obs.counter(
    "repro_wave_stragglers_total",
    "Items settled by the scalar kick loop after the wave rounds.",
)
_WAVE_RELOCATION_HIST = obs.histogram(
    "repro_wave_relocations",
    "Evictions per wave_kick call (insert-depth distribution).",
)


class FingerprintBatchMixin:
    """Vectorised fingerprint/index derivation, probing, placement, removal."""

    def fingerprints_of_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch `fingerprint_of` (int64 array, bit-identical per element)."""
        return hash64_many_masked(keys, self._fp_salt, self._fp_mask, self._fp_fold)

    def home_indices_of_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch `home_index` (int64 array, bit-identical per element)."""
        return hash64_many_masked(keys, self._index_salt, self.buckets.num_buckets - 1)

    def _fp_jump_many(self, fingerprints: np.ndarray) -> np.ndarray:
        """Batch `_fp_jump`, computed on the fly (bypasses the memo)."""
        return hash64_many_masked(fingerprints, self._jump_salt, self.buckets.num_buckets - 1)

    def _pair_eq_many(self, fps: np.ndarray, homes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Fused probe of each key's bucket pair: ``((n, 2, b) mask, alts)``."""
        alts = homes ^ self._fp_jump_many(fps)
        return self.buckets.pair_eq(fps, homes, alts), alts

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert_many(
        self, keys: Sequence[object] | np.ndarray, bulk: bool = False
    ) -> np.ndarray:
        """Insert a batch of keys; returns the per-key `insert` results.

        Default path (``bulk=False``): fingerprints and home buckets are
        derived in one vectorised pass; the residual placement loop (which
        is inherently sequential — each placement may displace earlier
        entries) runs per key.  State and results are bit-identical to
        calling `insert` in a loop.

        Bulk path (``bulk=True``): the conflict-free first wave — every key
        whose home bucket still has room, counted vectorised against the
        live occupancy column — is scattered into the fingerprint matrix in
        one pass, and the residue runs the **wave eviction** kick loop
        (whole-residue rounds, scalar only for the final stragglers).  The
        resulting *placement* may differ from the scalar loop (first-wave
        keys never probe their alternate bucket, and wave kicks consume a
        separate RNG stream), but the membership contract is preserved
        exactly: every key is stored (or stashed) within its own bucket
        pair and `contains` has no false negatives.  See DESIGN.md §7/§9.
        """
        fps = self.fingerprints_of_many(keys)
        homes = self.home_indices_of_many(keys)
        if bulk:
            return self._bulk_insert_hashed(fps, homes)
        out = np.empty(len(fps), dtype=bool)
        for i, (fp, home) in enumerate(zip(fps.tolist(), homes.tolist())):
            out[i] = self._insert_hashed(fp, home)
        return out

    def _bulk_insert_hashed(self, fps: np.ndarray, homes: np.ndarray) -> np.ndarray:
        """Vectorised first-wave placement; wave eviction for the residue.

        The first wave fills each home bucket's free slots in key order:
        keys are ranked within their home bucket (stable sort), and the
        first ``bucket_size - counts[bucket]`` of them are written straight
        into that bucket's free slots — no per-key Python placement at all.
        Everything else (keys whose home bucket is already full, or whose
        rank exceeds the free room) becomes the in-flight set of
        `_wave_insert`.
        """
        n = len(fps)
        out = np.ones(n, dtype=bool)
        if n == 0:
            return out
        if not self.buckets.writeable:
            self.buckets.promote()
        # The (bucket, rank) -> free-slot assignment lives on SlotMatrix
        # (`plan_bulk_placement`), shared with store compaction.
        rows, placed_buckets, slots, residue = self.buckets.plan_bulk_placement(homes)
        if placed_buckets.size:
            self.buckets.fps[placed_buckets, slots] = fps[rows]
            self.buckets.note_bulk_placement(placed_buckets)
            self.num_items += int(placed_buckets.size)
        if residue.size:
            self._wave_insert(fps[residue], homes[residue], residue, out)
        return out

    def _wave_victim_seed(self) -> int:
        """The victim-slot stream seed (derived once, cached on the host).

        The wave kernel draws victim slots from a stateless SplitMix64
        stream keyed by this seed and a persistent counter
        (``_wave_victim_counter``) — the bulk path's separate "RNG stream"
        without any RNG object: nothing to construct per call, nothing to
        reseed, and any backend reproduces the draws from two integers.
        """
        seed = getattr(self, "_wave_victim_seed_val", None)
        if seed is None:
            seed = _mixed_seed(derive_seed(self.seed, "wave-kick"))
            self._wave_victim_seed_val = seed
            self._wave_victim_counter = 0
        return seed

    def _wave_insert(
        self, item_fps: np.ndarray, homes: np.ndarray, origins: np.ndarray, out: np.ndarray
    ) -> None:
        """Wave eviction: hand the kick residue to the backend kernel.

        Every in-flight item targets one bucket (initially the alternate —
        its home filled up in the first wave).  The backend ``wave_kick``
        kernel runs the rounds (place / stash exhausted chains / one
        eviction per contested bucket; see `repro.kernels.reference`)
        directly on the fingerprint and occupancy columns; this host wrapper
        owns everything object-shaped: the stash list, the ``failed`` latch,
        occupancy reconciliation, the victim-stream counter, and the final
        <= `WAVE_SCALAR_CUTOFF` stragglers, which settle through the scalar
        kick loop.  Evictions always stay within the victim's own bucket
        pair, so per-pair fingerprint multisets (and hence membership
        answers) evolve exactly as under scalar kicking; an item whose chain
        exhausts ``max_kicks`` evictions is stashed (DESIGN.md §1) and its
        originating key reports False.
        """
        buckets = self.buckets
        self.num_items += int(item_fps.size)
        if not buckets.writeable:
            buckets.promote()
        # Residue home buckets are full after the first wave: start at the
        # alternates, like the scalar kernel's second `try_add`.
        cur = homes ^ self._fp_jump_many(item_fps)
        victim_seed = self._wave_victim_seed()
        counter_before = self._wave_victim_counter
        (
            stash_fps,
            stash_origins,
            strag_fps,
            strag_cur,
            strag_origins,
            strag_kicks,
            placed,
            self._wave_victim_counter,
        ) = active_backend().wave_kick(
            buckets.fps,
            buckets.counts,
            buckets.empty,
            item_fps.copy(),
            cur,
            origins.copy(),
            np.zeros(item_fps.size, dtype=np.int64),
            out,
            self.max_kicks,
            buckets.num_buckets - 1,
            _mixed_seed(self._jump_salt),
            victim_seed,
            self._wave_victim_counter,
            WAVE_SCALAR_CUTOFF,
        )
        buckets.note_kernel_fills(placed)
        if obs.state.enabled:
            relocations = self._wave_victim_counter - counter_before
            _WAVE_CALLS.inc()
            _WAVE_ITEMS.inc(int(item_fps.size))
            _WAVE_RELOCATIONS.inc(relocations)
            _WAVE_STASH_SPILLS.inc(int(stash_fps.size))
            _WAVE_STRAGGLERS.inc(int(strag_fps.size))
            _WAVE_RELOCATION_HIST.observe(relocations)
        if stash_fps.size:
            self.stash.extend(stash_fps.tolist())
            self.failed = True
        for fp, bucket, origin, used in zip(
            strag_fps.tolist(), strag_cur.tolist(), strag_origins.tolist(),
            strag_kicks.tolist(),
        ):
            out[origin] &= self._settle_item(fp, bucket, used)

    def _settle_item(self, fp: int, bucket: int, kicks_used: int) -> bool:
        """Scalar finish for one in-flight wave item (remaining kick budget)."""
        if self.buckets.try_add(bucket, fp) >= 0:
            return True
        alt = self.alt_index(bucket, fp)
        if alt != bucket and self.buckets.try_add(alt, fp) >= 0:
            return True
        return self._kick_residual(self._rng.choice((bucket, alt)), fp, self.max_kicks - kicks_used)

    def _kick_residual(self, start: int, item: int, budget: int) -> bool:
        """The classic random-walk kick loop, shared by all scalar paths.

        Swaps the in-flight item into a random victim slot and continues
        with the victim at its alternate bucket, for at most ``budget``
        kicks; on exhaustion the in-flight item is stashed (DESIGN.md §1)
        and the structure latches ``failed``.
        """
        current = start
        for _ in range(max(0, budget)):
            victim_slot = self._rng.randrange(self.buckets.bucket_size)
            victim = self.buckets.fp_at(current, victim_slot)
            self.buckets.set_slot(current, victim_slot, item)
            item = victim
            current = self.alt_index(current, item)
            if self.buckets.try_add(current, item) >= 0:
                return True
        self.stash.append(item)
        self.failed = True
        return False

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Delete a batch of keys; returns the per-key `delete` results.

        Hashing, the pair probe and the slot clears are vectorised;
        results, cleared slots and final state match a scalar `delete` loop
        exactly (see `_delete_hashed_many`).  The usual deletion caveat
        applies per key.
        """
        fps = self.fingerprints_of_many(keys)
        homes = self.home_indices_of_many(keys)
        return self._delete_hashed_many(fps, homes)

    def _delete_hashed_many(self, fps: np.ndarray, homes: np.ndarray) -> np.ndarray:
        """Vectorised first-match deletion, bit-identical to the scalar loop.

        One fused pair probe snapshots every key's equality mask; each key
        then claims the slot a scalar loop would have cleared: the r-th
        batch occurrence of a (fingerprint, pair) group takes the group's
        r-th matching slot in home-then-alternate slot order (**rank
        deduping** — duplicate keys in one batch can never claim the same
        slot).  Distinct groups touch disjoint (bucket, fingerprint) slots,
        so the snapshot ranking equals sequential processing.  Only two
        residues run the scalar kernel, in batch order: groups whose
        members disagree on home orientation (two keys sharing a pair from
        opposite ends — their interleaved scans don't rank-decompose), and
        occurrences that overflow the table matches into the stash scan.
        The slot-claim plan is computed by the backend ``delete_plan``
        kernel (`repro.kernels`); this wrapper owns the mutation, the item
        counter and the scalar residue.
        """
        n = len(fps)
        out = np.zeros(n, dtype=bool)
        if n == 0:
            return out
        eq, alts = self._pair_eq_many(fps, homes)
        clear_buckets, clear_slots, deleted, scalar_rows, overflow = (
            active_backend().delete_plan(eq, fps, homes, alts)
        )
        if clear_buckets.size:
            self.buckets.clear_slots(clear_buckets, clear_slots)
        out[deleted] = True
        self.num_items -= int(out.sum())
        # Sequential residue, in batch order so stash copies are consumed
        # exactly as a scalar loop would consume them.
        if self.stash:
            residual = scalar_rows | overflow
        else:
            residual = scalar_rows
        for i in np.nonzero(residual)[0].tolist():
            if scalar_rows[i]:
                out[i] = self._delete_hashed(int(fps[i]), int(homes[i]))
            else:
                out[i] = self._stash_delete(int(fps[i]))
        return out

    def _stash_delete(self, fp: int) -> bool:
        """Remove one stashed copy of ``fp``; the tail of the scalar kernel."""
        if fp in self.stash:
            self.stash.remove(fp)
            self.num_items -= 1
            return True
        return False
