"""Shared batch machinery for fingerprint-per-slot cuckoo structures.

`CuckooFilter` and `MultisetCuckooFilter` store a bare integer fingerprint
in each slot and share identical batch hashing and placement/removal
kernels; this mixin holds the single copy.  Host classes provide ``buckets``
(a :class:`~repro.cuckoo.buckets.SlotMatrix`), ``_fp_salt``, ``_index_salt``,
``_jump_salt``, ``_fp_mask``, ``_fp_fold``, ``seed``, a ``num_items``
counter, ``stash``/``failed``, and the scalar kernels ``_insert_hashed`` /
``_delete_hashed``.

Three kernels are fully vectorised on the live columnar matrix (no snapshot
to build or invalidate; DESIGN.md §6, §9):

* **Fused pair probe** — `contains_many`/`count_many` gather each key's home
  and alternate rows in one ``take`` over the (width-adaptive) fingerprint
  matrix (`SlotMatrix.pair_eq`).
* **Wave eviction** — the opt-in bulk build (`insert_many(..., bulk=True)`)
  places the conflict-free first wave, then runs the kick residue in
  *waves*: every in-flight item attempts its target bucket per round
  (`plan_bulk_placement`), conflicting evictions are resolved one-per-bucket
  via ``np.unique``, and only the final stragglers fall back to the scalar
  kick loop.
* **Vectorised delete** — `delete_many` selects each key's first matching
  slot by rank over the pair equality mask, made conflict-safe for
  duplicate keys in one batch by rank-deduping within (fingerprint, pair)
  groups; results and final state are bit-identical to a scalar loop.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cuckoo.buckets import grouped_ranks
from repro.hashing.mixers import derive_seed, hash64_many_masked

#: Below this many surviving in-flight items a wave round costs more than the
#: scalar kick loop; the stragglers are settled sequentially instead.
WAVE_SCALAR_CUTOFF = 4


class FingerprintBatchMixin:
    """Vectorised fingerprint/index derivation, probing, placement, removal."""

    def fingerprints_of_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch `fingerprint_of` (int64 array, bit-identical per element)."""
        return hash64_many_masked(keys, self._fp_salt, self._fp_mask, self._fp_fold)

    def home_indices_of_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch `home_index` (int64 array, bit-identical per element)."""
        return hash64_many_masked(keys, self._index_salt, self.buckets.num_buckets - 1)

    def _fp_jump_many(self, fingerprints: np.ndarray) -> np.ndarray:
        """Batch `_fp_jump`, computed on the fly (bypasses the memo)."""
        return hash64_many_masked(fingerprints, self._jump_salt, self.buckets.num_buckets - 1)

    def _pair_eq_many(self, fps: np.ndarray, homes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Fused probe of each key's bucket pair: ``((n, 2, b) mask, alts)``."""
        alts = homes ^ self._fp_jump_many(fps)
        return self.buckets.pair_eq(fps, homes, alts), alts

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert_many(
        self, keys: Sequence[object] | np.ndarray, bulk: bool = False
    ) -> np.ndarray:
        """Insert a batch of keys; returns the per-key `insert` results.

        Default path (``bulk=False``): fingerprints and home buckets are
        derived in one vectorised pass; the residual placement loop (which
        is inherently sequential — each placement may displace earlier
        entries) runs per key.  State and results are bit-identical to
        calling `insert` in a loop.

        Bulk path (``bulk=True``): the conflict-free first wave — every key
        whose home bucket still has room, counted vectorised against the
        live occupancy column — is scattered into the fingerprint matrix in
        one pass, and the residue runs the **wave eviction** kick loop
        (whole-residue rounds, scalar only for the final stragglers).  The
        resulting *placement* may differ from the scalar loop (first-wave
        keys never probe their alternate bucket, and wave kicks consume a
        separate RNG stream), but the membership contract is preserved
        exactly: every key is stored (or stashed) within its own bucket
        pair and `contains` has no false negatives.  See DESIGN.md §7/§9.
        """
        fps = self.fingerprints_of_many(keys)
        homes = self.home_indices_of_many(keys)
        if bulk:
            return self._bulk_insert_hashed(fps, homes)
        out = np.empty(len(fps), dtype=bool)
        for i, (fp, home) in enumerate(zip(fps.tolist(), homes.tolist())):
            out[i] = self._insert_hashed(fp, home)
        return out

    def _bulk_insert_hashed(self, fps: np.ndarray, homes: np.ndarray) -> np.ndarray:
        """Vectorised first-wave placement; wave eviction for the residue.

        The first wave fills each home bucket's free slots in key order:
        keys are ranked within their home bucket (stable sort), and the
        first ``bucket_size - counts[bucket]`` of them are written straight
        into that bucket's free slots — no per-key Python placement at all.
        Everything else (keys whose home bucket is already full, or whose
        rank exceeds the free room) becomes the in-flight set of
        `_wave_insert`.
        """
        n = len(fps)
        out = np.ones(n, dtype=bool)
        if n == 0:
            return out
        # The (bucket, rank) -> free-slot assignment lives on SlotMatrix
        # (`plan_bulk_placement`), shared with store compaction.
        rows, placed_buckets, slots, residue = self.buckets.plan_bulk_placement(homes)
        if placed_buckets.size:
            self.buckets.fps[placed_buckets, slots] = fps[rows]
            self.buckets.note_bulk_placement(placed_buckets)
            self.num_items += int(placed_buckets.size)
        if residue.size:
            self._wave_insert(fps[residue], homes[residue], residue, out)
        return out

    def _wave_rng(self) -> np.random.Generator:
        """The bulk path's victim-slot RNG (separate stream from `_rng`)."""
        rng = getattr(self, "_wave_rng_obj", None)
        if rng is None:
            rng = np.random.default_rng(derive_seed(self.seed, "wave-kick"))
            self._wave_rng_obj = rng
        return rng

    def _wave_insert(
        self, item_fps: np.ndarray, homes: np.ndarray, origins: np.ndarray, out: np.ndarray
    ) -> None:
        """Wave eviction: process the whole kick residue per round.

        Every in-flight item targets one bucket (initially the alternate —
        its home filled up in the first wave).  Each round first places
        every item whose target has room (`plan_bulk_placement`, conflicts
        rank-resolved), then performs **one eviction per contested bucket**
        (``np.unique`` picks the earliest item; losers retry next round
        against the winner-free bucket): the winner swaps into a random
        victim slot and continues as the victim, bound for the victim's
        alternate bucket — always within the victim's own pair, so per-pair
        fingerprint multisets (and hence membership answers) evolve exactly
        as under scalar kicking.  An item whose chain exhausts ``max_kicks``
        evictions is stashed (DESIGN.md §1) and its originating key reports
        False.  The final stragglers settle through the scalar kick loop.
        """
        buckets = self.buckets
        self.num_items += int(item_fps.size)
        # Residue home buckets are full after the first wave: start at the
        # alternates, like the scalar kernel's second `try_add`.
        cur = homes ^ self._fp_jump_many(item_fps)
        item_fps = item_fps.copy()
        origins = origins.copy()
        kicks = np.zeros(item_fps.size, dtype=np.int64)
        rng = self._wave_rng()
        while item_fps.size:
            if item_fps.size <= WAVE_SCALAR_CUTOFF:
                for fp, bucket, origin, used in zip(
                    item_fps.tolist(), cur.tolist(), origins.tolist(), kicks.tolist()
                ):
                    out[origin] &= self._settle_item(fp, bucket, used)
                return
            rows, placed_buckets, slots, rem = buckets.plan_bulk_placement(cur)
            if rows.size:
                buckets.fps[placed_buckets, slots] = item_fps[rows]
                buckets.note_bulk_placement(placed_buckets)
                if rem.size == 0:
                    return
                item_fps = item_fps[rem]
                cur = cur[rem]
                origins = origins[rem]
                kicks = kicks[rem]
            exhausted = kicks >= self.max_kicks
            if exhausted.any():
                for fp, origin in zip(
                    item_fps[exhausted].tolist(), origins[exhausted].tolist()
                ):
                    self.stash.append(fp)
                    out[origin] = False
                self.failed = True
                keep = ~exhausted
                item_fps = item_fps[keep]
                cur = cur[keep]
                origins = origins[keep]
                kicks = kicks[keep]
                if not item_fps.size:
                    return
            # One eviction per destination bucket this round.
            _uniq, winners = np.unique(cur, return_index=True)
            victim_buckets = cur[winners]
            victim_slots = rng.integers(0, buckets.bucket_size, size=winners.size)
            victim_fps = buckets.fps[victim_buckets, victim_slots].astype(np.int64)
            buckets.fps[victim_buckets, victim_slots] = item_fps[winners]
            item_fps[winners] = victim_fps
            cur[winners] = victim_buckets ^ self._fp_jump_many(victim_fps)
            kicks[winners] += 1

    def _settle_item(self, fp: int, bucket: int, kicks_used: int) -> bool:
        """Scalar finish for one in-flight wave item (remaining kick budget)."""
        if self.buckets.try_add(bucket, fp) >= 0:
            return True
        alt = self.alt_index(bucket, fp)
        if alt != bucket and self.buckets.try_add(alt, fp) >= 0:
            return True
        return self._kick_residual(self._rng.choice((bucket, alt)), fp, self.max_kicks - kicks_used)

    def _kick_residual(self, start: int, item: int, budget: int) -> bool:
        """The classic random-walk kick loop, shared by all scalar paths.

        Swaps the in-flight item into a random victim slot and continues
        with the victim at its alternate bucket, for at most ``budget``
        kicks; on exhaustion the in-flight item is stashed (DESIGN.md §1)
        and the structure latches ``failed``.
        """
        current = start
        for _ in range(max(0, budget)):
            victim_slot = self._rng.randrange(self.buckets.bucket_size)
            victim = self.buckets.fp_at(current, victim_slot)
            self.buckets.set_slot(current, victim_slot, item)
            item = victim
            current = self.alt_index(current, item)
            if self.buckets.try_add(current, item) >= 0:
                return True
        self.stash.append(item)
        self.failed = True
        return False

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Delete a batch of keys; returns the per-key `delete` results.

        Hashing, the pair probe and the slot clears are vectorised;
        results, cleared slots and final state match a scalar `delete` loop
        exactly (see `_delete_hashed_many`).  The usual deletion caveat
        applies per key.
        """
        fps = self.fingerprints_of_many(keys)
        homes = self.home_indices_of_many(keys)
        return self._delete_hashed_many(fps, homes)

    def _delete_hashed_many(self, fps: np.ndarray, homes: np.ndarray) -> np.ndarray:
        """Vectorised first-match deletion, bit-identical to the scalar loop.

        One fused pair probe snapshots every key's equality mask; each key
        then claims the slot a scalar loop would have cleared: the r-th
        batch occurrence of a (fingerprint, pair) group takes the group's
        r-th matching slot in home-then-alternate slot order (**rank
        deduping** — duplicate keys in one batch can never claim the same
        slot).  Distinct groups touch disjoint (bucket, fingerprint) slots,
        so the snapshot ranking equals sequential processing.  Only two
        residues run the scalar kernel, in batch order: groups whose
        members disagree on home orientation (two keys sharing a pair from
        opposite ends — their interleaved scans don't rank-decompose), and
        occurrences that overflow the table matches into the stash scan.
        """
        n = len(fps)
        out = np.zeros(n, dtype=bool)
        if n == 0:
            return out
        eq, alts = self._pair_eq_many(fps, homes)
        eq_home = eq[:, 0]
        eq_alt = eq[:, 1]
        match_home = eq_home.sum(axis=1)
        match_alt = np.where(alts == homes, 0, eq_alt.sum(axis=1))
        # Rank each row within its (fingerprint, pair) group, in batch order.
        pair_lo = np.minimum(homes, alts)
        order, boundary, group_start, sorted_rank = grouped_ranks(fps, pair_lo)
        rank = np.empty(n, dtype=np.int64)
        rank[order] = sorted_rank
        # Groups probing one pair from both ends fall back to the scalar
        # kernel (their home/alt scan orders interleave).
        gid = np.cumsum(boundary) - 1
        differs = homes[order] != homes[order[group_start]]
        group_mixed = np.zeros(int(gid[-1]) + 1, dtype=bool)
        np.logical_or.at(group_mixed, gid, differs)
        scalar_rows = np.empty(n, dtype=bool)
        scalar_rows[order] = group_mixed[gid]

        vec = ~scalar_rows
        take_home = vec & (rank < match_home)
        take_alt = vec & ~take_home & (rank < match_home + match_alt)
        overflow = vec & ~take_home & ~take_alt
        rows = np.nonzero(take_home)[0]
        if rows.size:
            csum = np.cumsum(eq_home[rows], axis=1)
            slots = (csum == (rank[rows] + 1)[:, None]).argmax(axis=1)
            self.buckets.clear_slots(homes[rows], slots)
            out[rows] = True
        rows = np.nonzero(take_alt)[0]
        if rows.size:
            csum = np.cumsum(eq_alt[rows], axis=1)
            slots = (csum == (rank[rows] - match_home[rows] + 1)[:, None]).argmax(axis=1)
            self.buckets.clear_slots(alts[rows], slots)
            out[rows] = True
        self.num_items -= int(out.sum())
        # Sequential residue, in batch order so stash copies are consumed
        # exactly as a scalar loop would consume them.
        if self.stash:
            residual = scalar_rows | overflow
        else:
            residual = scalar_rows
        for i in np.nonzero(residual)[0].tolist():
            if scalar_rows[i]:
                out[i] = self._delete_hashed(int(fps[i]), int(homes[i]))
            else:
                out[i] = self._stash_delete(int(fps[i]))
        return out

    def _stash_delete(self, fp: int) -> bool:
        """Remove one stashed copy of ``fp``; the tail of the scalar kernel."""
        if fp in self.stash:
            self.stash.remove(fp)
            self.num_items -= 1
            return True
        return False
