"""Shared batch machinery for fingerprint-per-slot cuckoo structures.

`CuckooFilter` and `MultisetCuckooFilter` store a bare integer fingerprint
in each slot and share identical batch hashing, placement/removal loops and
snapshot logic; this mixin holds the single copy.  Host classes provide
``buckets``, ``_fp_salt``, ``_index_salt``, ``_jump_salt``, ``_fp_mask``, a
``_snapshot`` cache attribute (initialised to None), and the scalar kernels
``_insert_hashed`` / ``_delete_hashed``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.hashing.mixers import hash64_many_masked


class FingerprintBatchMixin:
    """Vectorised fingerprint/index derivation and a cached table snapshot."""

    def fingerprints_of_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch `fingerprint_of` (int64 array, bit-identical per element)."""
        return hash64_many_masked(keys, self._fp_salt, self._fp_mask)

    def home_indices_of_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch `home_index` (int64 array, bit-identical per element)."""
        return hash64_many_masked(keys, self._index_salt, self.buckets.num_buckets - 1)

    def _fp_jump_many(self, fingerprints: np.ndarray) -> np.ndarray:
        """Batch `_fp_jump`, computed on the fly (bypasses the memo)."""
        return hash64_many_masked(fingerprints, self._jump_salt, self.buckets.num_buckets - 1)

    def insert_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Insert a batch of keys; returns the per-key `insert` results.

        Fingerprints and home buckets are derived in one vectorised pass;
        only the residual placement loop (which is inherently sequential —
        each placement may displace earlier entries) runs per key.  State and
        results are bit-identical to calling `insert` in a loop.
        """
        fps = self.fingerprints_of_many(keys).tolist()
        homes = self.home_indices_of_many(keys).tolist()
        out = np.empty(len(fps), dtype=bool)
        for i, (fp, home) in enumerate(zip(fps, homes)):
            out[i] = self._insert_hashed(fp, home)
        return out

    def delete_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Delete a batch of keys; returns the per-key `delete` results.

        Hashing is vectorised; removals run sequentially (each may free a
        slot the next key's removal inspects) and match a scalar loop
        exactly.  The usual deletion caveat applies per key.
        """
        fps = self.fingerprints_of_many(keys).tolist()
        homes = self.home_indices_of_many(keys).tolist()
        out = np.empty(len(fps), dtype=bool)
        for i, (fp, home) in enumerate(zip(fps, homes)):
            out[i] = self._delete_hashed(fp, home)
        return out

    def _fp_table(self) -> np.ndarray:
        """An ``(m, b)`` int64 snapshot of the slot fingerprints (-1 = empty).

        Cached against the bucket array's mutation counter, so query-heavy
        phases pay the O(table) rebuild at most once per mutation batch.
        """
        version = self.buckets.version
        snapshot = self._snapshot
        if snapshot is None or snapshot[0] != version:
            slots = self.buckets.storage
            flat = np.fromiter(
                (-1 if e is None else e for e in slots), dtype=np.int64, count=len(slots)
            )
            snapshot = (version, flat.reshape(self.buckets.num_buckets, self.buckets.bucket_size))
            self._snapshot = snapshot
        return snapshot[1]

    #: Amortisation state for `_prefer_scalar_probe` (class-level defaults;
    #: instances shadow them on first use).
    _scalar_probe_version = -1
    _scalar_probe_rows = 0

    def _prefer_scalar_probe(self, count: int) -> bool:
        """Should a probe batch of ``count`` keys skip the snapshot path?

        Rebuilding the O(table) snapshot for a tiny batch right after a
        mutation costs more than probing those keys through the scalar
        methods.  Scalar-path rows are accumulated per table state so
        repeated small batches eventually build the snapshot and converge to
        the vector path; either path answers identically, so this is purely
        a cost decision (mirrors the CCF layer's `_prefer_scalar_batch`).
        """
        snapshot = self._snapshot
        version = self.buckets.version
        if snapshot is not None and snapshot[0] == version:
            return False
        if self._scalar_probe_version != version:
            self._scalar_probe_version = version
            self._scalar_probe_rows = 0
        if 4 * (self._scalar_probe_rows + count) < self.buckets.num_buckets:
            self._scalar_probe_rows += count
            return True
        return False
