"""Chained cuckoo hash table: an exact multimap via the §6.2 chaining idea.

§11 observes that "the chaining technique can also be used to allow regular
cuckoo hash tables, which store the full key, to store duplicates".  This
module implements that extension: a (key -> set of values) multimap with
cuckoo placement, where a key overflows into further bucket pairs once a
pair holds ``max_dupes`` of its entries.

Because full keys are stored, the chain geometry can be derived per level:
level ``j`` of a key hashes to the pair ``(h1(key, j), h2(key, j))``.  The
Lemma 1/2 reasoning carries over: a pair never holds more than ``max_dupes``
entries of one key, kicks relocate entries only within their own (level)
pair, and a lookup stops at the first pair holding fewer than ``max_dupes``
entries of the key.

Removal cannot simply clear a slot — that would open a gap in the chain and
hide deeper values — so removed entries become *tombstones* that keep the
chain walkable; a tombstone slot is reused by later insertions of the same
key (and only the same key).
"""

from __future__ import annotations

import random
from typing import Any, Iterator

from repro.cuckoo.buckets import SlotMatrix, next_power_of_two
from repro.hashing.mixers import derive_seed, hash64

DEFAULT_MAX_KICKS = 200
#: Safety bound on chain levels walked (a key cannot use more pairs than
#: buckets exist).
_MAX_LEVELS_FACTOR = 1


class _Entry:
    """One stored (key, value) pair; ``alive`` is False for tombstones."""

    __slots__ = ("key", "value", "level", "alive")

    def __init__(self, key: object, value: Any, level: int, alive: bool = True) -> None:
        self.key = key
        self.value = value
        self.level = level
        self.alive = alive

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = "" if self.alive else " (tombstone)"
        return f"_Entry({self.key!r} -> {self.value!r}, level={self.level}{flag})"


class ChainedCuckooHashTable:
    """An exact set-multimap (key -> distinct values) with chained overflow."""

    def __init__(
        self,
        num_buckets: int = 16,
        bucket_size: int = 4,
        max_dupes: int = 3,
        max_kicks: int = DEFAULT_MAX_KICKS,
        seed: int = 0,
    ) -> None:
        if max_dupes < 1:
            raise ValueError("max_dupes must be at least 1")
        if max_dupes > 2 * bucket_size:
            raise ValueError("max_dupes cannot exceed a pair's 2b slots")
        self.bucket_size = bucket_size
        self.max_dupes = max_dupes
        self.max_kicks = max_kicks
        self.seed = seed
        self.num_resizes = 0
        self._rng = random.Random(derive_seed(seed, "ccht-rng"))
        self._generation = 0
        self._init_table(next_power_of_two(num_buckets))

    def _init_table(self, num_buckets: int) -> None:
        # 63-bit (key, level) digests in a packed uint64 column, matching
        # the plain hash table's width-adaptive storage.
        self.buckets = SlotMatrix(num_buckets, self.bucket_size, with_payloads=True, fp_bits=63)
        self._salt1 = derive_seed(self.seed, "ccht-h1", self._generation)
        self._salt2 = derive_seed(self.seed, "ccht-h2", self._generation)
        self._count = 0

    # -- geometry -----------------------------------------------------------

    def _digest(self, key: object, level: int) -> int:
        """Typed-column digest of a (key, level) pair (63 bits, home = low bits)."""
        return hash64((key, level), self._salt1) & ((1 << 63) - 1)

    def _pair(self, key: object, level: int) -> tuple[int, int]:
        mask = self.buckets.num_buckets - 1
        left = hash64((key, level), self._salt1) & mask
        right = hash64((key, level), self._salt2) & mask
        return left, right

    def _pair_buckets(self, key: object, level: int) -> tuple[int, ...]:
        left, right = self._pair(key, level)
        return (left,) if left == right else (left, right)

    def _key_entries(self, key: object, level: int) -> list[tuple[int, int, _Entry]]:
        """(bucket, slot, entry) triples for ``key`` at chain ``level``."""
        found = []
        digest = self._digest(key, level)
        for bucket in self._pair_buckets(key, level):
            for slot, stored_digest, entry in self.buckets.iter_slots(bucket):
                if stored_digest == digest and entry.key == key and entry.level == level:
                    found.append((bucket, slot, entry))
        return found

    def _max_levels(self) -> int:
        return max(2, self.buckets.num_buckets * _MAX_LEVELS_FACTOR)

    # -- operations -----------------------------------------------------------

    def add(self, key: object, value: Any) -> bool:
        """Add ``value`` to ``key``'s set; returns False if already present."""
        for level in range(self._max_levels()):
            slots = self._key_entries(key, level)
            for _bucket, _slot, entry in slots:
                if entry.alive and entry.value == value:
                    return False
            # Reuse a tombstone of the same key first: it keeps pair counts
            # (and hence chain walks) unchanged.
            for _bucket, _slot, entry in slots:
                if not entry.alive:
                    entry.value = value
                    entry.alive = True
                    self._count += 1
                    return True
            if len(slots) >= self.max_dupes:
                continue
            orphan = self._place(_Entry(key, value, level))
            if orphan is None:
                self._count += 1
                return True
            # Placement failed even after kicks: the new entry was swapped
            # into the table but ``orphan`` (the last displaced victim) was
            # not.  Grow the table carrying it along; the rebuild recounts.
            self._resize(orphan)
            return True
        raise RuntimeError("chain walk exhausted; table pathologically small")

    def _place(self, entry: _Entry) -> "_Entry | None":
        """Cuckoo placement; returns the displaced orphan on failure."""
        left, right = self._pair(entry.key, entry.level)
        if self.buckets.try_add(left, self._digest(entry.key, entry.level), entry) >= 0:
            return None
        current = right
        item = entry
        for _ in range(self.max_kicks):
            if self.buckets.try_add(current, self._digest(item.key, item.level), item) >= 0:
                return None
            victim_slot = self._rng.randrange(self.bucket_size)
            victim = self.buckets.payload_at(current, victim_slot)
            self.buckets.set_slot(
                current, victim_slot, self._digest(item.key, item.level), item
            )
            item = victim
            a, b = self._pair(item.key, item.level)
            current = b if current == a else a
        return item

    def _resize(self, orphan: _Entry) -> None:
        """Double the table and re-add every live pair plus the orphan.

        Re-adding goes through :meth:`add`, so a nested overflow triggers a
        nested resize; entries added so far are preserved by the nested
        rebuild and the remaining ones continue into the newest table.
        """
        entries = [entry for _, _, _digest, entry in self.buckets.iter_entries()]
        entries.append(orphan)
        alive = [(e.key, e.value) for e in entries if e.alive]
        self._generation += 1
        self.num_resizes += 1
        self._init_table(self.buckets.num_buckets * 2)
        for key, value in alive:
            self.add(key, value)

    def get(self, key: object) -> list[Any]:
        """Return all values stored for ``key`` (exact, in chain order)."""
        values: list[Any] = []
        for level in range(self._max_levels()):
            slots = self._key_entries(key, level)
            values.extend(entry.value for _b, _s, entry in slots if entry.alive)
            if len(slots) < self.max_dupes:
                break
        return values

    def contains(self, key: object, value: Any | None = None) -> bool:
        """Key (or key+value) membership, exact."""
        if value is None:
            return bool(self.get(key))
        return value in self.get(key)

    def __contains__(self, key: object) -> bool:
        return self.contains(key)

    def remove(self, key: object, value: Any) -> bool:
        """Remove one (key, value); leaves a chain-preserving tombstone."""
        for level in range(self._max_levels()):
            slots = self._key_entries(key, level)
            for _bucket, _slot, entry in slots:
                if entry.alive and entry.value == value:
                    entry.alive = False
                    self._count -= 1
                    return True
            if len(slots) < self.max_dupes:
                return False
        return False

    def count(self, key: object) -> int:
        """Number of live values stored for ``key``."""
        return len(self.get(key))

    def __len__(self) -> int:
        return self._count

    def items(self) -> Iterator[tuple[object, Any]]:
        """Yield all live (key, value) pairs (arbitrary order)."""
        for _bucket, _slot, _digest, entry in self.buckets.iter_entries():
            if entry.alive:
                yield entry.key, entry.value

    def load_factor(self) -> float:
        """Occupied slots (including tombstones) over capacity."""
        return self.buckets.load_factor()

    def check_invariants(self) -> None:
        """Per-(key, level) slot count never exceeds max_dupes."""
        counts: dict[tuple[object, int], int] = {}
        for _bucket, _slot, _digest, entry in self.buckets.iter_entries():
            signature = (entry.key, entry.level)
            counts[signature] = counts.get(signature, 0) + 1
        for (key, level), count in counts.items():
            if count > self.max_dupes:
                raise AssertionError(
                    f"key {key!r} holds {count} > d={self.max_dupes} entries at level {level}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChainedCuckooHashTable(buckets={self.buckets.num_buckets}, "
            f"b={self.bucket_size}, d={self.max_dupes}, items={self._count}, "
            f"load={self.load_factor():.3f})"
        )
