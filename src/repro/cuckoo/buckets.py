"""Bucketed slot storage shared by every cuckoo structure in the repository.

A :class:`BucketArray` is a fixed grid of ``num_buckets x bucket_size`` slots,
each holding either ``None`` (empty) or an arbitrary entry object.  All cuckoo
structures (hash table, filter, conditional filters) sit on top of it; it
knows nothing about hashing or collision policy.

``num_buckets`` must be a power of two because partial-key cuckoo hashing
derives the alternate bucket with XOR (§4.2 of the paper), which only stays
in range for power-of-two table sizes.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator


def next_power_of_two(n: int) -> int:
    """Return the smallest power of two >= n (minimum 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def is_power_of_two(n: int) -> bool:
    """Return True if n is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


class BucketArray:
    """Fixed array of buckets, each with ``bucket_size`` object slots."""

    __slots__ = ("num_buckets", "bucket_size", "_slots", "_filled", "_version")

    def __init__(self, num_buckets: int, bucket_size: int) -> None:
        if not is_power_of_two(num_buckets):
            raise ValueError(f"num_buckets must be a power of two, got {num_buckets}")
        if bucket_size < 1:
            raise ValueError("bucket_size must be at least 1")
        self.num_buckets = num_buckets
        self.bucket_size = bucket_size
        self._slots: list[Any] = [None] * (num_buckets * bucket_size)
        self._filled = 0
        self._version = 0

    # -- basic slot access ------------------------------------------------

    def _base(self, bucket: int) -> int:
        if not 0 <= bucket < self.num_buckets:
            raise IndexError(f"bucket {bucket} out of range")
        return bucket * self.bucket_size

    def get_slot(self, bucket: int, slot: int) -> Any:
        """Return the entry at (bucket, slot), or None."""
        if not 0 <= slot < self.bucket_size:
            raise IndexError(f"slot {slot} out of range")
        return self._slots[self._base(bucket) + slot]

    def set_slot(self, bucket: int, slot: int, entry: Any) -> None:
        """Overwrite the entry at (bucket, slot); entry may be None."""
        if not 0 <= slot < self.bucket_size:
            raise IndexError(f"slot {slot} out of range")
        index = self._base(bucket) + slot
        before = self._slots[index]
        self._slots[index] = entry
        self._version += 1
        if before is None and entry is not None:
            self._filled += 1
        elif before is not None and entry is None:
            self._filled -= 1

    # -- bucket-level operations ------------------------------------------

    def entries(self, bucket: int) -> list[Any]:
        """Return the non-empty entries of a bucket (in slot order)."""
        base = self._base(bucket)
        return [e for e in self._slots[base : base + self.bucket_size] if e is not None]

    def iter_slots(self, bucket: int) -> Iterator[tuple[int, Any]]:
        """Yield (slot, entry) for non-empty slots of a bucket."""
        base = self._base(bucket)
        for slot in range(self.bucket_size):
            entry = self._slots[base + slot]
            if entry is not None:
                yield slot, entry

    def count(self, bucket: int) -> int:
        """Return the number of occupied slots in a bucket."""
        base = self._base(bucket)
        return sum(1 for e in self._slots[base : base + self.bucket_size] if e is not None)

    def is_full(self, bucket: int) -> bool:
        """Return True if the bucket has no free slot."""
        base = self._base(bucket)
        return all(e is not None for e in self._slots[base : base + self.bucket_size])

    def try_add(self, bucket: int, entry: Any) -> bool:
        """Place ``entry`` in the first free slot of ``bucket``; False if full."""
        if entry is None:
            raise ValueError("cannot store None as an entry")
        base = self._base(bucket)
        for slot in range(self.bucket_size):
            if self._slots[base + slot] is None:
                self._slots[base + slot] = entry
                self._filled += 1
                self._version += 1
                return True
        return False

    def remove(self, bucket: int, predicate: Callable[[Any], bool]) -> Any:
        """Remove and return the first entry matching ``predicate``, or None."""
        base = self._base(bucket)
        for slot in range(self.bucket_size):
            entry = self._slots[base + slot]
            if entry is not None and predicate(entry):
                self._slots[base + slot] = None
                self._filled -= 1
                self._version += 1
                return entry
        return None

    def find(self, bucket: int, predicate: Callable[[Any], bool]) -> list[Any]:
        """Return all entries in the bucket matching ``predicate``."""
        return [e for e in self.entries(bucket) if predicate(e)]

    # -- whole-table statistics -------------------------------------------

    @property
    def storage(self) -> list[Any]:
        """The flat slot list (bucket-major).  Exposed for hot read paths
        that cannot afford per-bucket list allocation; treat as read-only."""
        return self._slots

    @property
    def capacity(self) -> int:
        """Total number of slots."""
        return self.num_buckets * self.bucket_size

    @property
    def filled(self) -> int:
        """Number of occupied slots."""
        return self._filled

    @property
    def version(self) -> int:
        """Mutation counter, bumped on every slot write.

        Batch query paths key their numpy snapshots of the table on this, so
        a snapshot is rebuilt only after the table actually changed.
        """
        return self._version

    def load_factor(self) -> float:
        """Fraction of slots occupied."""
        return self._filled / self.capacity

    def iter_entries(self) -> Iterator[tuple[int, int, Any]]:
        """Yield (bucket, slot, entry) for every occupied slot."""
        size = self.bucket_size
        for index, entry in enumerate(self._slots):
            if entry is not None:
                yield index // size, index % size, entry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BucketArray(num_buckets={self.num_buckets}, bucket_size={self.bucket_size}, "
            f"load={self.load_factor():.3f})"
        )
