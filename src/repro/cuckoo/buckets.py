"""Columnar slot storage shared by every cuckoo structure in the repository.

A :class:`SlotMatrix` is the repository's storage engine: a contiguous
``(num_buckets, bucket_size)`` int64 **fingerprint matrix** (``EMPTY`` = -1
marks a free slot) plus a per-bucket **occupancy-count column**, and — for
structures that carry rich per-slot data (hash-table pairs, Bloom entries,
converted groups) — an optional parallel **payload column** of Python
objects.  All cuckoo structures (hash table, filter, conditional filters)
sit on top of it; it knows nothing about hashing or collision policy.

The typed matrix is the *single source of truth*: scalar kernels mutate it
directly and batch kernels index the very same live array, so there is no
snapshot to rebuild after a mutation and no drift between representations.
Mutation-then-probe workloads are therefore snapshot-free by construction
(see DESIGN.md §6, "Columnar storage contract").

``num_buckets`` must be a power of two because partial-key cuckoo hashing
derives the alternate bucket with XOR (§4.2 of the paper), which only stays
in range for power-of-two table sizes.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

#: Sentinel for a free slot in the fingerprint matrix.  Every stored
#: fingerprint/digest is non-negative, so -1 is unambiguous.
EMPTY = -1


def next_power_of_two(n: int) -> int:
    """Return the smallest power of two >= n (minimum 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def is_power_of_two(n: int) -> bool:
    """Return True if n is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


class SlotMatrix:
    """Columnar ``num_buckets x bucket_size`` slot storage.

    Columns:

    * ``fps`` — the live ``(num_buckets, bucket_size)`` int64 fingerprint
      matrix (``EMPTY`` = -1).  Batch probes fancy-index this array directly.
    * ``counts`` — per-bucket occupancy counts (int64, length
      ``num_buckets``); the bulk-build first wave sizes its conflict-free
      placements from this column without touching the matrix rows.
    * ``payloads`` — optional flat (bucket-major) object column for slots
      that carry more than a fingerprint; ``None`` when the structure is
      fingerprint-only.

    Slots may be non-contiguous within a bucket (deletions leave holes);
    ``try_add`` always fills the first free slot.
    """

    EMPTY = EMPTY

    __slots__ = ("num_buckets", "bucket_size", "fps", "counts", "payloads", "_filled")

    def __init__(self, num_buckets: int, bucket_size: int, with_payloads: bool = False) -> None:
        if not is_power_of_two(num_buckets):
            raise ValueError(f"num_buckets must be a power of two, got {num_buckets}")
        if bucket_size < 1:
            raise ValueError("bucket_size must be at least 1")
        self.num_buckets = num_buckets
        self.bucket_size = bucket_size
        self.fps = np.full((num_buckets, bucket_size), EMPTY, dtype=np.int64)
        self.counts = np.zeros(num_buckets, dtype=np.int64)
        self.payloads: list[Any] | None = (
            [None] * (num_buckets * bucket_size) if with_payloads else None
        )
        self._filled = 0

    # -- bounds -----------------------------------------------------------

    def _check(self, bucket: int, slot: int) -> None:
        if not 0 <= bucket < self.num_buckets:
            raise IndexError(f"bucket {bucket} out of range")
        if not 0 <= slot < self.bucket_size:
            raise IndexError(f"slot {slot} out of range")

    # -- scalar slot access ------------------------------------------------

    def fp_at(self, bucket: int, slot: int) -> int:
        """Return the fingerprint at (bucket, slot), or ``EMPTY``."""
        self._check(bucket, slot)
        return int(self.fps[bucket, slot])

    def payload_at(self, bucket: int, slot: int) -> Any:
        """Return the payload object at (bucket, slot), or None."""
        self._check(bucket, slot)
        if self.payloads is None:
            return None
        return self.payloads[bucket * self.bucket_size + slot]

    def set_slot(self, bucket: int, slot: int, fp: int, payload: Any = None) -> None:
        """Overwrite (bucket, slot) with ``fp`` (and optional payload)."""
        self._check(bucket, slot)
        if fp < 0:
            raise ValueError("fingerprints must be non-negative; use clear_slot")
        if self.fps[bucket, slot] == EMPTY:
            self._filled += 1
            self.counts[bucket] += 1
        self.fps[bucket, slot] = fp
        if self.payloads is not None:
            self.payloads[bucket * self.bucket_size + slot] = payload
        elif payload is not None:
            raise ValueError("this SlotMatrix has no payload column")

    def clear_slot(self, bucket: int, slot: int) -> None:
        """Free (bucket, slot); no-op if already empty."""
        self._check(bucket, slot)
        if self.fps[bucket, slot] != EMPTY:
            self._filled -= 1
            self.counts[bucket] -= 1
            self.fps[bucket, slot] = EMPTY
        if self.payloads is not None:
            self.payloads[bucket * self.bucket_size + slot] = None

    # -- bucket-level operations ------------------------------------------

    def try_add(self, bucket: int, fp: int, payload: Any = None) -> int:
        """Place ``fp`` in the first free slot of ``bucket``.

        Returns the slot index, or -1 if the bucket is full.
        """
        if fp < 0:
            raise ValueError("fingerprints must be non-negative")
        if not 0 <= bucket < self.num_buckets:
            raise IndexError(f"bucket {bucket} out of range")
        if self.counts[bucket] >= self.bucket_size:
            return -1
        row = self.fps[bucket]
        for slot in range(self.bucket_size):
            if row[slot] == EMPTY:
                row[slot] = fp
                self.counts[bucket] += 1
                self._filled += 1
                if self.payloads is not None:
                    self.payloads[bucket * self.bucket_size + slot] = payload
                return slot
        raise AssertionError("occupancy count disagrees with fingerprint matrix")

    def count(self, bucket: int) -> int:
        """Return the number of occupied slots in a bucket."""
        return int(self.counts[bucket])

    def is_full(self, bucket: int) -> bool:
        """Return True if the bucket has no free slot."""
        return self.counts[bucket] >= self.bucket_size

    def bucket_fps(self, bucket: int) -> list[int]:
        """Return the non-empty fingerprints of a bucket (in slot order)."""
        return [fp for fp in self.fps[bucket].tolist() if fp != EMPTY]

    def bucket_contains(self, bucket: int, fp: int) -> bool:
        """Return True if any slot of ``bucket`` holds ``fp``."""
        return bool((self.fps[bucket] == fp).any())

    def count_in_bucket(self, bucket: int, fp: int) -> int:
        """Return how many slots of ``bucket`` hold ``fp``."""
        return int((self.fps[bucket] == fp).sum())

    def iter_slots(self, bucket: int) -> Iterator[tuple[int, int, Any]]:
        """Yield (slot, fp, payload) for non-empty slots of a bucket."""
        base = bucket * self.bucket_size
        payloads = self.payloads
        for slot, fp in enumerate(self.fps[bucket].tolist()):
            if fp != EMPTY:
                yield slot, fp, None if payloads is None else payloads[base + slot]

    def remove_fp(self, bucket: int, fp: int) -> bool:
        """Clear the first slot of ``bucket`` holding ``fp``; False if none."""
        row = self.fps[bucket]
        for slot in range(self.bucket_size):
            if row[slot] == fp:
                self.clear_slot(bucket, slot)
                return True
        return False

    # -- whole-table operations -------------------------------------------

    def iter_entries(self) -> Iterator[tuple[int, int, int, Any]]:
        """Yield (bucket, slot, fp, payload) for every occupied slot."""
        size = self.bucket_size
        payloads = self.payloads
        occupied = np.nonzero(self.fps.ravel() != EMPTY)[0]
        flat = self.fps.ravel()
        for index in occupied.tolist():
            yield (
                index // size,
                index % size,
                int(flat[index]),
                None if payloads is None else payloads[index],
            )

    def plan_bulk_placement(
        self, homes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Plan a conflict-free first wave: one row per free slot per bucket.

        Given each row's target bucket, rows are ranked within their bucket
        (stable sort, so earlier rows win) and the first
        ``bucket_size - counts[bucket]`` of each bucket's rows are assigned
        to that bucket's actual free slots (holes from deletions honoured
        via a per-bucket empty-slot rank).  Returns
        ``(rows, buckets, slots, residue)``: the planned rows (indices into
        ``homes``), their target buckets and slots, and the left-over row
        indices in ascending input order.

        The planner only *reads* the matrix; callers scatter their columns
        into ``fps[buckets, slots]`` (and any parallel columns), then update
        occupancy via `recount` or `note_bulk_placement`.  Shared by the
        cuckoo-filter bulk build (`cuckoo/batch.py`) and store compaction
        (`store/compaction.py`).
        """
        n = len(homes)
        empty = np.empty(0, dtype=np.int64)
        if n == 0:
            return empty, empty, empty, empty
        order = np.argsort(homes, kind="stable")
        sorted_homes = homes[order]
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        boundary[1:] = sorted_homes[1:] != sorted_homes[:-1]
        group_start = np.maximum.accumulate(np.where(boundary, np.arange(n), 0))
        rank = np.arange(n) - group_start
        free = self.bucket_size - self.counts[sorted_homes]
        placed = rank < free
        placed_buckets = sorted_homes[placed]
        slots = empty
        if placed_buckets.size:
            touched, inverse = np.unique(placed_buckets, return_inverse=True)
            emptiness = self.fps[touched] == EMPTY
            empty_rank = np.cumsum(emptiness, axis=1) - 1
            slot_of_rank = np.full((len(touched), self.bucket_size), -1, dtype=np.int64)
            for slot in range(self.bucket_size):
                here = emptiness[:, slot]
                slot_of_rank[here, empty_rank[here, slot]] = slot
            slots = slot_of_rank[inverse, rank[placed]]
        residue = order[~placed]
        residue.sort()
        return order[placed], placed_buckets, slots, residue

    def note_bulk_placement(self, buckets: np.ndarray) -> None:
        """Account for a first-wave scatter into ``fps[buckets, slots]``."""
        np.add.at(self.counts, buckets, 1)
        self._filled += int(buckets.size)

    def recount(self) -> None:
        """Rebuild the occupancy column from the fingerprint matrix.

        For bulk loaders (deserialisation, bulk build) that write the matrix
        wholesale instead of going through the slot mutators.
        """
        np.sum(self.fps != EMPTY, axis=1, out=self.counts)
        self._filled = int(self.counts.sum())

    def state(self) -> tuple[list, list | None]:
        """The full logical content, for equality assertions in tests."""
        return (self.fps.tolist(), None if self.payloads is None else list(self.payloads))

    @property
    def capacity(self) -> int:
        """Total number of slots."""
        return self.num_buckets * self.bucket_size

    @property
    def filled(self) -> int:
        """Number of occupied slots."""
        return self._filled

    def load_factor(self) -> float:
        """Fraction of slots occupied."""
        return self._filled / self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SlotMatrix(num_buckets={self.num_buckets}, bucket_size={self.bucket_size}, "
            f"load={self.load_factor():.3f})"
        )
