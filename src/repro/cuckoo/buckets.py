"""Columnar slot storage shared by every cuckoo structure in the repository.

A :class:`SlotMatrix` is the repository's storage engine: a contiguous
``(num_buckets, bucket_size)`` **fingerprint matrix** plus a per-bucket
**occupancy-count column**, and — for structures that carry rich per-slot
data (hash-table pairs, Bloom entries, converted groups) — an optional
parallel **payload column** of Python objects.  All cuckoo structures (hash
table, filter, conditional filters) sit on top of it; it knows nothing about
hashing or collision policy.

Storage is **width-adaptive** (DESIGN.md §9): pass ``fp_bits`` and the
matrix picks the minimal unsigned dtype that holds an ``fp_bits``-wide
fingerprint (uint8/16/32/64), with the dtype's all-ones value as an in-band
``EMPTY`` sentinel; occupancy counts live in uint8.  A 12-bit fingerprint
then costs 2 bytes per slot instead of 8 — the memory-bandwidth win every
batch probe kernel rides on.  ``fp_bits=None`` keeps the legacy int64 layout
with ``EMPTY = -1`` (the reference mode the packed-parity property tests
compare against).

**EMPTY migration.**  The historical convention was a module-level
``EMPTY = -1`` in an int64 matrix.  Packed matrices store unsigned dtypes,
where -1 does not exist; the sentinel is now *per matrix* —
``SlotMatrix.empty`` — and equals ``iinfo(dtype).max`` for packed storage
(-1 for legacy int64).  Code comparing against free slots must use
``matrix.empty`` (or :meth:`occupied_mask`), never the module constant.
When ``fp_bits`` is exactly a dtype width (8/16/32), the all-ones
fingerprint value would collide with the sentinel; the fingerprint functions
reserve it by folding it to 0 (`fingerprint_fold`), identically in packed
and legacy storage so both answer bit-identically.

The typed matrix is the *single source of truth*: scalar kernels mutate it
directly and batch kernels index the very same live array, so there is no
snapshot to rebuild after a mutation and no drift between representations.
Mutation-then-probe workloads are therefore snapshot-free by construction
(see DESIGN.md §6, "Columnar storage contract").

``num_buckets`` must be a power of two because partial-key cuckoo hashing
derives the alternate bucket with XOR (§4.2 of the paper), which only stays
in range for power-of-two table sizes.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

# ``grouped_ranks`` moved to the kernel package with the other hot kernels
# (DESIGN.md §12); re-exported here because it has always been part of this
# module's public surface.
from repro.kernels import active_backend, grouped_ranks  # noqa: F401

#: Sentinel for a free slot in the *legacy* int64 fingerprint matrix.  Packed
#: matrices use ``iinfo(dtype).max`` instead; always read ``matrix.empty``.
EMPTY = -1


def next_power_of_two(n: int) -> int:
    """Return the smallest power of two >= n (minimum 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def is_power_of_two(n: int) -> bool:
    """Return True if n is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def dtype_for_bits(bits: int) -> np.dtype:
    """The minimal unsigned dtype holding a ``bits``-wide fingerprint."""
    if not 1 <= bits <= 63:
        raise ValueError(f"fingerprint widths must be in [1, 63], got {bits}")
    if bits <= 8:
        return np.dtype(np.uint8)
    if bits <= 16:
        return np.dtype(np.uint16)
    if bits <= 32:
        return np.dtype(np.uint32)
    return np.dtype(np.uint64)


def fingerprint_fold(bits: int) -> int | None:
    """The reserved all-ones fingerprint value for ``bits``-wide storage.

    When ``bits`` is exactly a packed dtype width (8/16/32), the all-ones
    fingerprint coincides with the in-band EMPTY sentinel, so fingerprint
    derivation folds it to 0 (see DESIGN.md §9).  Returns the folded value,
    or None when no folding is needed (the sentinel is then out of band).
    Folding depends only on the declared width — never on the storage mode —
    so packed and legacy int64 filters stay bit-identical.
    """
    return (1 << bits) - 1 if bits in (8, 16, 32) else None


class SlotMatrix:
    """Columnar ``num_buckets x bucket_size`` slot storage.

    Columns:

    * ``fps`` — the live ``(num_buckets, bucket_size)`` fingerprint matrix;
      minimal unsigned dtype for ``fp_bits``-wide fingerprints with
      ``empty = iinfo(dtype).max``, or legacy int64 with ``empty = -1`` when
      ``fp_bits`` is None.  Batch probes fancy-index this array directly.
    * ``counts`` — per-bucket occupancy counts (uint8, length
      ``num_buckets``); the bulk-build first wave sizes its conflict-free
      placements from this column without touching the matrix rows.
    * ``payloads`` — optional flat (bucket-major) object column for slots
      that carry more than a fingerprint; ``None`` when the structure is
      fingerprint-only.

    Slots may be non-contiguous within a bucket (deletions leave holes);
    ``try_add`` always fills the first free slot.
    """

    EMPTY = EMPTY

    __slots__ = (
        "num_buckets",
        "bucket_size",
        "fp_bits",
        "empty",
        "fps",
        "counts",
        "payloads",
        "_filled",
        "_writeable",
    )

    def __init__(
        self,
        num_buckets: int,
        bucket_size: int,
        with_payloads: bool = False,
        fp_bits: int | None = None,
    ) -> None:
        if not is_power_of_two(num_buckets):
            raise ValueError(f"num_buckets must be a power of two, got {num_buckets}")
        if bucket_size < 1:
            raise ValueError("bucket_size must be at least 1")
        self.num_buckets = num_buckets
        self.bucket_size = bucket_size
        self.fp_bits = fp_bits
        if fp_bits is None:
            dtype = np.dtype(np.int64)
            self.empty = EMPTY
        else:
            dtype = dtype_for_bits(fp_bits)
            self.empty = int(np.iinfo(dtype).max)
        self.fps = np.full((num_buckets, bucket_size), self.empty, dtype=dtype)
        counts_dtype = np.uint8 if bucket_size <= np.iinfo(np.uint8).max else np.int64
        self.counts = np.zeros(num_buckets, dtype=counts_dtype)
        self.payloads: list[Any] | None = (
            [None] * (num_buckets * bucket_size) if with_payloads else None
        )
        self._filled = 0
        self._writeable = True

    @classmethod
    def from_columns(
        cls,
        fps: np.ndarray,
        counts: np.ndarray,
        fp_bits: int | None = None,
        payloads: list[Any] | None = None,
    ) -> "SlotMatrix":
        """Adopt externally provided column arrays without copying.

        The zero-copy ingress of the mapped-segment engine (DESIGN.md §10):
        ``fps`` and ``counts`` may be read-only ``np.memmap`` views straight
        out of a SEG1 file.  Probes run on the adopted arrays as-is; the
        first mutation promotes the matrix to writable heap copies
        (:meth:`promote`).  The arrays must be mutually consistent — the
        occupancy column is trusted, not recomputed, so adoption stays O(1)
        in the table size.
        """
        if fps.ndim != 2:
            raise ValueError(f"fps must be 2-d (num_buckets, bucket_size), got {fps.ndim}-d")
        num_buckets, bucket_size = fps.shape
        if not is_power_of_two(num_buckets):
            raise ValueError(f"num_buckets must be a power of two, got {num_buckets}")
        if bucket_size < 1:
            raise ValueError("bucket_size must be at least 1")
        if counts.shape != (num_buckets,):
            raise ValueError(
                f"counts must have shape ({num_buckets},), got {counts.shape}"
            )
        if fp_bits is None:
            if fps.dtype != np.dtype(np.int64):
                raise ValueError(
                    f"legacy matrices store int64 fingerprints, got {fps.dtype}"
                )
            empty = EMPTY
        else:
            expected = dtype_for_bits(fp_bits)
            if fps.dtype != expected:
                raise ValueError(
                    f"{fp_bits}-bit packed matrices store {expected} fingerprints, "
                    f"got {fps.dtype}"
                )
            empty = int(np.iinfo(expected).max)
        matrix = cls.__new__(cls)
        matrix.num_buckets = num_buckets
        matrix.bucket_size = bucket_size
        matrix.fp_bits = fp_bits
        matrix.empty = empty
        matrix.fps = fps
        matrix.counts = counts
        matrix.payloads = payloads
        matrix._filled = int(counts.sum())
        matrix._writeable = bool(fps.flags.writeable and counts.flags.writeable)
        return matrix

    def promote(self) -> None:
        """Replace read-only/mapped columns with writable heap copies.

        The copy-on-write half of the mapped-segment contract: query kernels
        never write the adopted columns, and any mutator funnels through
        this promotion first, so a mapped (file-backed) matrix silently
        becomes a private heap matrix on its first write.  ``np.array``
        drops the memmap subclass, so promoted columns are plain ndarrays.
        """
        if not self.fps.flags.writeable:
            self.fps = np.array(self.fps)
        if not self.counts.flags.writeable:
            self.counts = np.array(self.counts)
        self._writeable = True

    @property
    def writeable(self) -> bool:
        """False while the columns are adopted read-only (pre-promotion)."""
        return self._writeable

    @property
    def mapped_nbytes(self) -> int:
        """Bytes of file-backed (memmapped) column storage."""
        return sum(
            int(column.nbytes)
            for column in (self.fps, self.counts)
            if isinstance(column, np.memmap)
        )

    # -- bounds -----------------------------------------------------------

    def _check(self, bucket: int, slot: int) -> None:
        if not 0 <= bucket < self.num_buckets:
            raise IndexError(f"bucket {bucket} out of range")
        if not 0 <= slot < self.bucket_size:
            raise IndexError(f"slot {slot} out of range")

    def _check_fp(self, fp: int) -> None:
        if fp < 0:
            raise ValueError("fingerprints must be non-negative; use clear_slot")
        if fp == self.empty or (self.fp_bits is not None and fp > self.empty):
            raise ValueError(
                f"fingerprint {fp} collides with the EMPTY sentinel of this "
                f"{self.fps.dtype} matrix (reserved by fingerprint_fold)"
            )

    # -- scalar slot access ------------------------------------------------

    def fp_at(self, bucket: int, slot: int) -> int:
        """Return the fingerprint at (bucket, slot), or ``empty``."""
        self._check(bucket, slot)
        return int(self.fps[bucket, slot])

    def payload_at(self, bucket: int, slot: int) -> Any:
        """Return the payload object at (bucket, slot), or None."""
        self._check(bucket, slot)
        if self.payloads is None:
            return None
        return self.payloads[bucket * self.bucket_size + slot]

    def set_slot(self, bucket: int, slot: int, fp: int, payload: Any = None) -> None:
        """Overwrite (bucket, slot) with ``fp`` (and optional payload)."""
        if not self._writeable:
            self.promote()
        self._check(bucket, slot)
        self._check_fp(fp)
        if self.fps[bucket, slot] == self.empty:
            self._filled += 1
            self.counts[bucket] += 1
        self.fps[bucket, slot] = fp
        if self.payloads is not None:
            self.payloads[bucket * self.bucket_size + slot] = payload
        elif payload is not None:
            raise ValueError("this SlotMatrix has no payload column")

    def clear_slot(self, bucket: int, slot: int) -> None:
        """Free (bucket, slot); no-op if already empty."""
        if not self._writeable:
            self.promote()
        self._check(bucket, slot)
        if self.fps[bucket, slot] != self.empty:
            self._filled -= 1
            self.counts[bucket] -= 1
            self.fps[bucket, slot] = self.empty
        if self.payloads is not None:
            self.payloads[bucket * self.bucket_size + slot] = None

    # -- bucket-level operations ------------------------------------------

    def try_add(self, bucket: int, fp: int, payload: Any = None) -> int:
        """Place ``fp`` in the first free slot of ``bucket``.

        Returns the slot index, or -1 if the bucket is full.
        """
        if not self._writeable:
            self.promote()
        self._check_fp(fp)
        if not 0 <= bucket < self.num_buckets:
            raise IndexError(f"bucket {bucket} out of range")
        if self.counts[bucket] >= self.bucket_size:
            return -1
        row = self.fps[bucket]
        for slot in range(self.bucket_size):
            if row[slot] == self.empty:
                row[slot] = fp
                self.counts[bucket] += 1
                self._filled += 1
                if self.payloads is not None:
                    self.payloads[bucket * self.bucket_size + slot] = payload
                return slot
        raise AssertionError("occupancy count disagrees with fingerprint matrix")

    def count(self, bucket: int) -> int:
        """Return the number of occupied slots in a bucket."""
        return int(self.counts[bucket])

    def is_full(self, bucket: int) -> bool:
        """Return True if the bucket has no free slot."""
        return self.counts[bucket] >= self.bucket_size

    def bucket_fps(self, bucket: int) -> list[int]:
        """Return the non-empty fingerprints of a bucket (in slot order)."""
        return [fp for fp in self.fps[bucket].tolist() if fp != self.empty]

    def bucket_contains(self, bucket: int, fp: int) -> bool:
        """Return True if any slot of ``bucket`` holds ``fp``."""
        return bool((self.fps[bucket] == fp).any())

    def count_in_bucket(self, bucket: int, fp: int) -> int:
        """Return how many slots of ``bucket`` hold ``fp``."""
        return int((self.fps[bucket] == fp).sum())

    def iter_slots(self, bucket: int) -> Iterator[tuple[int, int, Any]]:
        """Yield (slot, fp, payload) for non-empty slots of a bucket."""
        base = bucket * self.bucket_size
        payloads = self.payloads
        for slot, fp in enumerate(self.fps[bucket].tolist()):
            if fp != self.empty:
                yield slot, fp, None if payloads is None else payloads[base + slot]

    def remove_fp(self, bucket: int, fp: int) -> bool:
        """Clear the first slot of ``bucket`` holding ``fp``; False if none."""
        row = self.fps[bucket]
        for slot in range(self.bucket_size):
            if row[slot] == fp:
                self.clear_slot(bucket, slot)
                return True
        return False

    # -- whole-table operations -------------------------------------------

    def occupied_mask(self) -> np.ndarray:
        """Boolean (num_buckets, bucket_size) mask of occupied slots."""
        return self.fps != self.empty

    def iter_entries(self) -> Iterator[tuple[int, int, int, Any]]:
        """Yield (bucket, slot, fp, payload) for every occupied slot."""
        size = self.bucket_size
        payloads = self.payloads
        flat = self.fps.ravel()
        occupied = np.nonzero(flat != self.empty)[0]
        for index in occupied.tolist():
            yield (
                index // size,
                index % size,
                int(flat[index]),
                None if payloads is None else payloads[index],
            )

    def pair_eq(self, fps: np.ndarray, homes: np.ndarray, alts: np.ndarray) -> np.ndarray:
        """Fused bucket-pair probe: one gather over home+alt rows.

        Returns the ``(n, 2, bucket_size)`` equality mask of each key's
        fingerprint against its home row (``[:, 0]``) and alternate row
        (``[:, 1]``).  The home and alternate rows are gathered in a single
        ``take`` over the live matrix (no per-bucket re-gather) and the
        comparison runs in the matrix's native dtype, so packed tables probe
        at their narrow width end to end.  Query fingerprints are always
        valid stored values (non-negative, never the sentinel), so the
        unsigned cast is exact.  Dispatches to the active kernel backend
        (`repro.kernels`); every backend answers bit-identically.
        """
        return active_backend().pair_eq(self.fps, fps, homes, alts)

    def clear_slots(self, buckets: np.ndarray, slots: np.ndarray) -> None:
        """Vectorised bulk clear of distinct occupied (bucket, slot) pairs.

        The batch-delete kernel's scatter: all targeted slots must be
        occupied and pairwise distinct (the caller's rank-deduping
        guarantees both).  Payload-bearing matrices also drop the objects.
        """
        if buckets.size == 0:
            return
        if not self._writeable:
            self.promote()
        self.fps[buckets, slots] = self.empty
        np.subtract.at(self.counts, buckets, 1)
        self._filled -= int(buckets.size)
        if self.payloads is not None:
            size = self.bucket_size
            for flat in (buckets * size + slots).tolist():
                self.payloads[flat] = None

    def plan_bulk_placement(
        self, homes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Plan a conflict-free first wave: one row per free slot per bucket.

        Given each row's target bucket, rows are ranked within their bucket
        (stable sort, so earlier rows win) and the first
        ``bucket_size - counts[bucket]`` of each bucket's rows are assigned
        to that bucket's actual free slots (holes from deletions honoured
        via a per-bucket empty-slot rank).  Returns
        ``(rows, buckets, slots, residue)``: the planned rows (indices into
        ``homes``), their target buckets and slots, and the left-over row
        indices in ascending input order.

        The planner only *reads* the matrix; callers scatter their columns
        into ``fps[buckets, slots]`` (and any parallel columns), then update
        occupancy via `recount` or `note_bulk_placement`.  Shared by the
        cuckoo-filter bulk build and wave eviction (`cuckoo/batch.py`) and
        store compaction (`store/compaction.py`).  Dispatches to the active
        kernel backend (`repro.kernels`).
        """
        return active_backend().plan_bulk_placement(
            self.fps, self.counts, self.empty, homes
        )

    def note_bulk_placement(self, buckets: np.ndarray) -> None:
        """Account for a first-wave scatter into ``fps[buckets, slots]``."""
        if not self._writeable:
            self.promote()
        np.add.at(self.counts, buckets, 1)
        self._filled += int(buckets.size)

    def note_kernel_fills(self, placed: int) -> None:
        """Account for ``placed`` slots filled by a dispatch kernel.

        The wave-eviction kernel (`repro.kernels`) writes the fingerprint
        matrix and maintains the occupancy column itself; only the derived
        filled total lives outside the columns, so the host reconciles it
        here after the kernel returns.
        """
        self._filled += int(placed)

    def recount(self) -> None:
        """Rebuild the occupancy column from the fingerprint matrix.

        For bulk loaders (deserialisation, bulk build) that write the matrix
        wholesale instead of going through the slot mutators.
        """
        if not self._writeable:
            self.promote()
        self.counts[:] = (self.fps != self.empty).sum(axis=1)
        self._filled = int(self.counts.sum())

    def state(self) -> tuple[list, list | None]:
        """The full logical content, for equality assertions in tests."""
        return (self.fps.tolist(), None if self.payloads is None else list(self.payloads))

    @property
    def capacity(self) -> int:
        """Total number of slots."""
        return self.num_buckets * self.bucket_size

    @property
    def filled(self) -> int:
        """Number of occupied slots."""
        return self._filled

    @property
    def bytes_per_slot(self) -> int:
        """Storage bytes per fingerprint slot (the width-adaptive payoff)."""
        return int(self.fps.itemsize)

    def fingerprint_bytes(self) -> int:
        """Total bytes of the fingerprint matrix (``fps.nbytes``)."""
        return int(self.fps.nbytes)

    def load_factor(self) -> float:
        """Fraction of slots occupied."""
        return self._filled / self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SlotMatrix(num_buckets={self.num_buckets}, bucket_size={self.bucket_size}, "
            f"dtype={self.fps.dtype.name}, load={self.load_factor():.3f})"
        )
