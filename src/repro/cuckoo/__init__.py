"""Cuckoo hashing substrate: hash table, filter, multiset filter, semi-sorting."""

from repro.cuckoo.buckets import SlotMatrix, is_power_of_two, next_power_of_two
from repro.cuckoo.chained_table import ChainedCuckooHashTable
from repro.cuckoo.filter import CuckooFilter
from repro.cuckoo.hashtable import CuckooHashTable
from repro.cuckoo.multiset import MultisetCuckooFilter
from repro.cuckoo.semisort_filter import SemiSortedCuckooFilter

__all__ = [
    "SlotMatrix",
    "ChainedCuckooHashTable",
    "CuckooFilter",
    "CuckooHashTable",
    "MultisetCuckooFilter",
    "SemiSortedCuckooFilter",
    "is_power_of_two",
    "next_power_of_two",
]
