"""Standard cuckoo filter (Fan et al. 2014), as reviewed in §4.2 of the paper.

Stores only a small fingerprint per key and uses *partial-key cuckoo hashing*:
the alternate bucket is ``l' = l XOR h(fingerprint)``, computable from the
stored fingerprint alone.  Supports insertion, membership testing and
deletion, with no false negatives for inserted keys.

Storage is a columnar :class:`~repro.cuckoo.buckets.SlotMatrix`: scalar
kernels and batch probes operate on the same live int64 fingerprint matrix,
so `contains_many` after a mutation pays no snapshot rebuild (DESIGN.md §6).

One deliberate deviation from the textbook structure, recorded in DESIGN.md:
on a MaxKicks failure the in-flight victim entry is retained in a small
overflow stash (consulted by queries) instead of being dropped, so the
no-false-negative guarantee survives overload.  ``insert`` still reports the
failure by returning False and setting :attr:`failed`.
"""

from __future__ import annotations

import random
from typing import Sequence

import numpy as np

from repro.cuckoo.batch import FingerprintBatchMixin
from repro.cuckoo.buckets import SlotMatrix, fingerprint_fold, next_power_of_two
from repro.hashing.mixers import JumpCache, derive_seed, hash64

DEFAULT_MAX_KICKS = 500


class CuckooFilter(FingerprintBatchMixin):
    """Approximate-set-membership filter with partial-key cuckoo hashing.

    Storage is width-adaptive by default (``packed=True``): fingerprints
    live in the minimal unsigned dtype for ``fingerprint_bits`` (DESIGN.md
    §9).  ``packed=False`` keeps the legacy int64 layout; membership
    answers are bit-identical either way (the boundary-width sentinel fold
    applies to both).
    """

    def __init__(
        self,
        num_buckets: int,
        bucket_size: int = 4,
        fingerprint_bits: int = 12,
        max_kicks: int = DEFAULT_MAX_KICKS,
        seed: int = 0,
        packed: bool = True,
    ) -> None:
        if fingerprint_bits < 1 or fingerprint_bits > 62:
            raise ValueError("fingerprint_bits must be in [1, 62]")
        self.fingerprint_bits = fingerprint_bits
        self.max_kicks = max_kicks
        self.seed = seed
        self.packed = packed
        self.buckets = SlotMatrix(
            num_buckets, bucket_size, fp_bits=fingerprint_bits if packed else None
        )
        self.num_items = 0
        self.failed = False
        self.stash: list[int] = []
        self._fp_mask = (1 << fingerprint_bits) - 1
        self._fp_fold = fingerprint_fold(fingerprint_bits)
        self._index_salt = derive_seed(seed, "cf-index")
        self._fp_salt = derive_seed(seed, "cf-fingerprint")
        self._jump_salt = derive_seed(seed, "cf-jump")
        self._jump_cache = JumpCache(self._jump_salt, self.buckets.num_buckets - 1)
        self._rng = random.Random(derive_seed(seed, "cf-rng"))

    @classmethod
    def from_capacity(
        cls,
        capacity: int,
        bucket_size: int = 4,
        fingerprint_bits: int = 12,
        target_load: float = 0.95,
        **kwargs: object,
    ) -> "CuckooFilter":
        """Size a filter for ``capacity`` items at ``target_load`` occupancy.

        §4.2: an optimally sized filter with b=4 empirically reaches ~95%
        load, hence the default target.
        """
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if not 0.0 < target_load <= 1.0:
            raise ValueError("target_load must be in (0, 1]")
        slots_needed = capacity / target_load
        num_buckets = next_power_of_two(max(1, round(slots_needed / bucket_size)))
        return cls(num_buckets, bucket_size, fingerprint_bits, **kwargs)

    # -- hashing ------------------------------------------------------------

    def fingerprint_of(self, key: object) -> int:
        """Return the fingerprint of ``key`` (``fingerprint_bits`` wide).

        At boundary widths (8/16/32 bits) the all-ones value is reserved as
        the packed EMPTY sentinel and folds to 0 (DESIGN.md §9).
        """
        fp = hash64(key, self._fp_salt) & self._fp_mask
        return 0 if fp == self._fp_fold else fp

    def home_index(self, key: object) -> int:
        """Return the primary bucket for ``key``."""
        return hash64(key, self._index_salt) & (self.buckets.num_buckets - 1)

    def _fp_jump(self, fingerprint: int) -> int:
        """Return ``h(fingerprint) mod m``, the XOR offset to the alternate bucket."""
        return self._jump_cache.jump(fingerprint)

    def alt_index(self, index: int, fingerprint: int) -> int:
        """Return the partner bucket of ``index`` for ``fingerprint``."""
        return index ^ self._fp_jump(fingerprint)

    # -- operations -----------------------------------------------------------

    def insert(self, key: object) -> bool:
        """Insert ``key``; returns False only on a MaxKicks failure.

        A failure leaves the filter still correct (the displaced victim is
        stashed) but flags it as over capacity via :attr:`failed`.
        """
        return self._insert_hashed(self.fingerprint_of(key), self.home_index(key))

    def _insert_hashed(self, fp: int, i1: int) -> bool:
        """Placement kernel shared by `insert` and `insert_many`."""
        i2 = self.alt_index(i1, fp)
        self.num_items += 1
        if self.buckets.try_add(i1, fp) >= 0 or self.buckets.try_add(i2, fp) >= 0:
            return True
        return self._kick_residual(self._rng.choice((i1, i2)), fp, self.max_kicks)

    def contains(self, key: object) -> bool:
        """Return True if ``key`` may be in the set (no false negatives)."""
        fp = self.fingerprint_of(key)
        i1 = self.home_index(key)
        i2 = self.alt_index(i1, fp)
        if self.buckets.bucket_contains(i1, fp) or self.buckets.bucket_contains(i2, fp):
            return True
        return fp in self.stash

    def contains_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch `contains`: one fused gather over both buckets per key.

        Probes the live (width-adaptive) fingerprint matrix via
        `SlotMatrix.pair_eq` — home and alternate rows in a single gather,
        compared at the packed dtype — so interleaving with mutations costs
        nothing; answers are identical to scalar `contains` per key.
        """
        fps = self.fingerprints_of_many(keys)
        homes = self.home_indices_of_many(keys)
        eq, _alts = self._pair_eq_many(fps, homes)
        found = eq.any(axis=(1, 2))
        if self.stash:
            stash = np.fromiter(self.stash, dtype=np.int64, count=len(self.stash))
            found |= np.isin(fps, stash)
        return found

    def __contains__(self, key: object) -> bool:
        return self.contains(key)

    def delete(self, key: object) -> bool:
        """Remove one copy of ``key``; True if a fingerprint was removed.

        As with any cuckoo filter, deleting a key that was never inserted may
        remove another key's colliding fingerprint; callers must only delete
        keys they know to be present.
        """
        return self._delete_hashed(self.fingerprint_of(key), self.home_index(key))

    def _delete_hashed(self, fp: int, i1: int) -> bool:
        """Removal kernel shared by `delete` and `delete_many`."""
        i2 = self.alt_index(i1, fp)
        for bucket in (i1, i2):
            if self.buckets.remove_fp(bucket, fp):
                self.num_items -= 1
                return True
        if fp in self.stash:
            self.stash.remove(fp)
            self.num_items -= 1
            return True
        return False

    # -- statistics -----------------------------------------------------------

    def load_factor(self) -> float:
        """Fraction of table slots occupied (stash excluded)."""
        return self.buckets.load_factor()

    def size_in_bits(self) -> int:
        """Table size under the paper's accounting: one fingerprint per slot."""
        return self.buckets.capacity * self.fingerprint_bits

    def fpr_bound(self) -> float:
        """Upper bound 2b * 2^-f on the false positive rate (§4.2)."""
        return min(1.0, 2 * self.buckets.bucket_size * 2.0**-self.fingerprint_bits)

    def expected_fpr(self) -> float:
        """Refined bound E[D] * 2^-f using the realised fill (§7.1, Eq. 4)."""
        mean_filled_pair = 2 * self.buckets.bucket_size * self.load_factor()
        return min(1.0, mean_filled_pair * 2.0**-self.fingerprint_bits)

    def __len__(self) -> int:
        return self.num_items

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CuckooFilter(buckets={self.buckets.num_buckets}, b={self.buckets.bucket_size}, "
            f"f={self.fingerprint_bits}, items={self.num_items}, load={self.load_factor():.3f})"
        )
