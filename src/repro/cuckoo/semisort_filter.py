"""A cuckoo filter with semi-sorted bucket storage (§4.2).

The referenced optimisation from Fan et al.: buckets store their
fingerprints as a compressed code — sorted 4-bit prefixes encoded
combinatorially plus raw suffixes — saving one bit per entry and making the
space cost ``(log2(1/ρ) + 2)/β`` bits per item.  This class realises the
scheme end to end: buckets *are* integer codes (decoded on probe, re-encoded
on mutation), not object slots, so the claimed size is the actual
representation size.

Fingerprints use the semi-sorting convention that 0 marks an empty slot, so
key fingerprints are drawn from ``[1, 2^f)``.
"""

from __future__ import annotations

import random

from repro.cuckoo.buckets import next_power_of_two
from repro.cuckoo.semisort import decode_bucket, encode_bucket, encoded_bucket_bits
from repro.hashing.mixers import JumpCache, derive_seed, hash64

DEFAULT_MAX_KICKS = 500


class SemiSortedCuckooFilter:
    """Approximate-set-membership filter over compressed 4-slot buckets."""

    BUCKET_SIZE = 4  # the semi-sorting codec is defined for b = 4

    def __init__(
        self,
        num_buckets: int,
        fingerprint_bits: int = 12,
        max_kicks: int = DEFAULT_MAX_KICKS,
        seed: int = 0,
    ) -> None:
        if fingerprint_bits <= 4 or fingerprint_bits > 62:
            raise ValueError("fingerprint_bits must be in (4, 62] for semi-sorting")
        self.num_buckets = next_power_of_two(num_buckets)
        self.fingerprint_bits = fingerprint_bits
        self.max_kicks = max_kicks
        self.seed = seed
        self.num_items = 0
        self.failed = False
        self.stash: list[int] = []
        # Every bucket holds the code of four zero (= empty) fingerprints.
        self._empty_code = encode_bucket([], fingerprint_bits, self.BUCKET_SIZE)
        self._codes = [self._empty_code] * self.num_buckets
        self._filled = 0
        self._fp_mask = (1 << fingerprint_bits) - 1
        self._index_salt = derive_seed(seed, "sscf-index")
        self._fp_salt = derive_seed(seed, "sscf-fp")
        self._jump_salt = derive_seed(seed, "sscf-jump")
        self._jump_cache = JumpCache(self._jump_salt, self.num_buckets - 1)
        self._rng = random.Random(derive_seed(seed, "sscf-rng"))

    # -- hashing ------------------------------------------------------------

    def fingerprint_of(self, key: object) -> int:
        """Nonzero fingerprint in [1, 2^f): zero is the empty-slot marker."""
        raw = hash64(key, self._fp_salt) & self._fp_mask
        return raw if raw != 0 else 1

    def home_index(self, key: object) -> int:
        """Primary bucket for ``key``."""
        return hash64(key, self._index_salt) & (self.num_buckets - 1)

    def _fp_jump(self, fingerprint: int) -> int:
        return self._jump_cache.jump(fingerprint)

    def alt_index(self, index: int, fingerprint: int) -> int:
        """Partner bucket via the XOR map."""
        return index ^ self._fp_jump(fingerprint)

    # -- compressed bucket access ---------------------------------------------

    def _bucket(self, index: int) -> list[int]:
        """Decode a bucket's fingerprints (0 entries = empty slots)."""
        return decode_bucket(self._codes[index], self.fingerprint_bits, self.BUCKET_SIZE)

    def _store(self, index: int, fingerprints: list[int]) -> None:
        occupied = [fp for fp in fingerprints if fp != 0]
        self._filled += len(occupied) - sum(1 for fp in self._bucket(index) if fp != 0)
        self._codes[index] = encode_bucket(occupied, self.fingerprint_bits, self.BUCKET_SIZE)

    def _try_add(self, index: int, fingerprint: int) -> bool:
        fingerprints = self._bucket(index)
        for slot, existing in enumerate(fingerprints):
            if existing == 0:
                fingerprints[slot] = fingerprint
                self._store(index, fingerprints)
                return True
        return False

    # -- operations -----------------------------------------------------------

    def insert(self, key: object) -> bool:
        """Insert ``key``; False only on a MaxKicks failure (victim stashed)."""
        fingerprint = self.fingerprint_of(key)
        home = self.home_index(key)
        alt = self.alt_index(home, fingerprint)
        self.num_items += 1
        if self._try_add(home, fingerprint) or self._try_add(alt, fingerprint):
            return True
        current = self._rng.choice((home, alt))
        item = fingerprint
        for _ in range(self.max_kicks):
            fingerprints = self._bucket(current)
            victim_slot = self._rng.randrange(self.BUCKET_SIZE)
            victim = fingerprints[victim_slot]
            fingerprints[victim_slot] = item
            self._store(current, fingerprints)
            item = victim
            current = self.alt_index(current, item)
            if self._try_add(current, item):
                return True
        self.stash.append(item)
        self.failed = True
        return False

    def contains(self, key: object) -> bool:
        """Membership test (no false negatives)."""
        fingerprint = self.fingerprint_of(key)
        home = self.home_index(key)
        alt = self.alt_index(home, fingerprint)
        if fingerprint in self._bucket(home) or fingerprint in self._bucket(alt):
            return True
        return fingerprint in self.stash

    def __contains__(self, key: object) -> bool:
        return self.contains(key)

    def delete(self, key: object) -> bool:
        """Remove one fingerprint copy of ``key``."""
        fingerprint = self.fingerprint_of(key)
        for index in (self.home_index(key), self.alt_index(self.home_index(key), fingerprint)):
            fingerprints = self._bucket(index)
            if fingerprint in fingerprints:
                fingerprints[fingerprints.index(fingerprint)] = 0
                self._store(index, fingerprints)
                self.num_items -= 1
                return True
        if fingerprint in self.stash:
            self.stash.remove(fingerprint)
            self.num_items -= 1
            return True
        return False

    # -- statistics -----------------------------------------------------------

    def load_factor(self) -> float:
        """Occupied slots over capacity."""
        return self._filled / (self.num_buckets * self.BUCKET_SIZE)

    def size_in_bits(self) -> int:
        """The genuinely materialised size: encoded code bits per bucket."""
        return self.num_buckets * encoded_bucket_bits(self.fingerprint_bits, self.BUCKET_SIZE)

    def __len__(self) -> int:
        return self.num_items

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SemiSortedCuckooFilter(buckets={self.num_buckets}, "
            f"f={self.fingerprint_bits}, load={self.load_factor():.3f})"
        )
