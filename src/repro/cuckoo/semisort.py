"""Semi-sorting bucket compression (§4.2 of the paper, from Fan et al.).

Sorting a bucket's entries removes ordering entropy and allows a denser
encoding.  The practical scheme sorts only each fingerprint's 4-bit prefix:
for a bucket of ``b=4`` entries there are C(16+4-1, 4) = 3876 sorted prefix
multisets, which fit in 12 bits instead of the raw 16 — saving one bit per
entry and turning the space cost from ``(log2(1/p) + 3)/load`` into
``(log2(1/p) + 2)/load`` bits per item.

This module provides the exact combinatorial codec plus the size model used
by the bit-efficiency comparisons of §10.2.  Fingerprint value 0 denotes an
empty slot (the convention of the original implementation), so codecs accept
fingerprints in ``[0, 2^f)`` with 0 meaning empty.
"""

from __future__ import annotations

import math
from functools import lru_cache

PREFIX_BITS = 4
_NUM_PREFIXES = 1 << PREFIX_BITS


@lru_cache(maxsize=None)
def _sorted_tuples(bucket_size: int) -> tuple[tuple[int, ...], ...]:
    """Enumerate all non-decreasing prefix tuples of length ``bucket_size``."""

    def extend(prefix: tuple[int, ...], minimum: int) -> list[tuple[int, ...]]:
        if len(prefix) == bucket_size:
            return [prefix]
        result = []
        for value in range(minimum, _NUM_PREFIXES):
            result.extend(extend(prefix + (value,), value))
        return result

    return tuple(extend((), 0))


@lru_cache(maxsize=None)
def _tuple_index(bucket_size: int) -> dict[tuple[int, ...], int]:
    return {t: i for i, t in enumerate(_sorted_tuples(bucket_size))}


def num_sorted_prefix_tuples(bucket_size: int) -> int:
    """Return C(16 + b - 1, b): the count of sorted prefix multisets."""
    return math.comb(_NUM_PREFIXES + bucket_size - 1, bucket_size)


def prefix_code_bits(bucket_size: int) -> int:
    """Bits needed to index a sorted prefix multiset."""
    return max(1, math.ceil(math.log2(num_sorted_prefix_tuples(bucket_size))))


def bits_saved_per_bucket(bucket_size: int) -> int:
    """Raw prefix bits minus encoded prefix bits for one bucket."""
    return bucket_size * PREFIX_BITS - prefix_code_bits(bucket_size)


def encode_bucket(fingerprints: list[int], fingerprint_bits: int, bucket_size: int = 4) -> int:
    """Encode a bucket of fingerprints into a single integer code.

    ``fingerprints`` may contain fewer than ``bucket_size`` values; missing
    slots are treated as empty (fingerprint 0).  Nonzero fingerprints must
    fit in ``fingerprint_bits`` and must not collide with the empty marker.
    """
    if fingerprint_bits <= PREFIX_BITS:
        raise ValueError("fingerprint_bits must exceed the 4-bit sorted prefix")
    if len(fingerprints) > bucket_size:
        raise ValueError("more fingerprints than bucket slots")
    padded = sorted(fingerprints) + [0] * (bucket_size - len(fingerprints))
    suffix_bits = fingerprint_bits - PREFIX_BITS
    suffix_mask = (1 << suffix_bits) - 1
    for fp in padded:
        if not 0 <= fp < (1 << fingerprint_bits):
            raise ValueError(f"fingerprint {fp} does not fit in {fingerprint_bits} bits")
    # Sort by full fingerprint so prefixes come out non-decreasing and each
    # suffix stays attached to its prefix.
    padded.sort()
    prefixes = tuple(fp >> suffix_bits for fp in padded)
    code = _tuple_index(bucket_size)[prefixes]
    for fp in padded:
        code = (code << suffix_bits) | (fp & suffix_mask)
    return code


def decode_bucket(code: int, fingerprint_bits: int, bucket_size: int = 4) -> list[int]:
    """Invert :func:`encode_bucket`; returns the sorted fingerprint list.

    Empty slots decode as fingerprint 0 and are included, so the result
    always has ``bucket_size`` elements.
    """
    suffix_bits = fingerprint_bits - PREFIX_BITS
    suffix_mask = (1 << suffix_bits) - 1
    suffixes = []
    for _ in range(bucket_size):
        suffixes.append(code & suffix_mask)
        code >>= suffix_bits
    suffixes.reverse()
    prefixes = _sorted_tuples(bucket_size)[code]
    return sorted((p << suffix_bits) | s for p, s in zip(prefixes, suffixes))


def encoded_bucket_bits(fingerprint_bits: int, bucket_size: int = 4) -> int:
    """Total bits for one semi-sorted bucket."""
    return prefix_code_bits(bucket_size) + bucket_size * (fingerprint_bits - PREFIX_BITS)


def bits_per_item(fingerprint_bits: int, bucket_size: int = 4, load_factor: float = 0.95) -> float:
    """Effective bits per stored item under semi-sorting at ``load_factor``."""
    if not 0.0 < load_factor <= 1.0:
        raise ValueError("load_factor must be in (0, 1]")
    return encoded_bucket_bits(fingerprint_bits, bucket_size) / (bucket_size * load_factor)


def raw_bits_per_item(fingerprint_bits: int, load_factor: float = 0.95) -> float:
    """Effective bits per stored item without semi-sorting."""
    if not 0.0 < load_factor <= 1.0:
        raise ValueError("load_factor must be in (0, 1]")
    return fingerprint_bits / load_factor
