"""Classic cuckoo hash table (key -> value), as reviewed in §4/§4.1.

Unlike the filters, the table stores full keys, uses two independent bucket
hashes (not partial-key hashing), updates values for duplicate keys, and
resizes itself (doubling) when an insertion cannot be placed within MaxKicks
— exactly the behaviour described in §4.1.

Storage is a payload-bearing :class:`~repro.cuckoo.buckets.SlotMatrix`: the
typed column holds a 63-bit **key digest** (the full first bucket hash, so
the home index is just ``digest & (m-1)``) and the payload column holds the
``(key, value)`` pair.  Batch probes vectorise a digest pre-filter against
the live column — digest equality is necessary for key equality — and only
candidate rows fall back to exact key comparison.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, Sequence

import numpy as np

from repro.cuckoo.buckets import SlotMatrix, next_power_of_two
from repro.hashing.mixers import derive_seed, hash64, hash64_many

DEFAULT_MAX_KICKS = 500

_MISSING = object()

#: Stored digests keep 63 bits of the first bucket hash, disjoint from the
#: uint64 matrix's all-ones EMPTY sentinel.
_DIGEST_MASK = (1 << 63) - 1


def _native_item(values: Sequence[object] | np.ndarray, index: int) -> object:
    """One element as a native Python object (numpy scalars unwrapped).

    Scalar hash/storage paths dispatch on Python types (stored keys are
    re-hashed by kicks and resizes, and `hash64` rejects numpy scalars),
    but only the elements that actually reach a scalar path need
    unwrapping — batch ingress never materialises a whole Python list.
    """
    value = values[index]
    return value.item() if isinstance(value, np.generic) else value


class CuckooHashTable:
    """An open-addressing key/value map with cuckoo collision resolution."""

    def __init__(
        self,
        num_buckets: int = 8,
        bucket_size: int = 4,
        max_kicks: int = DEFAULT_MAX_KICKS,
        seed: int = 0,
    ) -> None:
        self.bucket_size = bucket_size
        self.max_kicks = max_kicks
        self.seed = seed
        self.num_resizes = 0
        self._rng = random.Random(derive_seed(seed, "cht-rng"))
        self._generation = 0
        self._init_table(next_power_of_two(num_buckets))

    def _init_table(self, num_buckets: int) -> None:
        # 63-bit digests in a packed uint64 column (sentinel = 2^64-1, out
        # of the digest range by construction — no folding needed).
        self.buckets = SlotMatrix(num_buckets, self.bucket_size, with_payloads=True, fp_bits=63)
        self._salt1 = derive_seed(self.seed, "cht-h1", self._generation)
        self._salt2 = derive_seed(self.seed, "cht-h2", self._generation)
        self._count = 0

    # -- hashing ------------------------------------------------------------

    def _digest(self, key: object) -> int:
        """The 63-bit typed-column digest (home index = low bits)."""
        return hash64(key, self._salt1) & _DIGEST_MASK

    def _indexes(self, key: object) -> tuple[int, int]:
        mask = self.buckets.num_buckets - 1
        return hash64(key, self._salt1) & mask, hash64(key, self._salt2) & mask

    def _indexes_many(
        self, keys: Sequence[object] | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batch `_indexes` plus digests: both bucket hashes, vectorised.

        Digests stay uint64 so comparisons against the packed digest column
        run natively (an int64/uint64 mix would promote to float64 and lose
        low bits).
        """
        mask = np.uint64(self.buckets.num_buckets - 1)
        h1 = hash64_many(keys, self._salt1)
        digests = h1 & np.uint64(_DIGEST_MASK)
        i1 = (h1 & mask).astype(np.int64)
        i2 = (hash64_many(keys, self._salt2) & mask).astype(np.int64)
        return digests, i1, i2

    # -- mapping protocol -----------------------------------------------------

    def __setitem__(self, key: object, value: Any) -> None:
        i1, i2 = self._indexes(key)
        self._set_hashed(key, value, i1, i2)

    def _set_hashed(self, key: object, value: Any, i1: int, i2: int) -> None:
        """Upsert kernel shared by `__setitem__` and `insert_many`."""
        # Update in place if the key is already present.
        for bucket in (i1, i2):
            for slot, _digest, entry in self.buckets.iter_slots(bucket):
                if entry[0] == key:
                    self.buckets.set_slot(bucket, slot, self._digest(key), (key, value))
                    return
        self._insert_new((key, value), i1, i2)

    def insert_many(self, keys: Sequence[object], values: Sequence[Any]) -> None:
        """Batch upsert: hash all keys in one pass, then place sequentially.

        A resize mid-batch re-salts the table and invalidates the remaining
        precomputed indices, so hashing restarts from the first unplaced key
        whenever the generation changes.  End state matches a scalar loop.
        """
        if len(keys) != len(values):
            raise ValueError("keys and values must have the same length")
        # Hashing consumes the input as-is (zero-copy for int ndarrays);
        # only the per-key placement unwraps elements to native objects —
        # stored keys are re-hashed by kicks/resizes and hash64 rejects
        # numpy scalars.
        index = 0
        while index < len(keys):
            generation = self._generation
            _digests, h1s, h2s = self._indexes_many(keys[index:])
            base = index
            while index < len(keys) and self._generation == generation:
                offset = index - base
                self._set_hashed(
                    _native_item(keys, index),
                    _native_item(values, index),
                    int(h1s[offset]),
                    int(h2s[offset]),
                )
                index += 1

    def get_many(
        self, keys: Sequence[object] | np.ndarray, default: Any = None
    ) -> list[Any]:
        """Batch `get`: vectorised digest pre-filter, exact check per candidate.

        The live digest column answers "definitely absent" for most misses in
        one fancy-indexed comparison; only rows with a digest hit compare
        actual keys.
        """
        digests, h1s, h2s = self._indexes_many(keys)
        candidate = self.buckets.pair_eq(digests, h1s, h2s).any(axis=(1, 2))
        out = [default] * len(keys)
        for i in np.nonzero(candidate)[0].tolist():
            key = _native_item(keys, i)
            for bucket in (int(h1s[i]), int(h2s[i])):
                for _slot, _digest, entry in self.buckets.iter_slots(bucket):
                    if entry[0] == key:
                        out[i] = entry[1]
                        break
                else:
                    continue
                break
        return out

    def contains_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch `__contains__`."""
        sentinel = _MISSING
        return np.fromiter(
            (value is not sentinel for value in self.get_many(keys, sentinel)),
            dtype=bool,
            count=len(keys),
        )

    def delete_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch delete: True per key actually removed (no KeyError).

        A vectorised digest pre-filter screens definite misses; only
        candidate rows run the exact per-key removal.
        """
        digests, h1s, h2s = self._indexes_many(keys)
        candidate = self.buckets.pair_eq(digests, h1s, h2s).any(axis=(1, 2))
        out = np.zeros(len(keys), dtype=bool)
        for i in np.nonzero(candidate)[0].tolist():
            out[i] = self._remove_key(_native_item(keys, i), int(h1s[i]), int(h2s[i]))
        return out

    def _remove_key(self, key: object, i1: int, i2: int) -> bool:
        for bucket in (i1, i2):
            for slot, _digest, entry in self.buckets.iter_slots(bucket):
                if entry[0] == key:
                    self.buckets.clear_slot(bucket, slot)
                    self._count -= 1
                    return True
        return False

    def _insert_new(self, pair: tuple[object, Any], i1: int, i2: int) -> None:
        digest = self._digest(pair[0])
        if (
            self.buckets.try_add(i1, digest, pair) >= 0
            or self.buckets.try_add(i2, digest, pair) >= 0
        ):
            self._count += 1
            return
        item = pair
        current = self._rng.choice((i1, i2))
        for _ in range(self.max_kicks):
            victim_slot = self._rng.randrange(self.bucket_size)
            victim = self.buckets.payload_at(current, victim_slot)
            self.buckets.set_slot(current, victim_slot, self._digest(item[0]), item)
            item = victim
            a, b = self._indexes(item[0])
            current = b if current == a else a
            if self.buckets.try_add(current, self._digest(item[0]), item) >= 0:
                self._count += 1
                return
        # MaxKicks exhausted: grow the table and retry (§4.1), carrying the
        # displaced victim along with all resident pairs.
        self._resize(item)

    def _resize(self, pending: tuple[object, Any]) -> None:
        old_entries = [entry for _, _, _fp, entry in self.buckets.iter_entries()]
        old_entries.append(pending)
        new_size = self.buckets.num_buckets * 2
        while True:
            self._generation += 1
            self.num_resizes += 1
            self._init_table(new_size)
            if self._try_bulk_insert(old_entries):
                self._count = len(old_entries)
                return
            new_size *= 2

    def _try_bulk_insert(self, entries: list[tuple[object, Any]]) -> bool:
        for pair in entries:
            i1, i2 = self._indexes(pair[0])
            if not self._try_place(pair, i1, i2):
                return False
        return True

    def _try_place(self, pair: tuple[object, Any], i1: int, i2: int) -> bool:
        digest = self._digest(pair[0])
        if (
            self.buckets.try_add(i1, digest, pair) >= 0
            or self.buckets.try_add(i2, digest, pair) >= 0
        ):
            return True
        item = pair
        current = self._rng.choice((i1, i2))
        for _ in range(self.max_kicks):
            victim_slot = self._rng.randrange(self.bucket_size)
            victim = self.buckets.payload_at(current, victim_slot)
            self.buckets.set_slot(current, victim_slot, self._digest(item[0]), item)
            item = victim
            a, b = self._indexes(item[0])
            current = b if current == a else a
            if self.buckets.try_add(current, self._digest(item[0]), item) >= 0:
                return True
        return False

    def __getitem__(self, key: object) -> Any:
        value = self.get(key, _MISSING)
        if value is _MISSING:
            raise KeyError(key)
        return value

    def get(self, key: object, default: Any = None) -> Any:
        """Return the value stored for ``key``, or ``default``."""
        for bucket in self._indexes(key):
            for _slot, _digest, entry in self.buckets.iter_slots(bucket):
                if entry[0] == key:
                    return entry[1]
        return default

    def __delitem__(self, key: object) -> None:
        i1, i2 = self._indexes(key)
        if not self._remove_key(key, i1, i2):
            raise KeyError(key)

    def __contains__(self, key: object) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    def __len__(self) -> int:
        return self._count

    def keys(self) -> Iterator[object]:
        """Yield all keys (arbitrary order)."""
        for _, _, _fp, entry in self.buckets.iter_entries():
            yield entry[0]

    def items(self) -> Iterator[tuple[object, Any]]:
        """Yield all (key, value) pairs (arbitrary order)."""
        for _, _, _fp, entry in self.buckets.iter_entries():
            yield entry

    def load_factor(self) -> float:
        """Fraction of slots occupied."""
        return self.buckets.load_factor()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CuckooHashTable(buckets={self.buckets.num_buckets}, b={self.bucket_size}, "
            f"items={self._count}, load={self.load_factor():.3f})"
        )
