"""Classic cuckoo hash table (key -> value), as reviewed in §4/§4.1.

Unlike the filters, the table stores full keys, uses two independent bucket
hashes (not partial-key hashing), updates values for duplicate keys, and
resizes itself (doubling) when an insertion cannot be placed within MaxKicks
— exactly the behaviour described in §4.1.

Storage is a payload-bearing :class:`~repro.cuckoo.buckets.SlotMatrix`: the
typed column holds a 63-bit **key digest** (the full first bucket hash, so
the home index is just ``digest & (m-1)``) and the payload column holds the
``(key, value)`` pair.  Batch probes vectorise a digest pre-filter against
the live column — digest equality is necessary for key equality — and only
candidate rows fall back to exact key comparison.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, Sequence

import numpy as np

from repro.cuckoo.buckets import SlotMatrix, next_power_of_two
from repro.hashing.mixers import as_native_list, derive_seed, hash64, hash64_many

DEFAULT_MAX_KICKS = 500

_MISSING = object()

#: Stored digests keep 63 bits of the first bucket hash: non-negative in
#: int64 and disjoint from the EMPTY sentinel (-1).
_DIGEST_MASK = (1 << 63) - 1


class CuckooHashTable:
    """An open-addressing key/value map with cuckoo collision resolution."""

    def __init__(
        self,
        num_buckets: int = 8,
        bucket_size: int = 4,
        max_kicks: int = DEFAULT_MAX_KICKS,
        seed: int = 0,
    ) -> None:
        self.bucket_size = bucket_size
        self.max_kicks = max_kicks
        self.seed = seed
        self.num_resizes = 0
        self._rng = random.Random(derive_seed(seed, "cht-rng"))
        self._generation = 0
        self._init_table(next_power_of_two(num_buckets))

    def _init_table(self, num_buckets: int) -> None:
        self.buckets = SlotMatrix(num_buckets, self.bucket_size, with_payloads=True)
        self._salt1 = derive_seed(self.seed, "cht-h1", self._generation)
        self._salt2 = derive_seed(self.seed, "cht-h2", self._generation)
        self._count = 0

    # -- hashing ------------------------------------------------------------

    def _digest(self, key: object) -> int:
        """The 63-bit typed-column digest (home index = low bits)."""
        return hash64(key, self._salt1) & _DIGEST_MASK

    def _indexes(self, key: object) -> tuple[int, int]:
        mask = self.buckets.num_buckets - 1
        return hash64(key, self._salt1) & mask, hash64(key, self._salt2) & mask

    def _indexes_many(
        self, keys: Sequence[object] | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batch `_indexes` plus digests: both bucket hashes, vectorised."""
        mask = np.uint64(self.buckets.num_buckets - 1)
        h1 = hash64_many(keys, self._salt1)
        digests = (h1 & np.uint64(_DIGEST_MASK)).astype(np.int64)
        i1 = (h1 & mask).astype(np.int64)
        i2 = (hash64_many(keys, self._salt2) & mask).astype(np.int64)
        return digests, i1, i2

    # -- mapping protocol -----------------------------------------------------

    def __setitem__(self, key: object, value: Any) -> None:
        i1, i2 = self._indexes(key)
        self._set_hashed(key, value, i1, i2)

    def _set_hashed(self, key: object, value: Any, i1: int, i2: int) -> None:
        """Upsert kernel shared by `__setitem__` and `insert_many`."""
        # Update in place if the key is already present.
        for bucket in (i1, i2):
            for slot, _digest, entry in self.buckets.iter_slots(bucket):
                if entry[0] == key:
                    self.buckets.set_slot(bucket, slot, self._digest(key), (key, value))
                    return
        self._insert_new((key, value), i1, i2)

    def insert_many(self, keys: Sequence[object], values: Sequence[Any]) -> None:
        """Batch upsert: hash all keys in one pass, then place sequentially.

        A resize mid-batch re-salts the table and invalidates the remaining
        precomputed indices, so hashing restarts from the first unplaced key
        whenever the generation changes.  End state matches a scalar loop.
        """
        # Native conversion matters beyond parity: stored keys are re-hashed
        # by kicks and resizes, and hash64 rejects numpy scalars.
        keys = as_native_list(keys)
        values = as_native_list(values)
        if len(keys) != len(values):
            raise ValueError("keys and values must have the same length")
        index = 0
        while index < len(keys):
            generation = self._generation
            _digests, h1s, h2s = self._indexes_many(keys[index:])
            base = index
            while index < len(keys) and self._generation == generation:
                offset = index - base
                self._set_hashed(
                    keys[index], values[index], int(h1s[offset]), int(h2s[offset])
                )
                index += 1

    def get_many(
        self, keys: Sequence[object] | np.ndarray, default: Any = None
    ) -> list[Any]:
        """Batch `get`: vectorised digest pre-filter, exact check per candidate.

        The live digest column answers "definitely absent" for most misses in
        one fancy-indexed comparison; only rows with a digest hit compare
        actual keys.
        """
        digests, h1s, h2s = self._indexes_many(keys)
        table = self.buckets.fps
        digest_col = digests[:, None]
        candidate = (table[h1s] == digest_col).any(axis=1)
        candidate |= (table[h2s] == digest_col).any(axis=1)
        keys_list = as_native_list(keys)
        out = [default] * len(keys_list)
        for i in np.nonzero(candidate)[0].tolist():
            key = keys_list[i]
            for bucket in (int(h1s[i]), int(h2s[i])):
                for _slot, _digest, entry in self.buckets.iter_slots(bucket):
                    if entry[0] == key:
                        out[i] = entry[1]
                        break
                else:
                    continue
                break
        return out

    def contains_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch `__contains__`."""
        sentinel = _MISSING
        return np.fromiter(
            (value is not sentinel for value in self.get_many(keys, sentinel)),
            dtype=bool,
            count=len(keys),
        )

    def delete_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch delete: True per key actually removed (no KeyError)."""
        _digests, h1s, h2s = self._indexes_many(keys)
        keys_list = as_native_list(keys)
        out = np.empty(len(keys_list), dtype=bool)
        for i, (key, i1, i2) in enumerate(zip(keys_list, h1s.tolist(), h2s.tolist())):
            out[i] = self._remove_key(key, i1, i2)
        return out

    def _remove_key(self, key: object, i1: int, i2: int) -> bool:
        for bucket in (i1, i2):
            for slot, _digest, entry in self.buckets.iter_slots(bucket):
                if entry[0] == key:
                    self.buckets.clear_slot(bucket, slot)
                    self._count -= 1
                    return True
        return False

    def _insert_new(self, pair: tuple[object, Any], i1: int, i2: int) -> None:
        digest = self._digest(pair[0])
        if (
            self.buckets.try_add(i1, digest, pair) >= 0
            or self.buckets.try_add(i2, digest, pair) >= 0
        ):
            self._count += 1
            return
        item = pair
        current = self._rng.choice((i1, i2))
        for _ in range(self.max_kicks):
            victim_slot = self._rng.randrange(self.bucket_size)
            victim = self.buckets.payload_at(current, victim_slot)
            self.buckets.set_slot(current, victim_slot, self._digest(item[0]), item)
            item = victim
            a, b = self._indexes(item[0])
            current = b if current == a else a
            if self.buckets.try_add(current, self._digest(item[0]), item) >= 0:
                self._count += 1
                return
        # MaxKicks exhausted: grow the table and retry (§4.1), carrying the
        # displaced victim along with all resident pairs.
        self._resize(item)

    def _resize(self, pending: tuple[object, Any]) -> None:
        old_entries = [entry for _, _, _fp, entry in self.buckets.iter_entries()]
        old_entries.append(pending)
        new_size = self.buckets.num_buckets * 2
        while True:
            self._generation += 1
            self.num_resizes += 1
            self._init_table(new_size)
            if self._try_bulk_insert(old_entries):
                self._count = len(old_entries)
                return
            new_size *= 2

    def _try_bulk_insert(self, entries: list[tuple[object, Any]]) -> bool:
        for pair in entries:
            i1, i2 = self._indexes(pair[0])
            if not self._try_place(pair, i1, i2):
                return False
        return True

    def _try_place(self, pair: tuple[object, Any], i1: int, i2: int) -> bool:
        digest = self._digest(pair[0])
        if (
            self.buckets.try_add(i1, digest, pair) >= 0
            or self.buckets.try_add(i2, digest, pair) >= 0
        ):
            return True
        item = pair
        current = self._rng.choice((i1, i2))
        for _ in range(self.max_kicks):
            victim_slot = self._rng.randrange(self.bucket_size)
            victim = self.buckets.payload_at(current, victim_slot)
            self.buckets.set_slot(current, victim_slot, self._digest(item[0]), item)
            item = victim
            a, b = self._indexes(item[0])
            current = b if current == a else a
            if self.buckets.try_add(current, self._digest(item[0]), item) >= 0:
                return True
        return False

    def __getitem__(self, key: object) -> Any:
        value = self.get(key, _MISSING)
        if value is _MISSING:
            raise KeyError(key)
        return value

    def get(self, key: object, default: Any = None) -> Any:
        """Return the value stored for ``key``, or ``default``."""
        for bucket in self._indexes(key):
            for _slot, _digest, entry in self.buckets.iter_slots(bucket):
                if entry[0] == key:
                    return entry[1]
        return default

    def __delitem__(self, key: object) -> None:
        i1, i2 = self._indexes(key)
        if not self._remove_key(key, i1, i2):
            raise KeyError(key)

    def __contains__(self, key: object) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    def __len__(self) -> int:
        return self._count

    def keys(self) -> Iterator[object]:
        """Yield all keys (arbitrary order)."""
        for _, _, _fp, entry in self.buckets.iter_entries():
            yield entry[0]

    def items(self) -> Iterator[tuple[object, Any]]:
        """Yield all (key, value) pairs (arbitrary order)."""
        for _, _, _fp, entry in self.buckets.iter_entries():
            yield entry

    def load_factor(self) -> float:
        """Fraction of slots occupied."""
        return self.buckets.load_factor()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CuckooHashTable(buckets={self.buckets.num_buckets}, b={self.bucket_size}, "
            f"items={self._count}, load={self.load_factor():.3f})"
        )
