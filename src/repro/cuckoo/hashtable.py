"""Classic cuckoo hash table (key -> value), as reviewed in §4/§4.1.

Unlike the filters, the table stores full keys, uses two independent bucket
hashes (not partial-key hashing), updates values for duplicate keys, and
resizes itself (doubling) when an insertion cannot be placed within MaxKicks
— exactly the behaviour described in §4.1.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, Sequence

import numpy as np

from repro.cuckoo.buckets import BucketArray, next_power_of_two
from repro.hashing.mixers import as_native_list, derive_seed, hash64, hash64_many

DEFAULT_MAX_KICKS = 500

_MISSING = object()


class CuckooHashTable:
    """An open-addressing key/value map with cuckoo collision resolution."""

    def __init__(
        self,
        num_buckets: int = 8,
        bucket_size: int = 4,
        max_kicks: int = DEFAULT_MAX_KICKS,
        seed: int = 0,
    ) -> None:
        self.bucket_size = bucket_size
        self.max_kicks = max_kicks
        self.seed = seed
        self.num_resizes = 0
        self._rng = random.Random(derive_seed(seed, "cht-rng"))
        self._generation = 0
        self._init_table(next_power_of_two(num_buckets))

    def _init_table(self, num_buckets: int) -> None:
        self.buckets = BucketArray(num_buckets, self.bucket_size)
        self._salt1 = derive_seed(self.seed, "cht-h1", self._generation)
        self._salt2 = derive_seed(self.seed, "cht-h2", self._generation)
        self._count = 0

    # -- hashing ------------------------------------------------------------

    def _indexes(self, key: object) -> tuple[int, int]:
        mask = self.buckets.num_buckets - 1
        return hash64(key, self._salt1) & mask, hash64(key, self._salt2) & mask

    def _indexes_many(
        self, keys: Sequence[object] | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batch `_indexes`: both bucket hashes for every key, vectorised."""
        mask = np.uint64(self.buckets.num_buckets - 1)
        h1 = (hash64_many(keys, self._salt1) & mask).astype(np.int64)
        h2 = (hash64_many(keys, self._salt2) & mask).astype(np.int64)
        return h1, h2

    # -- mapping protocol -----------------------------------------------------

    def __setitem__(self, key: object, value: Any) -> None:
        i1, i2 = self._indexes(key)
        self._set_hashed(key, value, i1, i2)

    def _set_hashed(self, key: object, value: Any, i1: int, i2: int) -> None:
        """Upsert kernel shared by `__setitem__` and `insert_many`."""
        # Update in place if the key is already present.
        for bucket in (i1, i2):
            for slot, entry in self.buckets.iter_slots(bucket):
                if entry[0] == key:
                    self.buckets.set_slot(bucket, slot, (key, value))
                    return
        self._insert_new((key, value), i1, i2)

    def insert_many(self, keys: Sequence[object], values: Sequence[Any]) -> None:
        """Batch upsert: hash all keys in one pass, then place sequentially.

        A resize mid-batch re-salts the table and invalidates the remaining
        precomputed indices, so hashing restarts from the first unplaced key
        whenever the generation changes.  End state matches a scalar loop.
        """
        # Native conversion matters beyond parity: stored keys are re-hashed
        # by kicks and resizes, and hash64 rejects numpy scalars.
        keys = as_native_list(keys)
        values = as_native_list(values)
        if len(keys) != len(values):
            raise ValueError("keys and values must have the same length")
        index = 0
        while index < len(keys):
            generation = self._generation
            h1s, h2s = self._indexes_many(keys[index:])
            base = index
            while index < len(keys) and self._generation == generation:
                offset = index - base
                self._set_hashed(
                    keys[index], values[index], int(h1s[offset]), int(h2s[offset])
                )
                index += 1

    def get_many(
        self, keys: Sequence[object] | np.ndarray, default: Any = None
    ) -> list[Any]:
        """Batch `get`: hashing vectorised, bucket probes per key."""
        h1s, h2s = self._indexes_many(keys)
        keys_list = as_native_list(keys)
        out = []
        for key, i1, i2 in zip(keys_list, h1s.tolist(), h2s.tolist()):
            value = default
            for bucket in (i1, i2):
                for _slot, entry in self.buckets.iter_slots(bucket):
                    if entry[0] == key:
                        value = entry[1]
                        break
                else:
                    continue
                break
            out.append(value)
        return out

    def contains_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch `__contains__`."""
        sentinel = _MISSING
        return np.fromiter(
            (value is not sentinel for value in self.get_many(keys, sentinel)),
            dtype=bool,
            count=len(keys),
        )

    def delete_many(self, keys: Sequence[object] | np.ndarray) -> np.ndarray:
        """Batch delete: True per key actually removed (no KeyError)."""
        h1s, h2s = self._indexes_many(keys)
        keys_list = as_native_list(keys)
        out = np.empty(len(keys_list), dtype=bool)
        for i, (key, i1, i2) in enumerate(zip(keys_list, h1s.tolist(), h2s.tolist())):
            removed = False
            for bucket in (i1, i2):
                if self.buckets.remove(bucket, lambda e: e[0] == key) is not None:
                    self._count -= 1
                    removed = True
                    break
            out[i] = removed
        return out

    def _insert_new(self, pair: tuple[object, Any], i1: int, i2: int) -> None:
        if self.buckets.try_add(i1, pair) or self.buckets.try_add(i2, pair):
            self._count += 1
            return
        item = pair
        current = self._rng.choice((i1, i2))
        for _ in range(self.max_kicks):
            victim_slot = self._rng.randrange(self.bucket_size)
            victim = self.buckets.get_slot(current, victim_slot)
            self.buckets.set_slot(current, victim_slot, item)
            item = victim
            a, b = self._indexes(item[0])
            current = b if current == a else a
            if self.buckets.try_add(current, item):
                self._count += 1
                return
        # MaxKicks exhausted: grow the table and retry (§4.1), carrying the
        # displaced victim along with all resident pairs.
        self._resize(item)

    def _resize(self, pending: tuple[object, Any]) -> None:
        old_entries = [entry for _, _, entry in self.buckets.iter_entries()]
        old_entries.append(pending)
        new_size = self.buckets.num_buckets * 2
        while True:
            self._generation += 1
            self.num_resizes += 1
            self._init_table(new_size)
            if self._try_bulk_insert(old_entries):
                self._count = len(old_entries)
                return
            new_size *= 2

    def _try_bulk_insert(self, entries: list[tuple[object, Any]]) -> bool:
        for pair in entries:
            i1, i2 = self._indexes(pair[0])
            if not self._try_place(pair, i1, i2):
                return False
        return True

    def _try_place(self, pair: tuple[object, Any], i1: int, i2: int) -> bool:
        if self.buckets.try_add(i1, pair) or self.buckets.try_add(i2, pair):
            return True
        item = pair
        current = self._rng.choice((i1, i2))
        for _ in range(self.max_kicks):
            victim_slot = self._rng.randrange(self.bucket_size)
            victim = self.buckets.get_slot(current, victim_slot)
            self.buckets.set_slot(current, victim_slot, item)
            item = victim
            a, b = self._indexes(item[0])
            current = b if current == a else a
            if self.buckets.try_add(current, item):
                return True
        return False

    def __getitem__(self, key: object) -> Any:
        value = self.get(key, _MISSING)
        if value is _MISSING:
            raise KeyError(key)
        return value

    def get(self, key: object, default: Any = None) -> Any:
        """Return the value stored for ``key``, or ``default``."""
        for bucket in self._indexes(key):
            for _slot, entry in self.buckets.iter_slots(bucket):
                if entry[0] == key:
                    return entry[1]
        return default

    def __delitem__(self, key: object) -> None:
        for bucket in self._indexes(key):
            if self.buckets.remove(bucket, lambda e: e[0] == key) is not None:
                self._count -= 1
                return
        raise KeyError(key)

    def __contains__(self, key: object) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    def __len__(self) -> int:
        return self._count

    def keys(self) -> Iterator[object]:
        """Yield all keys (arbitrary order)."""
        for _, _, entry in self.buckets.iter_entries():
            yield entry[0]

    def items(self) -> Iterator[tuple[object, Any]]:
        """Yield all (key, value) pairs (arbitrary order)."""
        for _, _, entry in self.buckets.iter_entries():
            yield entry

    def load_factor(self) -> float:
        """Fraction of slots occupied."""
        return self.buckets.load_factor()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CuckooHashTable(buckets={self.buckets.num_buckets}, b={self.bucket_size}, "
            f"items={self._count}, load={self.load_factor():.3f})"
        )
