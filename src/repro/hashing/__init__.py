"""Hashing substrate: lookup3 port, 64-bit mixers, and salted hash families."""

from repro.hashing.families import HashFamily
from repro.hashing.lookup3 import hashlittle, hashlittle2, hashlittle64
from repro.hashing.mixers import canonical_bytes, derive_seed, hash64, mix64

__all__ = [
    "HashFamily",
    "canonical_bytes",
    "derive_seed",
    "hash64",
    "hashlittle",
    "hashlittle2",
    "hashlittle64",
    "mix64",
]
