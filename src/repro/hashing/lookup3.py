"""Pure-Python port of Bob Jenkins' lookup3 hash (hashlittle / hashlittle2).

The paper's reference implementation (and the original cuckoo filter paper)
hash keys with Jenkins lookup3, so this module provides a faithful port of the
byte-oriented ``hashlittle`` routines.  The port follows lookup3.c's
little-endian path; the per-byte "tail" switch in the C code is equivalent to
zero-padding the final partial 12-byte block, which is what we do here.

All arithmetic is performed modulo 2**32 to match the C unsigned overflow
semantics.
"""

from __future__ import annotations

_MASK32 = 0xFFFFFFFF


def _rot(x: int, k: int) -> int:
    """Rotate a 32-bit value left by ``k`` bits."""
    return ((x << k) | (x >> (32 - k))) & _MASK32


def _mix(a: int, b: int, c: int) -> tuple[int, int, int]:
    """lookup3's reversible 96-bit mixing step."""
    a = (a - c) & _MASK32
    a ^= _rot(c, 4)
    c = (c + b) & _MASK32
    b = (b - a) & _MASK32
    b ^= _rot(a, 6)
    a = (a + c) & _MASK32
    c = (c - b) & _MASK32
    c ^= _rot(b, 8)
    b = (b + a) & _MASK32
    a = (a - c) & _MASK32
    a ^= _rot(c, 16)
    c = (c + b) & _MASK32
    b = (b - a) & _MASK32
    b ^= _rot(a, 19)
    a = (a + c) & _MASK32
    c = (c - b) & _MASK32
    c ^= _rot(b, 4)
    b = (b + a) & _MASK32
    return a, b, c


def _final(a: int, b: int, c: int) -> tuple[int, int, int]:
    """lookup3's final avalanche of the last 96-bit block."""
    c ^= b
    c = (c - _rot(b, 14)) & _MASK32
    a ^= c
    a = (a - _rot(c, 11)) & _MASK32
    b ^= a
    b = (b - _rot(a, 25)) & _MASK32
    c ^= b
    c = (c - _rot(b, 16)) & _MASK32
    a ^= c
    a = (a - _rot(c, 4)) & _MASK32
    b ^= a
    b = (b - _rot(a, 14)) & _MASK32
    c ^= b
    c = (c - _rot(b, 24)) & _MASK32
    return a, b, c


def hashlittle2(data: bytes, initval: int = 0, initval2: int = 0) -> tuple[int, int]:
    """Return two 32-bit hash values of ``data``.

    ``initval`` seeds the primary hash and ``initval2`` the secondary one,
    mirroring the ``*pc`` / ``*pb`` in-out parameters of the C function.  The
    returned pair is ``(c, b)`` in lookup3's naming: the primary and secondary
    hash words.
    """
    length = len(data)
    a = b = c = (0xDEADBEEF + length + (initval & _MASK32)) & _MASK32
    c = (c + (initval2 & _MASK32)) & _MASK32

    offset = 0
    remaining = length
    while remaining > 12:
        a = (a + int.from_bytes(data[offset : offset + 4], "little")) & _MASK32
        b = (b + int.from_bytes(data[offset + 4 : offset + 8], "little")) & _MASK32
        c = (c + int.from_bytes(data[offset + 8 : offset + 12], "little")) & _MASK32
        a, b, c = _mix(a, b, c)
        offset += 12
        remaining -= 12

    if remaining == 0:
        # lookup3's "case 0" returns without a final mix.
        return c, b

    tail = data[offset:] + b"\x00" * (12 - remaining)
    a = (a + int.from_bytes(tail[0:4], "little")) & _MASK32
    b = (b + int.from_bytes(tail[4:8], "little")) & _MASK32
    c = (c + int.from_bytes(tail[8:12], "little")) & _MASK32
    a, b, c = _final(a, b, c)
    return c, b


def hashlittle(data: bytes, initval: int = 0) -> int:
    """Return a single 32-bit hash of ``data`` (lookup3's ``hashlittle``)."""
    c, _b = hashlittle2(data, initval, 0)
    return c


def hashlittle64(data: bytes, seed: int = 0) -> int:
    """Return a 64-bit hash of ``data`` by combining both lookup3 words.

    The 64-bit seed is split across the two 32-bit init values, matching how
    lookup3.c documents building a 64-bit result from ``hashlittle2``.
    """
    c, b = hashlittle2(data, seed & _MASK32, (seed >> 32) & _MASK32)
    return (b << 32) | c
