"""64-bit hashing utilities: canonical value encoding and fast integer mixing.

Two hash paths are offered behind one ``hash64`` entry point:

* Machine integers go through a SplitMix64-style finalizer (`mix64`), which is
  a handful of arithmetic operations in pure Python — important because the
  hot paths of the filters hash integer join keys and attribute values.
* Everything else (strings, bytes, floats, tuples, ...) is canonically
  serialised to bytes and hashed with the Jenkins lookup3 port, the hash
  family used by the paper's implementation.

Both paths accept a 64-bit ``seed`` so independent structures (and independent
hash functions within one structure) can derive uncorrelated hashes.

`mix64_many` / `hash64_many` are the batch counterparts: numpy-vectorised for
integer batches, element-wise otherwise, and bit-identical to the scalar
functions either way (the equivalence contract is recorded in DESIGN.md).
"""

from __future__ import annotations

import struct
from typing import Sequence

import numpy as np

from repro.hashing.lookup3 import hashlittle64

_MASK64 = 0xFFFFFFFFFFFFFFFF

# Fixed odd constants from SplitMix64 / MurmurHash3's 64-bit finalizers.
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def mix64(x: int) -> int:
    """Avalanche a 64-bit integer (SplitMix64 finalizer).

    Bijective on 64-bit integers, so distinct inputs never collide; its role
    is purely to decorrelate the bits of structured inputs such as sequential
    ids.
    """
    x &= _MASK64
    x = ((x ^ (x >> 30)) * _MIX1) & _MASK64
    x = ((x ^ (x >> 27)) * _MIX2) & _MASK64
    return x ^ (x >> 31)


def mix64_many(x: np.ndarray) -> np.ndarray:
    """Avalanche an array of 64-bit integers (vectorised `mix64`).

    Operates in ``uint64``, whose wrap-around multiplication matches the
    scalar path's mod-2**64 arithmetic bit for bit.
    """
    x = np.asarray(x, dtype=np.uint64)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(_MIX1)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(_MIX2)
    return x ^ (x >> np.uint64(31))


def canonical_bytes(value: object) -> bytes:
    """Serialise ``value`` into a canonical, type-tagged byte string.

    Distinct values of the same type always produce distinct byte strings, and
    type tags keep e.g. ``1`` and ``"1"`` from colliding.  Supported types:
    ``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes`` and (possibly
    nested) tuples/lists thereof.
    """
    if value is None:
        return b"n"
    if isinstance(value, bool):
        return b"B1" if value else b"B0"
    if isinstance(value, int):
        length = (value.bit_length() + 8) // 8 or 1
        return b"i" + length.to_bytes(2, "little") + value.to_bytes(length, "little", signed=True)
    if isinstance(value, float):
        return b"f" + struct.pack("<d", value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return b"s" + len(raw).to_bytes(4, "little") + raw
    if isinstance(value, bytes):
        return b"b" + len(value).to_bytes(4, "little") + value
    if isinstance(value, (tuple, list)):
        parts = [b"t", len(value).to_bytes(4, "little")]
        for item in value:
            encoded = canonical_bytes(item)
            parts.append(len(encoded).to_bytes(4, "little"))
            parts.append(encoded)
        return b"".join(parts)
    raise TypeError(f"cannot canonically encode values of type {type(value).__name__}")


#: Per-seed cache of the mixed salt used by the integer fast path.  Seeds are
#: few (a handful of salts per structure), so this stays tiny.
_MIXED_SEED_CACHE: dict[int, int] = {}


def _mixed_seed(seed: int) -> int:
    mixed = _MIXED_SEED_CACHE.get(seed)
    if mixed is None:
        mixed = mix64(seed ^ _GOLDEN)
        _MIXED_SEED_CACHE[seed] = mixed
    return mixed


def hash64(value: object, seed: int = 0) -> int:
    """Hash an arbitrary supported value to 64 bits under ``seed``.

    Integers (excluding bools) take the fast `mix64` path; all other values
    are canonically encoded and hashed with lookup3.  The two paths occupy
    disjoint input spaces, so mixing them in one structure is safe.
    """
    if isinstance(value, int) and not isinstance(value, bool):
        return mix64(value ^ _mixed_seed(seed))
    return hashlittle64(canonical_bytes(value), seed & _MASK64)


def as_native_list(values: Sequence[object] | np.ndarray) -> list:
    """Batch elements as native Python objects (numpy scalars unwrapped).

    Scalar hash/fingerprint paths dispatch on Python types, so batch code
    falling back to them must unwrap numpy scalars first; this is the one
    shared conversion rule.
    """
    return values.tolist() if isinstance(values, np.ndarray) else list(values)


def coerce_int_column(values: Sequence[object] | np.ndarray) -> np.ndarray | None:
    """Return ``values`` as a 1-D integer ndarray, or None.

    None means element-wise processing is required to preserve scalar
    semantics: non-integer dtypes, nested shapes, ints outside 64 bits, and
    Python bools (which would silently coerce to ints but hash/fingerprint
    through the canonical path, not the integer fast path).
    """
    if isinstance(values, np.ndarray):
        return values if values.ndim == 1 and values.dtype.kind in "iu" else None
    try:
        candidate = np.asarray(values)
    except (ValueError, TypeError, OverflowError):
        return None
    if (
        candidate.ndim == 1
        and candidate.dtype.kind in "iu"
        and not any(isinstance(v, bool) for v in values)
    ):
        return candidate
    return None


def hash64_many(values: Sequence[object] | np.ndarray, seed: int = 0) -> np.ndarray:
    """Hash a batch of values to 64 bits each, bit-identical to `hash64`.

    Integer-dtype arrays (and sequences that coerce to one) take a fully
    vectorised SplitMix64 path; anything else falls back to element-wise
    `hash64`, so mixed/typed batches still agree with the scalar API.
    Returns a ``uint64`` array of the same length.
    """
    arr = coerce_int_column(values)
    if arr is not None:
        # astype(uint64) is two's-complement for signed inputs, matching the
        # scalar path's ``x & _MASK64`` of negative Python ints.
        x = arr.astype(np.uint64) ^ np.uint64(_mixed_seed(seed))
        return mix64_many(x)
    # Element-wise fallback on native Python values, so the scalar type
    # dispatch in hash64 is unchanged.
    seq = as_native_list(values)
    return np.fromiter((hash64(v, seed) for v in seq), dtype=np.uint64, count=len(seq))


def hash64_many_masked(
    values: Sequence[object] | np.ndarray, seed: int, mask: int, fold: int | None = None
) -> np.ndarray:
    """Batch ``hash64(v, seed) & mask`` as int64 (requires ``mask < 2**63``).

    The one shared copy of the mask-and-cast dance used for fingerprints,
    bucket indices and XOR jumps across all cuckoo structures.  ``fold``
    (when not None) remaps that one reserved value to 0 after masking —
    the in-band EMPTY-sentinel reservation of packed slot storage
    (`repro.cuckoo.buckets.fingerprint_fold`), applied identically to the
    scalar path by the callers.
    """
    out = (hash64_many(values, seed) & np.uint64(mask)).astype(np.int64)
    if fold is not None:
        out[out == fold] = 0
    return out


#: Cap on the per-structure fingerprint->jump memo (`JumpCache`).
#: Fingerprint spaces up to 16 bits are fully memoised; wider spaces (or
#: adversarial key streams) evict least-recently-used entries instead of
#: growing without bound.
JUMP_CACHE_LIMIT = 1 << 16


class JumpCache:
    """Bounded LRU memo for ``hash64(fingerprint, salt) & mask`` jumps.

    The single shared eviction policy for every cuckoo structure's XOR-jump
    memo (scalar paths; batch paths compute jumps vectorised and bypass the
    memo entirely).  Jumps are pure functions of their inputs, so eviction
    is always safe — it only costs a re-derivation.  Hot fingerprints stay
    resident because lookups refresh recency.
    """

    __slots__ = ("salt", "mask", "limit", "_map")

    def __init__(self, salt: int, mask: int, limit: int = JUMP_CACHE_LIMIT) -> None:
        if limit < 1:
            raise ValueError("JumpCache limit must be at least 1")
        self.salt = salt
        self.mask = mask
        self.limit = limit
        self._map: dict[int, int] = {}

    def jump(self, fingerprint: int) -> int:
        """Memoised ``hash64(fingerprint, salt) & mask``."""
        memo = self._map
        jump = memo.get(fingerprint)
        if jump is None:
            jump = hash64(fingerprint, self.salt) & self.mask
            while len(memo) >= self.limit:
                # dicts iterate in insertion order; the first key is the LRU
                # entry because hits below reinsert at the tail.
                memo.pop(next(iter(memo)))
            memo[fingerprint] = jump
        else:
            # Refresh recency: delete + reinsert moves the key to the tail.
            del memo[fingerprint]
            memo[fingerprint] = jump
        return jump

    def __len__(self) -> int:
        return len(self._map)


def derive_seed(seed: int, purpose: str, index: int = 0) -> int:
    """Derive an independent 64-bit sub-seed for a named purpose.

    Structures use this to split one user-provided seed into uncorrelated
    salts (bucket hash, fingerprint hash, chain hash, kick RNG, ...).
    """
    return hash64((purpose, index), seed)
