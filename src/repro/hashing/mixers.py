"""64-bit hashing utilities: canonical value encoding and fast integer mixing.

Two hash paths are offered behind one ``hash64`` entry point:

* Machine integers go through a SplitMix64-style finalizer (`mix64`), which is
  a handful of arithmetic operations in pure Python — important because the
  hot paths of the filters hash integer join keys and attribute values.
* Everything else (strings, bytes, floats, tuples, ...) is canonically
  serialised to bytes and hashed with the Jenkins lookup3 port, the hash
  family used by the paper's implementation.

Both paths accept a 64-bit ``seed`` so independent structures (and independent
hash functions within one structure) can derive uncorrelated hashes.
"""

from __future__ import annotations

import struct

from repro.hashing.lookup3 import hashlittle64

_MASK64 = 0xFFFFFFFFFFFFFFFF

# Fixed odd constants from SplitMix64 / MurmurHash3's 64-bit finalizers.
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def mix64(x: int) -> int:
    """Avalanche a 64-bit integer (SplitMix64 finalizer).

    Bijective on 64-bit integers, so distinct inputs never collide; its role
    is purely to decorrelate the bits of structured inputs such as sequential
    ids.
    """
    x &= _MASK64
    x = ((x ^ (x >> 30)) * _MIX1) & _MASK64
    x = ((x ^ (x >> 27)) * _MIX2) & _MASK64
    return x ^ (x >> 31)


def canonical_bytes(value: object) -> bytes:
    """Serialise ``value`` into a canonical, type-tagged byte string.

    Distinct values of the same type always produce distinct byte strings, and
    type tags keep e.g. ``1`` and ``"1"`` from colliding.  Supported types:
    ``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes`` and (possibly
    nested) tuples/lists thereof.
    """
    if value is None:
        return b"n"
    if isinstance(value, bool):
        return b"B1" if value else b"B0"
    if isinstance(value, int):
        length = (value.bit_length() + 8) // 8 or 1
        return b"i" + length.to_bytes(2, "little") + value.to_bytes(length, "little", signed=True)
    if isinstance(value, float):
        return b"f" + struct.pack("<d", value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return b"s" + len(raw).to_bytes(4, "little") + raw
    if isinstance(value, bytes):
        return b"b" + len(value).to_bytes(4, "little") + value
    if isinstance(value, (tuple, list)):
        parts = [b"t", len(value).to_bytes(4, "little")]
        for item in value:
            encoded = canonical_bytes(item)
            parts.append(len(encoded).to_bytes(4, "little"))
            parts.append(encoded)
        return b"".join(parts)
    raise TypeError(f"cannot canonically encode values of type {type(value).__name__}")


#: Per-seed cache of the mixed salt used by the integer fast path.  Seeds are
#: few (a handful of salts per structure), so this stays tiny.
_MIXED_SEED_CACHE: dict[int, int] = {}


def _mixed_seed(seed: int) -> int:
    mixed = _MIXED_SEED_CACHE.get(seed)
    if mixed is None:
        mixed = mix64(seed ^ _GOLDEN)
        _MIXED_SEED_CACHE[seed] = mixed
    return mixed


def hash64(value: object, seed: int = 0) -> int:
    """Hash an arbitrary supported value to 64 bits under ``seed``.

    Integers (excluding bools) take the fast `mix64` path; all other values
    are canonically encoded and hashed with lookup3.  The two paths occupy
    disjoint input spaces, so mixing them in one structure is safe.
    """
    if isinstance(value, int) and not isinstance(value, bool):
        return mix64(value ^ _mixed_seed(seed))
    return hashlittle64(canonical_bytes(value), seed & _MASK64)


def derive_seed(seed: int, purpose: str, index: int = 0) -> int:
    """Derive an independent 64-bit sub-seed for a named purpose.

    Structures use this to split one user-provided seed into uncorrelated
    salts (bucket hash, fingerprint hash, chain hash, kick RNG, ...).
    """
    return hash64((purpose, index), seed)
