"""Salted hash families for multi-hash sketches (Bloom filters etc.).

A :class:`HashFamily` represents ``k`` pairwise-independent-ish hash functions
derived from a single seed.  Bloom filters use the standard Kirsch-Mitzenmacher
double-hashing construction: two base 64-bit hashes ``h1, h2`` generate the
family ``g_i(x) = h1(x) + i * h2(x)``, which preserves the asymptotic false
positive rate of truly independent hashes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.hashing.mixers import as_native_list, derive_seed, hash64, hash64_many


class HashFamily:
    """A family of hash functions indexed by ``i`` in ``[0, num_hashes)``."""

    def __init__(self, num_hashes: int, seed: int = 0) -> None:
        if num_hashes < 1:
            raise ValueError("a hash family needs at least one hash function")
        self.num_hashes = num_hashes
        self.seed = seed
        self._salt1 = derive_seed(seed, "family-h1")
        self._salt2 = derive_seed(seed, "family-h2")

    def hash_pair(self, value: object) -> tuple[int, int]:
        """Return the two base hashes used for double hashing."""
        h1 = hash64(value, self._salt1)
        # Force h2 odd so successive probe strides never collapse to zero
        # modulo a power-of-two range.
        h2 = hash64(value, self._salt2) | 1
        return h1, h2

    def indexes(self, value: object, modulus: int) -> list[int]:
        """Return the ``num_hashes`` probe positions for ``value``."""
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        h1, h2 = self.hash_pair(value)
        return [(h1 + i * h2) % modulus for i in range(self.num_hashes)]

    def hash_pair_many(
        self, values: Sequence[object] | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batch `hash_pair`: two ``uint64`` arrays, bit-identical per element."""
        h1 = hash64_many(values, self._salt1)
        h2 = hash64_many(values, self._salt2) | np.uint64(1)
        return h1, h2

    def indexes_many(
        self, values: Sequence[object] | np.ndarray, modulus: int
    ) -> np.ndarray:
        """Batch `indexes`: an ``(n, num_hashes)`` array of probe positions.

        The scalar path evaluates ``(h1 + i*h2) % modulus`` in arbitrary
        precision, so the batch path reduces both base hashes mod ``modulus``
        first (congruence-preserving) to keep every intermediate inside
        uint64; the guard rejects moduli large enough to overflow anyway.
        """
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        if self.num_hashes * modulus >= 1 << 63:
            return np.array(
                [self.indexes(v, modulus) for v in as_native_list(values)], dtype=np.int64
            )
        h1, h2 = self.hash_pair_many(values)
        m = np.uint64(modulus)
        h1m = (h1 % m)[:, None]
        h2m = (h2 % m)[:, None]
        strides = np.arange(self.num_hashes, dtype=np.uint64)[None, :]
        return ((h1m + strides * h2m) % m).astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashFamily(num_hashes={self.num_hashes}, seed={self.seed:#x})"
