"""Bit-level sketch substrate: bit arrays and Bloom filters."""

from repro.sketches.bitarray import BitArray
from repro.sketches.bitpack import BitReader, BitWriter
from repro.sketches.bloom import BloomFilter
from repro.sketches.bottomk import BottomKSketch, EntryCountEstimator

__all__ = [
    "BitArray",
    "BitReader",
    "BitWriter",
    "BloomFilter",
    "BottomKSketch",
    "EntryCountEstimator",
]
