"""Standard Bloom filter built on :class:`~repro.sketches.bitarray.BitArray`.

Used in three places in the reproduction:

* as the per-entry attribute sketch of the Bloom-CCF variant (§5.2),
* as the conversion target of the Mixed CCF (§6.1), and
* as the classical baseline in bit-efficiency comparisons (§10.2).

The filter is parameterised directly by bit count and hash count because the
paper sizes the per-entry sketches that way (4-24 bits, 2-4 hashes);
:meth:`BloomFilter.optimal_params` provides the textbook sizing for callers
that start from an (n, target FPR) pair instead.
"""

from __future__ import annotations

import math

from repro.hashing.families import HashFamily
from repro.sketches.bitarray import BitArray


class BloomFilter:
    """A fixed-size Bloom filter for arbitrary hashable values."""

    def __init__(self, num_bits: int, num_hashes: int, seed: int = 0) -> None:
        if num_bits < 1:
            raise ValueError("a Bloom filter needs at least one bit")
        if num_hashes < 1:
            raise ValueError("a Bloom filter needs at least one hash function")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self.seed = seed
        self.num_inserted = 0
        self._bits = BitArray(num_bits)
        self._family = HashFamily(num_hashes, seed)

    @staticmethod
    def optimal_params(num_items: int, target_fpr: float) -> tuple[int, int]:
        """Return ``(num_bits, num_hashes)`` for ``num_items`` at ``target_fpr``.

        Classical sizing: ``m = -n ln(p) / (ln 2)^2`` and ``k = (m/n) ln 2``.
        """
        if num_items < 1:
            raise ValueError("num_items must be positive")
        if not 0.0 < target_fpr < 1.0:
            raise ValueError("target_fpr must be in (0, 1)")
        num_bits = max(1, math.ceil(-num_items * math.log(target_fpr) / math.log(2) ** 2))
        num_hashes = max(1, round(num_bits / num_items * math.log(2)))
        return num_bits, num_hashes

    @staticmethod
    def optimal_num_hashes(num_bits: int, num_items: int) -> int:
        """Return the FPR-minimising hash count for a fixed bit budget."""
        if num_items < 1:
            raise ValueError("num_items must be positive")
        return max(1, round(num_bits / num_items * math.log(2)))

    def add(self, value: object) -> None:
        """Insert ``value`` into the filter."""
        for index in self._family.indexes(value, self.num_bits):
            self._bits.set(index)
        self.num_inserted += 1

    def __contains__(self, value: object) -> bool:
        return all(self._bits.get(i) for i in self._family.indexes(value, self.num_bits))

    def positions(self, value: object) -> list[int]:
        """Bit positions ``value`` probes in any same-parameter filter.

        Positions depend only on (num_bits, num_hashes, seed), so they can be
        computed once and tested against many filters via
        :meth:`contains_positions` — the hot pattern of batch predicate
        matching over per-entry sketches.
        """
        return self._family.indexes(value, self.num_bits)

    def contains_positions(self, positions: list[int]) -> bool:
        """Membership test against precomputed :meth:`positions` output."""
        bits = self._bits
        return all(bits.get(i) for i in positions)

    def contains(self, value: object) -> bool:
        """Return True if ``value`` may have been inserted (no false negatives)."""
        return value in self

    def fill_ratio(self) -> float:
        """Return the fraction of bits set."""
        return self._bits.fill_ratio()

    def expected_fpr(self, num_items: int | None = None) -> float:
        """Return the textbook FPR estimate ``(1 - e^{-kn/m})^k``.

        With no argument, uses the number of :meth:`add` calls so far.  Note
        (per §7 of the paper, citing Bose et al.) that for very small filters
        this approximation underestimates the true FPR.
        """
        n = self.num_inserted if num_items is None else num_items
        if n < 0:
            raise ValueError("num_items must be non-negative")
        k, m = self.num_hashes, self.num_bits
        return (1.0 - math.exp(-k * n / m)) ** k

    def empirical_fpr(self) -> float:
        """Return the FPR implied by the current fill ratio (``fill^k``).

        This is exact in expectation for a query value never inserted, given
        the realised bit pattern, and is the estimator the evaluation harness
        uses for per-entry attribute sketches.
        """
        return self.fill_ratio() ** self.num_hashes

    def union_update(self, other: "BloomFilter") -> None:
        """Merge another filter built with identical parameters and seed."""
        if (self.num_bits, self.num_hashes, self.seed) != (
            other.num_bits,
            other.num_hashes,
            other.seed,
        ):
            raise ValueError("can only union Bloom filters with identical parameters")
        self._bits.union_update(other._bits)
        self.num_inserted += other.num_inserted

    def copy(self) -> "BloomFilter":
        """Return an independent copy."""
        clone = BloomFilter(self.num_bits, self.num_hashes, self.seed)
        clone._bits = self._bits.copy()
        clone.num_inserted = self.num_inserted
        return clone

    def size_in_bits(self) -> int:
        """Return the size of the bit payload (excludes parameters)."""
        return self.num_bits

    def payload_bytes(self) -> bytes:
        """Serialise the bit payload (parameters travel separately)."""
        return self._bits.to_bytes()

    @classmethod
    def from_payload(
        cls, num_bits: int, num_hashes: int, seed: int, payload: bytes, num_inserted: int
    ) -> "BloomFilter":
        """Reconstruct a filter from :meth:`payload_bytes` output."""
        bloom = cls(num_bits, num_hashes, seed)
        bloom._bits = BitArray.from_bytes(payload, num_bits)
        bloom.num_inserted = num_inserted
        return bloom

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BloomFilter(num_bits={self.num_bits}, num_hashes={self.num_hashes}, "
            f"inserted={self.num_inserted}, fill={self.fill_ratio():.3f})"
        )
