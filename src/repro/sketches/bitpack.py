"""Bit-granular binary packing for sketch serialisation.

Sketches are defined by sub-byte fields (12-bit fingerprints, 4-bit
attribute fingerprints, 1-bit flags), so their wire format packs values at
bit granularity.  :class:`BitWriter` appends fixed-width unsigned fields;
:class:`BitReader` consumes them in the same order.  Bits are packed LSB
first within bytes, matching :class:`~repro.sketches.bitarray.BitArray`.
"""

from __future__ import annotations


class BitWriter:
    """Append-only bit stream."""

    def __init__(self) -> None:
        self._buf = bytearray()
        self._bit_position = 0

    def write(self, value: int, num_bits: int) -> None:
        """Append ``value`` as ``num_bits`` unsigned bits."""
        if num_bits < 0:
            raise ValueError("num_bits must be non-negative")
        if value < 0 or (num_bits < value.bit_length()):
            raise ValueError(f"value {value} does not fit in {num_bits} bits")
        position = self._bit_position
        self._bit_position += num_bits
        needed = (self._bit_position + 7) // 8
        if len(self._buf) < needed:
            self._buf.extend(b"\x00" * (needed - len(self._buf)))
        while num_bits > 0:
            byte_index, bit_index = divmod(position, 8)
            take = min(8 - bit_index, num_bits)
            chunk = value & ((1 << take) - 1)
            self._buf[byte_index] |= chunk << bit_index
            value >>= take
            position += take
            num_bits -= take

    def write_bool(self, flag: bool) -> None:
        """Append a single bit."""
        self.write(1 if flag else 0, 1)

    def write_bytes(self, data: bytes) -> None:
        """Append whole bytes (bit-aligned within the stream)."""
        for byte in data:
            self.write(byte, 8)

    @property
    def num_bits(self) -> int:
        """Bits written so far."""
        return self._bit_position

    def getvalue(self) -> bytes:
        """Return the packed bytes (final partial byte zero-padded)."""
        return bytes(self._buf)


class BitReader:
    """Sequential reader over :class:`BitWriter` output."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._bit_position = 0

    def read(self, num_bits: int) -> int:
        """Consume ``num_bits`` and return them as an unsigned integer."""
        if num_bits < 0:
            raise ValueError("num_bits must be non-negative")
        if self._bit_position + num_bits > len(self._data) * 8:
            raise EOFError("bit stream exhausted")
        value = 0
        shift = 0
        position = self._bit_position
        remaining = num_bits
        while remaining > 0:
            byte_index, bit_index = divmod(position, 8)
            take = min(8 - bit_index, remaining)
            chunk = (self._data[byte_index] >> bit_index) & ((1 << take) - 1)
            value |= chunk << shift
            shift += take
            position += take
            remaining -= take
        self._bit_position = position
        return value

    def read_bool(self) -> bool:
        """Consume one bit."""
        return bool(self.read(1))

    def read_bytes(self, count: int) -> bytes:
        """Consume ``count`` whole bytes."""
        return bytes(self.read(8) for _ in range(count))

    @property
    def bits_remaining(self) -> int:
        """Unread bits (includes any final padding)."""
        return len(self._data) * 8 - self._bit_position
