"""Bit-granular binary packing for sketch serialisation.

Sketches are defined by sub-byte fields (12-bit fingerprints, 4-bit
attribute fingerprints, 1-bit flags), so their wire format packs values at
bit granularity.  :class:`BitWriter` appends fixed-width unsigned fields;
:class:`BitReader` consumes them in the same order.  Bits are packed LSB
first within bytes, matching :class:`~repro.sketches.bitarray.BitArray`.
"""

from __future__ import annotations

import numpy as np


class BitWriter:
    """Append-only bit stream."""

    def __init__(self) -> None:
        self._buf = bytearray()
        self._bit_position = 0

    def write(self, value: int, num_bits: int) -> None:
        """Append ``value`` as ``num_bits`` unsigned bits."""
        if num_bits < 0:
            raise ValueError("num_bits must be non-negative")
        if value < 0 or (num_bits < value.bit_length()):
            raise ValueError(f"value {value} does not fit in {num_bits} bits")
        position = self._bit_position
        self._bit_position += num_bits
        needed = (self._bit_position + 7) // 8
        if len(self._buf) < needed:
            self._buf.extend(b"\x00" * (needed - len(self._buf)))
        while num_bits > 0:
            byte_index, bit_index = divmod(position, 8)
            take = min(8 - bit_index, num_bits)
            chunk = value & ((1 << take) - 1)
            self._buf[byte_index] |= chunk << bit_index
            value >>= take
            position += take
            num_bits -= take

    def write_bool(self, flag: bool) -> None:
        """Append a single bit."""
        self.write(1 if flag else 0, 1)

    def write_array(self, values: np.ndarray, num_bits: int) -> None:
        """Append each element of ``values`` as a ``num_bits``-wide field.

        Bit-identical to calling :meth:`write` per element, but packed
        array-at-a-time: the value matrix is exploded to a flat LSB-first
        bit vector, packed with ``np.packbits`` and OR-merged into the
        buffer at the current (possibly unaligned) bit position.  This is
        the columnar serialisation fast path.
        """
        values = np.ascontiguousarray(values).ravel()
        if values.size == 0:
            return
        if num_bits == 0:
            raise ValueError("array fields need at least one bit")
        unsigned = values.astype(np.uint64)
        if num_bits < 64 and bool((unsigned >> np.uint64(num_bits)).any()):
            raise ValueError(f"array value does not fit in {num_bits} bits")
        shifts = np.arange(num_bits, dtype=np.uint64)
        bits = ((unsigned[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
        self._write_bits(bits.ravel())

    def write_bool_array(self, flags: np.ndarray) -> None:
        """Append one bit per element of a boolean array."""
        flags = np.ascontiguousarray(flags).ravel()
        if flags.size:
            self._write_bits(flags.astype(np.uint8))

    def _write_bits(self, bits: np.ndarray) -> None:
        """Append a flat stream-ordered 0/1 array at the current position."""
        position = self._bit_position
        lead = position % 8
        if lead:
            bits = np.concatenate([np.zeros(lead, dtype=np.uint8), bits])
        packed = np.packbits(bits, bitorder="little")
        self._bit_position = position + len(bits) - lead
        needed = (self._bit_position + 7) // 8
        if len(self._buf) < needed:
            self._buf.extend(b"\x00" * (needed - len(self._buf)))
        start = position // 8
        if lead:
            self._buf[start] |= packed[0]
            start += 1
            packed = packed[1:]
        if len(packed):
            self._buf[start : start + len(packed)] = packed.tobytes()

    def write_bytes(self, data: bytes) -> None:
        """Append whole bytes (bit-aligned within the stream)."""
        if data:
            self._write_bits(np.unpackbits(np.frombuffer(data, dtype=np.uint8), bitorder="little"))

    @property
    def num_bits(self) -> int:
        """Bits written so far."""
        return self._bit_position

    def getvalue(self) -> bytes:
        """Return the packed bytes (final partial byte zero-padded)."""
        return bytes(self._buf)


class BitReader:
    """Sequential reader over :class:`BitWriter` output."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._bit_position = 0
        self._bits: np.ndarray | None = None

    def read(self, num_bits: int) -> int:
        """Consume ``num_bits`` and return them as an unsigned integer."""
        if num_bits < 0:
            raise ValueError("num_bits must be non-negative")
        if self._bit_position + num_bits > len(self._data) * 8:
            raise EOFError("bit stream exhausted")
        value = 0
        shift = 0
        position = self._bit_position
        remaining = num_bits
        while remaining > 0:
            byte_index, bit_index = divmod(position, 8)
            take = min(8 - bit_index, remaining)
            chunk = (self._data[byte_index] >> bit_index) & ((1 << take) - 1)
            value |= chunk << shift
            shift += take
            position += take
            remaining -= take
        self._bit_position = position
        return value

    def read_bool(self) -> bool:
        """Consume one bit."""
        return bool(self.read(1))

    def _bit_view(self) -> np.ndarray:
        """The whole stream as a flat LSB-first bit array (lazily unpacked)."""
        if self._bits is None:
            self._bits = np.unpackbits(
                np.frombuffer(self._data, dtype=np.uint8), bitorder="little"
            )
        return self._bits

    def read_array(self, count: int, num_bits: int) -> np.ndarray:
        """Consume ``count`` fields of ``num_bits`` each, vectorised.

        Bit-identical to calling :meth:`read` ``count`` times; returns an
        int64 array (``num_bits`` must stay below 64 for the sign bit).
        """
        if num_bits < 1 or num_bits > 63:
            raise ValueError("read_array supports widths in [1, 63]")
        total = count * num_bits
        if self._bit_position + total > len(self._data) * 8:
            raise EOFError("bit stream exhausted")
        if count == 0:
            return np.empty(0, dtype=np.int64)
        bits = self._bit_view()[self._bit_position : self._bit_position + total]
        self._bit_position += total
        matrix = bits.reshape(count, num_bits).astype(np.uint64)
        shifts = np.arange(num_bits, dtype=np.uint64)
        return (matrix << shifts[None, :]).sum(axis=1).astype(np.int64)

    def read_bool_array(self, count: int) -> np.ndarray:
        """Consume ``count`` single-bit flags as a boolean array."""
        if self._bit_position + count > len(self._data) * 8:
            raise EOFError("bit stream exhausted")
        bits = self._bit_view()[self._bit_position : self._bit_position + count]
        self._bit_position += count
        return bits.astype(bool)

    def read_bytes(self, count: int) -> bytes:
        """Consume ``count`` whole bytes."""
        if count == 0:
            return b""
        total = count * 8
        if self._bit_position + total > len(self._data) * 8:
            raise EOFError("bit stream exhausted")
        bits = self._bit_view()[self._bit_position : self._bit_position + total]
        self._bit_position += total
        return np.packbits(bits, bitorder="little").tobytes()

    @property
    def bit_position(self) -> int:
        """Bits consumed so far (the error-context offset for bad payloads)."""
        return self._bit_position

    @property
    def bits_remaining(self) -> int:
        """Unread bits (includes any final padding)."""
        return len(self._data) * 8 - self._bit_position
