"""Bottom-k sampling for CCF sizing estimation (§10.4).

Sizing a CCF needs the predicted occupied-entry count
``n_k · E[min(A, cap)]`` (Table 1), which §10.4 notes "can be estimated from
the data using a bottom-k or two-level sampling scheme" in one pass over a
sample — the full data never needs a second scan.

A :class:`BottomKSketch` keeps the ``k`` keys with the smallest hash values.
Because hashing is uniform, those keys are a uniform sample of the
*distinct* keys, and the k-th smallest hash (mapped to [0,1]) estimates the
distinct count as ``(k-1)/h_(k)``.  :class:`EntryCountEstimator` rides on
top: for each sampled key it tracks the distinct attribute-fingerprint
vectors seen, giving an unbiased per-key ``E[min(A, cap)]`` to scale by the
distinct-count estimate.
"""

from __future__ import annotations

import heapq
from typing import Any, Hashable, Iterable

from repro.hashing.mixers import derive_seed, hash64

_MAX_HASH = float(1 << 64)


class BottomKSketch:
    """The k distinct keys with the smallest hash values."""

    def __init__(self, k: int, seed: int = 0) -> None:
        if k < 2:
            raise ValueError("bottom-k needs k >= 2 (the estimator divides by h_(k))")
        self.k = k
        self.seed = seed
        self._salt = derive_seed(seed, "bottomk")
        # Max-heap (negated hashes) of the current bottom-k.
        self._heap: list[tuple[int, Any]] = []
        self._members: dict[Any, int] = {}

    def add(self, key: Hashable) -> bool:
        """Offer a key; returns True if it is (now) in the bottom-k."""
        if key in self._members:
            return True
        hashed = hash64(key, self._salt)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-hashed, key))
            self._members[key] = hashed
            return True
        largest = -self._heap[0][0]
        if hashed >= largest:
            return False
        _negated, evicted = heapq.heapreplace(self._heap, (-hashed, key))
        del self._members[evicted]
        self._members[key] = hashed
        return True

    def __contains__(self, key: Hashable) -> bool:
        return key in self._members

    def keys(self) -> list[Any]:
        """The sampled keys (a uniform sample of the distinct keys)."""
        return list(self._members)

    @property
    def saturated(self) -> bool:
        """True once k keys have been collected."""
        return len(self._heap) >= self.k

    def distinct_estimate(self) -> float:
        """Estimate the number of distinct keys offered: ``(k-1)/h_(k)``."""
        if not self._heap:
            return 0.0
        if not self.saturated:
            return float(len(self._heap))
        kth_smallest = -self._heap[0][0]
        return (self.k - 1) / (kth_smallest / _MAX_HASH)

    def merge(self, other: "BottomKSketch") -> None:
        """Union with another sketch built with the same k and seed."""
        if (self.k, self.seed) != (other.k, other.seed):
            raise ValueError("can only merge bottom-k sketches with identical parameters")
        for key in other.keys():
            self.add(key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BottomKSketch(k={self.k}, collected={len(self._heap)})"


class EntryCountEstimator:
    """One-pass estimator for a CCF's occupied entries (§10.4, Table 1).

    Two levels of sampling (the flavour of Chen & Yi's two-level scheme the
    paper cites):

    * a bottom-k over *keys* samples distinct keys uniformly and tracks each
      sampled key's distinct attribute vectors — this estimates
      ``E[min(A, cap)]`` for the capped variants (mixed, plain, finite
      Lmax), where the cap bounds the heavy tail's variance;
    * a bottom-k over *(key, vector) pairs* estimates the distinct-row count
      directly — exactly ``Σ_k r_k``, the uncapped chained prediction —
      with variance independent of the duplicate skew (a key-level sample
      would inherit the tail's variance).

    Note rows for a key can arrive *after* the key is evicted from the
    sample; the per-key vector sets are only trusted for keys still in the
    sample at the end, which keeps the estimate consistent (every retained
    key has seen all its rows — eviction only happens on insertion of a
    smaller-hashed key, never removal).
    """

    def __init__(self, k: int = 256, seed: int = 0) -> None:
        self._sketch = BottomKSketch(k, seed)
        self._pair_sketch = BottomKSketch(k, derive_seed(seed, "pairs"))
        self._vectors: dict[Any, set] = {}

    def add(self, key: Hashable, vector: tuple) -> None:
        """Offer one row."""
        vector = tuple(vector)
        self._pair_sketch.add((key, vector))
        if self._sketch.add(key):
            self._vectors.setdefault(key, set()).add(vector)
        # Drop state for evicted keys lazily.
        if len(self._vectors) > 2 * self._sketch.k:
            self._vectors = {
                key: vectors for key, vectors in self._vectors.items() if key in self._sketch
            }

    def add_stream(self, rows: Iterable[tuple[Hashable, tuple]]) -> "EntryCountEstimator":
        """Offer many rows; returns self for chaining."""
        for key, vector in rows:
            self.add(key, vector)
        return self

    def distinct_keys(self) -> float:
        """Estimated number of distinct keys."""
        return self._sketch.distinct_estimate()

    def distinct_rows(self) -> float:
        """Estimated number of distinct (key, vector) rows (``Σ_k r_k``)."""
        return self._pair_sketch.distinct_estimate()

    def mean_capped_duplicates(self, cap: float) -> float:
        """Estimated ``E[min(A, cap)]`` over distinct keys."""
        sampled = [
            len(vectors)
            for key, vectors in self._vectors.items()
            if key in self._sketch
        ]
        if not sampled:
            return 0.0
        return sum(min(count, cap) for count in sampled) / len(sampled)

    def estimate(
        self,
        kind: str,
        max_dupes: int,
        max_chain: int | None = None,
        bucket_size: int | None = None,
    ) -> float:
        """Estimated occupied entries for a CCF variant (Table 1 min-form)."""
        n_keys = self.distinct_keys()
        if kind == "bloom":
            return n_keys
        if kind == "mixed":
            return n_keys * self.mean_capped_duplicates(max_dupes)
        if kind == "chained":
            if max_chain is None:
                # Uncapped: the prediction is the distinct-row count, which
                # the pair-level sample estimates without tail variance.
                return self.distinct_rows()
            return n_keys * self.mean_capped_duplicates(max_dupes * max_chain)
        if kind == "plain":
            if bucket_size is None:
                raise ValueError("plain sizing needs bucket_size")
            return n_keys * self.mean_capped_duplicates(2 * bucket_size)
        raise ValueError(f"unknown CCF kind {kind!r}")
