"""A compact fixed-size bit array backed by a ``bytearray``.

This is the storage primitive under every Bloom filter in the repository.  It
deliberately exposes only what the sketches need: bit get/set/clear, popcount,
bitwise union/intersection with an equally-sized array, and byte-level
(de)serialisation.
"""

from __future__ import annotations


class BitArray:
    """Fixed-length array of bits, all initially zero."""

    __slots__ = ("num_bits", "_buf")

    def __init__(self, num_bits: int) -> None:
        if num_bits < 0:
            raise ValueError("num_bits must be non-negative")
        self.num_bits = num_bits
        self._buf = bytearray((num_bits + 7) // 8)

    def _check_index(self, index: int) -> int:
        if index < 0:
            index += self.num_bits
        if not 0 <= index < self.num_bits:
            raise IndexError(f"bit index {index} out of range for {self.num_bits} bits")
        return index

    def get(self, index: int) -> bool:
        """Return the bit at ``index``."""
        index = self._check_index(index)
        return bool(self._buf[index >> 3] & (1 << (index & 7)))

    def set(self, index: int) -> None:
        """Set the bit at ``index`` to one."""
        index = self._check_index(index)
        self._buf[index >> 3] |= 1 << (index & 7)

    def clear(self, index: int) -> None:
        """Set the bit at ``index`` to zero."""
        index = self._check_index(index)
        self._buf[index >> 3] &= ~(1 << (index & 7)) & 0xFF

    def assign(self, index: int, value: bool) -> None:
        """Set the bit at ``index`` to ``value``."""
        if value:
            self.set(index)
        else:
            self.clear(index)

    def __getitem__(self, index: int) -> bool:
        return self.get(index)

    def __setitem__(self, index: int, value: bool) -> None:
        self.assign(index, bool(value))

    def __len__(self) -> int:
        return self.num_bits

    def count(self) -> int:
        """Return the number of one bits (popcount)."""
        return sum(byte.bit_count() for byte in self._buf)

    def fill_ratio(self) -> float:
        """Return the fraction of bits set, or 0.0 for an empty array."""
        if self.num_bits == 0:
            return 0.0
        return self.count() / self.num_bits

    def any(self) -> bool:
        """Return True if at least one bit is set."""
        return any(self._buf)

    def reset(self) -> None:
        """Clear every bit."""
        for i in range(len(self._buf)):
            self._buf[i] = 0

    def _check_compatible(self, other: "BitArray") -> None:
        if not isinstance(other, BitArray):
            raise TypeError("expected a BitArray")
        if other.num_bits != self.num_bits:
            raise ValueError(
                f"size mismatch: {self.num_bits} bits vs {other.num_bits} bits"
            )

    def union_update(self, other: "BitArray") -> None:
        """In-place bitwise OR with another array of the same size."""
        self._check_compatible(other)
        for i, byte in enumerate(other._buf):
            self._buf[i] |= byte

    def intersection_update(self, other: "BitArray") -> None:
        """In-place bitwise AND with another array of the same size."""
        self._check_compatible(other)
        for i, byte in enumerate(other._buf):
            self._buf[i] &= byte

    def is_subset_of(self, other: "BitArray") -> bool:
        """Return True if every set bit here is also set in ``other``."""
        self._check_compatible(other)
        return all((mine & ~theirs) == 0 for mine, theirs in zip(self._buf, other._buf))

    def copy(self) -> "BitArray":
        """Return an independent copy."""
        clone = BitArray(self.num_bits)
        clone._buf[:] = self._buf
        return clone

    def to_bytes(self) -> bytes:
        """Serialise to bytes (little-endian bit order within bytes)."""
        return bytes(self._buf)

    @classmethod
    def from_bytes(cls, data: bytes, num_bits: int) -> "BitArray":
        """Deserialise from :meth:`to_bytes` output."""
        expected = (num_bits + 7) // 8
        if len(data) != expected:
            raise ValueError(f"expected {expected} bytes for {num_bits} bits, got {len(data)}")
        array = cls(num_bits)
        array._buf[:] = data
        # Bits beyond num_bits in the final byte must be zero.
        spare = expected * 8 - num_bits
        if spare and data and (data[-1] >> (8 - spare)):
            raise ValueError("stray bits set beyond num_bits")
        return array

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitArray):
            return NotImplemented
        return self.num_bits == other.num_bits and self._buf == other._buf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BitArray(num_bits={self.num_bits}, set={self.count()})"
