"""Serving throughput and latency: worker-pool scaling + request coalescing.

ISSUE 6's acceptance bars for the serving runtime (DESIGN.md §11), measured
against a mapped snapshot of ``REPRO_SERVE_KEYS`` keys (default 1M) probed
with Zipf-skewed traffic:

* **pool scaling** — aggregate ``query_many`` throughput through a
  process pool at 4 workers is **>= 3x** the single-worker pool at the 1M
  acceptance scale.  That bar only means something with >= 4 physical
  cores; on smaller machines (and CI smoke runs) the run still executes,
  records honest numbers — including ``cpu_count`` — and enforces parity,
  but skips the ratio assertion.
* **coalescing** — many concurrent single-key async clients through the
  CoalescingFrontEnd see a **lower p99** than the same clients dispatched
  naively one ``query_many(batch=1)`` per request.  The per-call numpy
  overhead the front end amortises is machine-independent, so this gate is
  unconditional.
* **parity** — every pooled answer is bit-identical to the direct
  single-process baseline.
* **tracing overhead** (ISSUE 10) — coalesced point-query p99 through a
  live runtime with request tracing recording *and* the HTTP telemetry
  server scraped is within **5%** of the same traffic with the
  ``REPRO_METRICS`` kill switch off, answers bit-identical either way.
  Interleaved rounds, best-of per leg; the ratio gate (like scaling) is
  enforced at the 1M acceptance scale.

Results merge into ``bench_results/serve_latency.json`` keyed by key count,
so the acceptance record and the CI smoke record coexist.

Environment knobs: ``REPRO_SERVE_KEYS`` (default 1M),
``REPRO_SERVE_WORKERS`` (default ``1,2,4``).
"""

from __future__ import annotations

import asyncio
import gc
import json
import os
import time

import numpy as np

import urllib.request

from repro import obs
from repro.bench.reporting import RESULTS_DIR, save_json
from repro.ccf import AttributeSchema, CCFParams
from repro.cuckoo.buckets import next_power_of_two
from repro.data.zipf import skewed_probe_indices
from repro.serve import CoalescingFrontEnd, ServeRuntime, WorkerPool
from repro.store import FilterStore, StoreConfig

NUM_KEYS = int(os.environ.get("REPRO_SERVE_KEYS", 1_000_000))
WORKER_COUNTS = tuple(
    int(w) for w in os.environ.get("REPRO_SERVE_WORKERS", "1,2,4").split(",")
)
RESULT_NAME = "serve_latency"
#: The 4-vs-1 worker scaling bar, enforced only where it is physically
#: possible: the 1M acceptance scale on a machine with >= 4 cores.
MIN_SCALING_4V1 = 3.0
ZIPF_ALPHA = 1.1

SCHEMA = AttributeSchema(["status", "region"])
PARAMS = CCFParams(key_bits=16, attr_bits=8, bucket_size=4, seed=9)
NUM_SHARDS = 4

#: Pooled-throughput probe volume: enough batches that round-robin keeps
#: every worker busy, scaled down for smoke runs.
NUM_BATCHES = 32
BATCH_SIZE = max(1000, min(100_000, NUM_KEYS // 10))
#: Concurrent single-key async clients for the coalescing comparison.
NUM_CLIENTS = 512
#: ISSUE 10 bar: request tracing + a live scrape server may cost at most 5%
#: coalesced p99, enforced (like the scaling gate) at the 1M acceptance
#: scale where the measurement is stable.
MAX_TRACING_OVERHEAD = 1.05
TRACING_ROUNDS = 11


def _build_snapshot(tmp_path):
    level_buckets = next_power_of_two(
        max(1024, NUM_KEYS // (NUM_SHARDS * PARAMS.bucket_size * 4))
    )
    config = StoreConfig(
        num_shards=NUM_SHARDS, level_buckets=level_buckets, target_load=0.85, seed=1
    )
    store = FilterStore(SCHEMA, PARAMS, config)
    keys = np.arange(NUM_KEYS, dtype=np.int64)
    for chunk in np.array_split(keys, max(1, NUM_KEYS // 100_000)):
        store.insert_many(chunk, [chunk % 5, chunk % 7])
    root = store.snapshot(tmp_path / "serve-snap")
    del store
    gc.collect()
    return root


def _zipf_batches(seed_base: int) -> list[np.ndarray]:
    """Zipf-skewed probe batches: hot head inside the store, cold tail
    reaching past it (so both hits and misses are exercised)."""
    return [
        skewed_probe_indices(
            BATCH_SIZE, universe=2 * NUM_KEYS, alpha=ZIPF_ALPHA, seed=seed_base + i
        )
        for i in range(NUM_BATCHES)
    ]


def _pool_throughput(root, batches, num_workers: int) -> dict:
    """Aggregate keys/s pushing all batches through a process pool."""
    with WorkerPool(root, num_workers=num_workers, mode="process") as pool:
        pool.query_many(batches[0])  # warm attachments before timing
        start = time.perf_counter()
        answers = pool.map_batches(batches)
        elapsed = time.perf_counter() - start
    total_keys = sum(len(b) for b in batches)
    return {
        "workers": num_workers,
        "seconds": elapsed,
        "keys_per_second": total_keys / elapsed,
        "answers": answers,
    }


async def _client_latencies_coalesced(
    frontend: CoalescingFrontEnd, keys: list[int]
) -> list[float]:
    """Each client awaits one point query; returns per-client latency."""

    async def one(key: int) -> float:
        start = time.perf_counter()
        await frontend.query(key)
        return time.perf_counter() - start

    return list(await asyncio.gather(*(one(k) for k in keys)))


def _latency_run(store: FilterStore, keys: np.ndarray, naive: bool) -> dict:
    """NUM_CLIENTS concurrent point queries, coalesced or naive batch=1."""
    if naive:
        frontend = CoalescingFrontEnd(store, tick_seconds=0.0, max_batch=1)
    else:
        frontend = CoalescingFrontEnd(store, tick_seconds=0.001)

    async def scenario():
        return await _client_latencies_coalesced(
            frontend, [int(k) for k in keys]
        )

    latencies = np.array(asyncio.run(scenario()))
    stats = frontend.stats()
    frontend.close()
    return {
        "clients": int(len(keys)),
        "flushes": stats["flushes"],
        "mean_batch": stats["histogram"]["mean_size"],
        "p50_ms": float(np.percentile(latencies, 50) * 1e3),
        "p99_ms": float(np.percentile(latencies, 99) * 1e3),
        "total_seconds": float(latencies.sum()),
    }


def _tracing_overhead(root, tmp_path, client_keys) -> dict:
    """Coalesced point-query latency through a live runtime, kill switch off
    vs on (with the HTTP telemetry server up and scraped), interleaved
    rounds.  Returns the record; asserts answers are bit-identical."""
    store = FilterStore.open(root)
    runtime = ServeRuntime(
        store, tmp_path / "tracing-epochs", num_workers=1, mode="thread", warm=False
    )
    keys = [int(k) for k in client_keys]

    async def scenario(frontend):
        async def one(key: int):
            start = time.perf_counter()
            hit = await frontend.query(key)
            return time.perf_counter() - start, hit

        return await asyncio.gather(*(one(k) for k in keys))

    was_enabled = obs.enabled()
    p99_ms = {"off": [], "on": []}
    reference = None
    try:
        with runtime:
            server = runtime.serve_telemetry()
            # Round 0 is a discarded warmup pair: first-touch page faults
            # and executor spin-up land there, not on either leg's record.
            for round_index in range(TRACING_ROUNDS + 1):
                for leg in ("off", "on"):
                    obs.set_enabled(leg == "on")
                    if leg == "on":
                        # The scrape surface is live during the traced leg.
                        with urllib.request.urlopen(
                            server.url("/metrics"), timeout=30
                        ) as response:
                            response.read()
                    frontend = runtime.frontend()
                    # Untimed warm pass each leg: the /metrics merge above
                    # walks every registry family, so without it the on
                    # leg's first timed batch pays the scrape's cache
                    # wreckage — scrape cost, not per-request tracing cost.
                    asyncio.run(scenario(frontend))
                    # A steady-state scraper drains the ring; a full ring
                    # would bill every on-leg span append with an eviction.
                    obs.RECORDER.drain()
                    obs.SLOW_OPS.clear()
                    # Teardown garbage (span dicts, scrape bodies) must not
                    # bill the timed section of either leg.
                    gc.collect()
                    timed = asyncio.run(scenario(frontend))
                    frontend.close()
                    latencies = np.array([t for t, _ in timed])
                    answers = [hit for _, hit in timed]
                    if reference is None:
                        reference = answers
                    assert answers == reference, (
                        f"tracing {leg} leg changed answers (kill switch must "
                        "be bit-identical)"
                    )
                    if round_index > 0:
                        p99_ms[leg].append(
                            float(np.percentile(latencies, 99) * 1e3)
                        )
    finally:
        obs.set_enabled(was_enabled)

    # Mean of each leg's three fastest rounds: scheduler noise on shared
    # hardware is strictly additive (competing processes only ever slow a
    # round down), so the fastest rounds sit closest to each leg's true
    # cost, while averaging three of them keeps one lucky round from
    # swinging the ratio.  A median would fold the noise tail back in —
    # single-round p99s spread 20-40% here, larger than the effect measured.
    p99_off = float(np.mean(sorted(p99_ms["off"])[:3]))
    p99_on = float(np.mean(sorted(p99_ms["on"])[:3]))
    return {
        "clients": len(keys),
        "rounds": TRACING_ROUNDS,
        "p99_off_ms": p99_off,
        "p99_on_ms": p99_on,
        "p99_off_rounds_ms": p99_ms["off"],
        "p99_on_rounds_ms": p99_ms["on"],
        "overhead_ratio": p99_on / p99_off,
        "max_overhead": MAX_TRACING_OVERHEAD,
        "gate_enforced": NUM_KEYS >= 1_000_000,
    }


def test_serve_latency(tmp_path):
    root = _build_snapshot(tmp_path)
    baseline_store = FilterStore.open(root)
    batches = _zipf_batches(seed_base=29)

    # Direct single-process baseline (and the parity reference).
    baseline_store.query_many(batches[0])  # warm the mappings
    start = time.perf_counter()
    expected = [baseline_store.query_many(batch) for batch in batches]
    direct_seconds = time.perf_counter() - start
    total_keys = sum(len(b) for b in batches)
    direct = {"seconds": direct_seconds, "keys_per_second": total_keys / direct_seconds}

    pool_runs = {}
    for workers in WORKER_COUNTS:
        run = _pool_throughput(root, batches, workers)
        answers = run.pop("answers")
        for got, want in zip(answers, expected):  # parity, every batch
            assert (got == want).all(), f"pool({workers}) diverged from baseline"
        pool_runs[str(workers)] = run

    # Coalesced vs naive point-query latency under concurrent clients.
    client_keys = skewed_probe_indices(
        NUM_CLIENTS, universe=2 * NUM_KEYS, alpha=ZIPF_ALPHA, seed=101
    )
    naive = _latency_run(baseline_store, client_keys, naive=True)
    coalesced = _latency_run(baseline_store, client_keys, naive=False)

    # ISSUE 10: tracing + live scrape server vs kill switch, same clients.
    tracing = _tracing_overhead(root, tmp_path, client_keys)

    scaling_4v1 = None
    if "1" in pool_runs and "4" in pool_runs:
        scaling_4v1 = (
            pool_runs["4"]["keys_per_second"] / pool_runs["1"]["keys_per_second"]
        )

    cpu_count = os.cpu_count()
    enforce_scaling = (
        scaling_4v1 is not None
        and NUM_KEYS >= 1_000_000
        and cpu_count is not None
        and cpu_count >= 4
    )
    record = {
        "keys": NUM_KEYS,
        "cpu_count": cpu_count,
        "zipf_alpha": ZIPF_ALPHA,
        "batches": NUM_BATCHES,
        "batch_size": BATCH_SIZE,
        "direct": direct,
        "pool": pool_runs,
        "scaling_4v1": scaling_4v1,
        "scaling_gate_enforced": enforce_scaling,
        "latency": {"naive": naive, "coalesced": coalesced},
        "tracing": tracing,
    }

    path = RESULTS_DIR / f"{RESULT_NAME}.json"
    merged: dict = {}
    if path.exists():
        merged = json.loads(path.read_text())
    merged[str(NUM_KEYS)] = record
    save_json(RESULT_NAME, merged)

    scaling_text = "n/a" if scaling_4v1 is None else f"{scaling_4v1:.2f}x"
    print(
        f"serve @ {NUM_KEYS} keys on {cpu_count} cores: "
        f"direct {direct['keys_per_second'] / 1e6:.2f}Mk/s, pool "
        + ", ".join(
            f"{w}w={run['keys_per_second'] / 1e6:.2f}Mk/s"
            for w, run in sorted(pool_runs.items(), key=lambda kv: int(kv[0]))
        )
        + f", 4v1 scaling {scaling_text}; point p99 "
        f"coalesced {coalesced['p99_ms']:.2f}ms (mean batch "
        f"{coalesced['mean_batch']:.0f}) vs naive {naive['p99_ms']:.2f}ms; "
        f"tracing p99 {tracing['p99_on_ms']:.2f}ms vs off "
        f"{tracing['p99_off_ms']:.2f}ms ({tracing['overhead_ratio']:.3f}x)"
    )

    # Coalescing really happened, and it beat per-call dispatch where it
    # counts: tail latency under concurrency.
    assert coalesced["mean_batch"] > 8, "front end failed to coalesce clients"
    assert coalesced["p99_ms"] < naive["p99_ms"], (
        f"coalesced p99 {coalesced['p99_ms']:.2f}ms did not beat naive "
        f"per-call dispatch {naive['p99_ms']:.2f}ms"
    )

    if tracing["gate_enforced"]:
        assert tracing["overhead_ratio"] <= MAX_TRACING_OVERHEAD, (
            f"tracing + scrape server cost {tracing['overhead_ratio']:.3f}x "
            f"coalesced p99 (allowed {MAX_TRACING_OVERHEAD}x at {NUM_KEYS} keys)"
        )

    if enforce_scaling:
        assert scaling_4v1 >= MIN_SCALING_4V1, (
            f"4-worker pool is only {scaling_4v1:.2f}x the 1-worker pool "
            f"(required {MIN_SCALING_4V1:.0f}x at {NUM_KEYS} keys on "
            f"{cpu_count} cores)"
        )
