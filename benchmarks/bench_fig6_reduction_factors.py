"""Figure 6 (a-d): per-instance reduction factors, large and small filters,
against the Exact-Semijoin and key-only Cuckoo-Filter baselines.

Paper claims: (a/c) CCF reduction factors hug the exact-semijoin curve, with
small filters separating the Bloom CCF visibly; (b/d) CCFs beat the key-only
cuckoo baseline decisively — where the baseline achieves no reduction at all
(RF = 1.0), CCFs often reach 0.05-0.20.
"""

import numpy as np

from repro.bench.reporting import print_figure, save_json


def _per_instance_series(results, labels):
    series = []
    for result in results:
        if result.m_predicate == 0:
            continue
        row = {
            "query": result.query_id,
            "base": result.base_table,
            "exact": result.rf("exact"),
            "cuckoo": result.rf("cuckoo"),
        }
        for label in labels:
            row[label] = result.rf(label)
        series.append(row)
    return sorted(series, key=lambda r: r["exact"])


def _quantiles(values):
    return [round(float(q), 4) for q in np.quantile(values, [0.1, 0.25, 0.5, 0.75, 0.9])]


def test_fig6_reduction_factors(ctx, all_labels, all_results, benchmark):
    def compute():
        sizes = {"large": [], "small": []}
        for size in sizes:
            labels = [f"{kind}-{size}" for kind in ("bloom", "mixed", "chained")]
            sizes[size] = _per_instance_series(all_results, labels)
        return sizes

    series_by_size = benchmark.pedantic(compute, rounds=1, iterations=1)

    for size, series in series_by_size.items():
        labels = [f"{kind}-{size}" for kind in ("bloom", "mixed", "chained")]
        rows = []
        for method in ["exact"] + labels + ["cuckoo"]:
            values = [r[method] for r in series]
            rows.append([method] + _quantiles(values) + [round(float(np.mean(values)), 4)])
        print_figure(
            f"Figure 6 ({size} filters): per-instance RF quantiles over "
            f"{len(series)} instances (sorted-curve summary)",
            ["method", "p10", "p25", "p50", "p75", "p90", "mean"],
            rows,
        )
    save_json("fig6_reduction_factors", series_by_size)

    for size, series in series_by_size.items():
        for kind in ("bloom", "mixed", "chained"):
            label = f"{kind}-{size}"
            # No false negatives: every CCF RF dominates the exact RF.
            assert all(r[label] >= r["exact"] - 1e-12 for r in series)
        # Headline: CCFs sharply beat the key-only baseline where it is
        # useless (cuckoo RF ~ 1.0).
        useless = [r for r in series if r["cuckoo"] > 0.95]
        if useless:
            chained_mean = np.mean([r[f"chained-{size}"] for r in useless])
            assert chained_mean < 0.6
    # Small filters hurt the Bloom CCF most (visible separation, §10.5).
    small = series_by_size["small"]
    large = series_by_size["large"]
    bloom_gap_small = np.mean([r["bloom-small"] - r["exact"] for r in small])
    bloom_gap_large = np.mean([r["bloom-large"] - r["exact"] for r in large])
    assert bloom_gap_small >= bloom_gap_large - 0.02
