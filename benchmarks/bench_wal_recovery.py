"""WAL append throughput and crash-recovery replay time (DESIGN.md §14).

ISSUE 9's acceptance bar for the crash-consistent FilterStore, measured on
``REPRO_WAL_KEYS`` keys (default 1M):

* **Append throughput** under every fsync discipline — ``never`` (commit
  points only), ``batch`` (deferred to ``flush_bytes``), ``always`` (synced
  per append) — against the non-durable store inserting the same batches.
  At the 1M acceptance scale, redo logging in ``fsync=never`` mode must
  keep at least **20%** of the non-durable insert rate (in practice it
  keeps far more; the gate catches pathological regressions like frame
  re-encoding or accidental per-row work).
* **Replay time vs WAL size**: the same store is crash-abandoned (handles
  dropped, no checkpoint) at ~25%, ~50% and 100% of the keys, and each
  reopen replays the whole log.  Replay throughput at the full scale must
  be at least **20%** of the baseline insert rate, and must scale roughly
  linearly in log size (per-row replay cost at 100% <= 3x the 25% point).
* **Correctness always** (every scale): the final recovered store answers
  a probe batch exactly like an oracle that applied the same inserts.

Results merge into ``bench_results/wal_recovery.json`` keyed by key count,
so the 1M acceptance record and the CI smoke record coexist.

Environment knobs: ``REPRO_WAL_KEYS`` (default 1M).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.bench.reporting import RESULTS_DIR, save_json
from repro.ccf import AttributeSchema, CCFParams
from repro.cuckoo.buckets import next_power_of_two
from repro.store import DurabilityConfig, FilterStore, StoreConfig

NUM_KEYS = int(os.environ.get("REPRO_WAL_KEYS", 1_000_000))
RESULT_NAME = "wal_recovery"
FSYNC_MODES = ("never", "batch", "always")
#: Gates (assert at the 1M acceptance scale; report-only below, where
#: per-call constants dominate and shared runners measure noise).
MIN_APPEND_RELATIVE = 0.20  # fsync=never durable rate vs non-durable rate
MIN_REPLAY_RELATIVE = 0.20  # replay rate vs non-durable insert rate
MAX_REPLAY_COST_GROWTH = 3.0  # per-row replay cost, full log vs smallest

SCHEMA = AttributeSchema(["status", "region"])
PARAMS = CCFParams(key_bits=16, attr_bits=8, bucket_size=4, seed=9)
NUM_SHARDS = 4


def _config() -> StoreConfig:
    level_buckets = next_power_of_two(
        max(1024, NUM_KEYS // (NUM_SHARDS * PARAMS.bucket_size * 4))
    )
    return StoreConfig(
        num_shards=NUM_SHARDS, level_buckets=level_buckets, target_load=0.85, seed=1
    )


def _chunks(keys: np.ndarray) -> list[np.ndarray]:
    return np.array_split(keys, max(1, len(keys) // 50_000))


def _insert_all(store: FilterStore, keys: np.ndarray) -> float:
    start = time.perf_counter()
    for chunk in _chunks(keys):
        store.insert_many(chunk, [chunk % 5, chunk % 7])
    return time.perf_counter() - start


def _abandon(store: FilterStore) -> None:
    """Drop the WAL handles without syncing or checkpointing — the store
    dies the way a crashed process does, so reopen really replays."""
    for shard in store.shards:
        if shard.wal is not None:
            shard.wal.close()
            shard.wal = None


def _wal_bytes(store: FilterStore) -> int:
    return sum(shard.wal.nbytes for shard in store.shards if shard.wal is not None)


def test_wal_recovery(tmp_path):
    keys = np.arange(NUM_KEYS, dtype=np.int64)

    # Non-durable baseline: the same batches with no logging at all.
    baseline = FilterStore(SCHEMA, PARAMS, _config())
    baseline_seconds = _insert_all(baseline, keys)
    baseline_rate = NUM_KEYS / baseline_seconds
    rng = np.random.default_rng(17)
    probe = rng.integers(0, 2 * NUM_KEYS, size=min(NUM_KEYS, 200_000)).astype(np.int64)
    expected = baseline.query_many(probe)
    del baseline

    # Append throughput per fsync discipline (batch/always on their own
    # roots; "never" doubles as the replay-curve store below).
    append: dict[str, dict] = {}
    for mode in ("batch", "always"):
        store = FilterStore(SCHEMA, PARAMS, _config())
        store.attach_wal(
            tmp_path / f"store-{mode}",
            DurabilityConfig(fsync=mode, flush_bytes=1 << 20, roll_bytes=1 << 40),
        )
        seconds = _insert_all(store, keys)
        append[mode] = {
            "rows_per_sec": NUM_KEYS / seconds,
            "relative": baseline_seconds / seconds,
            "wal_bytes": _wal_bytes(store),
        }
        store.close()

    # fsync=never + the replay curve: crash-abandon at ~25%, ~50%, 100% of
    # the keys; every reopen replays the whole (growing) gen-1 log, and the
    # recovered store keeps inserting, so one build yields three points.
    root = tmp_path / "store-never"
    store = FilterStore(SCHEMA, PARAMS, _config())
    store.attach_wal(
        root, DurabilityConfig(fsync="never", flush_bytes=1 << 20, roll_bytes=1 << 40)
    )
    cuts = sorted({max(1, NUM_KEYS // 4), max(1, NUM_KEYS // 2), NUM_KEYS})
    replay: list[dict] = []
    done = 0
    never_seconds = 0.0
    for cut in cuts:
        never_seconds += _insert_all(store, keys[done:cut])
        done = cut
        wal_bytes = _wal_bytes(store)
        _abandon(store)
        start = time.perf_counter()
        store = FilterStore.open(root)
        seconds = time.perf_counter() - start
        replay.append(
            {
                "rows": cut,
                "wal_bytes": wal_bytes,
                "seconds": seconds,
                "rows_per_sec": cut / seconds,
            }
        )
    append["never"] = {
        "rows_per_sec": NUM_KEYS / never_seconds,
        "relative": baseline_seconds / never_seconds,
        "wal_bytes": replay[-1]["wal_bytes"],
    }

    # Correctness first, at every scale: the thrice-recovered store answers
    # exactly like the oracle that applied the same inserts.
    assert (store.query_many(probe) == expected).all(), (
        "recovered store disagrees with the uninterrupted oracle"
    )
    _abandon(store)

    replay_rate = replay[-1]["rows_per_sec"]
    cost_growth = (
        (replay[-1]["seconds"] / replay[-1]["rows"])
        / (replay[0]["seconds"] / replay[0]["rows"])
    )
    record = {
        "keys": NUM_KEYS,
        "baseline_insert_rows_per_sec": baseline_rate,
        "append": append,
        "replay": replay,
        "replay_cost_growth": cost_growth,
        "gates": {
            "min_append_relative": MIN_APPEND_RELATIVE,
            "min_replay_relative": MIN_REPLAY_RELATIVE,
            "max_replay_cost_growth": MAX_REPLAY_COST_GROWTH,
            "asserted": NUM_KEYS >= 1_000_000,
        },
    }

    path = RESULTS_DIR / f"{RESULT_NAME}.json"
    merged: dict = json.loads(path.read_text()) if path.exists() else {}
    merged[str(NUM_KEYS)] = record
    save_json(RESULT_NAME, merged)

    print(
        f"wal recovery @ {NUM_KEYS} keys: baseline {baseline_rate / 1e3:.0f}k rows/s; "
        "append "
        + ", ".join(
            f"{mode} {append[mode]['rows_per_sec'] / 1e3:.0f}k rows/s "
            f"({append[mode]['relative']:.2f}x baseline)"
            for mode in FSYNC_MODES
        )
        + f"; replay {replay[-1]['wal_bytes'] / 1e6:.1f}MB in "
        f"{replay[-1]['seconds'] * 1e3:.0f}ms ({replay_rate / 1e3:.0f}k rows/s, "
        f"cost growth {cost_growth:.2f}x)"
    )

    if NUM_KEYS >= 1_000_000:
        assert append["never"]["relative"] >= MIN_APPEND_RELATIVE, (
            f"fsync=never redo logging keeps only "
            f"{append['never']['relative']:.2f}x of the non-durable insert "
            f"rate (gate {MIN_APPEND_RELATIVE})"
        )
        assert replay_rate >= MIN_REPLAY_RELATIVE * baseline_rate, (
            f"replay runs at {replay_rate / 1e3:.0f}k rows/s, under "
            f"{MIN_REPLAY_RELATIVE:.0%} of the {baseline_rate / 1e3:.0f}k "
            "rows/s insert baseline"
        )
        assert cost_growth <= MAX_REPLAY_COST_GROWTH, (
            f"per-row replay cost grew {cost_growth:.2f}x from the smallest "
            f"to the full log (gate {MAX_REPLAY_COST_GROWTH}x): replay is "
            "superlinear in WAL size"
        )
