"""Figure 9: reduction factor by the number of joins (filters applied).

Paper claim: the benefits of CCFs compound multiplicatively as more joins
(and hence more prebuilt filters) participate, for the optimal semijoin and
the CCF alike — while the no-predicate baseline improves far more slowly.
"""

from repro.bench.reporting import print_figure, save_json
from repro.join.reduction import rf_by_join_count


def test_fig9_rf_by_join_count(ctx, all_labels, all_results, benchmark):
    def compute():
        return {
            "optimal": rf_by_join_count(all_results, "exact"),
            "ccf": rf_by_join_count(all_results, "chained-small"),
            "no_predicate": rf_by_join_count(all_results, "cuckoo"),
        }

    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    counts = sorted(data["optimal"])
    print_figure(
        "Figure 9: aggregate RF by number of applied filters",
        ["# filters", "optimal RF", "RF w/ CCF (chained-small)", "RF no predicate"],
        [
            (count, data["optimal"][count], data["ccf"][count], data["no_predicate"][count])
            for count in counts
        ],
    )
    save_json("fig9_rf_by_joins", data)

    # More filters reduce more, for optimal and CCF alike.
    assert data["optimal"][counts[-1]] < data["optimal"][counts[0]]
    assert data["ccf"][counts[-1]] < data["ccf"][counts[0]]
    # The CCF curve sits between optimal and the no-predicate baseline.
    for count in counts:
        assert data["optimal"][count] <= data["ccf"][count] + 1e-9
        assert data["ccf"][count] <= data["no_predicate"][count] + 0.02
