"""Figure 2: the §7 FPR bounds predict the actual FPR.

Paper claim: estimated FPRs (decomposed into key-caused and attribute-caused
components) track actual FPRs well; at small attribute sizes the attribute
sketch dominates the error.
"""

from repro.bench.fpr_experiments import correlation, run_figure2
from repro.bench.reporting import print_figure, save_json


def test_fig2_fpr_bounds(benchmark):
    points = benchmark.pedantic(
        run_figure2,
        kwargs=dict(
            attr_bit_choices=(4, 8),
            key_bit_choices=(7, 12),
            num_keys=1200,
            values_per_key=3,
            num_queries=3000,
        ),
        rounds=1,
        iterations=1,
    )
    print_figure(
        "Figure 2: estimated vs actual FPR (chained CCF)",
        ["attr bits", "key bits", "cause", "actual FPR", "estimated FPR"],
        [(p.attr_bits, p.key_bits, p.cause, p.actual, p.estimated) for p in points],
    )
    r = correlation(points)
    print(f"\ncorrelation(actual, estimated) = {r:.3f}")
    save_json(
        "fig2_fpr_bounds",
        {
            "points": [vars(p) for p in points],
            "correlation": r,
        },
    )

    # Shape check 1: predictions track actuals strongly across the grid.
    assert r > 0.9
    # Shape check 2: the estimate upper-bounds (or stays near) the actual.
    for point in points:
        assert point.actual <= point.estimated * 2.5 + 0.02
    # Shape check 3: 4-bit attribute sketches err more than 8-bit ones.
    attr4 = max(p.actual for p in points if p.attr_bits == 4 and p.cause == "attribute")
    attr8 = max(p.actual for p in points if p.attr_bits == 8 and p.cause == "attribute")
    assert attr8 <= attr4
    benchmark.extra_info["correlation"] = r
