"""Shared fixtures for the benchmark suite.

The JOB-light experiments (Figures 3 and 6-10, §10.6 aggregates) share one
synthetic dataset, one workload and one set of filter bundles, evaluated a
single time per pytest session; individual benchmark files slice what they
need from the cached results.

Environment knobs:

* ``REPRO_SCALE`` — fraction of the full IMDB row counts (default 0.002,
  i.e. ~72k-row cast_info).  Larger scales sharpen the numbers and cost
  proportionally more time.
* ``REPRO_RUNS`` — salted repetitions for the stochastic multiset
  experiments (default 3; the paper used 20).
"""

from __future__ import annotations

import pytest

from repro.bench.joblight_experiments import (
    JOBLIGHT_KINDS,
    JoblightContext,
    get_context,
)
from repro.bench.reporting import env_scale
from repro.ccf.params import CCFParams, LARGE_PARAMS, SMALL_PARAMS

#: The size ladder for Figure 8's space/accuracy trade-off; 'small' and
#: 'large' are the paper's named configurations (§10.5).
SIZE_PARAMS: dict[str, CCFParams] = {
    "xsmall": SMALL_PARAMS.replace(bloom_bits=4),
    "small": SMALL_PARAMS,
    "medium": CCFParams(key_bits=12, attr_bits=4, bloom_bits=12, bloom_hashes=2),
    "large": LARGE_PARAMS,
}


@pytest.fixture(scope="session")
def ctx() -> JoblightContext:
    """The shared JOB-light context at the env-selected scale."""
    return get_context(env_scale(0.002), seed=1)


@pytest.fixture(scope="session")
def all_labels(ctx: JoblightContext) -> tuple[str, ...]:
    """Build every (kind, size) bundle once."""
    labels = []
    for size, params in SIZE_PARAMS.items():
        for kind in JOBLIGHT_KINDS:
            label = f"{kind}-{size}"
            ctx.bundle(kind, params, label)
            labels.append(label)
    return tuple(labels)


@pytest.fixture(scope="session")
def all_results(ctx: JoblightContext, all_labels: tuple[str, ...]):
    """Evaluate the workload once under every bundle plus the baselines."""
    return ctx.evaluate(all_labels)
