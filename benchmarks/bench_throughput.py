"""§10.8 run-time performance: query throughput per filter method.

The paper's single-threaded C++ implementation processed ~1M matches/s; the
pure-Python reproduction is expected to be one to two orders slower (see
DESIGN.md's substitution table).  What must hold is the *relative* picture:
all variants are within a small factor of each other, and key-only queries
are no slower for chained filters than for plain ones (§7.1: chains are
irrelevant to key-only queries).
"""

import random

import numpy as np
import pytest

from repro.bench.reporting import save_json
from repro.ccf.attributes import AttributeSchema
from repro.ccf.factory import build_ccf
from repro.ccf.params import CCFParams
from repro.ccf.predicates import Eq

SCHEMA = AttributeSchema(["attr"])
PARAMS = CCFParams(bucket_size=6, max_dupes=3, key_bits=12, attr_bits=8, seed=3)
NUM_KEYS = 20_000
QUERIES_PER_ROUND = 2_000


def _rows(seed: int = 0):
    rng = random.Random(seed)
    return [
        (key, (rng.randrange(256),))
        for key in range(NUM_KEYS)
        for _ in range(rng.randint(1, 4))
    ]


@pytest.fixture(scope="module")
def filters():
    rows = _rows()
    return {
        kind: build_ccf(kind, SCHEMA, rows, PARAMS) for kind in ("chained", "bloom", "mixed")
    }


@pytest.fixture(scope="module")
def query_keys():
    rng = random.Random(9)
    return [rng.randrange(2 * NUM_KEYS) for _ in range(QUERIES_PER_ROUND)]


@pytest.mark.parametrize("kind", ["chained", "bloom", "mixed"])
def test_throughput_key_and_predicate(benchmark, filters, query_keys, kind):
    ccf = filters[kind]
    compiled = ccf.compile(Eq("attr", 7))

    def run():
        hits = 0
        for key in query_keys:
            hits += ccf.query(key, compiled)
        return hits

    benchmark(run)
    ops = QUERIES_PER_ROUND / benchmark.stats["mean"]
    benchmark.extra_info["queries_per_second"] = ops
    save_json(f"throughput_{kind}", {"kind": kind, "queries_per_second": ops})
    assert ops > 10_000  # pure Python should still manage >10k matches/s


@pytest.mark.parametrize("kind", ["chained", "bloom", "mixed"])
def test_throughput_key_only(benchmark, filters, query_keys, kind):
    ccf = filters[kind]

    def run():
        hits = 0
        for key in query_keys:
            hits += ccf.contains_key(key)
        return hits

    benchmark(run)
    ops = QUERIES_PER_ROUND / benchmark.stats["mean"]
    benchmark.extra_info["queries_per_second"] = ops
    assert ops > 10_000


@pytest.mark.parametrize("kind", ["chained", "bloom", "mixed"])
def test_throughput_query_many(benchmark, filters, query_keys, kind):
    """Batch counterpart of the predicate-query loop (same keys, same predicate)."""
    ccf = filters[kind]
    compiled = ccf.compile(Eq("attr", 7))
    keys = np.asarray(query_keys)

    def run():
        return int(ccf.query_many(keys, compiled).sum())

    benchmark(run)
    ops = QUERIES_PER_ROUND / benchmark.stats["mean"]
    benchmark.extra_info["queries_per_second"] = ops
    save_json(
        f"throughput_batch_{kind}", {"kind": kind, "queries_per_second": ops}
    )
    assert ops > 30_000  # batch should clear the scalar floor with margin


@pytest.mark.parametrize("kind", ["chained", "bloom", "mixed"])
def test_throughput_key_only_many(benchmark, filters, query_keys, kind):
    ccf = filters[kind]
    keys = np.asarray(query_keys)

    def run():
        return int(ccf.contains_key_many(keys).sum())

    benchmark(run)
    ops = QUERIES_PER_ROUND / benchmark.stats["mean"]
    benchmark.extra_info["queries_per_second"] = ops
    assert ops > 30_000


def test_throughput_insert(benchmark):
    rows = _rows(seed=5)

    def build():
        return build_ccf("chained", SCHEMA, rows, PARAMS)

    ccf = benchmark.pedantic(build, rounds=1, iterations=1)
    ops = len(rows) / benchmark.stats["mean"]
    benchmark.extra_info["inserts_per_second"] = ops
    assert not ccf.failed
    assert ops > 5_000
