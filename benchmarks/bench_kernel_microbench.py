"""Probe/insert/delete kernel microbenchmark: packed vs int64 vs pre-PR loops.

ISSUE 4's acceptance bar for the width-adaptive slot engine (DESIGN.md §9),
measured at 1M keys:

* ``delete_many`` — the vectorised rank-dedup kernel vs the pre-PR per-key
  Python loop (replayed verbatim through ``_delete_hashed``): >= 3x.
* ``contains_many`` — the fused packed-dtype gather vs the pre-PR kernel
  (two int64 fancy-gathers, replayed below): >= 1.5x.
* packed storage holds <= 1/4 the fingerprint bytes of int64 at f <= 16.

ISSUE 7 adds the kernel-backend dimension (DESIGN.md §12): the record's
``backends`` section times the same insert/probe/delete workload once per
*timed* backend — numpy always, numba when importable (the ``python``
oracle exists for parity testing, not timing).  Per backend it records the
numba version (or null), **cold vs warm JIT timing separately** (the cold
bulk insert includes any ``@njit`` compile; with ``cache=True`` a warm
on-disk cache makes cold ~= warm), and speedups relative to the in-process
numpy run.  ISSUE 7 acceptance, asserted only when numba is importable and
the run is at the 1M scale: warm numba ``insert_many`` (kick-heavy, load
>= 0.9) >= 2x numpy, with no probe/delete regression.

Results merge into ``bench_results/kernel_microbench.json`` keyed by key
count, so the 1M acceptance record and the CI smoke record coexist.

**CI regression gate.**  When ``REPRO_KERNEL_BASELINE`` points at a
committed result file holding an entry for the same key count, the run
fails if the packed `contains_many` speedup over the replayed pre-PR
kernel drops more than ``REPRO_KERNEL_MAX_REGRESSION`` (default 20%) below
the baseline's.  The gate compares *speedups*, not absolute keys/s — the
reference kernel runs in the same process on the same machine, so the
ratio is hardware-portable where raw throughput is not — and it is
anchored to the pre-PR loop (the widest, most stable margin) rather than
the int64 twin, whose advantage at cache-resident smoke sizes is thin
enough for scheduler jitter to trip a false alarm.  The same gate applies
**per backend**: any backend present in both the baseline's and this run's
``backends`` section must hold its insert/contains speedup-vs-numpy to
within the allowed regression.

Environment knobs: ``REPRO_KERNEL_KEYS`` (default 1M),
``REPRO_KERNEL_BASELINE``, ``REPRO_KERNEL_MAX_REGRESSION``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.bench.reporting import RESULTS_DIR, save_json
from repro.cuckoo.filter import CuckooFilter
from repro.kernels import active_backend, available_backends, set_backend

NUM_KEYS = int(os.environ.get("REPRO_KERNEL_KEYS", 1_000_000))
BASELINE_PATH = os.environ.get("REPRO_KERNEL_BASELINE")
MAX_REGRESSION = float(os.environ.get("REPRO_KERNEL_MAX_REGRESSION", 0.2))
#: ISSUE 4 acceptance thresholds, asserted at the 1M-key scale.
MIN_DELETE_SPEEDUP = 3.0
MIN_CONTAINS_SPEEDUP = 1.5
#: ISSUE 7 acceptance thresholds (numba importable, 1M-key scale only).
MIN_NUMBA_INSERT_SPEEDUP = 2.0
#: "No regression" floor on numba probe/delete vs numpy (10% jitter allowance).
MIN_NUMBA_HOLD = 0.9
RESULT_NAME = "kernel_microbench"


def _build(packed: bool) -> CuckooFilter:
    cuckoo = CuckooFilter.from_capacity(
        NUM_KEYS, bucket_size=4, fingerprint_bits=12, seed=7, packed=packed
    )
    cuckoo.insert_many(np.arange(NUM_KEYS, dtype=np.int64), bulk=True)
    return cuckoo


def _best_of(runs: int, fn, *args) -> float:
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def _pre_pr_contains_many(cuckoo: CuckooFilter, keys: np.ndarray) -> np.ndarray:
    """The pre-PR probe kernel, verbatim: two int64 fancy-gathers."""
    fps = cuckoo.fingerprints_of_many(keys)
    homes = cuckoo.home_indices_of_many(keys)
    alts = homes ^ cuckoo._fp_jump_many(fps)
    table = cuckoo.buckets.fps
    fp_col = fps[:, None]
    found = (table[homes] == fp_col).any(axis=1)
    found |= (table[alts] == fp_col).any(axis=1)
    if cuckoo.stash:
        stash = np.fromiter(cuckoo.stash, dtype=np.int64, count=len(cuckoo.stash))
        found |= np.isin(fps, stash)
    return found


def _pre_pr_delete_many(cuckoo: CuckooFilter, keys: np.ndarray) -> np.ndarray:
    """The pre-PR removal loop, verbatim: vectorised hashing, per-key kernel."""
    fps = cuckoo.fingerprints_of_many(keys).tolist()
    homes = cuckoo.home_indices_of_many(keys).tolist()
    out = np.empty(len(fps), dtype=bool)
    for i, (fp, home) in enumerate(zip(fps, homes)):
        out[i] = cuckoo._delete_hashed(fp, home)
    return out


def _kick_heavy_buckets() -> int:
    """Smallest power-of-two bucket count fitting NUM_KEYS, load < 1.

    ``from_capacity`` at the default 0.95 target usually rounds up a full
    power of two (load ~0.48) — far too roomy to exercise the eviction
    loop.  The backend sweep instead sizes the table tight: at the 1M
    default this lands at 262144 buckets (load ~0.954), making the bulk
    insert kick-heavy as ISSUE 7's acceptance bar requires.
    """
    buckets = 1
    while buckets * 4 < NUM_KEYS:
        buckets *= 2
    if buckets * 4 == NUM_KEYS:  # exactly full would demand load 1.0
        buckets *= 2
    return buckets


def _bench_one_backend(
    name: str, keys: np.ndarray, probes: np.ndarray
) -> tuple[dict, np.ndarray, np.ndarray]:
    """Time insert (cold + warm), probe and delete under backend ``name``.

    Cold = the first bulk insert after selecting the backend, which pays any
    JIT compile (or on-disk cache load) the backend defers to first use.
    Warm = the same build on a fresh filter once the kernels are compiled.
    Returns the timing record plus the probe/delete answers for parity
    assertions against the reference backend.
    """
    backend = set_backend(name)
    num_buckets = _kick_heavy_buckets()
    try:
        cold_filter = CuckooFilter(num_buckets, 4, 12, seed=7)
        start = time.perf_counter()
        cold_filter.insert_many(keys, bulk=True)
        insert_cold = time.perf_counter() - start

        warm_filter = CuckooFilter(num_buckets, 4, 12, seed=7)
        start = time.perf_counter()
        warm_filter.insert_many(keys, bulk=True)
        insert_warm = time.perf_counter() - start

        contains = _best_of(3, warm_filter.contains_many, probes)
        probe_answers = warm_filter.contains_many(probes)

        victims = keys[::2]
        start = time.perf_counter()
        delete_answers = warm_filter.delete_many(victims)
        delete = time.perf_counter() - start

        record = {
            "backend": backend.name,
            "numba_version": backend.info.get("numba_version"),
            "load_factor_built": cold_filter.load_factor(),
            "insert_cold_s": insert_cold,
            "insert_warm_s": insert_warm,
            "jit_overhead_s": max(0.0, insert_cold - insert_warm),
            "insert_cold_keys_per_s": NUM_KEYS / insert_cold,
            "insert_warm_keys_per_s": NUM_KEYS / insert_warm,
            "contains_keys_per_s": NUM_KEYS / contains,
            "delete_keys_per_s": len(victims) / delete,
        }
        return record, probe_answers, delete_answers
    finally:
        set_backend(None)


def _bench_backends(keys: np.ndarray, probes: np.ndarray) -> dict:
    """Per-backend timing sweep: numpy always, numba when importable."""
    timed = ["numpy"]
    if available_backends().get("numba"):
        timed.append("numba")
    records: dict[str, dict] = {}
    reference_probe = reference_delete = None
    for name in timed:
        record, probe_answers, delete_answers = _bench_one_backend(name, keys, probes)
        if reference_probe is None:
            reference_probe, reference_delete = probe_answers, delete_answers
        else:
            # Timed runs double as a full-scale parity check.
            assert probe_answers.tolist() == reference_probe.tolist()
            assert delete_answers.tolist() == reference_delete.tolist()
        records[name] = record
    numpy_record = records["numpy"]
    for record in records.values():
        record["insert_speedup_vs_numpy"] = (
            record["insert_warm_keys_per_s"] / numpy_record["insert_warm_keys_per_s"]
        )
        record["contains_speedup_vs_numpy"] = (
            record["contains_keys_per_s"] / numpy_record["contains_keys_per_s"]
        )
        record["delete_speedup_vs_numpy"] = (
            record["delete_keys_per_s"] / numpy_record["delete_keys_per_s"]
        )
    return records


def test_kernel_microbench():
    rng = np.random.default_rng(3)
    # Half present, half absent probes — the serving mix.
    probes = rng.integers(0, 2 * NUM_KEYS, NUM_KEYS)
    victims = np.arange(0, NUM_KEYS, 2, dtype=np.int64)

    packed = _build(packed=True)
    legacy = _build(packed=False)
    assert packed.buckets.fps.dtype == np.uint16
    assert legacy.buckets.fps.dtype == np.int64
    fingerprint_byte_ratio = (
        packed.buckets.fingerprint_bytes() / legacy.buckets.fingerprint_bytes()
    )
    assert fingerprint_byte_ratio <= 0.25  # f=12 packs into uint16

    # Probes (non-mutating): best of 3 each, answers asserted equal.
    packed_contains = _best_of(3, packed.contains_many, probes)
    legacy_contains = _best_of(3, legacy.contains_many, probes)
    pre_pr_contains = _best_of(3, _pre_pr_contains_many, legacy, probes)
    assert (
        packed.contains_many(probes).tolist()
        == _pre_pr_contains_many(legacy, probes).tolist()
    )

    # Bulk insert (wave eviction) timing on fresh twins.
    keys = np.arange(NUM_KEYS, dtype=np.int64)
    fresh = CuckooFilter.from_capacity(NUM_KEYS, bucket_size=4, fingerprint_bits=12, seed=7)
    start = time.perf_counter()
    fresh.insert_many(keys, bulk=True)
    packed_insert = time.perf_counter() - start

    # Deletes mutate: one run each on identically-built twins.
    start = time.perf_counter()
    packed_deleted = packed.delete_many(victims)
    packed_delete = time.perf_counter() - start
    start = time.perf_counter()
    legacy_deleted = _pre_pr_delete_many(legacy, victims)
    pre_pr_delete = time.perf_counter() - start
    assert packed_deleted.tolist() == legacy_deleted.tolist()

    backends = _bench_backends(keys, probes)

    contains_speedup_vs_int64 = legacy_contains / packed_contains
    contains_speedup_vs_pre_pr = pre_pr_contains / packed_contains
    delete_speedup_vs_pre_pr = pre_pr_delete / packed_delete
    record = {
        "keys": NUM_KEYS,
        "active_backend": active_backend().name,
        "backends": backends,
        "bucket_size": 4,
        "fingerprint_bits": 12,
        "fingerprint_bytes_packed": packed.buckets.fingerprint_bytes(),
        "fingerprint_bytes_int64": legacy.buckets.fingerprint_bytes(),
        "fingerprint_byte_ratio": fingerprint_byte_ratio,
        "bytes_per_slot_packed": packed.buckets.bytes_per_slot,
        "packed_insert_bulk_keys_per_s": NUM_KEYS / packed_insert,
        "packed_contains_keys_per_s": NUM_KEYS / packed_contains,
        "int64_contains_keys_per_s": NUM_KEYS / legacy_contains,
        "pre_pr_contains_keys_per_s": NUM_KEYS / pre_pr_contains,
        "packed_delete_keys_per_s": len(victims) / packed_delete,
        "pre_pr_delete_keys_per_s": len(victims) / pre_pr_delete,
        "contains_speedup_vs_int64": contains_speedup_vs_int64,
        "contains_speedup_vs_pre_pr": contains_speedup_vs_pre_pr,
        "delete_speedup_vs_pre_pr": delete_speedup_vs_pre_pr,
    }

    # Snapshot the committed baseline BEFORE writing results: the baseline
    # file and the output file are typically the same path.
    baseline = None
    if BASELINE_PATH and os.path.exists(BASELINE_PATH):
        baseline = json.loads(open(BASELINE_PATH).read()).get(str(NUM_KEYS))

    # Merge with any existing result file so 1M and smoke entries coexist.
    path = RESULTS_DIR / f"{RESULT_NAME}.json"
    merged: dict = {}
    if path.exists():
        merged = json.loads(path.read_text())
    merged[str(NUM_KEYS)] = record
    save_json(RESULT_NAME, merged)
    print(
        f"kernel microbench @ {NUM_KEYS} keys: contains "
        f"{record['packed_contains_keys_per_s']/1e6:.1f}M/s "
        f"({contains_speedup_vs_pre_pr:.2f}x pre-PR, "
        f"{contains_speedup_vs_int64:.2f}x int64), delete "
        f"{record['packed_delete_keys_per_s']/1e6:.2f}M/s "
        f"({delete_speedup_vs_pre_pr:.1f}x pre-PR), "
        f"fingerprint bytes {fingerprint_byte_ratio:.2f}x int64"
    )
    for name, entry in backends.items():
        version = entry["numba_version"] or "-"
        print(
            f"  backend {name} (numba={version}): insert warm "
            f"{entry['insert_warm_keys_per_s']/1e6:.2f}M/s "
            f"(cold {entry['insert_cold_keys_per_s']/1e6:.2f}M/s, "
            f"jit {entry['jit_overhead_s']*1e3:.0f}ms), contains "
            f"{entry['contains_keys_per_s']/1e6:.1f}M/s, delete "
            f"{entry['delete_keys_per_s']/1e6:.2f}M/s "
            f"[{entry['insert_speedup_vs_numpy']:.2f}x / "
            f"{entry['contains_speedup_vs_numpy']:.2f}x / "
            f"{entry['delete_speedup_vs_numpy']:.2f}x vs numpy]"
        )

    # Regression gate against the committed baseline (same key count only).
    if baseline is not None:
        floor = baseline["contains_speedup_vs_pre_pr"] * (1 - MAX_REGRESSION)
        assert contains_speedup_vs_pre_pr >= floor, (
            f"contains_many regressed: speedup over the pre-PR kernel fell to "
            f"{contains_speedup_vs_pre_pr:.2f}x, baseline "
            f"{baseline['contains_speedup_vs_pre_pr']:.2f}x (floor {floor:.2f}x)"
        )
        # Per-backend leg of the gate: a backend timed in both runs must
        # hold its warm speedups vs numpy (in-process ratios, so the
        # comparison is hardware-portable like the pre-PR anchor above).
        for name, base_entry in (baseline.get("backends") or {}).items():
            entry = backends.get(name)
            if entry is None or name == "numpy":
                continue
            for metric in ("insert_speedup_vs_numpy", "contains_speedup_vs_numpy"):
                backend_floor = base_entry[metric] * (1 - MAX_REGRESSION)
                assert entry[metric] >= backend_floor, (
                    f"backend {name} regressed on {metric}: "
                    f"{entry[metric]:.2f}x, baseline {base_entry[metric]:.2f}x "
                    f"(floor {backend_floor:.2f}x)"
                )

    # ISSUE 4 acceptance thresholds hold at the 1M scale; smoke runs with
    # fewer keys only report (fixed per-batch overheads dominate there).
    if NUM_KEYS >= 1_000_000:
        assert delete_speedup_vs_pre_pr >= MIN_DELETE_SPEEDUP
        assert contains_speedup_vs_pre_pr >= MIN_CONTAINS_SPEEDUP

    # ISSUE 7 acceptance: numba's JIT path must earn its keep at scale —
    # >= 2x on the kick-heavy bulk insert (built load >= 0.9) with no
    # probe/delete regression.  Self-disables honestly when numba is not
    # importable (the record then carries numba_version: null).
    numba_entry = backends.get("numba")
    if numba_entry is not None and NUM_KEYS >= 1_000_000:
        assert numba_entry["load_factor_built"] >= 0.9
        assert numba_entry["insert_speedup_vs_numpy"] >= MIN_NUMBA_INSERT_SPEEDUP, (
            f"numba insert_many speedup {numba_entry['insert_speedup_vs_numpy']:.2f}x "
            f"below the {MIN_NUMBA_INSERT_SPEEDUP}x acceptance bar"
        )
        assert numba_entry["contains_speedup_vs_numpy"] >= MIN_NUMBA_HOLD
        assert numba_entry["delete_speedup_vs_numpy"] >= MIN_NUMBA_HOLD


if __name__ == "__main__":
    test_kernel_microbench()
