"""Probe/insert/delete kernel microbenchmark: packed vs int64 vs pre-PR loops.

ISSUE 4's acceptance bar for the width-adaptive slot engine (DESIGN.md §9),
measured at 1M keys:

* ``delete_many`` — the vectorised rank-dedup kernel vs the pre-PR per-key
  Python loop (replayed verbatim through ``_delete_hashed``): >= 3x.
* ``contains_many`` — the fused packed-dtype gather vs the pre-PR kernel
  (two int64 fancy-gathers, replayed below): >= 1.5x.
* packed storage holds <= 1/4 the fingerprint bytes of int64 at f <= 16.

Results merge into ``bench_results/kernel_microbench.json`` keyed by key
count, so the 1M acceptance record and the CI smoke record coexist.

**CI regression gate.**  When ``REPRO_KERNEL_BASELINE`` points at a
committed result file holding an entry for the same key count, the run
fails if the packed `contains_many` speedup over the replayed pre-PR
kernel drops more than ``REPRO_KERNEL_MAX_REGRESSION`` (default 20%) below
the baseline's.  The gate compares *speedups*, not absolute keys/s — the
reference kernel runs in the same process on the same machine, so the
ratio is hardware-portable where raw throughput is not — and it is
anchored to the pre-PR loop (the widest, most stable margin) rather than
the int64 twin, whose advantage at cache-resident smoke sizes is thin
enough for scheduler jitter to trip a false alarm.

Environment knobs: ``REPRO_KERNEL_KEYS`` (default 1M),
``REPRO_KERNEL_BASELINE``, ``REPRO_KERNEL_MAX_REGRESSION``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.bench.reporting import RESULTS_DIR, save_json
from repro.cuckoo.filter import CuckooFilter

NUM_KEYS = int(os.environ.get("REPRO_KERNEL_KEYS", 1_000_000))
BASELINE_PATH = os.environ.get("REPRO_KERNEL_BASELINE")
MAX_REGRESSION = float(os.environ.get("REPRO_KERNEL_MAX_REGRESSION", 0.2))
#: ISSUE 4 acceptance thresholds, asserted at the 1M-key scale.
MIN_DELETE_SPEEDUP = 3.0
MIN_CONTAINS_SPEEDUP = 1.5
RESULT_NAME = "kernel_microbench"


def _build(packed: bool) -> CuckooFilter:
    cuckoo = CuckooFilter.from_capacity(
        NUM_KEYS, bucket_size=4, fingerprint_bits=12, seed=7, packed=packed
    )
    cuckoo.insert_many(np.arange(NUM_KEYS, dtype=np.int64), bulk=True)
    return cuckoo


def _best_of(runs: int, fn, *args) -> float:
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def _pre_pr_contains_many(cuckoo: CuckooFilter, keys: np.ndarray) -> np.ndarray:
    """The pre-PR probe kernel, verbatim: two int64 fancy-gathers."""
    fps = cuckoo.fingerprints_of_many(keys)
    homes = cuckoo.home_indices_of_many(keys)
    alts = homes ^ cuckoo._fp_jump_many(fps)
    table = cuckoo.buckets.fps
    fp_col = fps[:, None]
    found = (table[homes] == fp_col).any(axis=1)
    found |= (table[alts] == fp_col).any(axis=1)
    if cuckoo.stash:
        stash = np.fromiter(cuckoo.stash, dtype=np.int64, count=len(cuckoo.stash))
        found |= np.isin(fps, stash)
    return found


def _pre_pr_delete_many(cuckoo: CuckooFilter, keys: np.ndarray) -> np.ndarray:
    """The pre-PR removal loop, verbatim: vectorised hashing, per-key kernel."""
    fps = cuckoo.fingerprints_of_many(keys).tolist()
    homes = cuckoo.home_indices_of_many(keys).tolist()
    out = np.empty(len(fps), dtype=bool)
    for i, (fp, home) in enumerate(zip(fps, homes)):
        out[i] = cuckoo._delete_hashed(fp, home)
    return out


def test_kernel_microbench():
    rng = np.random.default_rng(3)
    # Half present, half absent probes — the serving mix.
    probes = rng.integers(0, 2 * NUM_KEYS, NUM_KEYS)
    victims = np.arange(0, NUM_KEYS, 2, dtype=np.int64)

    packed = _build(packed=True)
    legacy = _build(packed=False)
    assert packed.buckets.fps.dtype == np.uint16
    assert legacy.buckets.fps.dtype == np.int64
    fingerprint_byte_ratio = (
        packed.buckets.fingerprint_bytes() / legacy.buckets.fingerprint_bytes()
    )
    assert fingerprint_byte_ratio <= 0.25  # f=12 packs into uint16

    # Probes (non-mutating): best of 3 each, answers asserted equal.
    packed_contains = _best_of(3, packed.contains_many, probes)
    legacy_contains = _best_of(3, legacy.contains_many, probes)
    pre_pr_contains = _best_of(3, _pre_pr_contains_many, legacy, probes)
    assert (
        packed.contains_many(probes).tolist()
        == _pre_pr_contains_many(legacy, probes).tolist()
    )

    # Bulk insert (wave eviction) timing on fresh twins.
    keys = np.arange(NUM_KEYS, dtype=np.int64)
    fresh = CuckooFilter.from_capacity(NUM_KEYS, bucket_size=4, fingerprint_bits=12, seed=7)
    start = time.perf_counter()
    fresh.insert_many(keys, bulk=True)
    packed_insert = time.perf_counter() - start

    # Deletes mutate: one run each on identically-built twins.
    start = time.perf_counter()
    packed_deleted = packed.delete_many(victims)
    packed_delete = time.perf_counter() - start
    start = time.perf_counter()
    legacy_deleted = _pre_pr_delete_many(legacy, victims)
    pre_pr_delete = time.perf_counter() - start
    assert packed_deleted.tolist() == legacy_deleted.tolist()

    contains_speedup_vs_int64 = legacy_contains / packed_contains
    contains_speedup_vs_pre_pr = pre_pr_contains / packed_contains
    delete_speedup_vs_pre_pr = pre_pr_delete / packed_delete
    record = {
        "keys": NUM_KEYS,
        "bucket_size": 4,
        "fingerprint_bits": 12,
        "fingerprint_bytes_packed": packed.buckets.fingerprint_bytes(),
        "fingerprint_bytes_int64": legacy.buckets.fingerprint_bytes(),
        "fingerprint_byte_ratio": fingerprint_byte_ratio,
        "bytes_per_slot_packed": packed.buckets.bytes_per_slot,
        "packed_insert_bulk_keys_per_s": NUM_KEYS / packed_insert,
        "packed_contains_keys_per_s": NUM_KEYS / packed_contains,
        "int64_contains_keys_per_s": NUM_KEYS / legacy_contains,
        "pre_pr_contains_keys_per_s": NUM_KEYS / pre_pr_contains,
        "packed_delete_keys_per_s": len(victims) / packed_delete,
        "pre_pr_delete_keys_per_s": len(victims) / pre_pr_delete,
        "contains_speedup_vs_int64": contains_speedup_vs_int64,
        "contains_speedup_vs_pre_pr": contains_speedup_vs_pre_pr,
        "delete_speedup_vs_pre_pr": delete_speedup_vs_pre_pr,
    }

    # Snapshot the committed baseline BEFORE writing results: the baseline
    # file and the output file are typically the same path.
    baseline = None
    if BASELINE_PATH and os.path.exists(BASELINE_PATH):
        baseline = json.loads(open(BASELINE_PATH).read()).get(str(NUM_KEYS))

    # Merge with any existing result file so 1M and smoke entries coexist.
    path = RESULTS_DIR / f"{RESULT_NAME}.json"
    merged: dict = {}
    if path.exists():
        merged = json.loads(path.read_text())
    merged[str(NUM_KEYS)] = record
    save_json(RESULT_NAME, merged)
    print(
        f"kernel microbench @ {NUM_KEYS} keys: contains "
        f"{record['packed_contains_keys_per_s']/1e6:.1f}M/s "
        f"({contains_speedup_vs_pre_pr:.2f}x pre-PR, "
        f"{contains_speedup_vs_int64:.2f}x int64), delete "
        f"{record['packed_delete_keys_per_s']/1e6:.2f}M/s "
        f"({delete_speedup_vs_pre_pr:.1f}x pre-PR), "
        f"fingerprint bytes {fingerprint_byte_ratio:.2f}x int64"
    )

    # Regression gate against the committed baseline (same key count only).
    if baseline is not None:
        floor = baseline["contains_speedup_vs_pre_pr"] * (1 - MAX_REGRESSION)
        assert contains_speedup_vs_pre_pr >= floor, (
            f"contains_many regressed: speedup over the pre-PR kernel fell to "
            f"{contains_speedup_vs_pre_pr:.2f}x, baseline "
            f"{baseline['contains_speedup_vs_pre_pr']:.2f}x (floor {floor:.2f}x)"
        )

    # ISSUE 4 acceptance thresholds hold at the 1M scale; smoke runs with
    # fewer keys only report (fixed per-batch overheads dominate there).
    if NUM_KEYS >= 1_000_000:
        assert delete_speedup_vs_pre_pr >= MIN_DELETE_SPEEDUP
        assert contains_speedup_vs_pre_pr >= MIN_CONTAINS_SPEEDUP


if __name__ == "__main__":
    test_kernel_microbench()
