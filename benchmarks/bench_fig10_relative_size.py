"""Figure 10: CCF size relative to the raw data it sketches, per table.

Paper claims: relative size varies widely with the underlying data — Bloom
sketches shrink duplicate-heavy tables (movie_keyword) hardest, while
chaining is competitive on tables with (near-)unique keys (title); the
overall set of sketches is an order of magnitude smaller than the raw
key/attribute data (§10.7: 18.5 MB vs 322 MB raw).
"""

from repro.bench.joblight_experiments import figure10_relative_sizes, standard_bundles
from repro.bench.reporting import print_figure, save_json


def test_fig10_relative_sizes(ctx, all_labels, benchmark):
    labels = standard_bundles(ctx, "small")
    rows = benchmark.pedantic(
        figure10_relative_sizes, args=(ctx, labels), rounds=1, iterations=1
    )
    print_figure(
        "Figure 10: CCF size / raw data size (small parameters)",
        ["filter", "table", "relative size"],
        [(r["filter"], r["table"], r["relative_size"]) for r in rows],
    )
    save_json("fig10_relative_size", rows)

    by_key = {(r["filter"], r["table"]): r["relative_size"] for r in rows}
    # Overall: sketches are far smaller than the raw data.
    for kind in ("bloom", "mixed", "chained"):
        assert by_key[(f"{kind}-small", "Overall")] < 0.8
    # Bloom wins on the duplicate-heavy table...
    assert (
        by_key[("bloom-small", "movie_keyword")]
        <= by_key[("chained-small", "movie_keyword")]
    )
    # ...while chaining stores nothing extra for unique keys, so its
    # relative size on title stays in the same league as Bloom's.
    assert by_key[("chained-small", "title")] <= by_key[("bloom-small", "title")] * 2.0
