"""Cold-open latency and resident memory: SEG1 segments vs CCF3 payloads.

ISSUE 5's acceptance bar for the mapped-segment engine (DESIGN.md §10),
measured on a snapshot holding ``REPRO_MMAP_KEYS`` keys (default 1M):

* ``FilterStore.open`` on a segment snapshot is **>= 10x** faster than the
  CCF3 full-deserialize path at the 1M scale (>= 3x at CI smoke scale,
  where constant costs blunt the ratio) — segments open O(manifest), the
  bit-packed wire format decodes every slot up front;
* a mapped store answers a post-open probe batch bit-identically to the
  store that wrote the snapshot;
* resident-memory growth of open+probe is recorded for both paths
  (``/proc/self/statm``; segment columns are file-backed, so only touched
  pages count against RSS).

Results merge into ``bench_results/mmap_open.json`` keyed by key count, so
the 1M acceptance record and the CI smoke record coexist.

Environment knobs: ``REPRO_MMAP_KEYS`` (default 1M).
"""

from __future__ import annotations

import gc
import json
import os
import time

import numpy as np

from repro.bench.reporting import RESULTS_DIR, save_json
from repro.ccf import AttributeSchema, CCFParams
from repro.cuckoo.buckets import next_power_of_two
from repro.store import FilterStore, StoreConfig

NUM_KEYS = int(os.environ.get("REPRO_MMAP_KEYS", 1_000_000))
RESULT_NAME = "mmap_open"
#: Acceptance thresholds: the hard 10x bar holds at the 1M acceptance scale;
#: smoke runs still must clear 3x.
MIN_OPEN_SPEEDUP_FULL = 10.0
MIN_OPEN_SPEEDUP_SMOKE = 3.0

SCHEMA = AttributeSchema(["status", "region"])
PARAMS = CCFParams(key_bits=16, attr_bits=8, bucket_size=4, seed=9)
NUM_SHARDS = 4


def _rss_bytes() -> int | None:
    """Current resident set size, or None off-Linux."""
    try:
        with open("/proc/self/statm") as handle:
            return int(handle.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):  # pragma: no cover - non-Linux
        return None


def _build_store() -> FilterStore:
    # Size levels so each shard stacks a handful of sealed levels.
    level_buckets = next_power_of_two(
        max(1024, NUM_KEYS // (NUM_SHARDS * PARAMS.bucket_size * 4))
    )
    config = StoreConfig(
        num_shards=NUM_SHARDS, level_buckets=level_buckets, target_load=0.85, seed=1
    )
    store = FilterStore(SCHEMA, PARAMS, config)
    keys = np.arange(NUM_KEYS, dtype=np.int64)
    for chunk in np.array_split(keys, max(1, NUM_KEYS // 100_000)):
        store.insert_many(chunk, [chunk % 5, chunk % 7])
    return store


def _timed_open_and_probe(root, probe: np.ndarray) -> dict:
    """Open a snapshot cold and run one probe batch, recording time and RSS."""
    gc.collect()
    rss_before = _rss_bytes()
    start = time.perf_counter()
    store = FilterStore.open(root)
    open_seconds = time.perf_counter() - start
    start = time.perf_counter()
    answers = store.query_many(probe)
    first_query_seconds = time.perf_counter() - start
    rss_after = _rss_bytes()
    stats = store.stats()
    return {
        "open_seconds": open_seconds,
        "first_query_seconds": first_query_seconds,
        "rss_delta_bytes": (
            None if rss_before is None else max(0, rss_after - rss_before)
        ),
        "mapped_bytes": stats["mapped_bytes"],
        "resident_bytes": stats["resident_bytes"],
        "answers": answers,
    }


def test_mmap_open(tmp_path):
    store = _build_store()
    rng = np.random.default_rng(17)
    probe = rng.integers(0, 2 * NUM_KEYS, size=min(NUM_KEYS, 200_000)).astype(np.int64)
    expected = store.query_many(probe)

    seg_root = store.snapshot(tmp_path / "segment-snap", level_format="segment")
    ccf_root = store.snapshot(tmp_path / "ccf-snap", level_format="ccf")
    num_levels = store.num_levels
    del store
    gc.collect()

    ccf = _timed_open_and_probe(ccf_root, probe)
    seg = _timed_open_and_probe(seg_root, probe)

    # Correctness first: both cold stores answer exactly like the writer.
    assert (ccf.pop("answers") == expected).all(), "ccf reopen changed answers"
    assert (seg.pop("answers") == expected).all(), "mapped reopen changed answers"
    assert seg["mapped_bytes"] > 0 and seg["resident_bytes"] == 0
    assert ccf["mapped_bytes"] == 0

    open_speedup = ccf["open_seconds"] / seg["open_seconds"]
    min_speedup = (
        MIN_OPEN_SPEEDUP_FULL if NUM_KEYS >= 1_000_000 else MIN_OPEN_SPEEDUP_SMOKE
    )
    record = {
        "keys": NUM_KEYS,
        "levels": num_levels,
        "probe_batch": int(len(probe)),
        "ccf": ccf,
        "segment": seg,
        "open_speedup": open_speedup,
        "min_open_speedup": min_speedup,
    }

    # Merge with any existing result file so 1M and smoke entries coexist.
    path = RESULTS_DIR / f"{RESULT_NAME}.json"
    merged: dict = {}
    if path.exists():
        merged = json.loads(path.read_text())
    merged[str(NUM_KEYS)] = record
    save_json(RESULT_NAME, merged)

    def _mb(value):
        return "n/a" if value is None else f"{value / 1e6:.1f}MB"

    print(
        f"mmap open @ {NUM_KEYS} keys / {num_levels} levels: "
        f"segment open {seg['open_seconds'] * 1e3:.1f}ms vs "
        f"ccf {ccf['open_seconds'] * 1e3:.1f}ms ({open_speedup:.1f}x), "
        f"open+probe RSS {_mb(seg['rss_delta_bytes'])} vs {_mb(ccf['rss_delta_bytes'])}, "
        f"mapped {seg['mapped_bytes'] / 1e6:.1f}MB"
    )
    assert open_speedup >= min_speedup, (
        f"segment cold open is only {open_speedup:.1f}x faster than the CCF3 "
        f"deserialize path (required {min_speedup:.0f}x at {NUM_KEYS} keys)"
    )
