"""FilterStore scaling: batch throughput vs shard count and compaction policy.

The store's claim is operational, not algorithmic: an unbounded mutable
membership service whose per-batch work stays one vectorised fan-out as the
data outgrows any single filter.  This benchmark measures that claim on a
mixed insert/query stream sized to overflow a single level many times over:

* **shard sweep** — the same stream through 1/2/4/8 shards.  Routing adds
  one hash + scatter per batch; the win is that each shard's level stack
  stays shallower (fewer levels to OR per query).
* **compaction policy** — `none` (levels accumulate for the whole run)
  against `periodic` (auto-compact a shard at ``compact_at`` levels).
  Compaction pays a merge to make every later query probe one level.

Results land in ``bench_results/store_scaling.json``.  Correctness is
asserted inline (every inserted key answers True at the end of each run —
the no-false-negative contract is not allowed to degrade for speed).

Environment knobs: ``REPRO_STORE_OPS`` (total operations, default 400k).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.bench.reporting import print_figure, save_json
from repro.ccf import AttributeSchema, CCFParams
from repro.store import FilterStore, StoreConfig

TOTAL_OPS = int(os.environ.get("REPRO_STORE_OPS", 400_000))
BATCH = 2_000

SHARD_COUNTS = (1, 2, 4, 8)
COMPACTION_POLICIES = {"none": None, "periodic": 6}

SCHEMA = AttributeSchema(["status", "region"])
PARAMS = CCFParams(key_bits=16, attr_bits=8, bucket_size=4, seed=9)
#: Small levels so the stream overflows a level many times per run.
LEVEL_BUCKETS = 1024


def _key_stream(total_ops: int) -> tuple[list[np.ndarray], list[np.ndarray]]:
    rng = np.random.default_rng(31)
    rounds = max(1, total_ops // (2 * BATCH))
    inserts = [rng.integers(0, 1 << 40, size=BATCH) for _ in range(rounds)]
    queries = [rng.integers(0, 1 << 40, size=BATCH) for _ in range(rounds)]
    return inserts, queries


def _run_store(
    num_shards: int, compact_at: int | None, inserts: list[np.ndarray], queries: list[np.ndarray]
) -> dict:
    config = StoreConfig(
        num_shards=num_shards,
        level_buckets=LEVEL_BUCKETS,
        target_load=0.85,
        compact_at=compact_at,
        seed=1,
    )
    store = FilterStore(SCHEMA, PARAMS, config)
    start = time.perf_counter()
    for insert_keys, query_keys in zip(inserts, queries):
        store.insert_many(insert_keys, [insert_keys % 3, insert_keys % 7])
        store.query_many(query_keys)
    mixed_seconds = time.perf_counter() - start

    levels_before = store.num_levels
    start = time.perf_counter()
    store.compact()
    compact_seconds = time.perf_counter() - start

    probe = np.concatenate(queries[: max(1, len(queries) // 4)])
    start = time.perf_counter()
    store.query_many(probe)
    post_query_seconds = time.perf_counter() - start

    inserted = np.concatenate(inserts)
    assert bool(store.query_many(inserted).all()), "store lost an inserted key"

    total_ops = 2 * sum(len(b) for b in inserts)
    stats = store.stats()
    return {
        "shards": num_shards,
        "compact_at": compact_at,
        "total_ops": total_ops,
        "mixed_ops_per_second": total_ops / mixed_seconds,
        "levels_before_final_compaction": levels_before,
        "levels_after": store.num_levels,
        "final_compaction_seconds": compact_seconds,
        "post_compaction_probes_per_second": len(probe) / post_query_seconds,
        "compactions": stats["compactions"],
        "entries": stats["entries"],
        "size_in_bytes": stats["size_in_bytes"],
    }


def test_store_scaling():
    """Sweep shard count x compaction policy over one mixed stream."""
    inserts, queries = _key_stream(TOTAL_OPS)
    results = []
    for policy, compact_at in COMPACTION_POLICIES.items():
        for shards in SHARD_COUNTS:
            row = _run_store(shards, compact_at, inserts, queries)
            row["policy"] = policy
            results.append(row)

    print_figure(
        f"FilterStore scaling ({2 * sum(len(b) for b in inserts)} mixed ops)",
        ["policy", "shards", "mixed ops/s", "levels", "post-compact probes/s"],
        [
            (
                r["policy"],
                r["shards"],
                round(r["mixed_ops_per_second"]),
                r["levels_before_final_compaction"],
                round(r["post_compaction_probes_per_second"]),
            )
            for r in results
        ],
    )
    save_json(
        "store_scaling",
        {
            "total_ops": results[0]["total_ops"],
            "batch": BATCH,
            "level_buckets": LEVEL_BUCKETS,
            "results": results,
        },
    )

    # Structural sanity, not a perf assertion (shared CI runners are noisy):
    # sharding must partition the data and compaction must collapse stacks.
    by_policy = {p: [r for r in results if r["policy"] == p] for p in COMPACTION_POLICIES}
    for rows in by_policy.values():
        for row in rows:
            assert row["levels_after"] == row["shards"]
    # The periodic policy bounds every shard's stack at compact_at levels.
    for row in by_policy["periodic"]:
        assert row["levels_before_final_compaction"] <= row["shards"] * COMPACTION_POLICIES["periodic"]
