"""Scalar-vs-batch probe throughput for the vectorised execution layer.

The ROADMAP's batching item: the `data/` and `join/` layers are numpy-
vectorised, so per-key Python hashing and probing was the system's
throughput ceiling.  This benchmark drives one million probes through both
paths of the same structures and reports the speedup; the batch layer's
acceptance bar is >= 5x on queries.  Answers are asserted equal element-wise
(the batch APIs are bit-identical to the scalar loop, see DESIGN.md).
"""

import time

import numpy as np
import pytest

from repro.bench.reporting import save_json
from repro.ccf.attributes import AttributeSchema
from repro.ccf.factory import build_ccf
from repro.ccf.params import CCFParams
from repro.ccf.predicates import Eq
from repro.cuckoo.filter import CuckooFilter

NUM_PROBES = 1_000_000
CUCKOO_KEYS = 200_000
CCF_KEYS = 40_000

#: Queries must beat the scalar loop by at least this factor (ISSUE 1).
MIN_QUERY_SPEEDUP = 5.0

SCHEMA = AttributeSchema(["attr"])
PARAMS = CCFParams(bucket_size=6, max_dupes=3, key_bits=12, attr_bits=8, seed=3)


def _timed(fn, repeats: int = 2):
    """Run ``fn`` ``repeats`` times; return (last result, best wall time).

    Best-of-N on both sides of the comparison damps scheduler noise without
    favouring either path.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


@pytest.fixture(scope="module")
def probe_keys() -> np.ndarray:
    rng = np.random.default_rng(11)
    return rng.integers(0, 2 * CUCKOO_KEYS, size=NUM_PROBES)


def _report(name: str, scalar_seconds: float, batch_seconds: float) -> float:
    speedup = scalar_seconds / batch_seconds
    save_json(
        f"batch_throughput_{name}",
        {
            "probes": NUM_PROBES,
            "scalar_ops_per_second": NUM_PROBES / scalar_seconds,
            "batch_ops_per_second": NUM_PROBES / batch_seconds,
            "speedup": speedup,
        },
    )
    return speedup


def test_cuckoo_contains_many_speedup(probe_keys):
    """Key-only cuckoo filter: the semijoin baseline's probe loop."""
    cuckoo = CuckooFilter.from_capacity(CUCKOO_KEYS, seed=3)
    cuckoo.insert_many(np.arange(CUCKOO_KEYS))
    assert not cuckoo.failed
    keys_list = probe_keys.tolist()
    scalar_answers, scalar_seconds = _timed(
        lambda: [cuckoo.contains(key) for key in keys_list]
    )
    batch_answers, batch_seconds = _timed(lambda: cuckoo.contains_many(probe_keys))
    assert batch_answers.tolist() == scalar_answers
    speedup = _report("cuckoo_contains", scalar_seconds, batch_seconds)
    assert speedup >= MIN_QUERY_SPEEDUP


@pytest.mark.parametrize("kind", ["chained", "bloom", "mixed"])
def test_ccf_query_many_speedup(probe_keys, kind):
    """Predicate queries through a CCF: the join-pushdown probe loop."""
    rng = np.random.default_rng(7)
    keys = rng.integers(0, CCF_KEYS, size=2 * CCF_KEYS)
    attrs = rng.integers(0, 256, size=2 * CCF_KEYS)
    ccf = build_ccf(kind, SCHEMA, zip(keys.tolist(), zip(attrs.tolist())), PARAMS)
    compiled = ccf.compile(Eq("attr", 7))
    keys_list = probe_keys.tolist()
    scalar_answers, scalar_seconds = _timed(
        lambda: [ccf.query(key, compiled) for key in keys_list]
    )
    batch_answers, batch_seconds = _timed(lambda: ccf.query_many(probe_keys, compiled))
    assert batch_answers.tolist() == scalar_answers
    speedup = _report(f"ccf_{kind}_query", scalar_seconds, batch_seconds)
    assert speedup >= MIN_QUERY_SPEEDUP


def test_ccf_insert_many_not_slower():
    """Builds keep a sequential placement loop, so the win is smaller; the
    batch path must at least not regress."""
    rng = np.random.default_rng(13)
    keys = rng.integers(0, CCF_KEYS, size=2 * CCF_KEYS)
    attrs = rng.integers(0, 256, size=2 * CCF_KEYS)
    scalar_ccf = build_ccf("chained", SCHEMA, zip(keys.tolist(), zip(attrs.tolist())), PARAMS)
    num_buckets = scalar_ccf.buckets.num_buckets
    from repro.ccf.factory import make_ccf

    def scalar_build():
        ccf = make_ccf("chained", SCHEMA, num_buckets, PARAMS)
        for key, attr in zip(keys.tolist(), attrs.tolist()):
            ccf.insert(key, (attr,))
        return ccf

    def batch_build():
        ccf = make_ccf("chained", SCHEMA, num_buckets, PARAMS)
        ccf.insert_many(keys, [attrs])
        return ccf

    scalar_ccf, scalar_seconds = _timed(scalar_build)
    batch_ccf, batch_seconds = _timed(batch_build)
    # The gate is state parity; the timing is reported but not asserted —
    # the true ratio sits near 1.0 (hashing is batched, placement is not),
    # which a shared CI runner's scheduling noise could flip spuriously.
    assert batch_ccf.num_entries == scalar_ccf.num_entries
    assert batch_ccf.num_kicks == scalar_ccf.num_kicks
    save_json(
        "batch_throughput_ccf_insert",
        {
            "rows": int(2 * CCF_KEYS),
            "scalar_ops_per_second": 2 * CCF_KEYS / scalar_seconds,
            "batch_ops_per_second": 2 * CCF_KEYS / batch_seconds,
            "speedup": scalar_seconds / batch_seconds,
        },
    )
