"""Figure 4: load factor at first failed insertion vs duplicates per key.

Paper claim: a plain multiset cuckoo filter's attainable load collapses as
keys acquire duplicates (catastrophically under Zipf-Mandelbrot skew), while
chaining sustains ~75% at b=4 and ~87% at b=6 regardless of duplication.
"""

from repro.bench.multiset_experiments import run_figure4
from repro.bench.reporting import env_runs, print_figure, save_json


def test_fig4_load_factor_at_failure(benchmark):
    rows = benchmark.pedantic(
        run_figure4,
        kwargs=dict(
            bucket_sizes=(4, 6, 8),
            duplicate_levels=(1, 2, 4, 8, 12),
            shapes=("constant", "zipf"),
            num_buckets=512,
            runs=env_runs(3),
        ),
        rounds=1,
        iterations=1,
    )
    print_figure(
        "Figure 4: load factor at first failure (chained vs plain)",
        ["shape", "b", "avg dupes", "type", "load@failure"],
        [
            (r["shape"], r["bucket_size"], r["mean_duplicates"], r["type"], r["load_factor_at_failure"])
            for r in rows
        ],
    )
    save_json("fig4_load_factor", rows)

    by_key = {
        (r["shape"], r["bucket_size"], r["mean_duplicates"], r["type"]): r[
            "load_factor_at_failure"
        ]
        for r in rows
    }
    # Shape check 1: chained stays high as duplicates grow.
    for shape in ("constant", "zipf"):
        assert by_key[(shape, 6, 12, "chained")] > 0.6
    # Shape check 2: plain collapses once duplicates exceed pair capacity.
    assert by_key[("constant", 4, 12, "plain")] < by_key[("constant", 4, 1, "plain")] * 0.7
    # Shape check 3: Zipf skew hurts the plain filter dramatically.
    assert by_key[("zipf", 4, 8, "plain")] < 0.45
    benchmark.extra_info["rows"] = len(rows)
