"""Serialisation: wire sizes and (de)serialisation throughput.

Not a paper figure, but the paper's deployment model (§2: filters are
"precomputed and stored", §3: pushed to other scans) makes the wire format
part of the system.  Claims checked: the on-wire size tracks the logical
``size_in_bits()`` accounting, extracted views are smaller than their source
filters, and round-trips preserve behaviour.
"""

import random

from repro.bench.reporting import print_figure, save_json
from repro.ccf.attributes import AttributeSchema
from repro.ccf.factory import build_ccf
from repro.ccf.params import CCFParams
from repro.ccf.predicates import Eq
from repro.ccf.serialize import dumps, loads

SCHEMA = AttributeSchema(["color", "size"])
PARAMS = CCFParams(bucket_size=6, max_dupes=3, key_bits=12, attr_bits=8, seed=3)


def _rows(num_keys=5000, seed=0):
    rng = random.Random(seed)
    return [
        (key, (rng.randrange(8), rng.randrange(64)))
        for key in range(num_keys)
        for _ in range(rng.randint(1, 4))
    ]


def test_serialization_sizes(benchmark):
    rows = _rows()

    def run():
        table = []
        for kind in ("chained", "bloom", "mixed"):
            ccf = build_ccf(kind, SCHEMA, rows, PARAMS)
            payload = dumps(ccf)
            view = ccf.predicate_filter(Eq("color", 3))
            view_payload = dumps(view)
            table.append(
                {
                    "kind": kind,
                    "logical_kib": ccf.size_in_bits() / 8 / 1024,
                    "wire_kib": len(payload) / 1024,
                    "view_wire_kib": len(view_payload) / 1024,
                    "overhead": len(payload) * 8 / ccf.size_in_bits(),
                }
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(
        "Serialisation: logical vs wire size (5k keys, ~12.5k rows)",
        ["kind", "logical KiB", "wire KiB", "extracted view KiB", "wire/logical"],
        [
            (r["kind"], r["logical_kib"], r["wire_kib"], r["view_wire_kib"], r["overhead"])
            for r in table
        ],
    )
    save_json("serialization_sizes", table)
    for row in table:
        # Wire format stays close to the logical bit accounting (the slack
        # is occupancy tags and headers) and views ship smaller still.
        assert row["overhead"] < 1.35
        assert row["view_wire_kib"] < row["wire_kib"]


def test_serialization_throughput(benchmark):
    rows = _rows(num_keys=3000, seed=1)
    ccf = build_ccf("chained", SCHEMA, rows, PARAMS)
    payload = dumps(ccf)

    def roundtrip():
        return loads(dumps(ccf))

    restored = benchmark(roundtrip)
    assert restored.num_entries == ccf.num_entries
    benchmark.extra_info["wire_kib"] = len(payload) / 1024
    # Sanity: a restored filter answers like the original on a sample.
    sample = random.Random(2).sample(range(6000), 200)
    for key in sample:
        assert restored.contains_key(key) == ccf.contains_key(key)
